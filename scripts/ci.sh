#!/usr/bin/env bash
# Repo CI gate: lints must be clean and formatting canonical before the
# test suite counts. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (workspace, all targets, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (workspace) =="
cargo test --workspace -q

echo "== chaos smoke (fixed seed, must be deterministic) =="
cargo test --test faults fixed_seed_chaos_run_is_deterministic -- --exact

echo "== multi-worker variant (XDAQ_WORKERS=4) =="
# Re-runs the ordering-sensitive suites with every default-configured
# executive spawning 4 dispatch workers (the env override applies only
# to configs left at workers=1, so explicit workers(n) tests keep
# their own counts). The fixed-seed determinism smoke above stays
# single-worker on purpose: cross-device completion order is not a
# multi-worker invariant, per-device order is.
XDAQ_WORKERS=4 cargo test -q --test cluster
XDAQ_WORKERS=4 cargo test -q -p xdaq-core --test executive
XDAQ_WORKERS=4 cargo test -q --test faults \
    chaos_rejects_thirty_percent_yet_all_replies_arrive -- --exact
XDAQ_WORKERS=4 cargo test -q --test faults \
    primary_killed_mid_run_fails_over_with_zero_loss -- --exact

# The multi-process/chaos tiers below are capability-gated: the heavy
# tests early-return unless XDAQ_TEST_HEAVY=1, so a plain `cargo test`
# stays fast while CI opts in to the full fault-injection surface.

echo "== event recording: round-trip, replay, crash recovery (heavy) =="
# Covers the zero-copy append path (iovec aliasing asserted), the
# record→replay determinism loop (live filter decisions reproduced from
# the store), and SIGKILLing a recorder process mid-write followed by
# torn-tail recovery.
XDAQ_TEST_HEAVY=1 cargo test -q --test rec

echo "== shm multi-process smoke (echo + kill) (heavy) =="
# Spawns real child processes on the far side of the region; covers
# zero-copy descriptor passing, chained frames, and SIGKILL detection.
XDAQ_TEST_HEAVY=1 cargo test -q --test shm

echo "== event builder: chaos mesh + builder kill (multi-process, heavy) =="
# A real 4x2 RU/BU mesh, one process per node over shm regions. The
# chaos run drops 10% of fragments (fixed seed) and must finish with
# zero loss; the kill run SIGKILLs a builder mid-run and the event
# manager must reclaim its credits and reassign its events.
XDAQ_TEST_HEAVY=1 cargo test -q --test evb
cargo test -q -p xdaq-evb

echo "== deterministic simulation: 100-seed fault sweeps, golden replay =="
# Always on — no XDAQ_TEST_HEAVY gate: the whole point of the virtual
# clock is that 100 full-cluster kill/partition/delay/corrupt
# experiments (each asserting zero event loss) cost ~1 s of wall
# time. Includes the fixed-seed byte-for-byte golden-trace replay and
# the shrink-to-minimal-repro test.
cargo test -q -p xdaq-sim

echo "== control plane: declarative apply, SIGKILL respawn, rolling drain =="
# The registry-managed event builder: an RU/BU/EVM topology booted
# purely from a declaration file, a builder SIGKILLed mid-run (the
# convergence loop must respawn it, restore routes and finish with
# zero loss), and a rolling drain+restart of the other builder. These
# are the PR acceptance tests, so they run in the always-on tier.
cargo test -q --test ctl
cargo test -q -p xdaq-ctl

echo "== overload: credit backpressure, reserved lane, two-tenant QoS =="
# End-to-end flow control (DESIGN.md §13): a saturated link must never
# false-Suspect a live peer (heartbeats ride the reserved lane), the
# Block policy must hand frames back without leaking pool blocks, the
# grant protocol must converge under fixed-seed grant drop/dup chaos,
# and the slow-consumer soaks (loopback, shm, tcp) must finish with
# zero loss while a rate-limited bulk tenant is shed, not serviced.
cargo test -q --test flow
cargo test -q -p xdaq-core credit
cargo test -q -p xdaq-core admission
cargo test -q -p xdaq-core --test proptests credit

echo "== network transports: tcp regressions + xpt on both backends =="
# The issue-9 tcp regressions (per-connection locking so a stalled
# peer cannot head-of-line block others, fully blocking reads with
# zero idle CPU, reader reaping + down-peer surfacing) plus the xpt
# submission/completion suite. The epoll driver always runs; the
# uring tests probe the kernel and skip themselves gracefully where
# rings are refused, so this stage passes on uring-less kernels with
# the same correctness coverage via the fallback. The proptest model
# pins the wire layer (chunking/donation/completion equivalence).
cargo test -q -p xdaq-pt --lib tcp::
cargo test -q -p xdaq-pt --lib xpt::
cargo test -q -p xdaq-pt --test xpt_wire
cargo test -q --test flow xpt_slow_consumer_soak -- --exact

echo "== loom model of the shm SPSC ring =="
RUSTFLAGS="--cfg loom" cargo test -q -p xdaq-shm --test loom --release

echo "== loom model of the multi-worker FIFO-steal handoff =="
RUSTFLAGS="--cfg loom" cargo test -q -p xdaq-core --test loom --release

echo "== failure injection under ThreadSanitizer (advisory) =="
# Needs a nightly toolchain with -Z sanitizer support; results are
# advisory — TSan findings are reported but do not fail the gate.
if rustup toolchain list 2>/dev/null | grep -q nightly; then
    host_triple="$(rustc -vV | sed -n 's/^host: //p')"
    # With rust-src, rebuild std instrumented too (fewer false
    # positives); without it, instrument only the workspace and allow
    # the sanitizer ABI mismatch against the prebuilt std. In that
    # degraded mode std's futex-based Mutex is invisible to TSan, so
    # data that is in fact lock-protected (e.g. SchedQueue level maps
    # during steal_fifo) is reported as racing — the loom models above
    # are the authoritative check for those protocols.
    build_std=()
    flags="-Zsanitizer=thread"
    if rustup component list --toolchain nightly 2>/dev/null \
        | grep -q "rust-src (installed)"; then
        build_std=(-Z build-std)
    else
        flags="$flags -Cunsafe-allow-abi-mismatch=sanitizer"
    fi
    tsan() {
        RUSTFLAGS="$flags" RUSTDOCFLAGS="$flags" \
            cargo +nightly test "${build_std[@]}" --target "$host_triple" "$@"
    }
    if tsan -p xdaq --test faults && tsan -p xdaq-core --test failures \
        && tsan -p xdaq --test cluster multi_worker_dispatch_preserves_per_device_ordering; then
        echo "tsan: clean"
    else
        echo "tsan: findings above are ADVISORY, not blocking"
    fi
else
    echo "tsan: no nightly toolchain installed, skipping (advisory stage)"
fi

echo "ci: all green"
