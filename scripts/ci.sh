#!/usr/bin/env bash
# Repo CI gate: lints must be clean and formatting canonical before the
# test suite counts. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (workspace, all targets, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (workspace) =="
cargo test --workspace -q

echo "ci: all green"
