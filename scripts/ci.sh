#!/usr/bin/env bash
# Repo CI gate: lints must be clean and formatting canonical before the
# test suite counts. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (workspace, all targets, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (workspace) =="
cargo test --workspace -q

echo "== chaos smoke (fixed seed, must be deterministic) =="
cargo test --test faults fixed_seed_chaos_run_is_deterministic -- --exact

echo "== shm multi-process smoke (echo + kill) =="
# Spawns real child processes on the far side of the region; covers
# zero-copy descriptor passing, chained frames, and SIGKILL detection.
cargo test -q --test shm

echo "== loom model of the shm SPSC ring =="
RUSTFLAGS="--cfg loom" cargo test -q -p xdaq-shm --test loom --release

echo "== failure injection under ThreadSanitizer (advisory) =="
# Needs a nightly toolchain with -Z sanitizer support; results are
# advisory — TSan findings are reported but do not fail the gate.
if rustup toolchain list 2>/dev/null | grep -q nightly; then
    host_triple="$(rustc -vV | sed -n 's/^host: //p')"
    # With rust-src, rebuild std instrumented too (fewer false
    # positives); without it, instrument only the workspace and allow
    # the sanitizer ABI mismatch against the prebuilt std.
    build_std=()
    flags="-Zsanitizer=thread"
    if rustup component list --toolchain nightly 2>/dev/null \
        | grep -q "rust-src (installed)"; then
        build_std=(-Z build-std)
    else
        flags="$flags -Cunsafe-allow-abi-mismatch=sanitizer"
    fi
    tsan() {
        RUSTFLAGS="$flags" RUSTDOCFLAGS="$flags" \
            cargo +nightly test "${build_std[@]}" --target "$host_triple" "$@"
    }
    if tsan -p xdaq --test faults && tsan -p xdaq-core --test failures; then
        echo "tsan: clean"
    else
        echo "tsan: findings above are ADVISORY, not blocking"
    fi
else
    echo "tsan: no nightly toolchain installed, skipping (advisory stage)"
fi

echo "ci: all green"
