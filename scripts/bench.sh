#!/usr/bin/env bash
# Benchmark driver: rebuilds the release harnesses and regenerates the
# experiment outputs under results/. Run from the repo root.
#
#   scripts/bench.sh                # shm transport comparison only (fast)
#   scripts/bench.sh --all          # also regenerate the paper harnesses
#   scripts/bench.sh --consolidate  # only re-fold results/BENCH_pr*.json
#                                   # into BENCH_trajectory.json (no runs)
set -euo pipefail
cd "$(dirname "$0")/.."

consolidate() {
    echo "== consolidated benchmark trajectory =="
    # Merge every per-PR benchmark document into one array, ordered by
    # PR, so a single file tracks the performance trajectory across the
    # stack.
    {
        echo "["
        first=1
        for f in $(ls results/BENCH_pr*.json 2>/dev/null | sort -V); do
            [[ $first -eq 1 ]] || echo ","
            first=0
            cat "$f"
        done
        echo "]"
    } > results/BENCH_trajectory.json
    python3 -c "import json; json.load(open('results/BENCH_trajectory.json'))" \
        2>/dev/null || echo "warning: BENCH_trajectory.json failed validation"
    echo "wrote results/BENCH_trajectory.json"
}

if [[ "${1:-}" == "--consolidate" ]]; then
    consolidate
    exit 0
fi

echo "== build (release) =="
cargo build --release -p xdaq-bench

echo "== shm vs loopback vs tcp throughput (64 B .. 256 KiB) =="
# Asserts the PR acceptance floor internally: zero send-path copies for
# every block-sized frame and >=5x TCP-localhost throughput at 4 KiB.
cargo run -p xdaq-bench --release --bin shm_throughput -- \
    --json results/BENCH_pr3.json

echo "== multi-worker executive dispatch scaling (1/2/4 workers) =="
# Asserts the PR acceptance floor internally when the host has >=4
# CPUs: >=2x aggregate dispatch throughput at 4 workers vs 1.
cargo run -p xdaq-bench --release --bin exec_scaling -- \
    --json results/BENCH_pr4.json

echo "== event-store append/scan throughput (1 KiB .. 256 KiB) =="
# Verifies internally that every append iovec aliases its pool block
# (zero payload copies) and that the store scans back clean.
cargo run -p xdaq-bench --release --bin rec_throughput -- \
    --json results/BENCH_pr5.json

echo "== event-builder scaling (n x m executives over shm + tcp, chaos) =="
# Asserts the PR acceptance floor internally: every mesh point (up to
# 16x8 executives, tcp stragglers included) finishes with zero event
# loss while readouts drop 10% of fragments under a fixed-seed plan.
cargo run -p xdaq-bench --release --bin evb_scaling -- \
    --json results/BENCH_pr6.json

echo "== qos fairness (two tenants, one credit-metered link) =="
# Asserts the PR acceptance floor internally: with a token-bucket
# class shedding the bulk flooder at admission, the high-priority
# tenant must retain >= 90% of its solo throughput.
cargo run -p xdaq-bench --release --bin qos_fairness -- \
    --json results/BENCH_pr7.json

echo "== net batching (tcp vs xpt-uring vs xpt-epoll vs shm) =="
# Asserts the PR acceptance floor internally: the batched xpt://
# transport must beat plain tcp-localhost by >=3x at 4 KiB frames.
# Falls back to the epoll driver where the kernel refuses io_uring
# (the JSON records which backends ran).
cargo run -p xdaq-bench --release --bin net_batching -- \
    --json results/BENCH_pr9.json

echo "== deterministic simulation (100-seed fault-sweep throughput) =="
# Asserts the PR acceptance floor internally: 100 seeded fault
# schedules over the simulated 5-node evb mesh in < 10 s wall, zero
# event loss on every seed, and a byte-identical golden-trace replay.
cargo run -p xdaq-bench --release --bin sim_sweeps -- \
    --json results/BENCH_pr10.json

if [[ "${1:-}" == "--all" ]]; then
    echo "== paper harnesses =="
    cargo run -p xdaq-bench --release --bin fig6
    cargo run -p xdaq-bench --release --bin table1
    cargo run -p xdaq-bench --release --bin ptmode
fi

consolidate

echo "bench: done (see results/)"
