//! End-to-end flow-control and QoS integration tests (DESIGN.md §13):
//! credit-based backpressure over loopback, shm and tcp, the reserved
//! control lane under saturation, blocked-sender frame return without
//! pool leaks, chaos on the grant path, and two-tenant admission.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xdaq::core::config::kv;
use xdaq::core::{
    Delivery, Dispatcher, ExecError, Executive, ExecutiveConfig, FlowConfig, FlowPolicy,
    I2oListener, LinkState, PeerTransport, PtError, SupervisionConfig,
};
use xdaq::i2o::{DeviceClass, Message, Priority, Tid, UtilFn};
use xdaq::mempool::TablePool;
use xdaq::pt::{ChaosPt, FaultPlan, LoopbackHub, LoopbackPt, TcpPt, XptPt};

const XFN_DATA: u16 = 0x0300;

fn wait_until(cond: impl Fn() -> bool, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    cond()
}

/// Counts private frames; optionally sleeps per frame (slow consumer).
struct Sink {
    received: Arc<AtomicU64>,
    delay: Duration,
}

impl Sink {
    fn new(delay: Duration) -> (Sink, Arc<AtomicU64>) {
        let received = Arc::new(AtomicU64::new(0));
        (
            Sink {
                received: received.clone(),
                delay,
            },
            received,
        )
    }
}

impl I2oListener for Sink {
    fn class(&self) -> DeviceClass {
        DeviceClass::Application(0x0DAB)
    }

    fn on_private(&mut self, _ctx: &mut Dispatcher<'_>, _msg: Delivery) {
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        self.received.fetch_add(1, Ordering::Relaxed);
    }
}

fn flow_cfg() -> FlowConfig {
    FlowConfig {
        window: 16,
        replenish: 8,
        high_watermark: 8,
        policy: FlowPolicy::FailFast,
        reserve: 2,
        reserve_priority: 5,
        tick: Duration::from_millis(5),
    }
}

fn data_frame(dest: Tid) -> Message {
    Message::build_private(dest, Tid::HOST, 0x0DAB, XFN_DATA)
        .payload(vec![0x42u8; 64])
        .finish()
}

fn is_credit_exhausted(e: &ExecError) -> bool {
    matches!(e, ExecError::Transport(PtError::CreditExhausted(_)))
}

/// Posts `count` frames toward `dest`, retrying on credit exhaustion,
/// until `budget` runs out. Returns the number that got through.
fn flood_with_retry(exec: &Executive, dest: Tid, count: u64, budget: Duration) -> u64 {
    let deadline = Instant::now() + budget;
    let mut delivered = 0;
    while delivered < count && Instant::now() < deadline {
        match exec.post(data_frame(dest)) {
            Ok(()) => delivered += 1,
            Err(e) if is_credit_exhausted(&e) => {
                std::thread::sleep(Duration::from_micros(200));
            }
            Err(e) => panic!("unexpected send error: {e}"),
        }
    }
    delivered
}

/// Satellite 1 — the reserved control lane: a flooder exhausts every
/// data credit toward a slow consumer, yet heartbeats keep flowing on
/// the unmetered lane, so the saturated link is never Suspected or
/// declared Down.
#[test]
fn saturated_link_keeps_peer_up() {
    let hub = LoopbackHub::new();
    let sup = SupervisionConfig {
        interval: Duration::from_millis(20),
        suspect_after: 3,
        down_after: 6,
    };
    let mut ca = ExecutiveConfig::named("a");
    ca.supervision = Some(sup.clone());
    ca.flow = Some(flow_cfg());
    let mut cb = ExecutiveConfig::named("b");
    cb.supervision = Some(sup);
    cb.flow = Some(flow_cfg());
    let a = Executive::new(ca);
    let b = Executive::new(cb);
    a.register_pt("a.loop", LoopbackPt::new(&hub, "a")).unwrap();
    b.register_pt("b.loop", LoopbackPt::new(&hub, "b")).unwrap();

    // b's consumer sleeps 3ms per frame: its queue backs up past the
    // watermark, grants stop, and a's window runs dry.
    let (sink, received) = Sink::new(Duration::from_millis(3));
    let sink_tid = b.register("sink", Box::new(sink), &[]).unwrap();
    let proxy = a.proxy("loop://b", sink_tid, None).unwrap();
    a.supervise("loop://b").unwrap();
    a.enable_all();
    b.enable_all();
    let ha = a.spawn();
    let hb = b.spawn();

    // Flood for ~1.2s: far more than the window allows through.
    let t0 = Instant::now();
    let mut exhausted = 0u64;
    let mut sent = 0u64;
    while t0.elapsed() < Duration::from_millis(1200) {
        match a.post(data_frame(proxy)) {
            Ok(()) => sent += 1,
            Err(e) if is_credit_exhausted(&e) => {
                exhausted += 1;
                std::thread::sleep(Duration::from_micros(100));
            }
            Err(e) => panic!("unexpected send error: {e}"),
        }
    }

    assert!(
        exhausted > 0,
        "flood never hit the credit wall ({sent} sent)"
    );
    assert!(sent > 0, "no frame was ever admitted");
    // The link must have stayed Up the whole time: heartbeats ride the
    // reserved lane, immune to data-credit exhaustion.
    let states = a.link_states();
    assert!(
        states
            .iter()
            .any(|(p, s)| p == "loop://b" && *s == LinkState::Up),
        "saturated link degraded: {states:?}"
    );
    let metrics = a.core().monitors().registry().snapshot();
    let c = &metrics["counters"];
    assert_eq!(c["link.peer_suspect"].as_u64().unwrap(), 0, "{metrics}");
    assert_eq!(c["link.peer_down"].as_u64().unwrap(), 0, "{metrics}");
    assert!(c["link.hb_pings"].as_u64().unwrap() > 0, "{metrics}");
    assert!(c["flow.credit_failures"].as_u64().unwrap() > 0, "{metrics}");

    // Back off: the slow consumer drains, grants resume, and every
    // admitted frame arrives.
    assert!(
        wait_until(
            || received.load(Ordering::Relaxed) >= sent,
            Duration::from_secs(60)
        ),
        "admitted frames lost: {} of {sent}",
        received.load(Ordering::Relaxed)
    );
    ha.shutdown();
    hb.shutdown();
}

/// Satellite 2 — FlowPolicy::Block returns the frame zero-copy on
/// deadline expiry, and nothing leaks: after the receiver drains, the
/// sender's pool is back to zero live blocks.
#[test]
fn credit_block_returns_frame_without_leak() {
    let hub = LoopbackHub::new();
    let mut ca = ExecutiveConfig::named("a");
    ca.flow = Some(FlowConfig {
        policy: FlowPolicy::Block {
            deadline: Duration::from_millis(25),
        },
        ..flow_cfg()
    });
    let a = Executive::new(ca);
    a.register_pt("a.loop", LoopbackPt::new(&hub, "a")).unwrap();
    // The "peer": a bare mailbox that never grants credits.
    let b_pt = LoopbackPt::new(&hub, "b");
    let proxy = a.proxy("loop://b", Tid::new(0x50).unwrap(), None).unwrap();
    a.enable_all();

    // Meter the lane by hand: 4 credits, 2 of which are the reserved
    // control lane, so exactly two bulk frames fit and no
    // replenishment will ever arrive.
    let peer = "loop://b".parse().unwrap();
    let mgr = a.core().flow().expect("flow enabled").clone();
    mgr.on_grant(&peer, 1, 4);

    a.post(data_frame(proxy)).unwrap();
    a.post(data_frame(proxy)).unwrap();
    let t0 = Instant::now();
    let err = a.post(data_frame(proxy)).unwrap_err();
    let waited = t0.elapsed();
    assert!(is_credit_exhausted(&err), "got: {err}");
    assert!(
        waited >= Duration::from_millis(20),
        "Block policy returned too early: {waited:?}"
    );
    assert!(mgr.counters().credit_waits.get() > 0);
    assert!(mgr.counters().credit_failures.get() > 0);

    // The blocked frame was recycled, the two delivered ones sit in
    // the peer mailbox; draining it recycles them too. Zero leaks.
    b_pt.stop();
    let stats = a.core().allocator().stats();
    assert_eq!(
        stats.live_blocks, 0,
        "pool blocks leaked across credit exhaustion: {stats:?}"
    );
}

/// Satellite 3 — chaos on the credit path: 30% of grants are dropped
/// and 20% duplicated (fixed seed), yet the cumulative/idempotent
/// protocol converges — zero deadlock, zero loss, bounded time.
#[test]
fn grant_chaos_converges_with_zero_loss() {
    const COUNT: u64 = 500;
    let hub = LoopbackHub::new();
    let mut ca = ExecutiveConfig::named("a");
    ca.flow = Some(flow_cfg());
    let mut cb = ExecutiveConfig::named("b");
    cb.flow = Some(flow_cfg());
    let a = Executive::new(ca);
    let b = Executive::new(cb);
    a.register_pt("a.loop", LoopbackPt::new(&hub, "a")).unwrap();
    // Grants flow b -> a, so the chaos wrapper goes on b's transport
    // and targets only CreditGrant frames: data flows clean, the
    // credit protocol alone is perturbed.
    let chaos = ChaosPt::wrap(
        LoopbackPt::new(&hub, "b"),
        0xC0FFEE,
        FaultPlan {
            grant_drop_per_mille: 300,
            grant_dup_per_mille: 200,
            ..FaultPlan::default()
        },
    );
    b.register_pt("b.chaos", chaos.clone()).unwrap();

    let (sink, received) = Sink::new(Duration::ZERO);
    let sink_tid = b.register("sink", Box::new(sink), &[]).unwrap();
    let proxy = a.proxy("loop://b", sink_tid, None).unwrap();
    a.enable_all();
    b.enable_all();
    let ha = a.spawn();
    let hb = b.spawn();

    let delivered = flood_with_retry(&a, proxy, COUNT, Duration::from_secs(30));
    assert_eq!(delivered, COUNT, "sender wedged: credit protocol deadlock");
    assert!(
        wait_until(
            || received.load(Ordering::Relaxed) >= COUNT,
            Duration::from_secs(30)
        ),
        "frames lost under grant chaos: {} of {COUNT}",
        received.load(Ordering::Relaxed)
    );
    let stats = chaos.stats();
    assert!(
        stats.grants_dropped > 0,
        "chaos never hit a grant: {stats:?}"
    );
    ha.shutdown();
    hb.shutdown();
}

/// Satellite 5 (soak, loopback edition of the two-tenant story): a
/// rate-limited bulk tenant is shed at admission while the gold tenant
/// delivers everything; shed counters surface in the snapshot.
#[test]
fn two_tenant_admission_sheds_bulk_not_gold() {
    const PER_TENANT: u64 = 300;
    let hub = LoopbackHub::new();
    let a = Executive::new(ExecutiveConfig::named("a"));
    let b = Executive::new(ExecutiveConfig::named("b"));
    a.register_pt("a.loop", LoopbackPt::new(&hub, "a")).unwrap();
    b.register_pt("b.loop", LoopbackPt::new(&hub, "b")).unwrap();
    let (sink, received) = Sink::new(Duration::ZERO);
    let sink_tid = b.register("sink", Box::new(sink), &[]).unwrap();
    let proxy = a.proxy("loop://b", sink_tid, None).unwrap();
    a.enable_all();
    b.enable_all();
    let ha = a.spawn();
    let hb = b.spawn();

    let gold = Tid::new(0x30).unwrap();
    let bulk = Tid::new(0x31).unwrap();
    // Tenant policy arrives as a plain ParamsSet frame addressed to
    // the executive — the same path `xcl qos` drives remotely.
    let params = kv(&[
        ("qos.class.gold", "1000000:1000000"),
        ("qos.class.bulk", "0:50"),
        (&format!("qos.assign.{}", gold.raw()), "gold"),
        (&format!("qos.assign.{}", bulk.raw()), "bulk"),
    ]);
    a.post(
        Message::util(Tid::EXECUTIVE, Tid::HOST, UtilFn::ParamsSet)
            .payload(params)
            .finish(),
    )
    .unwrap();
    assert!(
        wait_until(|| !a.core().admission().is_empty(), Duration::from_secs(5)),
        "qos ParamsSet never applied"
    );

    let tenant_frame = |initiator: Tid| {
        Message::build_private(proxy, initiator, 0x0DAB, XFN_DATA)
            .priority(Priority::MAX)
            .payload(vec![0u8; 32])
            .finish()
    };
    let mut gold_ok = 0u64;
    let mut bulk_ok = 0u64;
    let mut bulk_shed = 0u64;
    for _ in 0..PER_TENANT {
        match a.post(tenant_frame(bulk)) {
            Ok(()) => bulk_ok += 1,
            Err(ExecError::Shed(t)) => {
                assert_eq!(t, bulk);
                bulk_shed += 1;
            }
            Err(e) => panic!("bulk: {e}"),
        }
        match a.post(tenant_frame(gold)) {
            Ok(()) => gold_ok += 1,
            Err(e) => panic!("gold tenant must never shed: {e}"),
        }
    }
    assert_eq!(gold_ok, PER_TENANT, "gold throughput degraded");
    assert_eq!(bulk_ok, 50, "bulk burst allowance"); // burst=50, rate=0
    assert_eq!(bulk_shed, PER_TENANT - 50);

    // Every admitted frame arrives; shed ones never consumed a slot.
    assert!(
        wait_until(
            || received.load(Ordering::Relaxed) >= gold_ok + bulk_ok,
            Duration::from_secs(30)
        ),
        "admitted frames lost: {}",
        received.load(Ordering::Relaxed)
    );
    let snap = a.core().mon_snapshot();
    assert_eq!(
        snap["qos"]["classes"]["bulk"]["shed"].as_u64(),
        Some(bulk_shed)
    );
    assert_eq!(snap["qos"]["classes"]["gold"]["shed"].as_u64(), Some(0));
    let metrics = a.core().monitors().registry().snapshot();
    assert_eq!(
        metrics["counters"]["qos.bulk.shed"].as_u64(),
        Some(bulk_shed)
    );
    ha.shutdown();
    hb.shutdown();
}

/// Runtime retuning: `flow.*` keys through ParamsSet adjust the live
/// window/policy; a bad key rejects the frame without side effects.
#[test]
fn flow_params_retune_at_runtime() {
    let mut cfg = ExecutiveConfig::named("a");
    cfg.flow = Some(flow_cfg());
    let a = Executive::new(cfg);
    a.enable_all();
    let ha = a.spawn();
    a.post(
        Message::util(Tid::EXECUTIVE, Tid::HOST, UtilFn::ParamsSet)
            .payload(kv(&[
                ("flow.window", "64"),
                ("flow.replenish", "16"),
                ("flow.policy", "fail"),
            ]))
            .finish(),
    )
    .unwrap();
    assert!(
        wait_until(
            || a.core().flow().unwrap().config().window == 64,
            Duration::from_secs(5)
        ),
        "flow.window retune never applied"
    );
    let cfg_now = a.core().flow().unwrap().config();
    assert_eq!(cfg_now.replenish, 16);
    assert!(matches!(cfg_now.policy, FlowPolicy::FailFast));
    ha.shutdown();
}

/// The tcp slow-consumer soak: credit backpressure propagates over a
/// real socket identically to loopback — the sender hits the wall,
/// the receiver's queue stays bounded by the window, no pool leaks.
#[test]
fn tcp_slow_consumer_soak() {
    const COUNT: u64 = 400;
    let mut ca = ExecutiveConfig::named("a");
    ca.flow = Some(flow_cfg());
    let mut cb = ExecutiveConfig::named("b");
    cb.flow = Some(flow_cfg());
    let a = Executive::new(ca);
    let b = Executive::new(cb);
    a.register_pt(
        "a.tcp",
        TcpPt::bind("127.0.0.1:0", TablePool::with_defaults()).unwrap(),
    )
    .unwrap();
    let b_tcp = TcpPt::bind("127.0.0.1:0", TablePool::with_defaults()).unwrap();
    let b_url = b_tcp.addr().to_string();
    b.register_pt("b.tcp", b_tcp).unwrap();

    let (sink, received) = Sink::new(Duration::from_micros(500));
    let sink_tid = b.register("sink", Box::new(sink), &[]).unwrap();
    let proxy = a.proxy(&b_url, sink_tid, None).unwrap();
    a.enable_all();
    b.enable_all();
    let ha = a.spawn();
    let hb = b.spawn();

    // Prime the lane: send one frame and wait for b's bring-up grant
    // so the soak below runs fully metered (a burst posted before the
    // first grant lands would bypass flow control entirely).
    let peer = b_url.parse().unwrap();
    a.post(data_frame(proxy)).unwrap();
    let mgr = a.core().flow().unwrap().clone();
    assert!(
        wait_until(|| mgr.available(&peer).is_some(), Duration::from_secs(10)),
        "bring-up grant never arrived over tcp"
    );

    let delivered = flood_with_retry(&a, proxy, COUNT - 1, Duration::from_secs(60));
    assert_eq!(delivered, COUNT - 1, "tcp sender wedged");
    assert!(
        wait_until(
            || received.load(Ordering::Relaxed) >= COUNT,
            Duration::from_secs(60)
        ),
        "frames lost over tcp: {} of {COUNT}",
        received.load(Ordering::Relaxed)
    );
    // Backpressure was real: the sender hit the credit wall at least
    // once (a 16-frame window cannot cover a 500µs/frame consumer).
    let fails = mgr.counters().credit_failures.get();
    assert!(fails > 0, "flood never exercised tcp backpressure");
    ha.shutdown();
    hb.shutdown();
    // Both executives torn down: every pool block is home.
    let sa = a.core().allocator().stats();
    assert_eq!(sa.live_blocks, 0, "sender pool leak: {sa:?}");
}

/// The shm slow-consumer soak: same story over a shared-memory region
/// (in-process creator/attacher pair — the transport does not care).
#[test]
fn shm_slow_consumer_soak() {
    if !xdaq::shm::sys::supported() {
        return;
    }
    const COUNT: u64 = 400;
    let region = std::env::temp_dir().join(format!("xdaq-flow-soak-{}", std::process::id()));
    let a_pt = xdaq::shm::ShmPt::new(xdaq::core::PtMode::Polling);
    let link = a_pt
        .create_link(
            &region,
            xdaq::shm::ShmConfig {
                block_size: 4096,
                nblocks: 256,
                ring_capacity: 512,
            },
        )
        .unwrap();
    let peer = link.peer_addr().clone();
    let b_pt = xdaq::shm::ShmPt::new(xdaq::core::PtMode::Polling);
    b_pt.attach_link(&region).unwrap();

    let mut ca = ExecutiveConfig::named("a");
    ca.flow = Some(flow_cfg());
    let mut cb = ExecutiveConfig::named("b");
    cb.flow = Some(flow_cfg());
    let a = Executive::new(ca);
    let b = Executive::new(cb);
    a.register_pt("a.shm", a_pt).unwrap();
    b.register_pt("b.shm", b_pt).unwrap();
    let (sink, received) = Sink::new(Duration::from_micros(500));
    let sink_tid = b.register("sink", Box::new(sink), &[]).unwrap();
    let proxy = a.proxy(&peer.to_string(), sink_tid, None).unwrap();
    a.enable_all();
    b.enable_all();
    let ha = a.spawn();
    let hb = b.spawn();

    a.post(data_frame(proxy)).unwrap();
    let mgr = a.core().flow().unwrap().clone();
    assert!(
        wait_until(|| mgr.available(&peer).is_some(), Duration::from_secs(10)),
        "bring-up grant never arrived over shm"
    );
    let delivered = flood_with_retry(&a, proxy, COUNT - 1, Duration::from_secs(60));
    assert_eq!(delivered, COUNT - 1, "shm sender wedged");
    assert!(
        wait_until(
            || received.load(Ordering::Relaxed) >= COUNT,
            Duration::from_secs(60)
        ),
        "frames lost over shm: {} of {COUNT}",
        received.load(Ordering::Relaxed)
    );
    assert!(
        mgr.counters().credit_failures.get() > 0,
        "flood never exercised shm backpressure"
    );
    ha.shutdown();
    hb.shutdown();
    let sa = a.core().allocator().stats();
    assert_eq!(sa.live_blocks, 0, "sender pool leak: {sa:?}");
    let _ = std::fs::remove_file(&region);
}

/// The xpt slow-consumer soak (issue 9): the batched
/// submission/completion transport honors the same credit wall as
/// tcp — retry/failover and credit gating compose unchanged through
/// `Pta::send_failover_returning` — and a slow consumer leaks no pool
/// blocks even though sends complete asynchronously on the driver
/// thread (submission-ring frames must come home on teardown too).
#[test]
fn xpt_slow_consumer_soak() {
    const COUNT: u64 = 400;
    let mut ca = ExecutiveConfig::named("a");
    ca.flow = Some(flow_cfg());
    let mut cb = ExecutiveConfig::named("b");
    cb.flow = Some(flow_cfg());
    let a = Executive::new(ca);
    let b = Executive::new(cb);
    a.register_pt(
        "a.xpt",
        XptPt::bind("127.0.0.1:0", TablePool::with_defaults()).unwrap(),
    )
    .unwrap();
    let b_xpt = XptPt::bind("127.0.0.1:0", TablePool::with_defaults()).unwrap();
    let b_url = b_xpt.addr().to_string();
    b.register_pt("b.xpt", b_xpt).unwrap();

    let (sink, received) = Sink::new(Duration::from_micros(500));
    let sink_tid = b.register("sink", Box::new(sink), &[]).unwrap();
    let proxy = a.proxy(&b_url, sink_tid, None).unwrap();
    a.enable_all();
    b.enable_all();
    let ha = a.spawn();
    let hb = b.spawn();

    let peer = b_url.parse().unwrap();
    a.post(data_frame(proxy)).unwrap();
    let mgr = a.core().flow().unwrap().clone();
    assert!(
        wait_until(|| mgr.available(&peer).is_some(), Duration::from_secs(10)),
        "bring-up grant never arrived over xpt"
    );

    let delivered = flood_with_retry(&a, proxy, COUNT - 1, Duration::from_secs(60));
    assert_eq!(delivered, COUNT - 1, "xpt sender wedged");
    assert!(
        wait_until(
            || received.load(Ordering::Relaxed) >= COUNT,
            Duration::from_secs(60)
        ),
        "frames lost over xpt: {} of {COUNT}",
        received.load(Ordering::Relaxed)
    );
    assert!(
        mgr.counters().credit_failures.get() > 0,
        "flood never exercised xpt backpressure"
    );
    ha.shutdown();
    hb.shutdown();
    let sa = a.core().allocator().stats();
    assert_eq!(sa.live_blocks, 0, "sender pool leak: {sa:?}");
}

/// The `qos` xcl command retunes admission and flow on a remote node
/// over plain I2O frames and reads the shed counters back from a mon
/// scrape — the operator's view of multi-tenant degradation.
#[test]
fn xcl_qos_command_programs_and_reports() {
    let mut cfg = ExecutiveConfig::named("worker");
    cfg.flow = Some(flow_cfg());
    let node = Executive::new(cfg);
    let w_tcp = TcpPt::bind("127.0.0.1:0", TablePool::with_defaults()).unwrap();
    let w_url = w_tcp.addr().to_string();
    node.register_pt("worker.tcp", w_tcp).unwrap();
    let nh = node.spawn();

    let host = xdaq::host::ControlHost::new("ctl");
    host.executive()
        .register_pt(
            "ctl.pt",
            TcpPt::bind("127.0.0.1:0", TablePool::with_defaults()).unwrap(),
        )
        .unwrap();
    host.start();

    let mut interp = xdaq::host::XclInterpreter::new(&host);
    let script = format!(
        "node w {w_url}\n\
         claim w\n\
         qos w class.bulk=0:5 assign.49=bulk flow.window=48\n\
         qos w\n"
    );
    let out = interp.run(&script).unwrap();
    assert!(
        out.log.iter().any(|l| l.contains("qos w: 3 knobs")),
        "{:?}",
        out.log
    );
    // Remote state actually changed: window retuned, class installed.
    assert_eq!(node.core().flow().unwrap().config().window, 48);
    let status = out
        .log
        .iter()
        .find(|l| l.contains("bulk:"))
        .unwrap_or_else(|| panic!("qos status line missing: {:?}", out.log));
    assert!(status.contains("shed=0"), "{status}");

    // Shed some bulk traffic (admission gates route(), so a local
    // post exercises it), then re-read the counters remotely.
    let bulk = Tid::new(49).unwrap();
    let sink_tid = {
        let (sink, _received) = Sink::new(Duration::ZERO);
        node.register("sink", Box::new(sink), &[]).unwrap()
    };
    node.enable_all();
    let mut shed = 0u64;
    for _ in 0..20 {
        match node.post(Message::build_private(sink_tid, bulk, 0x0DAB, XFN_DATA).finish()) {
            Ok(()) => {}
            Err(ExecError::Shed(_)) => shed += 1,
            Err(e) => panic!("{e}"),
        }
    }
    assert_eq!(shed, 15, "burst=5 then shed");
    let out = interp.run("qos w\n").unwrap();
    let status = out
        .log
        .iter()
        .find(|l| l.contains("bulk:"))
        .expect("qos status line");
    assert!(status.contains("shed=15"), "{status}");
    assert!(status.contains("admitted=5"), "{status}");

    // A malformed knob is a visible script error, not a silent no-op.
    let err = interp.run("qos w class.bad=oops\n").unwrap_err();
    assert!(err.message.contains("class"), "{}", err.message);
    host.stop();
    nh.shutdown();
}
