//! Control-plane integration tests: the event builder run entirely
//! from a topology declaration by the `xdaq-ctl` convergence loop,
//! with real child processes over TCP.
//!
//! This binary plays every role. The parent builds a [`Controller`]
//! whose `SelfExec` launcher re-executes the binary with the harness
//! arguments routing it into `child_ctl_node`, which registers the
//! module factories and hands over to `run_managed_node`.
//!
//! * `registry_managed_evb_survives_builder_sigkill` — apply the
//!   declaration through xcl, start a run, SIGKILL one builder
//!   mid-run: the poll loop reaps the corpse, respawns generation 2,
//!   rewires every route touching it (waiting out the peers' alias
//!   evictions), raises the event manager's `evb.rescan`, and the run
//!   completes with zero event loss.
//! * `rolling_drain_restart_loses_no_events` — `drain bu0` mid-run:
//!   the event manager stops assigning to the victim, the drain gate
//!   (`evb.drain_inflight`) reaches zero through the normal data
//!   path, the node is stopped cleanly and respawned; zero loss.

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use xdaq::app::{xfn, ORG_DAQ};
use xdaq::core::listener::UtilOutcome;
use xdaq::core::{Delivery, Dispatcher, I2oListener};
use xdaq::ctl::{control_host, Controller, ControllerConfig, EventKind, ManagedEnv, SelfExec};
use xdaq::evb::{BuilderUnit, EventManager, ReadoutUnit};
use xdaq::host::{ControlHost, XclInterpreter};
use xdaq::i2o::{DeviceClass, Message, Tid, UtilFn};

const N_RU: usize = 2;

/// Filter-side sink that mirrors its counters into the parameter map
/// so the parent asserts end-to-end delivery over ParamsGet alone.
struct Collector {
    ids: HashSet<u64>,
    received: AtomicU64,
}

impl I2oListener for Collector {
    fn class(&self) -> DeviceClass {
        DeviceClass::Application(ORG_DAQ)
    }
    fn on_private(&mut self, _ctx: &mut Dispatcher<'_>, msg: Delivery) {
        if msg.private.map(|p| p.x_function) == Some(xfn::EVENT) {
            let id = u64::from_le_bytes(msg.payload()[0..8].try_into().unwrap());
            self.ids.insert(id);
            self.received.fetch_add(1, Ordering::Relaxed);
        }
    }
    fn on_util(&mut self, ctx: &mut Dispatcher<'_>, f: UtilFn, _msg: &Delivery) -> UtilOutcome {
        if f == UtilFn::ParamsGet {
            ctx.set_param("col.unique", &self.ids.len().to_string());
            ctx.set_param(
                "col.received",
                &self.received.load(Ordering::Relaxed).to_string(),
            );
        }
        UtilOutcome::Default
    }
}

/// Managed-node entry point: the controller re-execs this test binary
/// with `--exact child_ctl_node` plus the `XDAQ_CTL_*` environment.
#[test]
#[ignore]
fn child_ctl_node() {
    if ManagedEnv::from_env().is_none() {
        return;
    }
    xdaq::ctl::run_managed_node(|exec| {
        exec.register_factory(
            "readout",
            Box::new(|_| Box::new(ReadoutUnit::new()) as Box<dyn I2oListener>),
        );
        exec.register_factory(
            "builder",
            Box::new(|_| Box::new(BuilderUnit::new()) as Box<dyn I2oListener>),
        );
        exec.register_factory(
            "evm",
            Box::new(|_| Box::new(EventManager::new()) as Box<dyn I2oListener>),
        );
        exec.register_factory(
            "collector",
            Box::new(|_| {
                Box::new(Collector {
                    ids: HashSet::new(),
                    received: AtomicU64::new(0),
                }) as Box<dyn I2oListener>
            }),
        );
    })
    .expect("managed node runs");
}

/// A 2 RU × 2 BU × manager declaration with a per-test rundir.
fn write_topology(name: &str) -> (String, PathBuf) {
    let base = std::env::temp_dir().join(format!("xdaq-ctl-it-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let mut text = format!(
        "[cluster]\nname = \"{name}\"\nrundir = \"{}\"\n\n\
         [defaults]\nworkers = 1\nsupervision.interval_ms = 50\n\n",
        base.display()
    );
    for i in 0..N_RU {
        text.push_str(&format!(
            "[node.ru{i}]\n[node.ru{i}.modules.readout]\nfactory = \"readout\"\n\
             source_id = {i}\nsources = {N_RU}\nsize = 1024\n\n"
        ));
    }
    for j in 0..2 {
        text.push_str(&format!(
            "[node.bu{j}]\n[node.bu{j}.modules.builder]\nfactory = \"builder\"\n\
             rus = \"ru0,ru1\"\nfilter = \"flt\"\ncredits = 6\ntimeout_ms = 40\n\
             max_retries = 400\n\n"
        ));
    }
    text.push_str(
        "[node.mgr]\n[node.mgr.modules.flt]\nfactory = \"collector\"\n\n\
         [node.mgr.modules.evm]\nfactory = \"evm\"\nreadouts = \"ru0,ru1\"\n\
         bus = \"bu0,bu1\"\nbu_urls = \"@url:bu0@,@url:bu1@\"\nmax_reassign = 5\n\
         watch = \"bu0,bu1\"\nrefresh = \"evb.rescan\"\ndrain = \"evb.drain\"\n\
         drain_gate = \"evb.drain_inflight\"\n\n",
    );
    for i in 0..N_RU {
        text.push_str(&format!(
            "[route.mgr-ru{i}]\non = \"mgr\"\nto = \"ru{i}/readout\"\nalias = \"ru{i}\"\n\n"
        ));
    }
    for j in 0..2 {
        text.push_str(&format!(
            "[route.mgr-bu{j}]\non = \"mgr\"\nto = \"bu{j}/builder\"\nalias = \"bu{j}\"\n\
             supervise = true\n\n"
        ));
        for i in 0..N_RU {
            text.push_str(&format!(
                "[route.bu{j}-ru{i}]\non = \"bu{j}\"\nto = \"ru{i}/readout\"\nalias = \"ru{i}\"\n\n"
            ));
        }
        text.push_str(&format!(
            "[route.bu{j}-flt]\non = \"bu{j}\"\nto = \"mgr/flt\"\nalias = \"flt\"\n\n"
        ));
    }
    let path = base.join("cluster.xtop");
    std::fs::write(&path, text).unwrap();
    (path.to_str().unwrap().to_string(), base)
}

struct Cluster {
    host: std::sync::Arc<ControlHost>,
    ctl: std::sync::Arc<Controller>,
    evm: Tid,
    flt: Tid,
    base: PathBuf,
}

/// Boots the whole cluster from its declaration, via xcl.
fn bring_up(name: &str) -> Cluster {
    let (topo_path, base) = write_topology(name);
    let host = control_host(&format!("ctl-{name}")).unwrap();
    let launcher = SelfExec::new(&[
        "--ignored",
        "--exact",
        "child_ctl_node",
        "--nocapture",
        "--test-threads",
        "1",
    ]);
    let ctl = Controller::new(
        &topo_path,
        host.clone(),
        Box::new(launcher),
        ControllerConfig::default(),
    )
    .unwrap();
    ctl.start();
    let mut xcl = XclInterpreter::new(&host).with_plane(&*ctl);
    let out = xcl.run("apply\nregistry").expect("apply converges");
    assert!(
        out.log[0].contains("converged"),
        "unexpected apply output: {:?}",
        out.log
    );
    let evm = ctl.module_proxy("mgr", "evm").expect("evm loaded");
    let flt = ctl.module_proxy("mgr", "flt").expect("collector loaded");
    Cluster {
        host,
        ctl,
        evm,
        flt,
        base,
    }
}

impl Cluster {
    fn start_run(&self, target: u64) {
        self.host
            .executive()
            .post(
                Message::build_private(self.evm, Tid::HOST, ORG_DAQ, xfn::RUN)
                    .payload(target.to_le_bytes().to_vec())
                    .finish(),
            )
            .unwrap();
    }

    fn param(&self, device: Tid, key: &str) -> String {
        self.host
            .params_get(device)
            .ok()
            .and_then(|m| m.get(key).cloned())
            .unwrap_or_default()
    }

    fn evm_u64(&self, key: &str) -> u64 {
        self.param(self.evm, key).parse().unwrap_or(0)
    }

    fn teardown(self) {
        self.ctl.shutdown();
        drop(self.ctl); // kills the children
        let _ = std::fs::remove_dir_all(&self.base);
    }
}

fn wait_until(mut cond: impl FnMut() -> bool, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    cond()
}

#[test]
fn registry_managed_evb_survives_builder_sigkill() {
    const TARGET: u64 = 2000;
    let cluster = bring_up("kill");
    let events = cluster.ctl.subscribe();
    cluster.start_run(TARGET);

    assert!(
        wait_until(
            || cluster.evm_u64("evb.completed") >= 300,
            Duration::from_secs(60)
        ),
        "run never got going: completed {}",
        cluster.evm_u64("evb.completed")
    );
    cluster.ctl.kill_node("bu0").unwrap();

    let done = wait_until(
        || cluster.param(cluster.evm, "evb.run_done") == "1",
        Duration::from_secs(120),
    );
    assert!(
        done,
        "run stalled after SIGKILL: completed {} of {TARGET} (lost {})",
        cluster.evm_u64("evb.completed"),
        cluster.evm_u64("evb.lost"),
    );
    assert_eq!(cluster.evm_u64("evb.lost"), 0, "events lost");
    assert_eq!(cluster.evm_u64("evb.completed"), TARGET);
    // Every event reached the filter collector (dedup makes this
    // robust to at-least-once redelivery after the reassignments).
    assert!(
        wait_until(
            || cluster
                .param(cluster.flt, "col.unique")
                .parse::<u64>()
                .unwrap_or(0)
                == TARGET,
            Duration::from_secs(10)
        ),
        "collector saw {} of {TARGET}",
        cluster.param(cluster.flt, "col.unique"),
    );
    // Convergence respawned the victim as a new incarnation...
    assert!(
        cluster.ctl.generation("bu0") >= 2,
        "bu0 never respawned (gen {})",
        cluster.ctl.generation("bu0")
    );
    // ...and the registry streamed the full story.
    let kinds: Vec<(String, EventKind)> = events
        .drain()
        .into_iter()
        .filter(|e| e.node == "bu0")
        .map(|e| (e.node, e.kind))
        .collect();
    // (Subscribed after bring-up, so the stream starts at the kill:
    // exited, then the respawn sequence ending in up.)
    let exit_at = kinds
        .iter()
        .position(|(_, k)| *k == EventKind::Exited)
        .unwrap_or_else(|| panic!("no exit event: {kinds:?}"));
    assert!(
        kinds[exit_at..].iter().any(|(_, k)| *k == EventKind::Up),
        "bu0 never converged back: {kinds:?}"
    );
    // The registry agrees the fleet is converged again.
    let status = cluster.ctl.service_registry().status_json();
    assert_eq!(status["converged"], serde_json::json!(true), "{status}");
    cluster.teardown();
}

#[test]
fn rolling_drain_restart_loses_no_events() {
    const TARGET: u64 = 2000;
    let cluster = bring_up("drain");
    cluster.start_run(TARGET);

    assert!(
        wait_until(
            || cluster.evm_u64("evb.completed") >= 300,
            Duration::from_secs(60)
        ),
        "run never got going: completed {}",
        cluster.evm_u64("evb.completed")
    );
    // Rolling restart of bu0 through xcl while the run is hot: the
    // event manager drains it through the normal data path, the
    // controller stops and respawns it, routes restored.
    let mut xcl = XclInterpreter::new(&cluster.host).with_plane(&*cluster.ctl);
    let out = xcl.run("drain bu0").expect("drain succeeds");
    assert!(
        out.log[0].contains("drained and restarted 'bu0'"),
        "{:?}",
        out.log
    );
    assert_eq!(cluster.ctl.generation("bu0"), 2);

    let done = wait_until(
        || cluster.param(cluster.evm, "evb.run_done") == "1",
        Duration::from_secs(120),
    );
    assert!(
        done,
        "run stalled after drain: completed {} of {TARGET} (lost {})",
        cluster.evm_u64("evb.completed"),
        cluster.evm_u64("evb.lost"),
    );
    assert_eq!(cluster.evm_u64("evb.lost"), 0, "events lost");
    assert_eq!(cluster.evm_u64("evb.completed"), TARGET);
    assert!(
        wait_until(
            || cluster
                .param(cluster.flt, "col.unique")
                .parse::<u64>()
                .unwrap_or(0)
                == TARGET,
            Duration::from_secs(10)
        ),
        "collector saw {} of {TARGET}",
        cluster.param(cluster.flt, "col.unique"),
    );
    cluster.teardown();
}

/// Cheap, always-on: the shipped example declaration stays valid and
/// carries the hooks the control plane depends on.
#[test]
fn example_topology_parses_and_validates() {
    let text = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples/evb_cluster.xtop"),
    )
    .unwrap();
    let topo = xdaq::ctl::Topology::parse(&text).unwrap();
    assert_eq!(topo.cluster, "evb");
    assert_eq!(topo.managed().count(), 6);
    let mgr = topo.node("mgr").unwrap();
    let evm = mgr.modules.iter().find(|m| m.instance == "evm").unwrap();
    assert_eq!(evm.watch, vec!["bu0", "bu1"]);
    assert_eq!(evm.refresh.as_deref(), Some("evb.rescan"));
    assert_eq!(evm.drain.as_deref(), Some("evb.drain"));
    assert_eq!(evm.drain_gate.as_deref(), Some("evb.drain_inflight"));
    assert!(xdaq::ctl::Topology::is_templated(evm));
    // Every builder route from the manager is supervised — required
    // for credit reclamation and alias eviction on death.
    for r in topo.routes.iter().filter(|r| r.to_node.starts_with("bu")) {
        if r.on == "mgr" {
            assert!(r.supervise, "route {} must be supervised", r.id);
        }
    }
}
