//! Whole-cluster integration tests: several executives connected by
//! peer transports, configured and controlled by a host — the paper's
//! Peer Operation model end to end.

use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};
use xdaq::app::{xfn, PingState, Pinger, Ponger, ORG_DAQ};
use xdaq::core::{Executive, ExecutiveConfig, PtMode};
use xdaq::host::{ClusterInventory, ControlHost, ModuleSpec, NodeSpec, RouteSpec, XclInterpreter};
use xdaq::i2o::{Message, Tid};
use xdaq::pt::{LoopbackHub, LoopbackPt};

fn wait_until(cond: impl Fn() -> bool, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    cond()
}

/// Builds an executive on a loopback hub under `name`.
fn node_on(hub: &std::sync::Arc<LoopbackHub>, name: &str) -> Executive {
    let exec = Executive::new(ExecutiveConfig::named(name));
    let pt = LoopbackPt::new(hub, name);
    exec.register_pt(&format!("{name}.pt"), pt).unwrap();
    exec
}

#[test]
fn ping_pong_across_two_executives_via_loopback() {
    let hub = LoopbackHub::new();
    let node_a = node_on(&hub, "a");
    let node_b = node_on(&hub, "b");

    // Devices on each side.
    let state = PingState::new();
    let pong_tid = node_b
        .register("pong", Box::new(Ponger::new()), &[])
        .unwrap();
    // A-side proxy for the remote ponger (paper §3.4 proxy TiDs).
    let pong_proxy = node_a.proxy("loop://b", pong_tid, Some("b.pong")).unwrap();
    let ping_tid = node_a
        .register(
            "ping",
            Box::new(Pinger::new(state.clone())),
            &[
                ("peer", &pong_proxy.raw().to_string()),
                ("payload", "256"),
                ("count", "500"),
            ],
        )
        .unwrap();
    node_a.enable_all();
    node_b.enable_all();

    let ha = node_a.spawn();
    let hb = node_b.spawn();
    node_a
        .post(Message::build_private(ping_tid, Tid::HOST, ORG_DAQ, xfn::PING_START).finish())
        .unwrap();
    assert!(
        wait_until(
            || state.done.load(Ordering::SeqCst),
            Duration::from_secs(20)
        ),
        "ping-pong did not finish: {} of 500",
        state.completed.load(Ordering::SeqCst)
    );
    assert_eq!(state.completed.load(Ordering::SeqCst), 500);
    assert_eq!(state.rtts_ns.lock().len(), 500);
    // Both directions crossed the peer transport.
    assert!(node_a.stats().sent_peer >= 500);
    assert!(node_b.stats().sent_peer >= 500);
    ha.shutdown();
    hb.shutdown();
}

#[test]
fn host_controls_remote_node_via_exec_messages() {
    let hub = LoopbackHub::new();
    let node = node_on(&hub, "worker");
    node.register_factory(
        "ponger",
        Box::new(|_params| Box::new(Ponger::new()) as Box<dyn xdaq::core::I2oListener>),
    );
    let nh = node.spawn();

    let host = ControlHost::new("ctl");
    host.executive()
        .register_pt("ctl.pt", LoopbackPt::new(&hub, "ctl"))
        .unwrap();
    host.start();

    let worker = host.connect_node("loop://worker", Some("worker")).unwrap();
    // Status.
    let status = host.status(worker).unwrap();
    assert_eq!(status["node"], "worker");
    // Claim control rights; a mutating command then succeeds.
    host.claim(worker).unwrap();
    let remote_tid = host.load(worker, "ponger", "pong0", &[("k", "v")]).unwrap();
    assert!(remote_tid.is_addressable());
    host.enable(worker).unwrap();
    let lct = host.lct(worker).unwrap();
    assert!(lct.contains("pong0"), "{lct}");
    // Parameter access through a device proxy.
    let dev = host.device_proxy("loop://worker", remote_tid).unwrap();
    host.params_set(dev, &[("rate", "99")]).unwrap();
    let params = host.params_get(dev).unwrap();
    assert_eq!(params["rate"], "99");
    assert_eq!(params["k"], "v", "load-time params visible");
    // Quiesce and destroy.
    host.quiesce(worker).unwrap();
    host.destroy(worker, remote_tid).unwrap();
    let lct = host.lct(worker).unwrap();
    assert!(!lct.contains("pong0"));
    host.release(worker).unwrap();
    host.stop();
    nh.shutdown();
}

#[test]
fn second_host_is_refused_while_claimed() {
    let hub = LoopbackHub::new();
    let node = node_on(&hub, "worker");
    let nh = node.spawn();

    let primary = ControlHost::new("primary");
    primary
        .executive()
        .register_pt("p.pt", LoopbackPt::new(&hub, "primary"))
        .unwrap();
    primary.start();
    let secondary = ControlHost::new("secondary");
    secondary
        .executive()
        .register_pt("s.pt", LoopbackPt::new(&hub, "secondary"))
        .unwrap();
    secondary.start();

    let w1 = primary.connect_node("loop://worker", None).unwrap();
    let w2 = secondary.connect_node("loop://worker", None).unwrap();
    primary.claim(w1).unwrap();
    // Secondary cannot claim or mutate...
    assert!(secondary.claim(w2).is_err());
    assert!(secondary.enable(w2).is_err());
    // ...but read-only status still works (monitoring rights).
    assert_eq!(secondary.status(w2).unwrap()["node"], "worker");
    // After release, the secondary takes over.
    primary.release(w1).unwrap();
    secondary.claim(w2).unwrap();
    secondary.enable(w2).unwrap();
    primary.stop();
    secondary.stop();
    nh.shutdown();
}

#[test]
fn xcl_script_drives_cluster() {
    let hub = LoopbackHub::new();
    let node = node_on(&hub, "ru0");
    node.register_factory(
        "ponger",
        Box::new(|_| Box::new(Ponger::new()) as Box<dyn xdaq::core::I2oListener>),
    );
    let nh = node.spawn();

    let host = ControlHost::new("ctl");
    host.executive()
        .register_pt("ctl.pt", LoopbackPt::new(&hub, "ctl"))
        .unwrap();
    host.start();

    let mut interp = XclInterpreter::new(&host);
    let out = interp
        .run(
            "# bring up one node\n\
             node ru0 loop://ru0\n\
             claim ru0\n\
             load ru0 ponger pong0 depth=4\n\
             enable ru0\n\
             status ru0\n\
             lct ru0\n\
             release ru0\n\
             echo done\n",
        )
        .unwrap();
    assert_eq!(out.log.last().unwrap(), "done");
    assert!(out
        .log
        .iter()
        .any(|l| l.contains("status ru0") && l.contains("node=ru0")));
    assert!(out.handles.contains_key("ru0"));
    assert!(out.handles.contains_key("pong0"));
    host.stop();
    nh.shutdown();
}

#[test]
fn inventory_apply_builds_distributed_pingpong() {
    let hub = LoopbackHub::new();
    // Two worker nodes with factories.
    let state = PingState::new();
    let node_a = node_on(&hub, "na");
    let node_b = node_on(&hub, "nb");
    let st = state.clone();
    node_a.register_factory(
        "pinger",
        Box::new(move |_| Box::new(Pinger::new(st.clone())) as Box<dyn xdaq::core::I2oListener>),
    );
    node_b.register_factory(
        "ponger",
        Box::new(|_| Box::new(Ponger::new()) as Box<dyn xdaq::core::I2oListener>),
    );
    let ha = node_a.spawn();
    let hb = node_b.spawn();

    let host = ControlHost::new("ctl");
    host.executive()
        .register_pt("ctl.pt", LoopbackPt::new(&hub, "ctl"))
        .unwrap();
    host.start();

    let inv = ClusterInventory {
        nodes: vec![
            NodeSpec {
                name: "na".into(),
                url: "loop://na".into(),
                modules: vec![ModuleSpec {
                    factory: "pinger".into(),
                    instance: "ping0".into(),
                    params: [
                        ("payload".to_string(), "128".to_string()),
                        ("count".to_string(), "100".to_string()),
                    ]
                    .into(),
                }],
            },
            NodeSpec {
                name: "nb".into(),
                url: "loop://nb".into(),
                modules: vec![ModuleSpec {
                    factory: "ponger".into(),
                    instance: "pong0".into(),
                    params: Default::default(),
                }],
            },
        ],
        routes: vec![RouteSpec {
            on: "na".into(),
            target_node: "nb".into(),
            target_instance: "pong0".into(),
            set_param: Some(("ping0".into(), "peer".into())),
        }],
    };
    let applied = inv.apply(&host).unwrap();
    let na = applied.node_tids["na"];
    host.enable(na).unwrap();
    host.enable(applied.node_tids["nb"]).unwrap();

    // Kick the pinger through a host-side device proxy.
    let ping_remote = applied.module_tids[&("na".to_string(), "ping0".to_string())];
    let ping_dev = host.device_proxy("loop://na", ping_remote).unwrap();
    host.executive()
        .post(Message::build_private(ping_dev, host.agent_tid(), ORG_DAQ, xfn::PING_START).finish())
        .unwrap();
    assert!(
        wait_until(
            || state.done.load(Ordering::SeqCst),
            Duration::from_secs(20)
        ),
        "distributed run incomplete: {}",
        state.completed.load(Ordering::SeqCst)
    );
    assert_eq!(state.completed.load(Ordering::SeqCst), 100);
    host.stop();
    ha.shutdown();
    hb.shutdown();
}

#[test]
fn three_hop_forwarding_through_intermediate_node() {
    // a -> b (proxy chain): a's proxy routes to b, where the target is
    // itself a proxy to c — multi-hop Peer Operation (paper fig. 4).
    let hub = LoopbackHub::new();
    let a = node_on(&hub, "a");
    let b = node_on(&hub, "b");
    let c = node_on(&hub, "c");

    let sink_state = PingState::new();
    let pong_tid = c.register("pong", Box::new(Ponger::new()), &[]).unwrap();
    // b-side proxy for c's ponger.
    let b_proxy = b.proxy("loop://c", pong_tid, None).unwrap();
    // a-side proxy pointing at *b's proxy*.
    let a_proxy = a.proxy("loop://b", b_proxy, None).unwrap();
    let ping_tid = a
        .register(
            "ping",
            Box::new(Pinger::new(sink_state.clone())),
            &[
                ("peer", &a_proxy.raw().to_string()),
                ("payload", "64"),
                ("count", "50"),
            ],
        )
        .unwrap();
    a.enable_all();
    b.enable_all();
    c.enable_all();
    let ha = a.spawn();
    let hb = b.spawn();
    let hc = c.spawn();
    a.post(Message::build_private(ping_tid, Tid::HOST, ORG_DAQ, xfn::PING_START).finish())
        .unwrap();
    assert!(
        wait_until(
            || sink_state.done.load(Ordering::SeqCst),
            Duration::from_secs(20)
        ),
        "3-hop run incomplete: {}",
        sink_state.completed.load(Ordering::SeqCst)
    );
    assert!(
        b.stats().forwarded >= 50,
        "intermediate forwarded: {}",
        b.stats().forwarded
    );
    ha.shutdown();
    hb.shutdown();
    hc.shutdown();
}

#[test]
fn gm_transport_carries_cluster_traffic() {
    use xdaq::gm::Fabric;
    use xdaq::mempool::TablePool;
    use xdaq::pt::GmPt;

    let fabric = Fabric::new();
    let a = Executive::new(ExecutiveConfig::named("a"));
    let b = Executive::new(ExecutiveConfig::named("b"));
    let pt_a = GmPt::open(
        &fabric,
        1,
        0,
        PtMode::Task,
        TablePool::with_defaults(),
        None,
    )
    .unwrap();
    let pt_b = GmPt::open(
        &fabric,
        2,
        0,
        PtMode::Task,
        TablePool::with_defaults(),
        None,
    )
    .unwrap();
    a.register_pt("a.gm", pt_a).unwrap();
    b.register_pt("b.gm", pt_b).unwrap();

    let state = PingState::new();
    let pong_tid = b.register("pong", Box::new(Ponger::new()), &[]).unwrap();
    let proxy = a.proxy("gm://2:0", pong_tid, None).unwrap();
    let ping_tid = a
        .register(
            "ping",
            Box::new(Pinger::new(state.clone())),
            &[
                ("peer", &proxy.raw().to_string()),
                ("payload", "1024"),
                ("count", "200"),
            ],
        )
        .unwrap();
    a.enable_all();
    b.enable_all();
    let ha = a.spawn();
    let hb = b.spawn();
    a.post(Message::build_private(ping_tid, Tid::HOST, ORG_DAQ, xfn::PING_START).finish())
        .unwrap();
    assert!(
        wait_until(
            || state.done.load(Ordering::SeqCst),
            Duration::from_secs(20)
        ),
        "gm run incomplete: {}",
        state.completed.load(Ordering::SeqCst)
    );
    assert_eq!(state.completed.load(Ordering::SeqCst), 200);
    ha.shutdown();
    hb.shutdown();
}

#[test]
fn tcp_transport_carries_cluster_traffic() {
    use xdaq::mempool::TablePool;
    use xdaq::pt::TcpPt;

    let a = Executive::new(ExecutiveConfig::named("a"));
    let b = Executive::new(ExecutiveConfig::named("b"));
    let pt_a = TcpPt::bind("127.0.0.1:0", TablePool::with_defaults()).unwrap();
    let pt_b = TcpPt::bind("127.0.0.1:0", TablePool::with_defaults()).unwrap();
    let b_url = pt_b.addr().to_string();
    a.register_pt("a.tcp", pt_a).unwrap();
    b.register_pt("b.tcp", pt_b).unwrap();

    let state = PingState::new();
    let pong_tid = b.register("pong", Box::new(Ponger::new()), &[]).unwrap();
    let proxy = a.proxy(&b_url, pong_tid, None).unwrap();
    let ping_tid = a
        .register(
            "ping",
            Box::new(Pinger::new(state.clone())),
            &[
                ("peer", &proxy.raw().to_string()),
                ("payload", "512"),
                ("count", "100"),
            ],
        )
        .unwrap();
    a.enable_all();
    b.enable_all();
    let ha = a.spawn();
    let hb = b.spawn();
    a.post(Message::build_private(ping_tid, Tid::HOST, ORG_DAQ, xfn::PING_START).finish())
        .unwrap();
    assert!(
        wait_until(
            || state.done.load(Ordering::SeqCst),
            Duration::from_secs(30)
        ),
        "tcp run incomplete: {}",
        state.completed.load(Ordering::SeqCst)
    );
    assert_eq!(state.completed.load(Ordering::SeqCst), 100);
    ha.shutdown();
    hb.shutdown();
}

#[test]
fn host_scrapes_monitoring_from_two_executives() {
    let hub = LoopbackHub::new();
    let node_a = node_on(&hub, "ma");
    let node_b = node_on(&hub, "mb");
    // One node also carries a dedicated MonitorAgent device; the other
    // answers through the executive's default utility procedure.
    let mon_tid = node_a
        .register("mon0", Box::new(xdaq::core::MonitorAgent::new()), &[])
        .unwrap();

    // Drive real traffic so the counters have something to show.
    let state = PingState::new();
    let pong_tid = node_b
        .register("pong", Box::new(Ponger::new()), &[])
        .unwrap();
    let pong_proxy = node_a.proxy("loop://mb", pong_tid, None).unwrap();
    let ping_tid = node_a
        .register(
            "ping",
            Box::new(Pinger::new(state.clone())),
            &[
                ("peer", &pong_proxy.raw().to_string()),
                ("payload", "128"),
                ("count", "50"),
            ],
        )
        .unwrap();
    node_a.enable_all();
    node_b.enable_all();
    let ha = node_a.spawn();
    let hb = node_b.spawn();

    let host = ControlHost::new("ctl");
    host.executive()
        .register_pt("ctl.pt", LoopbackPt::new(&hub, "ctl"))
        .unwrap();
    host.start();
    let a = host.connect_node("loop://ma", None).unwrap();
    let b = host.connect_node("loop://mb", None).unwrap();

    // Enable tracing on node a, then run the ping-pong.
    host.trace_set(a, true).unwrap();
    node_a
        .post(Message::build_private(ping_tid, Tid::HOST, ORG_DAQ, xfn::PING_START).finish())
        .unwrap();
    assert!(
        wait_until(
            || state.done.load(Ordering::SeqCst),
            Duration::from_secs(20)
        ),
        "monitored ping-pong incomplete: {}",
        state.completed.load(Ordering::SeqCst)
    );

    // Scrape both executives (TiD 1 default procedure on both sides).
    let snap_a = host.scrape(a).unwrap();
    let snap_b = host.scrape(b).unwrap();
    assert_eq!(snap_a["node"].as_str(), Some("ma"));
    assert_eq!(snap_b["node"].as_str(), Some("mb"));
    for snap in [&snap_a, &snap_b] {
        let c = &snap["metrics"]["counters"];
        assert!(c["exec.dispatched"].as_u64().unwrap() > 0, "{snap}");
        assert!(c["exec.sent_peer"].as_u64().unwrap() >= 50, "{snap}");
        // Per-priority queue gauges exist for all seven levels.
        for p in 0..7 {
            let key = format!("queue.depth.p{p}");
            assert!(
                snap["metrics"]["gauges"][key.as_str()].as_array().is_some(),
                "missing gauge p{p}: {snap}"
            );
        }
        // Pool accounting including the new high-water mark.
        assert!(snap["pool"]["allocs"].as_u64().unwrap() > 0);
        assert!(snap["pool"]["high_water_blocks"].as_u64().unwrap() > 0);
        // The loopback PT reported traffic under the normalized
        // per-scheme metric names.
        let pt = snap["pt"].as_object().unwrap();
        assert!(pt["pt.loop.sent"].as_u64().unwrap() >= 50, "{snap}");
        assert!(pt["pt.loop.recv"].as_u64().unwrap() >= 50, "{snap}");
        assert!(pt["pt.loop.sent_bytes"].as_u64().unwrap() > 0, "{snap}");
        assert_eq!(pt["pt.loop.errors"].as_u64(), Some(0), "{snap}");
    }
    // Tracing was enabled on a: latency histogram and ring filled.
    assert!(
        snap_a["metrics"]["histograms"]["exec.dispatch_latency_ns"]["count"]
            .as_u64()
            .unwrap()
            > 0,
        "{snap_a}"
    );
    assert!(snap_a["trace"]["recorded"].as_u64().unwrap() > 0);
    let dump = host.trace_dump(a).unwrap();
    assert!(!dump["records"].as_array().unwrap().is_empty(), "{dump}");

    // The dedicated MonitorAgent answers the same functions on its TiD.
    let mon_proxy = host.device_proxy("loop://ma", mon_tid).unwrap();
    let via_agent = host.scrape(mon_proxy).unwrap();
    assert_eq!(via_agent["node"].as_str(), Some("ma"));

    // Reset zeroes the counters.
    host.mon_reset(b).unwrap();
    let after = host.scrape(b).unwrap();
    // The scrape itself dispatches a frame or two, so just check it
    // collapsed from the ping-pong volume.
    assert!(
        after["metrics"]["counters"]["exec.sent_peer"]
            .as_u64()
            .unwrap()
            < 10,
        "{after}"
    );

    host.stop();
    ha.shutdown();
    hb.shutdown();
}

#[test]
fn chained_bulk_transfer_across_nodes() {
    use xdaq::core::{ChainCollector, Delivery, Dispatcher, I2oListener};
    use xdaq::i2o::DeviceClass;

    const XFN_BULK: u16 = 0x0042;
    const XFN_KICK: u16 = 0x0041;

    struct Tx {
        payload: Vec<u8>,
    }
    impl I2oListener for Tx {
        fn class(&self) -> DeviceClass {
            DeviceClass::Application(ORG_DAQ)
        }
        fn on_private(&mut self, ctx: &mut Dispatcher<'_>, msg: Delivery) {
            if msg.private.map(|p| p.x_function) == Some(XFN_KICK) {
                let dest = ctx
                    .param("dest")
                    .and_then(|s| s.parse::<u16>().ok())
                    .and_then(|v| Tid::new(v).ok())
                    .expect("dest param");
                // 100 KB payload in 2 KB frames: 50+ frames on the wire.
                ctx.send_chained(dest, ORG_DAQ, XFN_BULK, 99, &self.payload, 2048)
                    .unwrap();
            }
        }
    }
    struct Rx {
        collector: ChainCollector,
        done: std::sync::Arc<parking_lot::Mutex<Option<Vec<u8>>>>,
    }
    impl I2oListener for Rx {
        fn class(&self) -> DeviceClass {
            DeviceClass::Application(ORG_DAQ)
        }
        fn on_private(&mut self, _ctx: &mut Dispatcher<'_>, msg: Delivery) {
            if msg.private.map(|p| p.x_function) == Some(XFN_BULK) {
                if let Some((_, chain_id, data)) = self.collector.push(&msg) {
                    assert_eq!(chain_id, 99);
                    *self.done.lock() = Some(data);
                }
            }
        }
    }

    let hub = LoopbackHub::new();
    let a = node_on(&hub, "a");
    let b = node_on(&hub, "b");
    let done = std::sync::Arc::new(parking_lot::Mutex::new(None));
    let rx_tid = b
        .register(
            "rx",
            Box::new(Rx {
                collector: ChainCollector::new(),
                done: done.clone(),
            }),
            &[],
        )
        .unwrap();
    let proxy = a.proxy("loop://b", rx_tid, None).unwrap();
    let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
    let tx_tid = a
        .register(
            "tx",
            Box::new(Tx {
                payload: payload.clone(),
            }),
            &[("dest", &proxy.raw().to_string())],
        )
        .unwrap();
    a.enable_all();
    b.enable_all();
    let ha = a.spawn();
    let hb = b.spawn();
    a.post(xdaq::i2o::Message::build_private(tx_tid, Tid::HOST, ORG_DAQ, XFN_KICK).finish())
        .unwrap();
    assert!(
        wait_until(|| done.lock().is_some(), Duration::from_secs(20)),
        "bulk transfer incomplete"
    );
    assert_eq!(done.lock().take().unwrap(), payload);
    ha.shutdown();
    hb.shutdown();
}

/// The `evb` xcl command surfaces the event manager's credit/event-id
/// state through ParamsGet and per-builder build rates + latency
/// percentiles through mon scrapes of the defined nodes.
#[test]
fn xcl_evb_command_reports_builder_state() {
    use xdaq::app::{FilterStats, FilterUnit};
    use xdaq::evb::{BuilderUnit, EventManager, ReadoutUnit};

    const EVENTS: u64 = 200;
    let hub = LoopbackHub::new();
    let mgr_node = node_on(&hub, "mgr");
    let flt_node = node_on(&hub, "flt");
    let ru_nodes: Vec<Executive> = (0..2).map(|i| node_on(&hub, &format!("ru{i}"))).collect();
    let bu_node = node_on(&hub, "bu0");

    let f_stats = FilterStats::new();
    let filter_tid = flt_node
        .register("filter0", Box::new(FilterUnit::new(f_stats)), &[])
        .unwrap();
    let ru_tids: Vec<Tid> = ru_nodes
        .iter()
        .enumerate()
        .map(|(i, ru)| {
            ru.register(
                &format!("readout{i}"),
                Box::new(ReadoutUnit::new()),
                &[
                    ("source_id", &i.to_string()),
                    ("sources", "2"),
                    ("size", "512"),
                ],
            )
            .unwrap()
        })
        .collect();
    for (i, tid) in ru_tids.iter().enumerate() {
        bu_node
            .proxy(&format!("loop://ru{i}"), *tid, Some(&format!("ru{i}")))
            .unwrap();
    }
    bu_node
        .proxy("loop://flt", filter_tid, Some("flt"))
        .unwrap();
    let bu_tid = bu_node
        .register(
            "builder0",
            Box::new(BuilderUnit::new()),
            &[("rus", "ru0,ru1"), ("filter", "flt"), ("credits", "4")],
        )
        .unwrap();
    for (i, tid) in ru_tids.iter().enumerate() {
        mgr_node
            .proxy(&format!("loop://ru{i}"), *tid, Some(&format!("ru{i}")))
            .unwrap();
    }
    mgr_node.proxy("loop://bu0", bu_tid, Some("bu0")).unwrap();
    let evm = EventManager::new();
    let m_stats = evm.stats();
    let mgr_tid = mgr_node
        .register(
            "evm",
            Box::new(evm),
            &[("readouts", "ru0,ru1"), ("bus", "bu0")],
        )
        .unwrap();

    let mut handles = Vec::new();
    for exec in std::iter::once(&mgr_node)
        .chain(std::iter::once(&flt_node))
        .chain(ru_nodes.iter())
        .chain(std::iter::once(&bu_node))
    {
        exec.enable_all();
        handles.push(exec.spawn());
    }
    mgr_node
        .post(
            Message::build_private(mgr_tid, Tid::HOST, ORG_DAQ, xdaq::evb::xfn::RUN)
                .payload(EVENTS.to_le_bytes().to_vec())
                .finish(),
        )
        .unwrap();
    assert!(
        wait_until(
            || m_stats.run_done.load(Ordering::SeqCst),
            Duration::from_secs(30)
        ),
        "run incomplete: {}",
        m_stats.completed.load(Ordering::SeqCst)
    );

    // Host side: device proxy for the EVM, node handle for the builder.
    let host = ControlHost::new("ctl");
    host.executive()
        .register_pt("ctl.pt", LoopbackPt::new(&hub, "ctl"))
        .unwrap();
    host.start();
    let mut interp = XclInterpreter::new(&host);
    let bu_handle = host.connect_node("loop://bu0", Some("bu0")).unwrap();
    interp.define_node("bu0", bu_handle);
    let evm_dev = host.device_proxy("loop://mgr", mgr_tid).unwrap();
    interp.define("evm", evm_dev);

    let out = interp.run("evb evm 20\n").unwrap();
    let log = &out.log[0];
    assert!(log.contains("completed=200"), "{log}");
    assert!(log.contains("lost=0"), "{log}");
    assert!(log.contains("done=1"), "{log}");
    assert!(log.contains("bu0: built=200"), "{log}");
    assert!(log.contains("build latency: p50="), "{log}");
    assert!(log.contains("(200 events)"), "{log}");

    host.stop();
    for h in handles {
        h.shutdown();
    }
}

/// Tentpole regression: two chatty devices flooding one executive at
/// equal priority across 4 dispatch workers. Per-device delivery must
/// be strictly in post order — the sharded queues plus the per-TiD
/// claim protocol (work stealing moves whole device FIFOs, never
/// individual frames) guarantee zero reorder and zero loss.
#[test]
fn multi_worker_dispatch_preserves_per_device_ordering() {
    use xdaq::core::{Delivery, Dispatcher, I2oListener};
    use xdaq::i2o::DeviceClass;

    const XFN_SEQ: u16 = 0x0051;
    const PER_DEVICE: u32 = 5_000;

    struct SeqSink {
        seen: std::sync::Arc<parking_lot::Mutex<Vec<u32>>>,
    }
    impl I2oListener for SeqSink {
        fn class(&self) -> DeviceClass {
            DeviceClass::Application(ORG_DAQ)
        }
        fn on_private(&mut self, _ctx: &mut Dispatcher<'_>, msg: Delivery) {
            if msg.private.map(|p| p.x_function) == Some(XFN_SEQ) {
                self.seen.lock().push(msg.header.transaction_context);
            }
        }
    }

    let exec = xdaq::core::Executive::builder("mw").workers(4).build();
    assert_eq!(exec.core().workers(), 4);
    let seen_a = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
    let seen_b = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
    let tid_a = exec
        .register(
            "chatty-a",
            Box::new(SeqSink {
                seen: seen_a.clone(),
            }),
            &[],
        )
        .unwrap();
    let tid_b = exec
        .register(
            "chatty-b",
            Box::new(SeqSink {
                seen: seen_b.clone(),
            }),
            &[],
        )
        .unwrap();
    exec.enable_all();
    let handle = exec.spawn();

    // Interleave the floods so both devices are hot at once and the
    // idle workers have standing FIFOs to steal.
    for seq in 0..PER_DEVICE {
        for tid in [tid_a, tid_b] {
            exec.post(
                Message::build_private(tid, Tid::HOST, ORG_DAQ, XFN_SEQ)
                    .transaction(seq)
                    .finish(),
            )
            .unwrap();
        }
    }
    assert!(
        wait_until(
            || seen_a.lock().len() + seen_b.lock().len() == 2 * PER_DEVICE as usize,
            Duration::from_secs(60)
        ),
        "flood incomplete: a={} b={}",
        seen_a.lock().len(),
        seen_b.lock().len()
    );
    handle.shutdown();

    let expect: Vec<u32> = (0..PER_DEVICE).collect();
    for (name, seen) in [("a", &seen_a), ("b", &seen_b)] {
        let got = seen.lock();
        assert_eq!(got.len(), PER_DEVICE as usize, "device {name}: lost frames");
        assert_eq!(*got, expect, "device {name}: sequence reordered");
    }
}
