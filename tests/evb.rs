//! Multi-process event-builder integration tests: a real N×M mesh with
//! one OS process per node over `shm://` regions.
//!
//! Topology (7 processes): this test binary is the host node running
//! the event manager and the filter collector; it re-executes itself
//! (`std::env::current_exe`) for 4 readout-unit children and 2
//! builder-unit children. Parent↔child control rides per-child
//! regions; fragment traffic crosses over dedicated RU↔BU regions —
//! the n×m crossing channels of paper footnote 1.
//!
//! * `chaotic_mesh_builds_every_event` — the readout children wrap
//!   their transport in a `ChaosPt` with a fixed-seed 10% drop plan:
//!   fragments vanish silently, the builders' timeout re-pull recovers
//!   them, and the run completes with zero event loss.
//! * `killed_builder_is_reclaimed_and_survivors_finish` — one builder
//!   child is SIGKILLed mid-run; the shm region reports the death, the
//!   executive's supervisor forces the link Down, and the event
//!   manager (fault listener) reclaims the dead builder's credits and
//!   reassigns its in-flight events. The readout units still hold
//!   those fragments (cleared only on `CLEAR`), so the surviving
//!   builder rebuilds them: zero loss.

use parking_lot::Mutex;
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xdaq::app::{xfn, ORG_DAQ};
use xdaq::core::pta::PtMode;
use xdaq::core::{
    Delivery, Dispatcher, Executive, ExecutiveConfig, I2oListener, SupervisionConfig,
};
use xdaq::evb::{BuilderUnit, EventManager, EvmStats, ReadoutUnit};
use xdaq::i2o::{DeviceClass, Message, Tid};
use xdaq::pt::{ChaosPt, FaultPlan};
use xdaq::shm::{ShmConfig, ShmLink, ShmPt};

const N_RU: usize = 4;
const N_BU: usize = 2;
const FRAGMENT_SIZE: u32 = 1024;

fn cfg() -> ShmConfig {
    ShmConfig {
        block_size: 4096,
        nblocks: 256,
        ring_capacity: 512,
    }
}

fn base_dir(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("xdaq-evb-it-{name}-{}", std::process::id()))
}

/// The 7-process mesh tiers (chaos drops, builder SIGKILL) run only
/// when the environment opts in with `XDAQ_TEST_HEAVY=1` — CI sets it;
/// a plain `cargo test` stays fast and deterministic.
fn heavy_enabled() -> bool {
    std::env::var("XDAQ_TEST_HEAVY")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn spawn_child(test_fn: &str, base: &Path, idx: usize, chaos: bool) -> Child {
    let mut cmd = Command::new(std::env::current_exe().unwrap());
    cmd.args([
        "--ignored",
        "--exact",
        test_fn,
        "--nocapture",
        "--test-threads",
        "1",
    ])
    .env("XDAQ_EVB_BASE", base)
    .env("XDAQ_EVB_IDX", idx.to_string())
    .stdout(Stdio::null())
    .stderr(Stdio::null());
    if chaos {
        cmd.env("XDAQ_EVB_CHAOS", "1");
    }
    cmd.spawn().expect("spawn child test process")
}

/// Attaches to a region the peer may not have created yet.
fn attach_retry(pt: &ShmPt, path: &Path) -> Arc<ShmLink> {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if path.exists() {
            if let Ok(link) = pt.attach_link(path) {
                return link;
            }
        }
        assert!(
            Instant::now() < deadline,
            "region {} never appeared",
            path.display()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Publishes a TiD for the other processes (write + rename: readers
/// never observe a half-written file).
fn write_tid(base: &Path, name: &str, tid: Tid) {
    let tmp = base.join(format!(".{name}.tid.tmp"));
    std::fs::write(&tmp, tid.raw().to_string()).unwrap();
    std::fs::rename(&tmp, base.join(format!("{name}.tid"))).unwrap();
}

fn read_tid(base: &Path, name: &str) -> Tid {
    let path = base.join(format!("{name}.tid"));
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(s) = std::fs::read_to_string(&path) {
            if let Ok(raw) = s.trim().parse::<u16>() {
                return Tid::new(raw).unwrap();
            }
        }
        assert!(
            Instant::now() < deadline,
            "tid file {} never appeared",
            path.display()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The filter-side collector: counts EVENT frames and dedups event
/// ids (reassignment after a builder death makes delivery
/// at-least-once; completion accounting at the EVM is exactly-once).
struct Collector {
    ids: Arc<Mutex<HashSet<u64>>>,
    received: Arc<AtomicU64>,
}

impl I2oListener for Collector {
    fn class(&self) -> DeviceClass {
        DeviceClass::Application(ORG_DAQ)
    }
    fn on_private(&mut self, _ctx: &mut Dispatcher<'_>, msg: Delivery) {
        if msg.private.map(|p| p.x_function) == Some(xfn::EVENT) {
            let id = u64::from_le_bytes(msg.payload()[0..8].try_into().unwrap());
            self.ids.lock().insert(id);
            self.received.fetch_add(1, Ordering::SeqCst);
        }
    }
}

struct Host {
    exec: Executive,
    evm_tid: Tid,
    evm: Arc<EvmStats>,
    ids: Arc<Mutex<HashSet<u64>>>,
    children: Vec<Child>,
    base: PathBuf,
    bu_children: Vec<Child>,
}

/// Builds the whole 7-process mesh and returns once every child has
/// published its TiD and all proxies are wired.
fn build_mesh(name: &str, chaos: bool, ru_child: &str, bu_child: &str) -> Host {
    let base = base_dir(name);
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();

    let shm = ShmPt::new(PtMode::Polling);
    let mut ru_urls = Vec::new();
    for i in 0..N_RU {
        let link = shm
            .create_link(&base.join(format!("p-ru{i}")), cfg())
            .unwrap();
        ru_urls.push(link.peer_addr().to_string());
    }
    let mut bu_urls = Vec::new();
    for j in 0..N_BU {
        let link = shm
            .create_link(&base.join(format!("p-bu{j}")), cfg())
            .unwrap();
        bu_urls.push(link.peer_addr().to_string());
    }

    let mut children = Vec::new();
    for i in 0..N_RU {
        children.push(spawn_child(ru_child, &base, i, chaos));
    }
    let mut bu_children = Vec::new();
    for j in 0..N_BU {
        bu_children.push(spawn_child(bu_child, &base, j, false));
    }

    let mut ecfg = ExecutiveConfig::named("host");
    ecfg.supervision = Some(SupervisionConfig {
        interval: Duration::from_millis(50),
        suspect_after: 3,
        down_after: 6,
    });
    let exec = Executive::new(ecfg);
    exec.register_pt("host.shm", shm).unwrap();

    let ids = Arc::new(Mutex::new(HashSet::new()));
    let received = Arc::new(AtomicU64::new(0));
    let flt_tid = exec
        .register(
            "flt",
            Box::new(Collector {
                ids: ids.clone(),
                received,
            }),
            &[],
        )
        .unwrap();
    write_tid(&base, "flt", flt_tid);

    // Wire proxies once the children report in.
    let mut ru_names = Vec::new();
    for (i, url) in ru_urls.iter().enumerate() {
        let tid = read_tid(&base, &format!("ru{i}"));
        let alias = format!("ru{i}");
        exec.proxy(url, tid, Some(&alias)).unwrap();
        ru_names.push(alias);
    }
    let mut bu_names = Vec::new();
    for (j, url) in bu_urls.iter().enumerate() {
        let tid = read_tid(&base, &format!("bu{j}"));
        let alias = format!("bu{j}");
        exec.proxy(url, tid, Some(&alias)).unwrap();
        exec.supervise(url).unwrap();
        bu_names.push(alias);
    }

    let evm = EventManager::new();
    let stats = evm.stats();
    let evm_tid = exec
        .register(
            "evm",
            Box::new(evm),
            &[
                ("readouts", &ru_names.join(",")),
                ("bus", &bu_names.join(",")),
                ("bu_urls", &bu_urls.join(",")),
                ("max_reassign", "5"),
            ],
        )
        .unwrap();
    exec.enable_all();

    Host {
        exec,
        evm_tid,
        evm: stats,
        ids,
        children,
        base,
        bu_children,
    }
}

impl Host {
    fn start_run(&self, target: u64) {
        self.exec
            .post(
                Message::build_private(self.evm_tid, Tid::HOST, ORG_DAQ, xfn::RUN)
                    .payload(target.to_le_bytes().to_vec())
                    .finish(),
            )
            .unwrap();
    }

    fn teardown(mut self) {
        for c in self.children.iter_mut().chain(self.bu_children.iter_mut()) {
            let _ = c.kill();
            let _ = c.wait();
        }
        let _ = std::fs::remove_dir_all(&self.base);
    }
}

fn wait_until(cond: impl Fn() -> bool, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

#[test]
fn chaotic_mesh_builds_every_event() {
    if !xdaq::shm::sys::supported() || !heavy_enabled() {
        return;
    }
    const TARGET: u64 = 400;
    let host = build_mesh("chaos", true, "child_evb_ru", "child_evb_bu");
    let handle = host.exec.spawn();
    host.start_run(TARGET);
    let done = wait_until(
        || host.evm.run_done.load(Ordering::SeqCst),
        Duration::from_secs(120),
    );
    assert!(
        done,
        "run stalled under chaos: completed {} of {TARGET} (lost {})",
        host.evm.completed.load(Ordering::SeqCst),
        host.evm.lost.load(Ordering::SeqCst),
    );
    assert_eq!(host.evm.lost.load(Ordering::SeqCst), 0, "events lost");
    assert_eq!(host.evm.completed.load(Ordering::SeqCst), TARGET);
    // Credits + re-pull turned a 10%-drop fabric into zero loss; every
    // event reached the filter (dedup: delivery is at-least-once).
    assert!(wait_until(
        || host.ids.lock().len() as u64 == TARGET,
        Duration::from_secs(10)
    ));
    handle.shutdown();
    host.teardown();
}

#[test]
fn killed_builder_is_reclaimed_and_survivors_finish() {
    if !xdaq::shm::sys::supported() || !heavy_enabled() {
        return;
    }
    const TARGET: u64 = 3000;
    let mut host = build_mesh("kill", false, "child_evb_ru", "child_evb_bu");
    let handle = host.exec.spawn();
    host.start_run(TARGET);

    // Let the run get going, then murder builder 0.
    assert!(
        wait_until(
            || host.evm.completed.load(Ordering::SeqCst) >= 300,
            Duration::from_secs(60)
        ),
        "run never got going: {}",
        host.evm.completed.load(Ordering::SeqCst)
    );
    host.bu_children[0].kill().unwrap();
    host.bu_children[0].wait().unwrap();

    let done = wait_until(
        || host.evm.run_done.load(Ordering::SeqCst),
        Duration::from_secs(120),
    );
    assert!(
        done,
        "survivors stalled: completed {} of {TARGET} (reassigned {}, lost {})",
        host.evm.completed.load(Ordering::SeqCst),
        host.evm.reassigned.load(Ordering::SeqCst),
        host.evm.lost.load(Ordering::SeqCst),
    );
    assert_eq!(host.evm.lost.load(Ordering::SeqCst), 0, "events lost");
    assert_eq!(host.evm.completed.load(Ordering::SeqCst), TARGET);
    assert_eq!(host.ids.lock().len() as u64, TARGET);
    // The EVM saw the death and reclaimed the builder.
    let snap = host.exec.core().monitors().registry().snapshot();
    assert!(
        snap["counters"]["evb.evm.bu_down"].as_u64().unwrap() >= 1,
        "builder death never reached the EVM: {snap}"
    );
    handle.shutdown();
    host.teardown();
}

// ───────────────────────── child processes ──────────────────────────

/// Readout-unit child: attaches the parent control region, creates the
/// crossing regions toward every builder, and serves fragments until
/// killed. With `XDAQ_EVB_CHAOS` set, the transport drops 10% of
/// outgoing fragments (fixed seed per unit).
#[test]
#[ignore]
fn child_evb_ru() {
    let Ok(base) = std::env::var("XDAQ_EVB_BASE") else {
        return;
    };
    let base = PathBuf::from(base);
    let i: usize = std::env::var("XDAQ_EVB_IDX").unwrap().parse().unwrap();
    let chaos = std::env::var("XDAQ_EVB_CHAOS").is_ok();

    let shm = ShmPt::new(PtMode::Polling);
    attach_retry(&shm, &base.join(format!("p-ru{i}")));
    for j in 0..N_BU {
        shm.create_link(&base.join(format!("x-ru{i}-bu{j}")), cfg())
            .unwrap();
    }
    let exec = Executive::new(ExecutiveConfig::named(&format!("ru{i}")));
    if chaos {
        let plan = FaultPlan {
            drop_per_mille: 100,
            ..FaultPlan::default()
        };
        exec.register_pt("pt", ChaosPt::wrap(shm, 0xDA0 + i as u64, plan))
            .unwrap();
    } else {
        exec.register_pt("pt", shm).unwrap();
    }
    let tid = exec
        .register(
            "readout",
            Box::new(ReadoutUnit::new()),
            &[
                ("source_id", &i.to_string()),
                ("sources", &N_RU.to_string()),
                ("size", &FRAGMENT_SIZE.to_string()),
            ],
        )
        .unwrap();
    exec.enable_all();
    let _h = exec.spawn();
    write_tid(&base, &format!("ru{i}"), tid);
    std::thread::sleep(Duration::from_secs(600)); // killed by the parent
}

/// Builder-unit child: attaches the parent and crossing regions, wires
/// proxies for every readout and the filter, and builds events until
/// killed.
#[test]
#[ignore]
fn child_evb_bu() {
    let Ok(base) = std::env::var("XDAQ_EVB_BASE") else {
        return;
    };
    let base = PathBuf::from(base);
    let j: usize = std::env::var("XDAQ_EVB_IDX").unwrap().parse().unwrap();

    let shm = ShmPt::new(PtMode::Polling);
    let plink = attach_retry(&shm, &base.join(format!("p-bu{j}")));
    let parent_url = plink.peer_addr().to_string();
    let ru_links: Vec<String> = (0..N_RU)
        .map(|i| {
            attach_retry(&shm, &base.join(format!("x-ru{i}-bu{j}")))
                .peer_addr()
                .to_string()
        })
        .collect();

    let exec = Executive::new(ExecutiveConfig::named(&format!("bu{j}")));
    exec.register_pt("pt", shm).unwrap();
    let flt_tid = read_tid(&base, "flt");
    exec.proxy(&parent_url, flt_tid, Some("flt")).unwrap();
    let mut ru_names = Vec::new();
    for (i, url) in ru_links.iter().enumerate() {
        let ru_tid = read_tid(&base, &format!("ru{i}"));
        let alias = format!("ru{i}");
        exec.proxy(url, ru_tid, Some(&alias)).unwrap();
        ru_names.push(alias);
    }
    let tid = exec
        .register(
            "builder",
            Box::new(BuilderUnit::new()),
            &[
                ("rus", &ru_names.join(",")),
                ("filter", "flt"),
                ("credits", "6"),
                ("timeout_ms", "40"),
                ("max_retries", "400"),
            ],
        )
        .unwrap();
    exec.enable_all();
    let _h = exec.spawn();
    write_tid(&base, &format!("bu{j}"), tid);
    std::thread::sleep(Duration::from_secs(600)); // killed by the parent
}
