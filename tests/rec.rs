//! Integration tests for `xdaq-rec`: durable zero-copy recording,
//! deterministic replay, and crash recovery.
//!
//! The crash test re-executes this test binary (`std::env::current_exe`)
//! with `--ignored --exact <child fn>` to get a genuinely separate
//! recorder process, then SIGKILLs it mid-write and asserts the store
//! recovers to a dense, CRC-verified prefix of complete records.

use std::io::IoSlice;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};
use xdaq::app::{xfn, FilterStats, FilterUnit, ORG_DAQ};
use xdaq::core::{Executive, ExecutiveConfig, RetryPolicy};
use xdaq::i2o::{Message, Tid, UtilFn};
use xdaq::mempool::{FrameAllocator, TablePool};
use xdaq::pt::{ChaosPt, FaultPlan, LoopbackHub, LoopbackPt};
use xdaq::rec::{recover, scan, RecConfig, RecReader, RecWriter, Recorder, ReplayPt};

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("xdaq-rec-it-{name}-{}", std::process::id()))
}

/// The multi-process SIGKILL crash tier runs only when the environment
/// opts in with `XDAQ_TEST_HEAVY=1` — CI sets it; a plain `cargo test`
/// stays fast and deterministic.
fn heavy_enabled() -> bool {
    std::env::var("XDAQ_TEST_HEAVY")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn wait_until(cond: impl Fn() -> bool, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    cond()
}

/// A built-event frame as the filter expects it:
/// `[event_id u64][size u64]`.
fn event_msg(target: Tid, event_id: u64) -> Message {
    let mut p = Vec::with_capacity(16);
    p.extend_from_slice(&event_id.to_le_bytes());
    p.extend_from_slice(&64u64.to_le_bytes());
    Message::build_private(target, Tid::HOST, ORG_DAQ, xfn::EVENT)
        .payload(p)
        .finish()
}

/// ≥10k multi-frame events round-trip byte-identically through the
/// store, and every gather iovec aliases the pool block it came from —
/// the persistence path never copies payload bytes.
#[test]
fn ten_thousand_chained_events_round_trip_byte_identical() {
    if !xdaq::rec::sys::supported() {
        return;
    }
    const EVENTS: usize = 10_000;
    let dir = tmp("roundtrip");
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = RecConfig::new(&dir);
    cfg.segment_bytes = 4 << 20; // force several rotations
    let mut w = RecWriter::create(cfg).unwrap();
    let pool = TablePool::with_defaults();

    let mut originals: Vec<Vec<u8>> = Vec::with_capacity(EVENTS);
    for e in 0..EVENTS {
        let nframes = 2 + e % 3; // 2..=4 frames per event
        let mut frames = Vec::with_capacity(nframes);
        for f in 0..nframes {
            let len = 64 + (e * 7 + f * 131) % 900;
            let mut buf = pool.alloc(len).unwrap();
            for (i, b) in buf.iter_mut().enumerate() {
                *b = (e + f * 31 + i) as u8;
            }
            frames.push(buf);
        }
        let parts: Vec<IoSlice<'_>> = frames.iter().map(|fr| fr.io_slice()).collect();
        for (slice, fr) in parts.iter().zip(&frames) {
            assert_eq!(
                slice.as_ptr(),
                fr.as_ptr(),
                "iovec must alias the pool block, not a copy"
            );
            assert_eq!(slice.len(), fr.len());
        }
        w.append(&parts).unwrap();
        let mut whole = Vec::new();
        for fr in &frames {
            whole.extend_from_slice(&fr[..]);
        }
        originals.push(whole);
    }
    w.sync().unwrap();
    assert!(w.segments_started() > 1, "rotation must have occurred");
    drop(w);

    let mut r = RecReader::open(&dir).unwrap();
    for (e, want) in originals.iter().enumerate() {
        let got = r.next().unwrap_or_else(|| panic!("record {e} missing"));
        assert_eq!(&got, want, "record {e} not byte-identical");
    }
    assert!(r.next().is_none(), "no phantom records");
    assert!(r.torn().is_none(), "store must end cleanly");
    let report = scan(&dir).unwrap();
    assert_eq!(report.records, EVENTS as u64);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Record a run through a Recorder tap, then replay the store into a
/// fresh node: the filter's hash-based accept decisions reproduce
/// exactly.
#[test]
fn executive_record_then_replay_reproduces_filter_decisions() {
    if !xdaq::rec::sys::supported() {
        return;
    }
    const N: u64 = 500;
    let dir = tmp("exec");
    let _ = std::fs::remove_dir_all(&dir);

    // Phase 1: live run with the recorder tapping the event stream.
    let a = Executive::new(ExecutiveConfig::named("recnode"));
    let stats1 = FilterStats::new();
    let f1 = a
        .register(
            "filter0",
            Box::new(FilterUnit::new(stats1.clone())),
            &[("accept_percent", "40")],
        )
        .unwrap();
    let rec = a
        .register(
            "rec0",
            Box::new(Recorder::new()),
            &[
                ("dir", &dir.to_string_lossy()),
                ("forward", &f1.raw().to_string()),
            ],
        )
        .unwrap();
    a.enable_all();
    let ha = a.spawn();
    for e in 0..N {
        a.post(event_msg(rec, e)).unwrap();
    }
    assert!(
        wait_until(
            || stats1.received.load(Ordering::SeqCst) == N,
            Duration::from_secs(20)
        ),
        "live run incomplete: {}",
        stats1.received.load(Ordering::SeqCst)
    );
    // Exercise the runtime durability knob (`rec.sync=1` via ParamsSet).
    a.post(
        Message::util(rec, Tid::HOST, UtilFn::ParamsSet)
            .payload(xdaq::core::config::kv(&[("rec.sync", "1")]))
            .finish(),
    )
    .unwrap();
    std::thread::sleep(Duration::from_millis(100));
    ha.shutdown();
    assert_eq!(scan(&dir).unwrap().records, N);

    // Phase 2: replay into a brand-new filter node.
    let b = Executive::new(ExecutiveConfig::named("replaynode"));
    let stats2 = FilterStats::new();
    let f2 = b
        .register(
            "filter1",
            Box::new(FilterUnit::new(stats2.clone())),
            &[("accept_percent", "40")],
        )
        .unwrap();
    let replay = Arc::new(ReplayPt::new(&dir).retarget(f2));
    b.register_pt("replay0", replay.clone()).unwrap();
    b.enable_all();
    let hb = b.spawn();
    assert!(
        wait_until(
            || replay.is_done() && stats2.received.load(Ordering::SeqCst) >= N,
            Duration::from_secs(20)
        ),
        "replay incomplete: injected={} received={}",
        replay.injected(),
        stats2.received.load(Ordering::SeqCst)
    );
    hb.shutdown();

    assert_eq!(replay.injected(), N);
    assert_eq!(stats2.received.load(Ordering::SeqCst), N);
    assert_eq!(
        stats2.accepted.load(Ordering::SeqCst),
        stats1.accepted.load(Ordering::SeqCst),
        "hash-based accept decisions must reproduce"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The recorder composes with fault injection: events reach it over a
/// ChaosPt link (fixed seed, ~30% send failures + retry), the store
/// still captures every event exactly once, and replay reproduces the
/// run.
#[test]
fn recording_over_a_chaotic_link_is_lossless_and_replayable() {
    if !xdaq::rec::sys::supported() {
        return;
    }
    const N: u64 = 300;
    let dir = tmp("chaos");
    let _ = std::fs::remove_dir_all(&dir);

    let hub = LoopbackHub::new();
    let mut cfg = ExecutiveConfig::named("src");
    cfg.retry = RetryPolicy {
        max_attempts: 10,
        base_backoff: Duration::from_micros(100),
        max_backoff: Duration::from_millis(2),
        deadline: Some(Duration::from_secs(5)),
    };
    let a = Executive::new(cfg);
    a.register_pt(
        "src.chaos",
        ChaosPt::wrap(
            LoopbackPt::new(&hub, "src"),
            0xC0FFEE,
            FaultPlan::failing(300),
        ),
    )
    .unwrap();
    let b = Executive::new(ExecutiveConfig::named("sink"));
    b.register_pt("sink.loop", LoopbackPt::new(&hub, "sink"))
        .unwrap();

    let stats1 = FilterStats::new();
    let f1 = b
        .register(
            "filter0",
            Box::new(FilterUnit::new(stats1.clone())),
            &[("accept_percent", "40")],
        )
        .unwrap();
    let rec = b
        .register(
            "rec0",
            Box::new(Recorder::new()),
            &[
                ("dir", &dir.to_string_lossy()),
                ("forward", &f1.raw().to_string()),
            ],
        )
        .unwrap();
    let rec_proxy = a.proxy("loop://sink", rec, None).unwrap();

    a.enable_all();
    b.enable_all();
    let ha = a.spawn();
    let hb = b.spawn();
    for e in 0..N {
        a.post(event_msg(rec_proxy, e)).unwrap();
    }
    assert!(
        wait_until(
            || stats1.received.load(Ordering::SeqCst) == N,
            Duration::from_secs(30)
        ),
        "chaotic run incomplete: {}",
        stats1.received.load(Ordering::SeqCst)
    );
    b.post(
        Message::util(rec, Tid::HOST, UtilFn::ParamsSet)
            .payload(xdaq::core::config::kv(&[("rec.sync", "1")]))
            .finish(),
    )
    .unwrap();
    std::thread::sleep(Duration::from_millis(100));
    ha.shutdown();
    hb.shutdown();
    assert_eq!(scan(&dir).unwrap().records, N, "exactly-once capture");

    // Replay reproduces the chaotic run's accept decisions.
    let c = Executive::new(ExecutiveConfig::named("replaynode"));
    let stats2 = FilterStats::new();
    let f2 = c
        .register(
            "filter1",
            Box::new(FilterUnit::new(stats2.clone())),
            &[("accept_percent", "40")],
        )
        .unwrap();
    let replay = Arc::new(ReplayPt::new(&dir).retarget(f2));
    c.register_pt("replay0", replay.clone()).unwrap();
    c.enable_all();
    let hc = c.spawn();
    assert!(
        wait_until(
            || replay.is_done() && stats2.received.load(Ordering::SeqCst) >= N,
            Duration::from_secs(20)
        ),
        "replay incomplete"
    );
    hc.shutdown();
    assert_eq!(stats2.received.load(Ordering::SeqCst), N);
    assert_eq!(
        stats2.accepted.load(Ordering::SeqCst),
        stats1.accepted.load(Ordering::SeqCst)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn spawn_child(test_fn: &str, dir: &std::path::Path) -> Child {
    Command::new(std::env::current_exe().unwrap())
        .args([
            "--ignored",
            "--exact",
            test_fn,
            "--nocapture",
            "--test-threads",
            "1",
        ])
        .env("XDAQ_REC_DIR", dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn child recorder process")
}

/// SIGKILL a recorder process mid-write: recovery must keep every
/// complete record (a dense prefix, each CRC-verified and content-
/// checked) and truncate the torn tail so the store scans clean.
#[test]
fn sigkilled_recorder_leaves_a_recoverable_store() {
    if !xdaq::rec::sys::supported() || !heavy_enabled() {
        return;
    }
    let dir = tmp("crash");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let mut child = spawn_child("child_append_forever", &dir);

    // Let the child build up a healthy store before pulling the plug.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        assert!(Instant::now() < deadline, "child never wrote records");
        if let Ok(report) = scan(&dir) {
            if report.records >= 200 {
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().unwrap(); // SIGKILL: no Drop, no final sync
    child.wait().unwrap();

    let before = scan(&dir).unwrap();
    let after = recover(&dir).unwrap();
    assert_eq!(
        after.records, before.records,
        "recovery must keep every complete record"
    );
    let clean = scan(&dir).unwrap();
    assert!(
        clean.torn.is_none(),
        "store must scan clean after recovery: {:?}",
        clean.torn
    );
    assert_eq!(clean.records, after.records);

    // Every survivor is complete, in sequence, and byte-exact.
    let mut r = RecReader::open(&dir).unwrap();
    let mut expect = 0u64;
    while let Some(payload) = r.next() {
        assert!(payload.len() >= 8, "runt record {expect}");
        let seq = u64::from_le_bytes(payload[..8].try_into().unwrap());
        assert_eq!(seq, expect, "records must survive as a dense prefix");
        for (i, b) in payload[8..].iter().enumerate() {
            assert_eq!(*b, (seq as usize + i) as u8, "record {seq} corrupt at {i}");
        }
        expect += 1;
    }
    assert_eq!(expect, clean.records);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Child side of the crash test: append recognizable records forever
/// (small segments, frequent rotation) until killed.
#[test]
#[ignore]
fn child_append_forever() {
    let Ok(dir) = std::env::var("XDAQ_REC_DIR") else {
        return;
    };
    let mut cfg = RecConfig::new(&dir);
    cfg.segment_bytes = 1 << 20;
    cfg.fsync_bytes = 64 << 10;
    let mut w = RecWriter::create(cfg).unwrap();
    let mut seq = 0u64;
    loop {
        let len = 100 + (seq as usize * 37) % 4000;
        let mut payload = vec![0u8; 8 + len];
        payload[..8].copy_from_slice(&seq.to_le_bytes());
        for (i, b) in payload[8..].iter_mut().enumerate() {
            *b = (seq as usize + i) as u8;
        }
        w.append(&[IoSlice::new(&payload)]).unwrap();
        let _ = w.maybe_sync();
        seq += 1;
    }
}
