//! Multi-process tests for the `shm://` peer transport.
//!
//! Each test re-executes this test binary (`std::env::current_exe`)
//! with `--ignored --exact <child fn>` to get a genuinely separate
//! process on the other side of the region: the echo test pushes ≥10k
//! frames (a third of them chained across multiple blocks) through a
//! child and back with zero loss; the kill test SIGKILLs the child
//! mid-session and asserts the transport reports the peer so the link
//! supervisor marks it Down.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use xdaq_core::pta::{PeerAddr, PeerTransport, PtMode, Pta};
use xdaq_core::supervisor::{LinkState, LinkSupervisor, SupervisionConfig};
use xdaq_mempool::FrameAllocator;
use xdaq_shm::{ShmConfig, ShmPt};

const COUNT: usize = 10_000;
/// Every CHAIN_EVERY-th frame is oversize: 2.5 blocks → 3 descriptors.
const CHAIN_EVERY: usize = 3;
const SMALL_LEN: usize = 512;
const CHAINED_LEN: usize = 10_000;

fn cfg() -> ShmConfig {
    ShmConfig {
        block_size: 4096,
        nblocks: 256,
        ring_capacity: 512,
    }
}

fn frame_len(seq: usize) -> usize {
    if seq.is_multiple_of(CHAIN_EVERY) {
        CHAINED_LEN
    } else {
        SMALL_LEN
    }
}

/// Payload layout: `[marker u32][tid u32][seq u32]...fill`.
fn fill_frame(buf: &mut [u8], seq: u32) {
    buf[0..4].copy_from_slice(b"XECO");
    buf[4..8].copy_from_slice(&0u32.to_le_bytes());
    buf[8..12].copy_from_slice(&seq.to_le_bytes());
    for (i, b) in buf[12..].iter_mut().enumerate() {
        *b = (seq as usize + i) as u8;
    }
}

fn spawn_child(test_fn: &str, region: &std::path::Path) -> Child {
    Command::new(std::env::current_exe().unwrap())
        .args([
            "--ignored",
            "--exact",
            test_fn,
            "--nocapture",
            "--test-threads",
            "1",
        ])
        .env("XDAQ_SHM_REGION", region)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn child test process")
}

fn region_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("xdaq-shm-it-{name}-{}", std::process::id()))
}

/// Heavy multi-process tiers (10k-frame echo, SIGKILL chaos) run only
/// when the environment opts in with `XDAQ_TEST_HEAVY=1` — CI sets it;
/// a plain `cargo test` stays fast and deterministic.
fn heavy_enabled() -> bool {
    std::env::var("XDAQ_TEST_HEAVY")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn wait_for_peer(pt: &ShmPt, peer: &PeerAddr) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while !pt.link_for(peer).unwrap().peer_attached() {
        assert!(Instant::now() < deadline, "child never attached");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn ten_thousand_chained_frames_echo_with_zero_loss() {
    if !xdaq_shm::sys::supported() || !heavy_enabled() {
        return;
    }
    let path = region_path("echo");
    let pt = ShmPt::new(PtMode::Polling);
    let link = pt.create_link(&path, cfg()).unwrap();
    let peer = link.peer_addr().clone();
    let mut child = spawn_child("child_echo_main", &path);
    wait_for_peer(&pt, &peer);

    let pool = link.pool().clone();
    let mut seen = vec![false; COUNT];
    let mut received = 0usize;
    let mut next = 0usize;
    let mut inflight = 0usize;
    let deadline = Instant::now() + Duration::from_secs(120);
    while received < COUNT {
        assert!(
            Instant::now() < deadline,
            "echo stalled: sent {next}, received {received}"
        );
        // Keep a bounded window in flight so rings/pool never deadlock.
        while next < COUNT && inflight < 64 {
            let len = frame_len(next);
            // Pool frames exercise the zero-copy path; oversize ones
            // are heap frames that chain across blocks on send.
            let mut frame = if len > 4096 {
                xdaq_mempool::FrameBuf::detached(len)
            } else {
                match pool.alloc(len) {
                    Ok(f) => f,
                    Err(_) => break, // pool busy: drain echoes first
                }
            };
            fill_frame(&mut frame, next as u32);
            match pt.send(&peer, frame) {
                Ok(()) => {
                    next += 1;
                    inflight += 1;
                }
                Err(failure) => {
                    // Ring full: the frame came back; drop our copy
                    // (block recycles) and retry after draining.
                    assert!(
                        failure.frame.is_some(),
                        "frame not returned: {}",
                        failure.error
                    );
                    break;
                }
            }
        }
        while let Some((echo, _src)) = pt.poll() {
            assert_eq!(&echo[0..4], b"XECO");
            let seq = u32::from_le_bytes(echo[8..12].try_into().unwrap()) as usize;
            assert!(seq < COUNT, "bogus seq {seq}");
            assert!(!seen[seq], "duplicate echo for {seq}");
            assert_eq!(echo.len(), frame_len(seq), "length mangled for {seq}");
            let probe = 12 + (seq % (echo.len() - 12));
            assert_eq!(echo[probe], (seq + probe - 12) as u8, "payload mangled");
            seen[seq] = true;
            received += 1;
            inflight -= 1;
        }
        std::thread::yield_now();
    }
    assert!(seen.iter().all(|&s| s), "every frame echoed exactly once");

    // Tell the child to exit, then reap it.
    loop {
        let mut stop = pool.alloc(12).unwrap();
        stop[0..4].copy_from_slice(b"XSTP");
        match pt.send(&peer, stop) {
            Ok(()) => break,
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
    let status = child.wait().unwrap();
    assert!(status.success(), "child exited with {status}");
    let _ = std::fs::remove_file(&path);
}

/// Child side of the echo test: attach, echo every frame until the
/// stop marker. Runs only when the parent passes the region via env.
#[test]
#[ignore]
fn child_echo_main() {
    let Ok(path) = std::env::var("XDAQ_SHM_REGION") else {
        return;
    };
    let pt = ShmPt::new(PtMode::Polling);
    let link = pt.attach_link(std::path::Path::new(&path)).unwrap();
    let peer = link.peer_addr().clone();
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut pending: Vec<xdaq_mempool::FrameBuf> = Vec::new();
    loop {
        assert!(Instant::now() < deadline, "child echo timed out");
        while let Some((frame, _src)) = pt.poll() {
            if &frame[0..4] == b"XSTP" {
                return;
            }
            pending.push(frame);
        }
        // Echo zero-copy: region frames go back as descriptors.
        while let Some(frame) = pending.pop() {
            if let Err(failure) = pt.send(&peer, frame) {
                match failure.frame {
                    Some(f) => {
                        pending.push(f);
                        break; // ring full: let the parent drain
                    }
                    None => panic!("echo send lost a frame: {}", failure.error),
                }
            }
        }
        std::thread::yield_now();
    }
}

#[test]
fn killed_child_is_reported_to_the_supervisor() {
    if !xdaq_shm::sys::supported() || !heavy_enabled() {
        return;
    }
    let path = region_path("kill");
    let shm = ShmPt::new(PtMode::Polling);
    let link = shm.create_link(&path, cfg()).unwrap();
    let peer = link.peer_addr().clone();

    // The same wiring the executive's heartbeat tick uses:
    // take_down_peers → LinkSupervisor::force_down.
    let pta = Pta::new();
    pta.register(xdaq_i2o::Tid::new(0x100).unwrap(), shm.clone());
    let sup = LinkSupervisor::new(SupervisionConfig::default());
    sup.supervise(peer.clone());

    let mut child = spawn_child("child_sleep_main", &path);
    wait_for_peer(&shm, &peer);
    assert!(pta.take_down_peers().is_empty(), "peer alive: nothing down");

    child.kill().unwrap(); // SIGKILL: no detach runs on the other side
    child.wait().unwrap();

    let deadline = Instant::now() + Duration::from_secs(10);
    let reported = loop {
        let down = pta.take_down_peers();
        if !down.is_empty() {
            break down;
        }
        assert!(Instant::now() < deadline, "peer death never reported");
        std::thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(reported, vec![peer.clone()]);
    assert_eq!(sup.force_down(&peer), Some((peer.clone(), LinkState::Down)));
    assert_eq!(sup.state(&peer), Some(LinkState::Down));
    // Reported exactly once; sends now fail fast.
    assert!(pta.take_down_peers().is_empty());
    let frame = link.pool().alloc(64).unwrap();
    assert!(pta.send(&peer, frame).is_err());
    let _ = std::fs::remove_file(&path);
}

/// Child side of the kill test: attach and sleep until killed.
#[test]
#[ignore]
fn child_sleep_main() {
    let Ok(path) = std::env::var("XDAQ_SHM_REGION") else {
        return;
    };
    let pt = ShmPt::new(PtMode::Polling);
    let _link = pt.attach_link(std::path::Path::new(&path)).unwrap();
    std::thread::sleep(Duration::from_secs(60));
}
