//! Fault-injection integration tests: ChaosPt over loopback, PTA
//! retry/failover, and link supervision end to end.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};
use xdaq::app::{xfn, PingState, Pinger, Ponger, ORG_DAQ};
use xdaq::core::{Executive, ExecutiveConfig, LinkState, RetryPolicy, SupervisionConfig};
use xdaq::host::{ControlHost, XclInterpreter};
use xdaq::i2o::{Message, Tid};
use xdaq::mempool::TablePool;
use xdaq::pt::{ChaosPt, FaultPlan, LoopbackHub, LoopbackPt, TcpPt};

fn wait_until(cond: impl Fn() -> bool, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    cond()
}

fn retrying(attempts: u32) -> RetryPolicy {
    RetryPolicy {
        max_attempts: attempts,
        base_backoff: Duration::from_micros(100),
        max_backoff: Duration::from_millis(2),
        deadline: Some(Duration::from_secs(5)),
    }
}

/// Builds the chaotic ping-pong pair: node `a` sends through a
/// fault-injecting wrapper, node `b` is healthy. Returns everything a
/// test needs to drive and inspect the run.
fn chaotic_pair(
    seed: u64,
    plan: FaultPlan,
    count: u64,
) -> (Executive, Executive, Arc<ChaosPt>, Arc<PingState>, Tid) {
    let hub = LoopbackHub::new();
    let mut cfg = ExecutiveConfig::named("a");
    cfg.retry = retrying(10);
    let a = Executive::new(cfg);
    let b = Executive::new(ExecutiveConfig::named("b"));
    let chaos = ChaosPt::wrap(LoopbackPt::new(&hub, "a"), seed, plan);
    a.register_pt("a.chaos", chaos.clone()).unwrap();
    b.register_pt("b.loop", LoopbackPt::new(&hub, "b")).unwrap();

    let state = PingState::new();
    let pong_tid = b.register("pong", Box::new(Ponger::new()), &[]).unwrap();
    let proxy = a.proxy("loop://b", pong_tid, None).unwrap();
    let ping_tid = a
        .register(
            "ping",
            Box::new(Pinger::new(state.clone())),
            &[
                ("peer", &proxy.raw().to_string()),
                ("payload", "128"),
                ("count", &count.to_string()),
            ],
        )
        .unwrap();
    a.enable_all();
    b.enable_all();
    (a, b, chaos, state, ping_tid)
}

/// ChaosPt refuses ~30% of sends, yet the retry policy resubmits the
/// returned frame until it gets through: every single ping-pong reply
/// arrives — zero frames lost.
#[test]
fn chaos_rejects_thirty_percent_yet_all_replies_arrive() {
    const COUNT: u64 = 400;
    let (a, b, chaos, state, ping_tid) = chaotic_pair(0xDEC0DE, FaultPlan::failing(300), COUNT);
    let ha = a.spawn();
    let hb = b.spawn();
    a.post(Message::build_private(ping_tid, Tid::HOST, ORG_DAQ, xfn::PING_START).finish())
        .unwrap();
    assert!(
        wait_until(
            || state.done.load(Ordering::SeqCst),
            Duration::from_secs(30)
        ),
        "chaotic ping-pong incomplete: {} of {COUNT} (chaos {:?})",
        state.completed.load(Ordering::SeqCst),
        chaos.stats(),
    );
    assert_eq!(state.completed.load(Ordering::SeqCst), COUNT);
    let stats = chaos.stats();
    assert!(
        stats.failed > COUNT / 10,
        "expected ~30% injected failures, saw {stats:?}"
    );
    // Every injected failure was absorbed by a retry, visible in mon.
    let metrics = a.core().monitors().registry().snapshot();
    assert!(metrics["counters"]["pta.retries"].as_u64().unwrap() >= stats.failed);
    assert!(metrics["counters"]["pta.send_failures"].as_u64().unwrap() >= stats.failed);
    ha.shutdown();
    hb.shutdown();
}

/// The same seed replays the same fault schedule: the smoke test CI
/// runs to catch nondeterminism creeping into the harness.
#[test]
fn fixed_seed_chaos_run_is_deterministic() {
    const COUNT: u64 = 150;
    let run = |seed: u64| {
        let (a, b, chaos, state, ping_tid) = chaotic_pair(seed, FaultPlan::failing(250), COUNT);
        let ha = a.spawn();
        let hb = b.spawn();
        a.post(Message::build_private(ping_tid, Tid::HOST, ORG_DAQ, xfn::PING_START).finish())
            .unwrap();
        assert!(wait_until(
            || state.done.load(Ordering::SeqCst),
            Duration::from_secs(30)
        ));
        ha.shutdown();
        hb.shutdown();
        (state.completed.load(Ordering::SeqCst), chaos.stats())
    };
    let (done1, stats1) = run(99);
    let (done2, stats2) = run(99);
    assert_eq!(done1, COUNT);
    assert_eq!(done2, COUNT);
    assert_eq!(stats1, stats2, "fixed seed must replay the same schedule");
    let (_, stats3) = run(100);
    assert_ne!(stats1, stats3, "a different seed perturbs the schedule");
}

/// The full failover story: the primary loopback link is killed
/// mid-run; per-send failover rides the alternate TCP route while the
/// supervisor's heartbeats miss, declare the peer Down, and promote
/// the alternate to primary. Zero frames lost, and the monitoring
/// registry shows the retries, failovers, and the Down transition.
#[test]
fn primary_killed_mid_run_fails_over_with_zero_loss() {
    const COUNT: u64 = 1200;
    let hub = LoopbackHub::new();
    let mut cfg = ExecutiveConfig::named("a");
    cfg.retry = RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::from_micros(200),
        max_backoff: Duration::from_millis(2),
        deadline: Some(Duration::from_secs(5)),
    };
    cfg.supervision = Some(SupervisionConfig {
        interval: Duration::from_millis(20),
        suspect_after: 2,
        down_after: 4,
    });
    let a = Executive::new(cfg);
    let b = Executive::new(ExecutiveConfig::named("b"));

    let chaos = ChaosPt::wrap(LoopbackPt::new(&hub, "a"), 7, FaultPlan::default());
    a.register_pt("a.chaos", chaos.clone()).unwrap();
    a.register_pt(
        "a.tcp",
        TcpPt::bind("127.0.0.1:0", TablePool::with_defaults()).unwrap(),
    )
    .unwrap();
    b.register_pt("b.loop", LoopbackPt::new(&hub, "b")).unwrap();
    let b_tcp = TcpPt::bind("127.0.0.1:0", TablePool::with_defaults()).unwrap();
    let b_url = b_tcp.addr().to_string();
    b.register_pt("b.tcp", b_tcp).unwrap();

    let state = PingState::new();
    let pong_tid = b.register("pong", Box::new(Ponger::new()), &[]).unwrap();
    let proxy = a.proxy("loop://b", pong_tid, None).unwrap();
    assert!(a.add_alternate(proxy, &b_url).unwrap());
    a.supervise("loop://b").unwrap();
    let ping_tid = a
        .register(
            "ping",
            Box::new(Pinger::new(state.clone())),
            &[
                ("peer", &proxy.raw().to_string()),
                ("payload", "128"),
                ("count", &COUNT.to_string()),
            ],
        )
        .unwrap();
    a.enable_all();
    b.enable_all();
    let ha = a.spawn();
    let hb = b.spawn();

    a.post(Message::build_private(ping_tid, Tid::HOST, ORG_DAQ, xfn::PING_START).finish())
        .unwrap();
    // Let the run get going, then murder the primary link.
    assert!(
        wait_until(
            || state.completed.load(Ordering::SeqCst) >= 200,
            Duration::from_secs(20)
        ),
        "run never got going: {}",
        state.completed.load(Ordering::SeqCst)
    );
    chaos.kill();

    assert!(
        wait_until(
            || state.done.load(Ordering::SeqCst),
            Duration::from_secs(30)
        ),
        "failover run incomplete: {} of {COUNT}",
        state.completed.load(Ordering::SeqCst)
    );
    assert_eq!(state.completed.load(Ordering::SeqCst), COUNT, "frames lost");

    // The supervisor declared the dead link Down...
    assert!(wait_until(
        || a.link_states()
            .iter()
            .any(|(p, s)| p == "loop://b" && *s == LinkState::Down),
        Duration::from_secs(5)
    ));
    // ...and the monitoring registry recorded the whole story.
    let metrics = a.core().monitors().registry().snapshot();
    let c = &metrics["counters"];
    assert!(c["pta.retries"].as_u64().unwrap() > 0, "{metrics}");
    assert!(c["pta.failovers"].as_u64().unwrap() > 0, "{metrics}");
    assert!(c["link.peer_down"].as_u64().unwrap() >= 1, "{metrics}");
    assert!(c["link.hb_pings"].as_u64().unwrap() > 0, "{metrics}");
    ha.shutdown();
    hb.shutdown();
}

/// The `faults` xcl command reprograms a remote ChaosPt over plain I2O
/// frames: `ParamsSet` pairs reach `PeerTransport::configure` through
/// the PT's device.
#[test]
fn xcl_faults_command_reprograms_chaos() {
    let hub = LoopbackHub::new();
    let node = Executive::new(ExecutiveConfig::named("worker"));
    // The chaotic data link rides loopback; control rides TCP, so the
    // host can still reach the node after `kill=1` murders the former.
    let chaos = ChaosPt::wrap(LoopbackPt::new(&hub, "worker"), 3, FaultPlan::default());
    let pt_tid = node.register_pt("worker.chaos", chaos.clone()).unwrap();
    let w_tcp = TcpPt::bind("127.0.0.1:0", TablePool::with_defaults()).unwrap();
    let w_url = w_tcp.addr().to_string();
    node.register_pt("worker.tcp", w_tcp).unwrap();
    let nh = node.spawn();

    let host = ControlHost::new("ctl");
    host.executive()
        .register_pt(
            "ctl.pt",
            TcpPt::bind("127.0.0.1:0", TablePool::with_defaults()).unwrap(),
        )
        .unwrap();
    host.start();

    let mut interp = XclInterpreter::new(&host);
    let script = format!(
        "node w {w_url}\n\
         claim w\n\
         proxy pt0 {w_url} {}\n\
         faults pt0 fail=250 delay_every=8 chaos.delay_ms=3\n\
         faults pt0 kill=1\n",
        pt_tid.raw()
    );
    let out = interp.run(&script).unwrap();
    assert!(out.log.iter().any(|l| l.contains("faults pt0: 3 knobs")));
    let p = chaos.plan();
    assert_eq!(p.fail_per_mille, 250);
    assert_eq!(p.delay_every, 8);
    assert_eq!(p.delay, Duration::from_millis(3));
    assert!(chaos.is_killed());
    // A bad knob value is a visible script error, not a silent no-op.
    let err = interp.run("faults pt0 fail=9999\n").unwrap_err();
    assert!(err.message.contains("fail"), "{}", err.message);
    host.stop();
    nh.shutdown();
}
