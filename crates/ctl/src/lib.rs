//! # xdaq-ctl — declarative control plane
//!
//! The paper configures its cluster imperatively: a script on the
//! primary host sends executive-class I2O frames — download this
//! device class, connect that peer, enable — to every node (§4). That
//! works until a node dies mid-run and a human has to replay the right
//! prefix of the script against a half-alive fleet.
//!
//! This crate closes the loop. The cluster is described once, as
//! data, and a controller owns the difference between that declaration
//! and reality:
//!
//! * [`toml`] / [`decl`] — a TOML-ish topology format: nodes, device
//!   classes to load on them, routes between them, `flow.*`/`qos.*`
//!   parameters, plus `@url:<node>@` templates resolved against live
//!   transport addresses.
//! * [`registry`] — a live [`ServiceRegistry`]: desired vs actual
//!   health per node, generation counters, and a streamed event feed
//!   (spawned, published, up, link-down, exited, draining, drained)
//!   fed by the convergence loop, by `XFN_PEER_DOWN` faults scraped
//!   off the control host, and by child-process exit.
//! * [`launch`] / [`runner`] — the process side: a [`Launcher`]
//!   spawns each node (the stock [`SelfExec`] re-executes the current
//!   binary), and [`run_managed_node`] turns the child into the
//!   declared executive, publishing a generation-stamped url file.
//! * [`controller`] — the [`Controller`] itself: `apply` converges
//!   the fleet (spawn → attach → load → route → enable), a background
//!   tick reaps deaths and respawns-with-reroute, and `drain` does a
//!   rolling restart that empties a node through the data plane's own
//!   retry/failover paths before stopping it.
//!
//! The controller implements `xdaq_host::ControlPlane`, so the xcl
//! interpreter drives it from script — `plan`, `apply`, `registry`,
//! `drain <node>` — and `mon` grows a `ctl_status` section.

#![warn(missing_docs)]

pub mod controller;
pub mod decl;
pub mod launch;
pub mod registry;
pub mod runner;
pub mod toml;

pub use controller::{control_host, Controller, ControllerConfig};
pub use decl::{DeclError, ModuleDecl, NodeDecl, RouteDecl, Topology};
pub use launch::{LaunchSpec, Launcher, SelfExec};
pub use registry::{Event, EventKind, Health, NodeStatus, ServiceRegistry, Subscription};
pub use runner::{node_config, run_managed_node, ManagedEnv};
