//! Live service registry: desired vs actual state per node, with a
//! streamed event feed.
//!
//! The registry is the control plane's book of record. Every node of
//! the declaration gets a row holding its *desired* state (always
//! `Up` once applied), its observed *actual* health, the incarnation
//! generation, and the live transport URL. Mutations come from three
//! feeds:
//!
//! * the convergence loop itself (spawned / published / retired),
//! * link-supervisor faults scraped off the control host's fault
//!   listener (`XFN_PEER_DOWN` → [`Health::Degraded`]),
//! * process exit noticed by `try_wait` on the managed child.
//!
//! Subscribers get a bounded queue of [`Event`]s so `xcl watch`-style
//! tooling and tests can follow membership changes without polling.

use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Observed health of a managed node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// Declared, not (re)spawned yet.
    Pending,
    /// Serving: URL published, executive answering.
    Up,
    /// A peer reported the node's link down, or a scrape failed; the
    /// convergence loop is deciding.
    Degraded,
    /// Being drained ahead of a rolling restart.
    Draining,
    /// Process gone; respawn owed.
    Down,
}

impl Health {
    /// Lower-case wire/text form.
    pub fn as_str(self) -> &'static str {
        match self {
            Health::Pending => "pending",
            Health::Up => "up",
            Health::Degraded => "degraded",
            Health::Draining => "draining",
            Health::Down => "down",
        }
    }
}

impl std::fmt::Display for Health {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One registry row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeStatus {
    /// Node name.
    pub node: String,
    /// Desired state (`up` once the declaration is applied).
    pub desired: Health,
    /// Observed state.
    pub health: Health,
    /// Incarnation counter: 1 on first spawn, +1 per respawn.
    pub generation: u64,
    /// Live transport URL ("" until published).
    pub url: String,
    /// OS pid of the managed child (0 when none/external).
    pub pid: u32,
}

/// What happened to a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Child process launched.
    Spawned,
    /// URL file published; executive reachable.
    Published,
    /// Convergence finished; node serving.
    Up,
    /// A supervised link to the node was reported down.
    LinkDown,
    /// Child process exited.
    Exited,
    /// Drain started.
    Draining,
    /// Drain gate reached zero.
    Drained,
}

impl EventKind {
    /// Lower-case wire/text form.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Spawned => "spawned",
            EventKind::Published => "published",
            EventKind::Up => "up",
            EventKind::LinkDown => "link-down",
            EventKind::Exited => "exited",
            EventKind::Draining => "draining",
            EventKind::Drained => "drained",
        }
    }
}

/// A membership/health change, as streamed to subscribers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number, 1-based.
    pub seq: u64,
    /// Node the event concerns.
    pub node: String,
    /// What happened.
    pub kind: EventKind,
    /// Free-form context (url, exit status, fault detail).
    pub detail: String,
}

/// A subscriber's bounded event queue.
#[derive(Clone)]
pub struct Subscription {
    queue: Arc<Mutex<VecDeque<Event>>>,
}

impl Subscription {
    /// Takes everything queued since the last drain.
    pub fn drain(&self) -> Vec<Event> {
        self.queue.lock().drain(..).collect()
    }
}

const SUBSCRIBER_DEPTH: usize = 1024;
const LOG_DEPTH: usize = 256;

#[derive(Default)]
struct Inner {
    rows: BTreeMap<String, NodeStatus>,
    subscribers: Vec<Arc<Mutex<VecDeque<Event>>>>,
    log: VecDeque<Event>,
    seq: u64,
}

/// The registry proper. Cheap to clone behind an [`Arc`]; all methods
/// take `&self`.
#[derive(Default)]
pub struct ServiceRegistry {
    inner: Mutex<Inner>,
}

impl ServiceRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a row (desired `Up`, actual `Pending`). Idempotent.
    pub fn declare(&self, node: &str) {
        let mut g = self.inner.lock();
        g.rows
            .entry(node.to_string())
            .or_insert_with(|| NodeStatus {
                node: node.to_string(),
                desired: Health::Up,
                health: Health::Pending,
                generation: 0,
                url: String::new(),
                pid: 0,
            });
    }

    /// New subscriber; receives events from now on.
    pub fn subscribe(&self) -> Subscription {
        let queue = Arc::new(Mutex::new(VecDeque::new()));
        self.inner.lock().subscribers.push(queue.clone());
        Subscription { queue }
    }

    fn emit(g: &mut Inner, node: &str, kind: EventKind, detail: String) {
        g.seq += 1;
        let ev = Event {
            seq: g.seq,
            node: node.to_string(),
            kind,
            detail,
        };
        if g.log.len() == LOG_DEPTH {
            g.log.pop_front();
        }
        g.log.push_back(ev.clone());
        for sub in &g.subscribers {
            let mut q = sub.lock();
            if q.len() == SUBSCRIBER_DEPTH {
                q.pop_front();
            }
            q.push_back(ev.clone());
        }
    }

    fn update(&self, node: &str, kind: EventKind, detail: String, f: impl FnOnce(&mut NodeStatus)) {
        let mut g = self.inner.lock();
        let Some(row) = g.rows.get_mut(node) else {
            return;
        };
        f(row);
        Self::emit(&mut g, node, kind, detail);
    }

    /// Child launched for generation `generation`.
    pub fn spawned(&self, node: &str, generation: u64, pid: u32) {
        self.update(
            node,
            EventKind::Spawned,
            format!("gen={generation} pid={pid}"),
            |r| {
                r.generation = generation;
                r.pid = pid;
                r.health = Health::Pending;
                r.url.clear();
            },
        );
    }

    /// Node published its URL file.
    pub fn published(&self, node: &str, url: &str) {
        self.update(node, EventKind::Published, url.to_string(), |r| {
            r.url = url.to_string();
        });
    }

    /// Node converged and serving.
    pub fn up(&self, node: &str) {
        self.update(node, EventKind::Up, String::new(), |r| {
            r.health = Health::Up
        });
    }

    /// A supervised link to the node went down. Only downgrades —
    /// `Down`/`Draining` are stronger verdicts.
    pub fn link_down(&self, node: &str, detail: &str) {
        self.update(node, EventKind::LinkDown, detail.to_string(), |r| {
            if matches!(r.health, Health::Up | Health::Pending) {
                r.health = Health::Degraded;
            }
        });
    }

    /// Degrades on a failed scrape (no event — scrape noise is not
    /// membership news); [`up`](Self::up) restores.
    pub fn mark_degraded(&self, node: &str) {
        let mut g = self.inner.lock();
        if let Some(r) = g.rows.get_mut(node) {
            if r.health == Health::Up {
                r.health = Health::Degraded;
            }
        }
    }

    /// Child process exited.
    pub fn exited(&self, node: &str, detail: &str) {
        self.update(node, EventKind::Exited, detail.to_string(), |r| {
            r.health = Health::Down;
            r.pid = 0;
        });
    }

    /// Drain started.
    pub fn draining(&self, node: &str) {
        self.update(node, EventKind::Draining, String::new(), |r| {
            r.health = Health::Draining;
        });
    }

    /// Drain gate reached zero; node may be stopped.
    pub fn drained(&self, node: &str) {
        self.update(node, EventKind::Drained, String::new(), |_| {});
    }

    /// Snapshot of all rows, name order.
    pub fn rows(&self) -> Vec<NodeStatus> {
        self.inner.lock().rows.values().cloned().collect()
    }

    /// One row.
    pub fn row(&self, node: &str) -> Option<NodeStatus> {
        self.inner.lock().rows.get(node).cloned()
    }

    /// The retained event tail (up to the last 256), oldest first.
    pub fn recent_events(&self) -> Vec<Event> {
        self.inner.lock().log.iter().cloned().collect()
    }

    /// JSON for the `ctl_status` monitoring section.
    pub fn status_json(&self) -> serde_json::Value {
        let g = self.inner.lock();
        let nodes: Vec<serde_json::Value> = g
            .rows
            .values()
            .map(|r| {
                serde_json::json!({
                    "node": r.node.clone(),
                    "desired": r.desired.as_str(),
                    "actual": r.health.as_str(),
                    "generation": r.generation,
                    "url": r.url.clone(),
                    "pid": r.pid,
                })
            })
            .collect();
        let converged = g.rows.values().all(|r| r.health == Health::Up);
        serde_json::json!({
            "nodes": nodes,
            "converged": converged,
            "events": g.seq,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_streams_events_and_tracks_rows() {
        let reg = ServiceRegistry::new();
        reg.declare("bu0");
        let sub = reg.subscribe();
        reg.spawned("bu0", 1, 42);
        reg.published("bu0", "tcp://127.0.0.1:1234");
        reg.up("bu0");
        let row = reg.row("bu0").unwrap();
        assert_eq!(row.health, Health::Up);
        assert_eq!(row.generation, 1);
        assert_eq!(row.url, "tcp://127.0.0.1:1234");
        let kinds: Vec<EventKind> = sub.drain().into_iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![EventKind::Spawned, EventKind::Published, EventKind::Up]
        );
        assert!(sub.drain().is_empty(), "drain consumes");
    }

    #[test]
    fn link_down_only_downgrades_up() {
        let reg = ServiceRegistry::new();
        reg.declare("n");
        reg.spawned("n", 1, 1);
        reg.up("n");
        reg.link_down("n", "peer=tcp://x");
        assert_eq!(reg.row("n").unwrap().health, Health::Degraded);
        reg.exited("n", "signal=9");
        reg.link_down("n", "late fault");
        assert_eq!(
            reg.row("n").unwrap().health,
            Health::Down,
            "down is sticky vs faults"
        );
    }

    #[test]
    fn respawn_bumps_generation_and_clears_url() {
        let reg = ServiceRegistry::new();
        reg.declare("n");
        reg.spawned("n", 1, 10);
        reg.published("n", "tcp://a");
        reg.exited("n", "killed");
        reg.spawned("n", 2, 11);
        let row = reg.row("n").unwrap();
        assert_eq!(row.generation, 2);
        assert_eq!(row.url, "", "stale url cleared until republished");
        assert_eq!(row.health, Health::Pending);
    }

    #[test]
    fn status_json_reports_convergence() {
        let reg = ServiceRegistry::new();
        reg.declare("a");
        reg.declare("b");
        reg.spawned("a", 1, 1);
        reg.up("a");
        let v = reg.status_json();
        assert_eq!(v["converged"], serde_json::json!(false));
        reg.spawned("b", 1, 2);
        reg.up("b");
        assert_eq!(reg.status_json()["converged"], serde_json::json!(true));
        assert_eq!(reg.status_json()["nodes"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn unknown_nodes_are_ignored() {
        let reg = ServiceRegistry::new();
        let sub = reg.subscribe();
        reg.up("ghost");
        assert!(reg.rows().is_empty());
        assert!(sub.drain().is_empty());
    }
}
