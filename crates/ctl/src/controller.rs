//! The convergence loop: make the cluster look like the declaration.
//!
//! The [`Controller`] owns a parsed [`Topology`], a
//! [`ServiceRegistry`], a [`Launcher`] and a [`ControlHost`], and
//! closes the loop between them:
//!
//! * **apply** — spawn every managed node that is not running, wait
//!   for its generation-stamped url file, attach (executive proxy +
//!   host-side link supervision + node-level `flow.*`/`qos.*`
//!   params), download the declared module instances
//!   (`ExecSwDownload`), wire the declared routes
//!   (`ExecIopConnect`, optionally supervised), and `SysEnable`.
//! * **poll** — a background tick drains the host's fault feed
//!   (`XFN_PEER_DOWN` → [`Health::Degraded`]), reaps exited children
//!   (→ [`Health::Down`] → immediate re-converge), and periodically
//!   scrapes attached nodes to confirm liveness.
//! * **respawn** — a re-converge after an exit bumps the node's
//!   generation, relaunches it, reroutes every route touching it
//!   (retrying while peers evict the dead incarnation's aliases), and
//!   finally *refreshes* the modules that declared `watch` on the
//!   node: their templated params are re-substituted with the new URL
//!   and their `refresh` key is raised so they re-invite the new
//!   incarnation (e.g. the event manager's `evb.rescan`).
//! * **drain** — a rolling restart: raise the watchers' `drain` key
//!   (naming the node by its route alias), poll the `drain_gate`
//!   parameter to zero so in-flight work finishes through the data
//!   plane's own retry/failover paths, stop the node cleanly
//!   (`exec.stop=1`), and re-converge.
//!
//! The controller implements [`ControlPlane`], so an
//! [`XclInterpreter`](xdaq_host::XclInterpreter) with the plane
//! attached drives all of this from script: `apply`, `plan`,
//! `registry`, `drain <node>`.

use crate::decl::{ModuleDecl, RouteDecl, Topology};
use crate::launch::{read_url, LaunchSpec, Launcher};
use crate::registry::{Health, ServiceRegistry, Subscription};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::process::Child;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;
use xdaq_core::config::{kv, parse_kv};
use xdaq_core::xfn::XFN_PEER_DOWN;
use xdaq_core::{Clock, ExecutiveConfig, SupervisionConfig};
use xdaq_host::{ControlHost, ControlPlane, RegistryRow};
use xdaq_i2o::{ExecFn, Tid};
use xdaq_mempool::TablePool;
use xdaq_pt::TcpPt;

/// Convergence-loop tuning.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Background tick period.
    pub poll_interval: Duration,
    /// How long a spawned node may take to publish its url file.
    pub boot_timeout: Duration,
    /// How long route wiring retries while peers evict a dead
    /// incarnation's aliases.
    pub route_retry: Duration,
    /// How long a drain gate may take to reach zero.
    pub drain_timeout: Duration,
    /// Scrape attached nodes every this many ticks.
    pub scrape_every: u32,
    /// Time source for the convergence tick and its wait loops
    /// (boot/route/drain deadlines). Wall by default — the controller
    /// manages real child processes, whose exits and url files arrive
    /// on wall time — but in-process harnesses can virtualize the
    /// pacing (DESIGN.md §16).
    pub clock: Clock,
}

impl Default for ControllerConfig {
    fn default() -> ControllerConfig {
        ControllerConfig {
            poll_interval: Duration::from_millis(100),
            boot_timeout: Duration::from_secs(30),
            route_retry: Duration::from_secs(10),
            drain_timeout: Duration::from_secs(60),
            scrape_every: 10,
            clock: Clock::Wall,
        }
    }
}

/// Everything the controller knows about one managed node's current
/// incarnation.
#[derive(Default)]
struct NodeState {
    child: Option<Child>,
    generation: u64,
    url: String,
    /// Host-side proxy for the node's executive.
    node_tid: Option<Tid>,
    /// instance → TiD on the remote node (route targets).
    modules: HashMap<String, Tid>,
    /// instance → host-side proxy TiD (direct ParamsSet/Get).
    proxies: HashMap<String, Tid>,
    /// Route ids applied ON this node this incarnation.
    routes_applied: HashSet<String>,
    enabled: bool,
}

/// The declarative controller. Create with [`Controller::new`], start
/// the background tick with [`Controller::start`], then converge via
/// [`ControlPlane::apply`] (directly or through xcl).
pub struct Controller {
    topo: Topology,
    topo_path: String,
    rundir: String,
    host: Arc<ControlHost>,
    launcher: Box<dyn Launcher>,
    registry: Arc<ServiceRegistry>,
    cfg: ControllerConfig,
    state: Mutex<HashMap<String, NodeState>>,
    /// Serializes apply / drain / poll mutation (poll uses try_lock).
    ops: Mutex<()>,
    /// External node URLs (declared `url = ...` or set at runtime).
    externals: Mutex<HashMap<String, String>>,
    stop: AtomicBool,
    scrape_tick: Mutex<u32>,
}

impl Controller {
    /// Loads the topology at `topo_path` and builds a controller over
    /// it. Nothing is spawned until `apply`.
    pub fn new(
        topo_path: &str,
        host: Arc<ControlHost>,
        launcher: Box<dyn Launcher>,
        cfg: ControllerConfig,
    ) -> Result<Arc<Controller>, String> {
        let text =
            std::fs::read_to_string(topo_path).map_err(|e| format!("read {topo_path}: {e}"))?;
        let topo = Topology::parse(&text).map_err(|e| format!("{topo_path}: {e}"))?;
        let registry = Arc::new(ServiceRegistry::new());
        let mut state = HashMap::new();
        let mut externals = HashMap::new();
        for n in &topo.nodes {
            if n.external {
                if let Some(url) = &n.url {
                    externals.insert(n.name.clone(), url.clone());
                }
            } else {
                registry.declare(&n.name);
                state.insert(n.name.clone(), NodeState::default());
            }
        }
        Ok(Arc::new(Controller {
            rundir: topo.rundir.clone(),
            topo,
            topo_path: topo_path.to_string(),
            host,
            launcher,
            registry,
            cfg,
            state: Mutex::new(state),
            ops: Mutex::new(()),
            externals: Mutex::new(externals),
            stop: AtomicBool::new(false),
            scrape_tick: Mutex::new(0),
        }))
    }

    /// The live registry (subscribe for membership events).
    pub fn service_registry(&self) -> &Arc<ServiceRegistry> {
        &self.registry
    }

    /// Shorthand for `service_registry().subscribe()`.
    pub fn subscribe(&self) -> Subscription {
        self.registry.subscribe()
    }

    /// The parsed declaration.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Publishes the URL of an external (unmanaged) node so templates
    /// and routes may reference it.
    pub fn set_external(&self, node: &str, url: &str) {
        self.externals
            .lock()
            .insert(node.to_string(), url.to_string());
    }

    /// Starts the background tick (fault feed, child reaping with
    /// automatic re-convergence, liveness scrapes). The thread holds
    /// only a weak reference: dropping the last `Arc<Controller>`
    /// stops it.
    pub fn start(self: &Arc<Self>) {
        let weak: Weak<Controller> = Arc::downgrade(self);
        let period = self.cfg.poll_interval;
        let clock = self.cfg.clock.clone();
        std::thread::spawn(move || loop {
            clock.sleep(period);
            let Some(me) = weak.upgrade() else { break };
            if me.stop.load(Ordering::Relaxed) {
                break;
            }
            me.poll_once();
        });
    }

    /// Stops the background tick. Children are killed on drop.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// SIGKILLs a managed node's process (test/chaos hook). The next
    /// poll notices the exit and re-converges.
    pub fn kill_node(&self, node: &str) -> Result<(), String> {
        let mut st = self.state.lock();
        let ns = st
            .get_mut(node)
            .ok_or_else(|| format!("unknown node '{node}'"))?;
        let child = ns
            .child
            .as_mut()
            .ok_or_else(|| format!("'{node}' not running"))?;
        child.kill().map_err(|e| format!("kill {node}: {e}"))
    }

    /// Host-side proxy TiD for a managed module instance (to address
    /// it directly, e.g. posting run control to an event manager).
    pub fn module_proxy(&self, node: &str, instance: &str) -> Option<Tid> {
        self.state.lock().get(node)?.proxies.get(instance).copied()
    }

    /// Current generation of a managed node.
    pub fn generation(&self, node: &str) -> u64 {
        self.state
            .lock()
            .get(node)
            .map(|n| n.generation)
            .unwrap_or(0)
    }

    // ---- internals ----------------------------------------------------

    fn url_map(&self) -> HashMap<String, String> {
        let mut map = self.externals.lock().clone();
        for (name, ns) in self.state.lock().iter() {
            if !ns.url.is_empty() {
                map.insert(name.clone(), ns.url.clone());
            }
        }
        map
    }

    fn node_by_url(&self, url: &str) -> Option<String> {
        self.state
            .lock()
            .iter()
            .find(|(_, ns)| ns.url == url)
            .map(|(n, _)| n.clone())
    }

    fn spawn_node(&self, node: &str) -> Result<(), String> {
        let generation = {
            let st = self.state.lock();
            st.get(node).map(|n| n.generation).unwrap_or(0) + 1
        };
        // Remove a stale url file so a slow-booting child can never be
        // confused with its previous incarnation.
        let _ = std::fs::remove_file(format!("{}/{node}.url", self.rundir));
        let spec = LaunchSpec {
            node: node.to_string(),
            topo_path: self.topo_path.clone(),
            rundir: self.rundir.clone(),
            generation,
        };
        let child = self
            .launcher
            .spawn(&spec)
            .map_err(|e| format!("spawn {node}: {e}"))?;
        self.registry.spawned(node, generation, child.id());
        let mut st = self.state.lock();
        let ns = st.entry(node.to_string()).or_default();
        ns.child = Some(child);
        ns.generation = generation;
        ns.url.clear();
        Ok(())
    }

    /// Waits for the url file, creates the executive proxy, puts the
    /// link under host-side supervision and pushes node-level
    /// `flow.*` / `qos.*` params.
    fn attach(&self, node: &str) -> Result<(), String> {
        let generation = self
            .state
            .lock()
            .get(node)
            .map(|n| n.generation)
            .unwrap_or(0);
        let clock = &self.cfg.clock;
        let deadline = clock.now() + self.cfg.boot_timeout;
        let url = loop {
            if let Some(url) = read_url(&self.rundir, node, generation) {
                break url;
            }
            if clock.now() >= deadline {
                return Err(format!("'{node}' gen {generation} never published its url"));
            }
            clock.sleep(Duration::from_millis(10));
        };
        self.registry.published(node, &url);
        let tid = self
            .host
            .connect_node(&url, None)
            .map_err(|e| format!("connect {node}: {e}"))?;
        self.host
            .executive()
            .supervise(&url)
            .map_err(|e| format!("supervise {node}: {e}"))?;
        let decl = self.topo.node(node).expect("managed node declared");
        let runtime: Vec<(&str, &str)> = decl
            .params
            .iter()
            .filter(|(k, _)| k.starts_with("flow.") || k.starts_with("qos."))
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        if !runtime.is_empty() {
            self.host
                .params_set(tid, &runtime)
                .map_err(|e| format!("{node} runtime params: {e}"))?;
        }
        let mut st = self.state.lock();
        let ns = st.get_mut(node).expect("state row exists");
        ns.url = url;
        ns.node_tid = Some(tid);
        Ok(())
    }

    fn load_module(&self, node: &str, m: &ModuleDecl) -> Result<(), String> {
        let (node_tid, url) = {
            let st = self.state.lock();
            let ns = st.get(node).expect("state row exists");
            (ns.node_tid.expect("attached before load"), ns.url.clone())
        };
        let urls = self.url_map();
        let mut params: Vec<(String, String)> = Vec::with_capacity(m.params.len());
        for (k, v) in &m.params {
            let v = Topology::substitute(v, &urls)
                .map_err(|e| format!("{node}/{}: {e}", m.instance))?;
            params.push((k.clone(), v));
        }
        let refs: Vec<(&str, &str)> = params
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        let remote = self
            .host
            .load(node_tid, &m.factory, &m.instance, &refs)
            .map_err(|e| format!("load {node}/{}: {e}", m.instance))?;
        let proxy = self
            .host
            .device_proxy(&url, remote)
            .map_err(|e| format!("proxy {node}/{}: {e}", m.instance))?;
        let mut st = self.state.lock();
        let ns = st.get_mut(node).expect("state row exists");
        ns.modules.insert(m.instance.clone(), remote);
        ns.proxies.insert(m.instance.clone(), proxy);
        ns.enabled = false;
        Ok(())
    }

    /// Wires one route, retrying while the `on` node is still
    /// evicting a dead incarnation's alias (`DuplicateName` until the
    /// link supervisor declares the old peer Down).
    fn apply_route(&self, r: &RouteDecl) -> Result<(), String> {
        let (on_tid, peer_url, remote) = {
            let st = self.state.lock();
            let on = st
                .get(&r.on)
                .and_then(|n| n.node_tid)
                .ok_or_else(|| format!("route '{}': '{}' not attached", r.id, r.on))?;
            let (peer_url, remote) = match st.get(&r.to_node) {
                Some(to) => {
                    let tid = *to.modules.get(&r.to_instance).ok_or_else(|| {
                        format!(
                            "route '{}': '{}/{}' not loaded",
                            r.id, r.to_node, r.to_instance
                        )
                    })?;
                    (to.url.clone(), tid)
                }
                None => {
                    return Err(format!(
                        "route '{}': external target '{}' not routable",
                        r.id, r.to_node
                    ))
                }
            };
            (on, peer_url, remote)
        };
        let remote_raw = remote.raw().to_string();
        let clock = &self.cfg.clock;
        let deadline = clock.now() + self.cfg.route_retry;
        loop {
            let mut pairs = vec![
                ("peer", peer_url.as_str()),
                ("remote_tid", remote_raw.as_str()),
                ("alias", r.alias.as_str()),
            ];
            if r.supervise {
                pairs.push(("supervise", "1"));
            }
            let outcome = self
                .host
                .request_exec(on_tid, ExecFn::IopConnect, kv(&pairs))
                .and_then(|reply| reply.ok());
            match outcome {
                Ok(_) => {
                    let mut st = self.state.lock();
                    if let Some(ns) = st.get_mut(&r.on) {
                        ns.routes_applied.insert(r.id.clone());
                    }
                    return Ok(());
                }
                Err(e) if clock.now() >= deadline => {
                    return Err(format!("route '{}': {e}", r.id));
                }
                Err(_) => clock.sleep(Duration::from_millis(50)),
            }
        }
    }

    /// After a respawn, re-push templated params and raise the
    /// `refresh` key on every module watching one of `fresh`.
    fn refresh_watchers(&self, fresh: &HashSet<String>) -> Result<(), String> {
        if fresh.is_empty() {
            return Ok(());
        }
        let urls = self.url_map();
        for n in self.topo.managed() {
            for m in &n.modules {
                let Some(refresh) = &m.refresh else { continue };
                if !m.watch.iter().any(|w| fresh.contains(w)) {
                    continue;
                }
                let Some(proxy) = self.module_proxy(&n.name, &m.instance) else {
                    continue;
                };
                let mut params: Vec<(String, String)> = Vec::new();
                for (k, v) in &m.params {
                    if v.contains("@url:") {
                        let v = Topology::substitute(v, &urls)
                            .map_err(|e| format!("{}/{}: {e}", n.name, m.instance))?;
                        params.push((k.clone(), v));
                    }
                }
                params.push((refresh.clone(), "1".to_string()));
                let refs: Vec<(&str, &str)> = params
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.as_str()))
                    .collect();
                self.host
                    .params_set(proxy, &refs)
                    .map_err(|e| format!("refresh {}/{}: {e}", n.name, m.instance))?;
            }
        }
        Ok(())
    }

    /// Full convergence pass; caller holds `ops`.
    fn converge_locked(&self) -> Result<String, String> {
        let mut fresh: HashSet<String> = HashSet::new();
        let mut respawns: HashSet<String> = HashSet::new();
        for n in self.topo.managed() {
            let (running, generation) = {
                let st = self.state.lock();
                let ns = st.get(&n.name).expect("state row exists");
                (ns.child.is_some(), ns.generation)
            };
            if !running {
                self.spawn_node(&n.name)?;
                fresh.insert(n.name.clone());
                if generation > 0 {
                    respawns.insert(n.name.clone());
                }
            }
        }
        for n in self.topo.managed() {
            let attached = self.state.lock().get(&n.name).unwrap().node_tid.is_some();
            if !attached {
                self.attach(&n.name)?;
            }
        }
        for n in self.topo.managed() {
            for m in &n.modules {
                let loaded = self
                    .state
                    .lock()
                    .get(&n.name)
                    .unwrap()
                    .modules
                    .contains_key(&m.instance);
                if !loaded {
                    self.load_module(&n.name, m)?;
                }
            }
        }
        for r in &self.topo.routes {
            let applied = self
                .state
                .lock()
                .get(&r.on)
                .map(|n| n.routes_applied.contains(&r.id))
                .unwrap_or(false);
            if !applied {
                self.apply_route(r)?;
            }
        }
        let mut enabled_now = 0;
        for n in self.topo.managed() {
            let (tid, enabled) = {
                let st = self.state.lock();
                let ns = st.get(&n.name).unwrap();
                (ns.node_tid, ns.enabled)
            };
            if let (Some(tid), false) = (tid, enabled) {
                self.host
                    .enable(tid)
                    .map_err(|e| format!("enable {}: {e}", n.name))?;
                self.state.lock().get_mut(&n.name).unwrap().enabled = true;
                enabled_now += 1;
            }
        }
        self.refresh_watchers(&respawns)?;
        for n in self.topo.managed() {
            if self.registry.row(&n.name).map(|r| r.health) != Some(Health::Up) {
                self.registry.up(&n.name);
            }
        }
        Ok(format!(
            "converged: {} nodes ({} brought up, {} respawned), {} routes",
            self.topo.managed().count(),
            enabled_now,
            respawns.len(),
            self.topo.routes.len()
        ))
    }

    /// Forgets a dead incarnation: drops the child handle, stops
    /// host-side supervision of the stale URL, clears module/route
    /// bookkeeping here and un-applies every route *to* the node on
    /// its peers (their supervisors are evicting the stale alias).
    fn teardown_node(&self, node: &str) {
        let old_url = {
            let mut st = self.state.lock();
            let Some(ns) = st.get_mut(node) else { return };
            ns.child = None;
            ns.node_tid = None;
            ns.modules.clear();
            ns.proxies.clear();
            ns.routes_applied.clear();
            ns.enabled = false;
            std::mem::take(&mut ns.url)
        };
        if !old_url.is_empty() {
            let _ = self.host.executive().unsupervise(&old_url);
        }
        let incoming: Vec<(String, String)> = self
            .topo
            .routes
            .iter()
            .filter(|r| r.to_node == node)
            .map(|r| (r.on.clone(), r.id.clone()))
            .collect();
        let mut st = self.state.lock();
        for (on, id) in incoming {
            if let Some(ns) = st.get_mut(&on) {
                ns.routes_applied.remove(&id);
            }
        }
    }

    /// One background tick; skipped entirely when an apply/drain is
    /// in flight.
    fn poll_once(&self) {
        let Some(_g) = self.ops.try_lock() else {
            return;
        };
        for (x_fn, payload) in self.host.take_events() {
            if x_fn != XFN_PEER_DOWN {
                continue;
            }
            let Ok(map) = parse_kv(&payload) else {
                continue;
            };
            let Some(peer) = map.get("peer") else {
                continue;
            };
            if let Some(node) = self.node_by_url(peer) {
                self.registry.link_down(&node, &format!("peer={peer}"));
            }
        }
        let mut exited: Vec<(String, String)> = Vec::new();
        {
            let mut st = self.state.lock();
            for (name, ns) in st.iter_mut() {
                if let Some(child) = ns.child.as_mut() {
                    if let Ok(Some(status)) = child.try_wait() {
                        exited.push((name.clone(), status.to_string()));
                    }
                }
            }
        }
        for (name, detail) in &exited {
            self.registry.exited(name, detail);
            self.teardown_node(name);
        }
        if !exited.is_empty() {
            // Only nodes that were already converged respawn here;
            // apply() remains the explicit gate for first bring-up.
            if let Err(e) = self.converge_locked() {
                self.registry
                    .link_down(&exited[0].0, &format!("respawn failed (will retry): {e}"));
            }
            return;
        }
        let scrape = {
            let mut tick = self.scrape_tick.lock();
            *tick += 1;
            (*tick).is_multiple_of(self.cfg.scrape_every)
        };
        if scrape {
            let targets: Vec<(String, Tid)> = {
                let st = self.state.lock();
                st.iter()
                    .filter_map(|(n, ns)| ns.node_tid.map(|t| (n.clone(), t)))
                    .collect()
            };
            for (node, tid) in targets {
                match self.host.scrape(tid) {
                    Ok(_) => {
                        if self.registry.row(&node).map(|r| r.health) == Some(Health::Degraded) {
                            self.registry.up(&node);
                        }
                    }
                    Err(_) => self.registry.mark_degraded(&node),
                }
            }
        }
    }

    fn plan_locked(&self) -> Vec<String> {
        let mut actions = Vec::new();
        let st = self.state.lock();
        for n in self.topo.managed() {
            let ns = st.get(&n.name).expect("state row exists");
            if ns.child.is_none() {
                actions.push(format!("spawn {} (gen {})", n.name, ns.generation + 1));
            } else if ns.node_tid.is_none() {
                actions.push(format!("attach {}", n.name));
            }
            for m in &n.modules {
                if !ns.modules.contains_key(&m.instance) {
                    actions.push(format!("load {}/{} ({})", n.name, m.instance, m.factory));
                }
            }
        }
        for r in &self.topo.routes {
            let applied = st
                .get(&r.on)
                .map(|n| n.routes_applied.contains(&r.id))
                .unwrap_or(false);
            if !applied {
                actions.push(format!(
                    "route {}: {} -> {}/{} as '{}'",
                    r.id, r.on, r.to_node, r.to_instance, r.alias
                ));
            }
        }
        for n in self.topo.managed() {
            let ns = st.get(&n.name).expect("state row exists");
            if ns.node_tid.is_some() && !ns.enabled {
                actions.push(format!("enable {}", n.name));
            }
        }
        actions
    }

    fn drain_locked(&self, node: &str) -> Result<String, String> {
        if self.topo.node(node).map(|n| n.external).unwrap_or(true) {
            return Err(format!("'{node}' is not a managed node"));
        }
        let running = self
            .state
            .lock()
            .get(node)
            .map(|n| n.child.is_some())
            .unwrap_or(false);
        if !running {
            return Err(format!("'{node}' is not running"));
        }
        self.registry.draining(node);
        // Walk every module that declared a drain hook for this node
        // and let the data plane empty itself through its own
        // retry/failover paths before we stop anything.
        for w in self.topo.managed() {
            for m in &w.modules {
                let Some(drain_key) = &m.drain else { continue };
                if !m.watch.iter().any(|x| x == node) {
                    continue;
                }
                let alias = self
                    .topo
                    .routes
                    .iter()
                    .find(|r| r.on == w.name && r.to_node == node)
                    .map(|r| r.alias.clone())
                    .ok_or_else(|| format!("{}/{}: no route names '{node}'", w.name, m.instance))?;
                let proxy = self
                    .module_proxy(&w.name, &m.instance)
                    .ok_or_else(|| format!("{}/{} has no live proxy", w.name, m.instance))?;
                self.host
                    .params_set(proxy, &[(drain_key.as_str(), alias.as_str())])
                    .map_err(|e| format!("drain {}/{}: {e}", w.name, m.instance))?;
                if let Some(gate) = &m.drain_gate {
                    let clock = &self.cfg.clock;
                    let deadline = clock.now() + self.cfg.drain_timeout;
                    loop {
                        let inflight = self
                            .host
                            .params_get(proxy)
                            .ok()
                            .and_then(|map| map.get(gate).cloned());
                        if inflight.as_deref() == Some("0") {
                            break;
                        }
                        if clock.now() >= deadline {
                            return Err(format!(
                                "drain gate {}/{}:{gate} stuck at {:?}",
                                w.name, m.instance, inflight
                            ));
                        }
                        clock.sleep(Duration::from_millis(20));
                    }
                }
            }
        }
        self.registry.drained(node);
        // Clean stop: the executive acks the ParamsSet, then leaves
        // its dispatch loop and the process exits on its own.
        let node_tid = self
            .state
            .lock()
            .get(node)
            .and_then(|n| n.node_tid)
            .ok_or_else(|| format!("'{node}' not attached"))?;
        self.host
            .params_set(node_tid, &[("exec.stop", "1")])
            .map_err(|e| format!("stop {node}: {e}"))?;
        let clock = &self.cfg.clock;
        let deadline = clock.now() + Duration::from_secs(10);
        loop {
            let done = {
                let mut st = self.state.lock();
                let ns = st.get_mut(node).expect("state row exists");
                match ns.child.as_mut() {
                    None => true,
                    Some(child) => matches!(child.try_wait(), Ok(Some(_))),
                }
            };
            if done {
                break;
            }
            if clock.now() >= deadline {
                let _ = self.kill_node(node);
            }
            clock.sleep(Duration::from_millis(20));
        }
        self.registry.exited(node, "drained");
        self.teardown_node(node);
        let gen = {
            let st = self.state.lock();
            st.get(node).map(|n| n.generation + 1).unwrap_or(0)
        };
        self.converge_locked()?;
        Ok(format!("drained and restarted '{node}' (now gen {gen})"))
    }
}

impl ControlPlane for Controller {
    fn plan(&self) -> Vec<String> {
        let _g = self.ops.lock();
        self.plan_locked()
    }

    fn apply(&self) -> Result<String, String> {
        let _g = self.ops.lock();
        self.converge_locked()
    }

    fn registry(&self) -> Vec<RegistryRow> {
        self.registry
            .rows()
            .into_iter()
            .map(|r| RegistryRow {
                node: r.node,
                desired: r.desired.as_str().to_string(),
                actual: r.health.as_str().to_string(),
                generation: r.generation,
                url: r.url,
            })
            .collect()
    }

    fn drain(&self, node: &str) -> Result<String, String> {
        let _g = self.ops.lock();
        self.drain_locked(node)
    }

    fn status_json(&self) -> serde_json::Value {
        self.registry.status_json()
    }
}

impl Drop for Controller {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        let mut st = self.state.lock();
        for (_, ns) in st.iter_mut() {
            if let Some(child) = ns.child.as_mut() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

/// Builds the usual control-plane host: named executive with link
/// supervision (so managed-node deaths surface as local faults), a
/// TCP peer transport on an ephemeral port, the fault feed routed to
/// the host agent, dispatch loop running.
pub fn control_host(name: &str) -> Result<Arc<ControlHost>, String> {
    let mut config = ExecutiveConfig::named(name);
    config.supervision = Some(SupervisionConfig {
        interval: Duration::from_millis(50),
        suspect_after: 3,
        down_after: 6,
    });
    let host = ControlHost::with_config(config);
    let pt = TcpPt::bind("127.0.0.1:0", TablePool::with_defaults())
        .map_err(|e| format!("bind host tcp: {e:?}"))?;
    host.executive()
        .register_pt("tcp", pt)
        .map_err(|e| format!("register host tcp: {e:?}"))?;
    host.watch_local_faults();
    host.start();
    Ok(Arc::new(host))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::Launcher;
    use std::io;

    /// A launcher that refuses, for exercising plan/apply error paths
    /// without real processes.
    struct NoLaunch;
    impl Launcher for NoLaunch {
        fn spawn(&self, _spec: &LaunchSpec) -> io::Result<Child> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "no processes in unit tests",
            ))
        }
    }

    fn write_topo(name: &str) -> String {
        let dir = std::env::temp_dir().join(format!("xdaq-ctl-unit-{name}"));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("topo.xtop");
        std::fs::write(
            &path,
            format!(
                r#"
                [cluster]
                name   = "unit"
                rundir = "{rundir}"
                [node.a]
                [node.a.modules.m]
                factory = "m"
                [node.b]
                [route.a-b]
                on    = "a"
                to    = "b/n"
                alias = "b"
                [node.b.modules.n]
                factory = "n"
                "#,
                rundir = dir.display()
            ),
        )
        .unwrap();
        path.to_str().unwrap().to_string()
    }

    #[test]
    fn plan_lists_everything_before_first_apply() {
        let path = write_topo("plan");
        let host = control_host("unit-plan-host").unwrap();
        let ctl =
            Controller::new(&path, host, Box::new(NoLaunch), ControllerConfig::default()).unwrap();
        let plan = ControlPlane::plan(&*ctl);
        assert!(
            plan.iter().any(|l| l.contains("spawn a (gen 1)")),
            "{plan:?}"
        );
        assert!(plan.iter().any(|l| l.contains("spawn b")), "{plan:?}");
        assert!(plan.iter().any(|l| l.contains("load a/m")), "{plan:?}");
        assert!(plan.iter().any(|l| l.contains("route a-b")), "{plan:?}");
        let rows = ControlPlane::registry(&*ctl);
        assert_eq!(rows.len(), 2);
        assert!(rows
            .iter()
            .all(|r| r.actual == "pending" && r.desired == "up"));
        assert_eq!(ctl.status_json()["converged"], serde_json::json!(false));
    }

    #[test]
    fn apply_surfaces_launcher_failure() {
        let path = write_topo("fail");
        let host = control_host("unit-fail-host").unwrap();
        let ctl =
            Controller::new(&path, host, Box::new(NoLaunch), ControllerConfig::default()).unwrap();
        let err = ControlPlane::apply(&*ctl).unwrap_err();
        assert!(err.contains("spawn"), "{err}");
        assert!(ctl
            .drain("ghost")
            .unwrap_err()
            .contains("not a managed node"));
        assert!(ctl.drain("a").unwrap_err().contains("not running"));
    }
}
