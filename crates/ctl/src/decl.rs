//! Topology declarations: the desired state of a cluster as data.
//!
//! A declaration names the cluster, its nodes (one executive each),
//! the device-class instances to load on them, and the routes between
//! them. The controller ([`crate::Controller`]) diffs this against
//! reality and converges; the per-node runner ([`crate::runner`])
//! reads the same file to configure its own executive.
//!
//! ```text
//! [cluster]
//! name   = "evb"
//! rundir = "/tmp/xdaq-evb"          # url files + scratch
//!
//! [defaults]                        # node params unless overridden
//! workers = 1
//! supervision.interval_ms = 50
//!
//! [node.bu0]                        # a managed executive
//! flow.window = 64                  # flow.*/qos.* pushed at bring-up
//!
//! [node.bu0.modules.builder]        # a device-class instance
//! factory = "builder"               # ExecSwDownload factory name
//! rus     = "ru0,ru1"               # plain params pass through
//! watch   = "ru0"                   # re-push + refresh when ru0 respawns
//!
//! [node.ctl]                        # the (external) control host
//! external = true
//!
//! [route.evm-bu0]
//! on        = "mgr"                 # node that gets the proxy
//! to        = "bu0/builder"         # node/instance it points at
//! alias     = "bu0"                 # local name on `on`
//! supervise = true                  # heartbeat the link
//! ```
//!
//! Values of module parameters may embed `@url:<node>@`, replaced by
//! that node's live transport URL at (re)load time — the piece that
//! makes respawn-with-a-new-port declarative.

use crate::toml::{self, Table};
use std::collections::{HashMap, HashSet};

/// Module keys with meaning to the control plane, not the module.
const MODULE_RESERVED: &[&str] = &["factory", "watch", "refresh", "drain", "drain_gate"];

/// Node keys with meaning to the control plane, not the executive.
const NODE_RESERVED: &[&str] = &["external", "url"];

/// A device-class instance to load on a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleDecl {
    /// Instance name, unique on its node.
    pub instance: String,
    /// `ExecSwDownload` factory name.
    pub factory: String,
    /// Construction parameters, file order, possibly templated.
    pub params: Vec<(String, String)>,
    /// Nodes whose respawn re-pushes this module's templated params
    /// followed by the `refresh` key.
    pub watch: Vec<String>,
    /// ParamsSet key sent (as `<key>=1`) to refresh the module after a
    /// watched node respawns (e.g. `evb.rescan`).
    pub refresh: Option<String>,
    /// ParamsSet key that starts draining one peer (value = the
    /// peer's route alias on this module's node, e.g. `evb.drain`).
    pub drain: Option<String>,
    /// ParamsGet key polled to `"0"` before a drained peer may be
    /// stopped (e.g. `evb.drain_inflight`).
    pub drain_gate: Option<String>,
}

/// One node (executive) of the cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeDecl {
    /// Cluster-unique name.
    pub name: String,
    /// External nodes are declared but not managed: the control plane
    /// neither spawns nor converges them (the control host itself, a
    /// fixture process). Their URL comes from `url = "..."` or
    /// [`crate::Controller::set_external`].
    pub external: bool,
    /// Static URL for external nodes.
    pub url: Option<String>,
    /// Node-level parameters (merged over `[defaults]`): `workers`,
    /// `supervision.*` consumed by the runner; `flow.*` / `qos.*`
    /// pushed to the live executive at bring-up.
    pub params: HashMap<String, String>,
    /// Instances to load, file order.
    pub modules: Vec<ModuleDecl>,
}

/// A route: `on` gets a named, optionally supervised proxy for
/// `to_node/to_instance`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteDecl {
    /// Declaration id (`[route.<id>]`).
    pub id: String,
    /// Node that receives the proxy.
    pub on: String,
    /// Node hosting the target instance.
    pub to_node: String,
    /// Target instance name on `to_node`.
    pub to_instance: String,
    /// Registry alias on `on`.
    pub alias: String,
    /// Put the link under heartbeat supervision on `on`.
    pub supervise: bool,
}

/// The whole declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// Cluster name.
    pub cluster: String,
    /// Directory for url files and scratch state.
    pub rundir: String,
    /// Default node params.
    pub defaults: HashMap<String, String>,
    /// Nodes, file order.
    pub nodes: Vec<NodeDecl>,
    /// Routes, file order.
    pub routes: Vec<RouteDecl>,
}

/// Declaration failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeclError {
    /// 1-based line when known (0 = structural).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for DeclError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for DeclError {}

fn derr(line: usize, message: impl Into<String>) -> DeclError {
    DeclError {
        line,
        message: message.into(),
    }
}

fn truthy(v: &str) -> bool {
    matches!(v, "1" | "true" | "yes" | "on")
}

fn parse_module(inst: &str, t: &Table) -> Result<ModuleDecl, DeclError> {
    let factory = t
        .get("factory")
        .ok_or_else(|| derr(t.line, format!("module '{inst}' has no factory")))?
        .to_string();
    let list = |key: &str| -> Vec<String> {
        t.get(key)
            .map(|v| {
                v.split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default()
    };
    Ok(ModuleDecl {
        instance: inst.to_string(),
        factory,
        params: t
            .entries
            .iter()
            .filter(|(k, _)| !MODULE_RESERVED.contains(&k.as_str()))
            .cloned()
            .collect(),
        watch: list("watch"),
        refresh: t.get("refresh").map(str::to_string),
        drain: t.get("drain").map(str::to_string),
        drain_gate: t.get("drain_gate").map(str::to_string),
    })
}

impl Topology {
    /// Parses and validates a declaration.
    pub fn parse(text: &str) -> Result<Topology, DeclError> {
        let doc = toml::parse(text).map_err(|e| derr(e.line, e.message))?;
        let cluster_t = doc
            .table("cluster")
            .ok_or_else(|| derr(0, "missing [cluster] table"))?;
        let cluster = cluster_t
            .get("name")
            .ok_or_else(|| derr(cluster_t.line, "[cluster] needs name"))?
            .to_string();
        let rundir = cluster_t
            .get("rundir")
            .ok_or_else(|| derr(cluster_t.line, "[cluster] needs rundir"))?
            .to_string();
        let defaults: HashMap<String, String> = doc
            .table("defaults")
            .map(|t| t.entries.iter().cloned().collect())
            .unwrap_or_default();

        let mut nodes: Vec<NodeDecl> = Vec::new();
        for t in doc.children("node") {
            let rest = &t.path["node.".len()..];
            match rest.split_once('.') {
                // [node.<name>]
                None => {
                    let mut params = defaults.clone();
                    for (k, v) in &t.entries {
                        if !NODE_RESERVED.contains(&k.as_str()) {
                            params.insert(k.clone(), v.clone());
                        }
                    }
                    nodes.push(NodeDecl {
                        name: rest.to_string(),
                        external: t.get("external").map(truthy).unwrap_or(false),
                        url: t.get("url").map(str::to_string),
                        params,
                        modules: Vec::new(),
                    });
                }
                // [node.<name>.modules.<instance>]
                Some((name, sub)) => {
                    let Some(inst) = sub.strip_prefix("modules.") else {
                        return Err(derr(t.line, format!("bad node table [{}]", t.path)));
                    };
                    if inst.is_empty() || inst.contains('.') {
                        return Err(derr(t.line, format!("bad module table [{}]", t.path)));
                    }
                    let node = nodes.iter_mut().find(|n| n.name == name).ok_or_else(|| {
                        derr(t.line, format!("module for undeclared node '{name}'"))
                    })?;
                    node.modules.push(parse_module(inst, t)?);
                }
            }
        }

        let mut routes = Vec::new();
        for t in doc.children("route") {
            let id = t.path["route.".len()..].to_string();
            if id.contains('.') {
                return Err(derr(t.line, format!("bad route table [{}]", t.path)));
            }
            let need = |key: &str| {
                t.get(key)
                    .map(str::to_string)
                    .ok_or_else(|| derr(t.line, format!("route '{id}' needs {key}")))
            };
            let to = need("to")?;
            let (to_node, to_instance) = to
                .split_once('/')
                .ok_or_else(|| derr(t.line, format!("route '{id}': to must be node/instance")))?;
            routes.push(RouteDecl {
                on: need("on")?,
                alias: need("alias")?,
                to_node: to_node.to_string(),
                to_instance: to_instance.to_string(),
                supervise: t.get("supervise").map(truthy).unwrap_or(false),
                id,
            });
        }

        let topo = Topology {
            cluster,
            rundir,
            defaults,
            nodes,
            routes,
        };
        topo.validate()?;
        Ok(topo)
    }

    fn validate(&self) -> Result<(), DeclError> {
        let mut names = HashSet::new();
        for n in &self.nodes {
            if !names.insert(n.name.as_str()) {
                return Err(derr(0, format!("duplicate node '{}'", n.name)));
            }
            let mut insts = HashSet::new();
            for m in &n.modules {
                if !insts.insert(m.instance.as_str()) {
                    return Err(derr(
                        0,
                        format!("duplicate module '{}/{}'", n.name, m.instance),
                    ));
                }
                for w in &m.watch {
                    if self.node(w).is_none() {
                        return Err(derr(
                            0,
                            format!(
                                "module '{}/{}' watches unknown node '{w}'",
                                n.name, m.instance
                            ),
                        ));
                    }
                }
            }
            if n.external && !n.modules.is_empty() {
                return Err(derr(
                    0,
                    format!("external node '{}' cannot declare modules", n.name),
                ));
            }
        }
        for r in &self.routes {
            let on = self
                .node(&r.on)
                .ok_or_else(|| derr(0, format!("route '{}' on unknown node '{}'", r.id, r.on)))?;
            if on.external {
                return Err(derr(
                    0,
                    format!("route '{}' on external node '{}'", r.id, r.on),
                ));
            }
            let to = self.node(&r.to_node).ok_or_else(|| {
                derr(
                    0,
                    format!("route '{}' to unknown node '{}'", r.id, r.to_node),
                )
            })?;
            if !to.external && !to.modules.iter().any(|m| m.instance == r.to_instance) {
                return Err(derr(
                    0,
                    format!(
                        "route '{}' to unknown instance '{}/{}'",
                        r.id, r.to_node, r.to_instance
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Node lookup.
    pub fn node(&self, name: &str) -> Option<&NodeDecl> {
        self.nodes.iter().find(|n| n.name == name)
    }

    /// The nodes the control plane spawns and converges.
    pub fn managed(&self) -> impl Iterator<Item = &NodeDecl> {
        self.nodes.iter().filter(|n| !n.external)
    }

    /// Substitutes every `@url:<node>@` in `value` from the live URL
    /// map. Unknown nodes are an error — applying a declaration with
    /// a dangling reference must fail loudly, not route to "".
    pub fn substitute(value: &str, urls: &HashMap<String, String>) -> Result<String, String> {
        let mut out = String::with_capacity(value.len());
        let mut rest = value;
        while let Some(start) = rest.find("@url:") {
            out.push_str(&rest[..start]);
            let tail = &rest[start + "@url:".len()..];
            let Some(end) = tail.find('@') else {
                return Err(format!("unterminated @url: template in '{value}'"));
            };
            let node = &tail[..end];
            let url = urls
                .get(node)
                .ok_or_else(|| format!("@url:{node}@: no live url for node '{node}'"))?;
            out.push_str(url);
            rest = &tail[end + 1..];
        }
        out.push_str(rest);
        Ok(out)
    }

    /// True when any param value of `m` embeds a `@url:` template.
    pub fn is_templated(m: &ModuleDecl) -> bool {
        m.params.iter().any(|(_, v)| v.contains("@url:"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
        [cluster]
        name   = "mini"
        rundir = "/tmp/xdaq-mini"

        [defaults]
        workers = 1
        supervision.interval_ms = 50

        [node.ru0]
        [node.ru0.modules.readout]
        factory   = "readout"
        source_id = 0
        size      = 1024

        [node.mgr]
        flow.window = 64
        [node.mgr.modules.evm]
        factory    = "evm"
        readouts   = "ru0"
        bus        = "bu0"
        bu_urls    = "@url:bu0@"
        watch      = "bu0"
        refresh    = "evb.rescan"
        drain      = "evb.drain"
        drain_gate = "evb.drain_inflight"

        [node.bu0]
        [node.bu0.modules.builder]
        factory = "builder"
        rus     = "ru0"

        [node.ctl]
        external = true

        [route.mgr-bu0]
        on        = "mgr"
        to        = "bu0/builder"
        alias     = "bu0"
        supervise = true

        [route.mgr-ru0]
        on    = "mgr"
        to    = "ru0/readout"
        alias = "ru0"
    "#;

    #[test]
    fn parses_the_sample() {
        let t = Topology::parse(SAMPLE).unwrap();
        assert_eq!(t.cluster, "mini");
        assert_eq!(t.nodes.len(), 4);
        assert_eq!(t.managed().count(), 3);
        let mgr = t.node("mgr").unwrap();
        assert_eq!(
            mgr.params.get("flow.window").map(String::as_str),
            Some("64")
        );
        assert_eq!(
            mgr.params.get("workers").map(String::as_str),
            Some("1"),
            "defaults merge in"
        );
        let evm = &mgr.modules[0];
        assert_eq!(evm.factory, "evm");
        assert_eq!(evm.watch, vec!["bu0"]);
        assert_eq!(evm.refresh.as_deref(), Some("evb.rescan"));
        assert!(Topology::is_templated(evm));
        assert!(!Topology::is_templated(&t.node("ru0").unwrap().modules[0]));
        assert!(evm
            .params
            .iter()
            .all(|(k, _)| k != "factory" && k != "watch"));
        let r = &t.routes[0];
        assert_eq!((r.on.as_str(), r.to_node.as_str()), ("mgr", "bu0"));
        assert!(r.supervise);
        assert!(!t.routes[1].supervise);
    }

    #[test]
    fn substitution_resolves_urls() {
        let urls: HashMap<String, String> =
            [("bu0".to_string(), "tcp://127.0.0.1:41234".to_string())].into();
        assert_eq!(
            Topology::substitute("@url:bu0@,x", &urls).unwrap(),
            "tcp://127.0.0.1:41234,x"
        );
        assert!(Topology::substitute("@url:nope@", &urls).is_err());
        assert!(Topology::substitute("@url:broken", &urls).is_err());
        assert_eq!(Topology::substitute("plain", &urls).unwrap(), "plain");
    }

    #[test]
    fn validation_catches_dangling_references() {
        let bad = SAMPLE.replace("to        = \"bu0/builder\"", "to        = \"bu9/builder\"");
        assert!(Topology::parse(&bad).unwrap_err().message.contains("bu9"));
        let bad = SAMPLE.replace("watch      = \"bu0\"", "watch      = \"ghost\"");
        assert!(Topology::parse(&bad).unwrap_err().message.contains("ghost"));
        let bad = SAMPLE.replace("factory = \"builder\"", "notfactory = \"builder\"");
        assert!(Topology::parse(&bad)
            .unwrap_err()
            .message
            .contains("no factory"));
    }

    #[test]
    fn routes_on_external_nodes_rejected() {
        let bad =
            format!("{SAMPLE}\n[route.x]\non = \"ctl\"\nto = \"ru0/readout\"\nalias = \"r\"\n");
        assert!(Topology::parse(&bad)
            .unwrap_err()
            .message
            .contains("external"));
    }
}
