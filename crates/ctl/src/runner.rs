//! Per-node runner: turns a managed child process into the executive
//! its declaration asks for.
//!
//! The convergence loop spawns children through a [`Launcher`]; each
//! child calls [`run_managed_node`] with a closure that registers the
//! application's module factories, and the runner does the rest:
//! locate its own [`NodeDecl`] via the `XDAQ_CTL_*` environment,
//! build the executive (workers, supervision, flow control from node
//! params), bind a TCP peer transport on an ephemeral port, publish
//! the generation-stamped url file, and run until told to stop.
//!
//! The runner deliberately loads **no modules**: module load, routes
//! and enable are the controller's job over I2O executive frames
//! (`ExecSwDownload`, `ExecIopConnect`, `SysEnable`), exactly as the
//! paper configures remote executives from the primary host.
//!
//! [`Launcher`]: crate::launch::Launcher
//! [`NodeDecl`]: crate::decl::NodeDecl

use crate::decl::Topology;
use crate::launch::{self, ENV_GEN, ENV_NODE, ENV_RUNDIR, ENV_TOPO};
use std::sync::Arc;
use std::time::Duration;
use xdaq_core::{Executive, ExecutiveConfig, FlowConfig, PeerTransport, SupervisionConfig};
use xdaq_mempool::TablePool;
use xdaq_pt::{TcpPt, XptBackend, XptPt};

/// Environment handed to a managed child, decoded.
#[derive(Debug, Clone)]
pub struct ManagedEnv {
    /// Node name to assume.
    pub node: String,
    /// Topology file path.
    pub topo_path: String,
    /// Rundir for the url file.
    pub rundir: String,
    /// Incarnation generation.
    pub generation: u64,
}

impl ManagedEnv {
    /// Reads the `XDAQ_CTL_*` contract; `None` when not launched by a
    /// controller (lets one binary serve both roles).
    pub fn from_env() -> Option<ManagedEnv> {
        let node = std::env::var(ENV_NODE).ok()?;
        Some(ManagedEnv {
            node,
            topo_path: std::env::var(ENV_TOPO).ok()?,
            rundir: std::env::var(ENV_RUNDIR).ok()?,
            generation: std::env::var(ENV_GEN).ok()?.parse().ok()?,
        })
    }
}

fn param_u64(decl: &crate::decl::NodeDecl, key: &str, default: u64) -> u64 {
    decl.params
        .get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Builds the [`ExecutiveConfig`] a declaration implies for `node`.
///
/// * `workers` — worker threads (default 1).
/// * `supervision.interval_ms` / `.suspect_after` / `.down_after` —
///   link supervision cadence. Supervision is **always** on for
///   managed nodes (default 50 ms / 3 / 6): convergence depends on
///   peers noticing a dead node, evicting its routes, and freeing its
///   alias for the respawned incarnation.
/// * any `flow.*` key — enables credit-based flow control so those
///   keys are settable at bring-up ([`FlowConfig::default`] base).
pub fn node_config(topo: &Topology, node: &str) -> Result<ExecutiveConfig, String> {
    let decl = topo
        .node(node)
        .ok_or_else(|| format!("node '{node}' not in topology '{}'", topo.cluster))?;
    if decl.external {
        return Err(format!("node '{node}' is external, not runnable"));
    }
    let mut config = ExecutiveConfig::named(node);
    config.workers = param_u64(decl, "workers", 1) as usize;
    config.supervision = Some(SupervisionConfig {
        interval: Duration::from_millis(param_u64(decl, "supervision.interval_ms", 50)),
        suspect_after: param_u64(decl, "supervision.suspect_after", 3) as u32,
        down_after: param_u64(decl, "supervision.down_after", 6) as u32,
    });
    if decl.params.keys().any(|k| k.starts_with("flow.")) {
        config.flow = Some(FlowConfig::default());
    }
    Ok(config)
}

/// Binds the peer transport a declaration asks for, on an ephemeral
/// port. Params:
///
/// * `transport` — `tcp` (default) or `xpt`, the batched
///   submission/completion transport (DESIGN.md §15).
/// * `xpt.backend` — `auto` (default: io_uring where the kernel
///   grants rings, epoll otherwise), `uring` (fail if refused) or
///   `epoll`.
///
/// Returns the registration key and the canonical url to publish.
pub fn bind_transport(
    decl: &crate::decl::NodeDecl,
) -> Result<(&'static str, Arc<dyn PeerTransport>, String), String> {
    let transport = decl.params.get("transport").map_or("tcp", String::as_str);
    match transport {
        "tcp" => {
            let pt = TcpPt::bind("127.0.0.1:0", TablePool::with_defaults())
                .map_err(|e| format!("bind tcp: {e:?}"))?;
            let url = pt.addr().to_string();
            Ok(("tcp", pt, url))
        }
        "xpt" => {
            let backend = match decl
                .params
                .get("xpt.backend")
                .map_or("auto", String::as_str)
            {
                "auto" => XptBackend::Auto,
                "uring" => XptBackend::Uring,
                "epoll" => XptBackend::Epoll,
                other => return Err(format!("unknown xpt.backend '{other}'")),
            };
            let pt = XptPt::bind_with("127.0.0.1:0", TablePool::with_defaults(), backend)
                .map_err(|e| format!("bind xpt ({backend:?}): {e:?}"))?;
            let url = pt.addr().to_string();
            Ok(("xpt", pt, url))
        }
        other => Err(format!("unknown transport '{other}'")),
    }
}

/// Runs this process as the managed node named in its environment.
///
/// `setup` registers the application's module factories (and anything
/// else node-local) on the fresh executive before transports start.
/// Blocks until the controller stops the node (`exec.stop=1` via
/// `ParamsSet`) or the process is killed.
pub fn run_managed_node(setup: impl FnOnce(&Executive)) -> Result<(), String> {
    let env = ManagedEnv::from_env().ok_or("XDAQ_CTL_* environment missing or incomplete")?;
    let text = std::fs::read_to_string(&env.topo_path)
        .map_err(|e| format!("read {}: {e}", env.topo_path))?;
    let topo = Topology::parse(&text).map_err(|e| format!("{}: {e}", env.topo_path))?;
    let config = node_config(&topo, &env.node)?;
    let exec = Executive::new(config);

    let decl = topo
        .node(&env.node)
        .expect("node_config validated the declaration");
    let (key, pt, url) = bind_transport(decl)?;
    exec.register_pt(key, pt)
        .map_err(|e| format!("register {key} pt: {e:?}"))?;

    setup(&exec);
    exec.enable_all();
    exec.start_transports()
        .map_err(|e| format!("start transports: {e:?}"))?;
    launch::publish_url(&env.rundir, &env.node, env.generation, &url)
        .map_err(|e| format!("publish url: {e}"))?;

    exec.run();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOPO: &str = r#"
        [cluster]
        name   = "t"
        rundir = "/tmp/xdaq-ctl-runner-test"
        [defaults]
        workers = 2
        [node.a]
        flow.window = 8
        supervision.interval_ms = 20
        [node.b]
        workers = 1
        [node.c]
        transport = "xpt"
        xpt.backend = "epoll"
        [node.bad]
        transport = "carrier-pigeon"
        [node.x]
        external = true
    "#;

    #[test]
    fn node_config_reflects_declaration() {
        let topo = Topology::parse(TOPO).unwrap();
        let a = node_config(&topo, "a").unwrap();
        assert_eq!(a.node, "a");
        assert_eq!(a.workers, 2, "defaults apply");
        let sup = a.supervision.unwrap();
        assert_eq!(sup.interval, Duration::from_millis(20));
        assert_eq!((sup.suspect_after, sup.down_after), (3, 6));
        assert!(a.flow.is_some(), "flow.* params enable flow control");

        let b = node_config(&topo, "b").unwrap();
        assert_eq!(b.workers, 1, "node overrides defaults");
        assert!(b.flow.is_none());
        assert!(b.supervision.is_some(), "supervision always on");

        assert!(node_config(&topo, "x").unwrap_err().contains("external"));
        assert!(node_config(&topo, "nope")
            .unwrap_err()
            .contains("not in topology"));
    }

    #[test]
    fn transport_selection_honors_declaration() {
        let topo = Topology::parse(TOPO).unwrap();
        let (key, pt, url) = bind_transport(topo.node("a").unwrap()).unwrap();
        assert_eq!((key, pt.scheme()), ("tcp", "tcp"), "tcp is the default");
        assert!(url.starts_with("tcp://127.0.0.1:"), "got {url}");

        let (key, pt, url) = bind_transport(topo.node("c").unwrap()).unwrap();
        assert_eq!((key, pt.scheme()), ("xpt", "xpt"));
        assert!(url.starts_with("xpt://127.0.0.1:"), "got {url}");
        pt.stop();

        let Err(err) = bind_transport(topo.node("bad").unwrap()) else {
            panic!("carrier-pigeon transport must be rejected");
        };
        assert!(err.contains("unknown transport"), "got {err}");
    }
}
