//! A deliberately small TOML-ish reader for topology declarations.
//!
//! The workspace has no network access, so rather than vendoring a
//! full TOML implementation the control plane reads the subset its
//! declarations actually use:
//!
//! * `[table.path]` headers (bare dotted segments),
//! * `key = value` entries — values are double-quoted strings, or
//!   bare tokens (numbers, booleans, words) taken verbatim,
//! * `#` comments (whole-line and trailing) and blank lines.
//!
//! Everything parses to strings; the declaration layer
//! ([`crate::decl`]) owns typing and validation. Duplicate table
//! headers and duplicate keys within a table are rejected — in a
//! fleet declaration a silent last-wins would hide real mistakes.

/// One `[header]` section and its entries, in file order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Dotted header path (`node.bu0.modules.builder`). The implicit
    /// root table (entries before any header) has an empty path.
    pub path: String,
    /// 1-based line of the header (0 for the root table).
    pub line: usize,
    /// `key = value` entries in file order, values unquoted.
    pub entries: Vec<(String, String)>,
}

impl Table {
    /// First value for `key`.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed document: tables in file order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Doc {
    /// All tables, root first when it has entries.
    pub tables: Vec<Table>,
}

impl Doc {
    /// Table lookup by exact dotted path.
    pub fn table(&self, path: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.path == path)
    }

    /// Tables whose path starts with `prefix.` (children at any depth).
    pub fn children<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a Table> {
        self.tables.iter().filter(move |t| {
            t.path.len() > prefix.len() + 1 && t.path.starts_with(prefix) && {
                t.path.as_bytes()[prefix.len()] == b'.'
            }
        })
    }
}

/// Parse failure, located by 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Offending line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// A bare (unquoted) value or header segment: no whitespace, quotes,
/// brackets or comment markers.
fn valid_bare(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| !c.is_whitespace() && !matches!(c, '"' | '[' | ']' | '#' | '='))
}

/// Parses one value: `"quoted"` or a bare token. Returns the value
/// and anything left after it (must be blank or a comment).
fn parse_value(raw: &str, line: usize) -> Result<String, ParseError> {
    let raw = raw.trim();
    if let Some(rest) = raw.strip_prefix('"') {
        let Some(end) = rest.find('"') else {
            return Err(err(line, "unterminated string"));
        };
        let tail = rest[end + 1..].trim();
        if !(tail.is_empty() || tail.starts_with('#')) {
            return Err(err(
                line,
                format!("trailing garbage after string: '{tail}'"),
            ));
        }
        return Ok(rest[..end].to_string());
    }
    let bare = match raw.find('#') {
        Some(pos) => raw[..pos].trim(),
        None => raw,
    };
    if !valid_bare(bare) {
        return Err(err(line, format!("bad value '{raw}' (quote strings)")));
    }
    Ok(bare.to_string())
}

/// Parses a document.
pub fn parse(text: &str) -> Result<Doc, ParseError> {
    let mut doc = Doc::default();
    let mut current = Table {
        path: String::new(),
        line: 0,
        entries: Vec::new(),
    };
    let flush = |t: &mut Table, doc: &mut Doc| {
        if !t.path.is_empty() || !t.entries.is_empty() {
            doc.tables.push(std::mem::replace(
                t,
                Table {
                    path: String::new(),
                    line: 0,
                    entries: Vec::new(),
                },
            ));
        }
    };
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let Some(end) = rest.find(']') else {
                return Err(err(line_no, "missing ']' in table header"));
            };
            let tail = rest[end + 1..].trim();
            if !(tail.is_empty() || tail.starts_with('#')) {
                return Err(err(line_no, "trailing garbage after table header"));
            }
            let path = rest[..end].trim();
            if path.is_empty() || !path.split('.').all(valid_bare) {
                return Err(err(line_no, format!("bad table path '{path}'")));
            }
            if doc.tables.iter().any(|t| t.path == path) || current.path == path {
                return Err(err(line_no, format!("duplicate table [{path}]")));
            }
            flush(&mut current, &mut doc);
            current = Table {
                path: path.to_string(),
                line: line_no,
                entries: Vec::new(),
            };
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(err(
                line_no,
                format!("expected 'key = value', got '{line}'"),
            ));
        };
        let key = key.trim();
        if !valid_bare(key) || !key.split('.').all(valid_bare) {
            return Err(err(line_no, format!("bad key '{key}'")));
        }
        if current.entries.iter().any(|(k, _)| k == key) {
            return Err(err(line_no, format!("duplicate key '{key}'")));
        }
        let value = parse_value(value, line_no)?;
        current.entries.push((key.to_string(), value));
    }
    flush(&mut current, &mut doc);
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_and_values() {
        let doc = parse(
            r#"
            # a topology
            top = "level"
            [cluster]
            name = "evb"   # trailing comment
            count = 3
            flag = true
            [node.bu0.modules.builder]
            factory = "builder"
            timeout_ms = 40
            "#,
        )
        .unwrap();
        assert_eq!(doc.tables.len(), 3);
        assert_eq!(doc.tables[0].path, "");
        assert_eq!(doc.tables[0].get("top"), Some("level"));
        let c = doc.table("cluster").unwrap();
        assert_eq!(c.get("name"), Some("evb"));
        assert_eq!(c.get("count"), Some("3"));
        assert_eq!(c.get("flag"), Some("true"));
        let m = doc.table("node.bu0.modules.builder").unwrap();
        assert_eq!(m.get("factory"), Some("builder"));
        assert_eq!(m.get("timeout_ms"), Some("40"));
    }

    #[test]
    fn children_iterates_prefix() {
        let doc = parse("[node.a]\nx=1\n[node.b]\nx=2\n[nodeish]\nx=3\n").unwrap();
        let kids: Vec<&str> = doc.children("node").map(|t| t.path.as_str()).collect();
        assert_eq!(kids, vec!["node.a", "node.b"]);
    }

    #[test]
    fn urls_and_templates_survive_quoting() {
        let doc =
            parse("[r]\nurl = \"tcp://127.0.0.1:0\"\nbus = \"@url:bu0@,@url:bu1@\"\n").unwrap();
        let t = doc.table("r").unwrap();
        assert_eq!(t.get("url"), Some("tcp://127.0.0.1:0"));
        assert_eq!(t.get("bus"), Some("@url:bu0@,@url:bu1@"));
    }

    #[test]
    fn rejects_malformations_with_line_numbers() {
        assert_eq!(parse("[broken\n").unwrap_err().line, 1);
        assert_eq!(parse("\nkey value\n").unwrap_err().line, 2);
        assert_eq!(parse("k = \"unterminated\n").unwrap_err().line, 1);
        assert_eq!(parse("[t]\nk = 1\nk = 2\n").unwrap_err().line, 3);
        assert_eq!(parse("[t]\nx=1\n[t]\ny=2\n").unwrap_err().line, 3);
        assert!(parse("k = two words\n").is_err());
    }
}
