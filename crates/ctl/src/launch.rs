//! Process launching: how the convergence loop turns a [`NodeDecl`]
//! into a running executive.
//!
//! The controller is policy, the [`Launcher`] is mechanism. The stock
//! [`SelfExec`] re-executes the current binary with a fixed argument
//! vector and per-node environment — the same trick the integration
//! suite uses for multi-process tests, and the closest local-process
//! analogue to the paper's "boot an executive on every IOP". A custom
//! `Launcher` can wrap the spawn in anything (rsh in the paper's era;
//! containers today) as long as the child honours the `XDAQ_CTL_*`
//! contract below and calls [`crate::runner::run_managed_node`].
//!
//! [`NodeDecl`]: crate::decl::NodeDecl

use std::io;
use std::process::{Child, Command, Stdio};

/// Environment: node name the child must assume.
pub const ENV_NODE: &str = "XDAQ_CTL_NODE";
/// Environment: path of the topology declaration file.
pub const ENV_TOPO: &str = "XDAQ_CTL_TOPO";
/// Environment: rundir for url files (overrides the declaration's).
pub const ENV_RUNDIR: &str = "XDAQ_CTL_RUNDIR";
/// Environment: incarnation generation, echoed into the url file so
/// the controller never reads a stale incarnation's address.
pub const ENV_GEN: &str = "XDAQ_CTL_GEN";

/// What to launch.
#[derive(Debug, Clone)]
pub struct LaunchSpec {
    /// Node name.
    pub node: String,
    /// Topology file path.
    pub topo_path: String,
    /// Rundir for url files.
    pub rundir: String,
    /// Incarnation generation (1-based).
    pub generation: u64,
}

/// Spawns managed executives.
pub trait Launcher: Send + Sync {
    /// Starts the node's process. The child must publish
    /// `<rundir>/<node>.url` containing `<generation> <url>` once its
    /// transport is listening.
    fn spawn(&self, spec: &LaunchSpec) -> io::Result<Child>;
}

/// Re-executes the current binary with fixed arguments plus the
/// `XDAQ_CTL_*` environment.
pub struct SelfExec {
    /// Arguments passed to the child (e.g. a test-harness filter that
    /// routes it into the node entry point).
    pub args: Vec<String>,
}

impl SelfExec {
    /// Launcher with the given child argument vector.
    pub fn new(args: &[&str]) -> Self {
        SelfExec {
            args: args.iter().map(|s| s.to_string()).collect(),
        }
    }
}

impl Launcher for SelfExec {
    fn spawn(&self, spec: &LaunchSpec) -> io::Result<Child> {
        let exe = std::env::current_exe()?;
        Command::new(exe)
            .args(&self.args)
            .env(ENV_NODE, &spec.node)
            .env(ENV_TOPO, &spec.topo_path)
            .env(ENV_RUNDIR, &spec.rundir)
            .env(ENV_GEN, spec.generation.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
    }
}

/// Atomically publishes `<rundir>/<node>.url` with `<gen> <url>`.
pub fn publish_url(rundir: &str, node: &str, generation: u64, url: &str) -> io::Result<()> {
    std::fs::create_dir_all(rundir)?;
    let tmp = format!("{rundir}/.{node}.url.tmp");
    let fin = format!("{rundir}/{node}.url");
    std::fs::write(&tmp, format!("{generation} {url}\n"))?;
    std::fs::rename(&tmp, &fin)
}

/// Reads a node's url file if it matches `generation`.
pub fn read_url(rundir: &str, node: &str, generation: u64) -> Option<String> {
    let text = std::fs::read_to_string(format!("{rundir}/{node}.url")).ok()?;
    let (gen, url) = text.trim().split_once(' ')?;
    (gen.parse::<u64>().ok()? == generation).then(|| url.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_file_roundtrip_is_generation_gated() {
        let dir = std::env::temp_dir().join("xdaq-ctl-launch-test");
        let dir = dir.to_str().unwrap();
        let _ = std::fs::remove_dir_all(dir);
        assert_eq!(read_url(dir, "n", 1), None, "missing file");
        publish_url(dir, "n", 1, "tcp://127.0.0.1:4000").unwrap();
        assert_eq!(
            read_url(dir, "n", 1).as_deref(),
            Some("tcp://127.0.0.1:4000")
        );
        assert_eq!(read_url(dir, "n", 2), None, "stale incarnation rejected");
        publish_url(dir, "n", 2, "tcp://127.0.0.1:4001").unwrap();
        assert_eq!(
            read_url(dir, "n", 2).as_deref(),
            Some("tcp://127.0.0.1:4001")
        );
        let _ = std::fs::remove_dir_all(dir);
    }
}
