//! Criterion microbenches of the scheduling queue (7 priority FIFOs
//! with round-robin device dispatch) and the SPSC "hardware FIFO"
//! ring — the two queues on every message's path.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xdaq_core::{Delivery, SchedQueue};
use xdaq_gm::ring::spsc_ring;
use xdaq_i2o::{Message, Priority, Tid};
use xdaq_mempool::{FrameAllocator, TablePool};

fn mk_delivery(pool: &dyn FrameAllocator, target: u16, pri: u8) -> Delivery {
    let m = Message::build_private(Tid::new(target).unwrap(), Tid::HOST, 1, 1)
        .priority(Priority::new(pri).unwrap())
        .payload(vec![0u8; 64])
        .finish();
    Delivery::from_message(&m, pool).unwrap()
}

fn bench_sched_queue(c: &mut Criterion) {
    let pool = TablePool::with_defaults();
    c.bench_function("schedq_push_pop_single_device", |b| {
        let q = SchedQueue::new();
        b.iter(|| {
            let _ = q.push(mk_delivery(&*pool, 0x10, 3));
            black_box(q.pop().unwrap());
        })
    });
    c.bench_function("schedq_push_pop_16_devices_7_priorities", |b| {
        let q = SchedQueue::new();
        let mut i = 0u32;
        b.iter(|| {
            let tid = 0x10 + (i % 16) as u16;
            let pri = (i % 7) as u8;
            i += 1;
            let _ = q.push(mk_delivery(&*pool, tid, pri));
            black_box(q.pop().unwrap());
        })
    });
}

fn bench_spsc_ring(c: &mut Criterion) {
    c.bench_function("spsc_ring_push_pop", |b| {
        let (p, cns) = spsc_ring::<u64>(1024);
        let mut v = 0u64;
        b.iter(|| {
            p.push(v).unwrap();
            v += 1;
            black_box(cns.pop().unwrap());
        })
    });
}

fn bench_route_lookup(c: &mut Criterion) {
    use xdaq_core::RouteTable;
    let rt = RouteTable::new();
    for i in 0x10..0x110u16 {
        rt.add_local(Tid::new(i).unwrap());
    }
    rt.add_peer(
        Tid::new(0x200).unwrap(),
        "gm://2:0".parse().unwrap(),
        Tid::new(0x20).unwrap(),
    );
    c.bench_function("route_lookup_local", |b| {
        let tid = Tid::new(0x80).unwrap();
        b.iter(|| black_box(rt.lookup(tid)))
    });
    c.bench_function("route_lookup_peer", |b| {
        let tid = Tid::new(0x200).unwrap();
        b.iter(|| black_box(rt.lookup(tid)))
    });
}

criterion_group!(
    benches,
    bench_sched_queue,
    bench_spsc_ring,
    bench_route_lookup
);
criterion_main!(benches);
