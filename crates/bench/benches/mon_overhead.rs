//! Cost of the monitoring layer on the dispatch hot path.
//!
//! The design target: with tracing **disabled**, the per-dispatch cost
//! of all instrumentation (counters, queue gauges, the tracer's gate
//! check) stays below ~5 ns — one relaxed add per counter and a single
//! load+branch for the tracer. These benches pin each primitive next to
//! its uninstrumented baseline so a regression shows up as a gap:
//!
//! * `schedq_*` — the scheduling queue with and without depth gauges;
//! * `tracer_record_*` — the tracer's disabled single-branch path vs
//!   the enabled ring write;
//! * `counter_inc` / `histogram_record` — the registry primitives;
//! * `dispatch_roundtrip_*` — a whole executive post→dispatch cycle,
//!   tracer off vs on (the end-to-end number the <5 ns target rolls
//!   into).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xdaq_core::{Delivery, SchedQueue};
use xdaq_i2o::{Message, Priority, Tid, NUM_PRIORITIES};
use xdaq_mempool::{FrameAllocator, TablePool};
use xdaq_mon::{FrameTracer, Gauge, Registry, TraceEvent};

fn mk_delivery(pool: &dyn FrameAllocator, target: u16, pri: u8) -> Delivery {
    let m = Message::build_private(Tid::new(target).unwrap(), Tid::HOST, 1, 1)
        .priority(Priority::new(pri).unwrap())
        .payload(vec![0u8; 64])
        .finish();
    Delivery::from_message(&m, pool).unwrap()
}

fn bench_queue_gauges(c: &mut Criterion) {
    let pool = TablePool::with_defaults();
    c.bench_function("schedq_push_pop_plain", |b| {
        let q = SchedQueue::new();
        b.iter(|| {
            let _ = q.push(mk_delivery(&*pool, 0x10, 3));
            black_box(q.pop().unwrap());
        })
    });
    c.bench_function("schedq_push_pop_gauged", |b| {
        let reg = Registry::new();
        let gauges: [Gauge; NUM_PRIORITIES] =
            std::array::from_fn(|i| reg.gauge(&format!("queue.depth.p{i}")));
        let q = SchedQueue::with_gauges(gauges);
        b.iter(|| {
            let _ = q.push(mk_delivery(&*pool, 0x10, 3));
            black_box(q.pop().unwrap());
        })
    });
}

fn bench_tracer(c: &mut Criterion) {
    c.bench_function("tracer_record_disabled", |b| {
        let t = FrameTracer::new(1024);
        b.iter(|| t.record(TraceEvent::Dispatch, black_box(7), black_box(9)))
    });
    c.bench_function("tracer_record_enabled", |b| {
        let t = FrameTracer::new(1024);
        t.set_enabled(true);
        b.iter(|| t.record(TraceEvent::Dispatch, black_box(7), black_box(9)))
    });
}

fn bench_registry_primitives(c: &mut Criterion) {
    let reg = Registry::new();
    c.bench_function("counter_inc", |b| {
        let counter = reg.counter("bench.dispatched");
        b.iter(|| counter.inc())
    });
    c.bench_function("gauge_add", |b| {
        let gauge = reg.gauge("bench.depth");
        b.iter(|| gauge.add(black_box(1)))
    });
    c.bench_function("histogram_record", |b| {
        let h = reg.histogram("bench.latency");
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(997);
            h.record(black_box(v));
        })
    });
}

fn bench_dispatch_roundtrip(c: &mut Criterion) {
    use xdaq_app::{Ponger, ORG_DAQ};
    use xdaq_core::{Executive, ExecutiveConfig};

    // run_available drains what post enqueued; one iteration is a full
    // route→queue→dispatch cycle through the executive.
    for (name, trace) in [
        ("dispatch_roundtrip_trace_off", false),
        ("dispatch_roundtrip_trace_on", true),
    ] {
        c.bench_function(name, |b| {
            let exec = Executive::new(ExecutiveConfig::named("bench"));
            let pong = exec.register("pong", Box::new(Ponger::new()), &[]).unwrap();
            exec.enable_all();
            exec.core().monitors().tracer().set_enabled(trace);
            b.iter(|| {
                exec.post(Message::build_private(pong, Tid::HOST, ORG_DAQ, 0x0001).finish())
                    .unwrap();
                black_box(exec.run_once());
            })
        });
    }
}

criterion_group!(
    benches,
    bench_queue_gauges,
    bench_tracer,
    bench_registry_primitives,
    bench_dispatch_roundtrip
);
criterion_main!(benches);
