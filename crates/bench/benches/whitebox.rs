//! Criterion microbenches of the individual whitebox activities
//! (Table 1): frame encode/decode, demultiplex lookup, frameSend path.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xdaq_core::{Delivery, Executive, ExecutiveConfig, I2oListener};
use xdaq_i2o::{Message, MsgHeader, Tid};
use xdaq_mempool::{FrameAllocator, TablePool};

fn bench_frame_codec(c: &mut Criterion) {
    let msg = Message::build_private(
        Tid::new(0x123).unwrap(),
        Tid::new(0x456).unwrap(),
        0x0da0,
        0x10,
    )
    .payload(vec![0xA5u8; 1024])
    .finish();
    let wire = msg.encode_vec();
    let mut buf = vec![0u8; wire.len()];

    c.bench_function("frame_encode_1k", |b| {
        b.iter(|| black_box(msg.encode(&mut buf).unwrap()))
    });
    c.bench_function("frame_decode_header", |b| {
        b.iter(|| black_box(MsgHeader::decode(&wire).unwrap()))
    });
    c.bench_function("frame_decode_full", |b| {
        b.iter(|| black_box(Message::decode(&wire).unwrap()))
    });
}

fn bench_delivery(c: &mut Criterion) {
    let pool = TablePool::with_defaults();
    let msg = Message::build_private(Tid::new(0x10).unwrap(), Tid::new(0x20).unwrap(), 1, 1)
        .payload(vec![0u8; 1024])
        .finish();
    c.bench_function("delivery_from_message_1k", |b| {
        b.iter(|| black_box(Delivery::from_message(&msg, &*pool).unwrap()))
    });
    let wire = msg.encode_vec();
    c.bench_function("delivery_from_buf_1k", |b| {
        b.iter(|| {
            let mut fb = pool.alloc(wire.len()).unwrap();
            fb.copy_from_slice(&wire);
            black_box(Delivery::from_buf(fb).unwrap())
        })
    });
}

/// Local dispatch round trip: post a private frame to a no-op device
/// and run the executive until idle — the demux+upcall+release path
/// without any transport.
fn bench_local_dispatch(c: &mut Criterion) {
    struct Nop;
    impl I2oListener for Nop {
        fn class(&self) -> xdaq_i2o::DeviceClass {
            xdaq_i2o::DeviceClass::Application(1)
        }
        fn on_private(&mut self, _ctx: &mut xdaq_core::Dispatcher<'_>, msg: Delivery) {
            black_box(msg.payload().len());
        }
    }
    let exec = Executive::new(ExecutiveConfig::named("bench"));
    let tid = exec.register("nop", Box::new(Nop), &[]).unwrap();
    exec.enable_all();
    let msg = Message::build_private(tid, Tid::HOST, 1, 1)
        .payload(vec![0u8; 64])
        .finish();
    c.bench_function("local_dispatch_64B", |b| {
        b.iter(|| {
            exec.post(msg.clone()).unwrap();
            while exec.run_once() > 0 {}
        })
    });
}

criterion_group!(
    benches,
    bench_frame_codec,
    bench_delivery,
    bench_local_dispatch
);
criterion_main!(benches);
