//! Criterion version of the FIG6 blackbox experiment: round-trip cost
//! of one XDAQ ping-pong call over the GM PT, per payload size, against
//! the raw-GM baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::atomic::Ordering;
use xdaq_app::{xfn, PingState, Pinger, Ponger, ORG_DAQ};
use xdaq_core::{Executive, ExecutiveConfig, PtMode};
use xdaq_gm::{Fabric, GmAddr, GmEvent, NodeId, PortConfig, PortId};
use xdaq_i2o::{Message, Tid};
use xdaq_mempool::TablePool;
use xdaq_pt::GmPt;

/// One prepared XDAQ ping-pong pair driven cooperatively.
struct Rig {
    a: Executive,
    b: Executive,
    ping_tid: Tid,
    state: std::sync::Arc<PingState>,
}

impl Rig {
    fn new(payload: usize) -> Rig {
        let fabric = Fabric::new();
        let a = Executive::new(ExecutiveConfig::named("ba"));
        let b = Executive::new(ExecutiveConfig::named("bb"));
        let pt_a = GmPt::open(
            &fabric,
            1,
            0,
            PtMode::Polling,
            TablePool::with_defaults(),
            None,
        )
        .unwrap();
        let pt_b = GmPt::open(
            &fabric,
            2,
            0,
            PtMode::Polling,
            TablePool::with_defaults(),
            None,
        )
        .unwrap();
        a.register_pt("a.gm", pt_a).unwrap();
        b.register_pt("b.gm", pt_b).unwrap();
        let state = PingState::new();
        let pong = b.register("pong", Box::new(Ponger::new()), &[]).unwrap();
        let proxy = a.proxy("gm://2:0", pong, None).unwrap();
        let ping_tid = a
            .register(
                "ping",
                Box::new(Pinger::new(state.clone())),
                &[
                    ("peer", &proxy.raw().to_string()),
                    ("payload", &payload.to_string()),
                ],
            )
            .unwrap();
        a.enable_all();
        b.enable_all();
        Rig {
            a,
            b,
            ping_tid,
            state,
        }
    }

    /// Runs `n` round trips and returns when they completed.
    fn run(&self, n: u64) {
        self.state.reset();
        // Reconfigure the count lazily via params is not needed: the
        // pinger reads params on PING_START; patch via the device API.
        self.a
            .post(
                Message::util(self.ping_tid, Tid::HOST, xdaq_i2o::UtilFn::ParamsSet)
                    .payload(xdaq_core::config::kv(&[("count", &n.to_string())]))
                    .finish(),
            )
            .unwrap();
        self.a
            .post(
                Message::build_private(self.ping_tid, Tid::HOST, ORG_DAQ, xfn::PING_START).finish(),
            )
            .unwrap();
        while !self.state.done.load(Ordering::SeqCst) {
            self.a.run_once();
            self.b.run_once();
        }
    }
}

fn bench_xdaq_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("blackbox_xdaq_gm");
    for payload in [1usize, 256, 1024, 4096] {
        let rig = Rig::new(payload);
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(payload), &payload, |bch, _| {
            bch.iter_custom(|iters| {
                let t0 = std::time::Instant::now();
                rig.run(iters);
                t0.elapsed()
            });
        });
    }
    group.finish();
}

fn bench_raw_gm_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("blackbox_raw_gm");
    for payload in [1usize, 256, 1024, 4096] {
        let fabric = Fabric::new();
        let a = fabric
            .open_port_with(NodeId(1), PortId(0), PortConfig::unlimited())
            .unwrap();
        let b = fabric
            .open_port_with(NodeId(2), PortId(0), PortConfig::unlimited())
            .unwrap();
        let dest = GmAddr {
            node: NodeId(2),
            port: PortId(0),
        };
        let msg = vec![0u8; payload];
        group.bench_with_input(BenchmarkId::from_parameter(payload), &payload, |bch, _| {
            bch.iter(|| {
                a.send(dest, &msg, 0).unwrap();
                loop {
                    match b.poll() {
                        Some(GmEvent::Received { src, data }) => {
                            b.send(src, &data, 0).unwrap();
                            break;
                        }
                        _ => std::hint::spin_loop(),
                    }
                }
                loop {
                    match a.poll() {
                        Some(GmEvent::Received { .. }) => break,
                        _ => std::hint::spin_loop(),
                    }
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_xdaq_roundtrip, bench_raw_gm_roundtrip);
criterion_main!(benches);
