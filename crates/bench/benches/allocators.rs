//! Criterion version of the ALLOC ablation: alloc/free cycles per
//! scheme and working set.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::VecDeque;
use std::hint::black_box;
use std::sync::Arc;
use xdaq_mempool::{FrameAllocator, SimplePool, TablePool};

fn pools() -> Vec<(&'static str, Arc<dyn FrameAllocator>)> {
    vec![
        ("simple", SimplePool::with_defaults()),
        ("table", TablePool::with_defaults()),
    ]
}

fn bench_alloc_free_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("alloc_free_cycle");
    for (name, pool) in pools() {
        for size in [64usize, 4096, 65536] {
            group.bench_with_input(BenchmarkId::new(name, size), &size, |b, &size| {
                b.iter(|| {
                    let buf = pool.alloc(size).unwrap();
                    black_box(buf.len());
                })
            });
        }
    }
    group.finish();
}

fn bench_alloc_with_live_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("alloc_live_window_512");
    let sizes = [64usize, 4096, 64, 1024, 4096, 64, 256, 4096];
    for (name, pool) in pools() {
        group.bench_function(name, |b| {
            let mut window = VecDeque::with_capacity(513);
            let mut i = 0usize;
            b.iter(|| {
                let buf = pool.alloc(sizes[i % sizes.len()]).unwrap();
                i += 1;
                window.push_back(buf);
                if window.len() > 512 {
                    black_box(window.pop_front());
                }
            })
        });
    }
    group.finish();
}

fn bench_shared_frames(c: &mut Criterion) {
    let pool = TablePool::with_defaults();
    c.bench_function("shared_frame_clone_drop", |b| {
        let shared = pool.alloc(4096).unwrap().into_shared();
        b.iter(|| {
            let c1 = shared.clone();
            let c2 = shared.clone();
            black_box((c1.len(), c2.len()));
        })
    });
}

criterion_group!(
    benches,
    bench_alloc_free_cycle,
    bench_alloc_with_live_window,
    bench_shared_frames
);
criterion_main!(benches);
