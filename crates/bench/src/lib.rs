//! Shared experiment harness for the paper's evaluation (§5).
//!
//! All experiments run the *blackbox* setup of the paper: one pinger
//! device flooding one ponger device on another node, over the
//! Myrinet/GM substrate. On this machine the two executives are driven
//! **cooperatively on one thread** (`a.run_once(); b.run_once();` in a
//! loop): with a single-core host, measuring across preemptive threads
//! would measure the OS scheduler, not the framework. The paper's
//! quantity of interest — CPU time added per message by the XDAQ layer
//! — is exactly what the cooperative drive isolates.

use std::sync::atomic::Ordering;

use xdaq_app::{xfn, PingState, Pinger, Ponger, ORG_DAQ};
use xdaq_core::{AllocatorKind, Executive, ExecutiveConfig, PtMode};
use xdaq_gm::{Fabric, GmAddr, GmEvent, LatencyModel, NodeId, PortConfig, PortId};
use xdaq_i2o::{Message, Tid};
use xdaq_mempool::{SimplePool, TablePool};
use xdaq_pt::GmPt;

/// Result of one ping-pong run.
pub struct PingRun {
    /// One-way latencies (RTT/2) in nanoseconds, one per call.
    pub one_way_ns: Vec<u64>,
    /// The pinger-side executive (for probe/stat readout).
    pub exec_a: Executive,
    /// The ponger-side executive.
    pub exec_b: Executive,
}

/// Configuration of a blackbox run.
#[derive(Clone, Copy)]
pub struct BlackboxConfig {
    /// Payload bytes per ping.
    pub payload: usize,
    /// Round trips to measure.
    pub calls: u64,
    /// Wire latency model for the GM fabric.
    pub wire: LatencyModel,
    /// Buffer-pool scheme on both executives.
    pub allocator: AllocatorKind,
    /// Whitebox probe ring capacity (None = probes off).
    pub probes: Option<usize>,
}

impl Default for BlackboxConfig {
    fn default() -> Self {
        BlackboxConfig {
            payload: 1,
            calls: 10_000,
            wire: LatencyModel::ZERO,
            allocator: AllocatorKind::Table,
            probes: None,
        }
    }
}

/// Runs the paper's blackbox flood/echo test: XDAQ over the GM PT,
/// two executives driven cooperatively. Returns per-call one-way
/// latencies.
pub fn xdaq_gm_pingpong(cfg: BlackboxConfig) -> PingRun {
    let fabric = Fabric::with_latency(cfg.wire);
    let mut exec_cfg_a = ExecutiveConfig::named("bench-a");
    exec_cfg_a.allocator = cfg.allocator;
    exec_cfg_a.probe_capacity = cfg.probes;
    let mut exec_cfg_b = ExecutiveConfig::named("bench-b");
    exec_cfg_b.allocator = cfg.allocator;
    exec_cfg_b.probe_capacity = cfg.probes;
    let a = Executive::new(exec_cfg_a);
    let b = Executive::new(exec_cfg_b);

    let pool_a: xdaq_mempool::DynAllocator = match cfg.allocator {
        AllocatorKind::Simple => SimplePool::with_defaults(),
        AllocatorKind::Table => TablePool::with_defaults(),
    };
    let pool_b: xdaq_mempool::DynAllocator = match cfg.allocator {
        AllocatorKind::Simple => SimplePool::with_defaults(),
        AllocatorKind::Table => TablePool::with_defaults(),
    };
    // Polling-mode GM PTs: the executive loop itself scans the port
    // (paper §4 polling mode, one PT ⇒ the efficient configuration).
    let pt_a = GmPt::open(&fabric, 1, 0, PtMode::Polling, pool_a, a.probes().cloned())
        .expect("open GM port a");
    let pt_b = GmPt::open(&fabric, 2, 0, PtMode::Polling, pool_b, b.probes().cloned())
        .expect("open GM port b");
    a.register_pt("a.gm", pt_a).unwrap();
    b.register_pt("b.gm", pt_b).unwrap();

    let state = PingState::new();
    let pong_tid = b.register("pong", Box::new(Ponger::new()), &[]).unwrap();
    let proxy = a.proxy("gm://2:0", pong_tid, None).unwrap();
    let ping_tid = a
        .register(
            "ping",
            Box::new(Pinger::new(state.clone())),
            &[
                ("peer", &proxy.raw().to_string()),
                ("payload", &cfg.payload.to_string()),
                ("count", &cfg.calls.to_string()),
            ],
        )
        .unwrap();
    a.enable_all();
    b.enable_all();
    a.post(Message::build_private(ping_tid, Tid::HOST, ORG_DAQ, xfn::PING_START).finish())
        .unwrap();

    // Cooperative drive.
    while !state.done.load(Ordering::SeqCst) {
        a.run_once();
        b.run_once();
    }
    let one_way_ns = state.one_way_ns();
    PingRun {
        one_way_ns,
        exec_a: a,
        exec_b: b,
    }
}

/// The baseline of Figure 6: the same flood/echo test **directly on
/// GM**, no framework. Cooperative single-thread drive, mirroring the
/// XDAQ run.
pub fn raw_gm_pingpong(payload: usize, calls: u64, wire: LatencyModel) -> Vec<u64> {
    let fabric = Fabric::with_latency(wire);
    let a = fabric
        .open_port_with(NodeId(1), PortId(0), PortConfig::unlimited())
        .expect("port a");
    let b = fabric
        .open_port_with(NodeId(2), PortId(0), PortConfig::unlimited())
        .expect("port b");
    let b_addr = GmAddr {
        node: NodeId(2),
        port: PortId(0),
    };
    let msg = vec![0xA5u8; payload];
    let mut rtts = Vec::with_capacity(calls as usize);
    for _ in 0..calls {
        let t0 = std::time::Instant::now();
        a.send(b_addr, &msg, 0).expect("send");
        // Echo side.
        loop {
            match b.poll() {
                Some(GmEvent::Received { src, data }) => {
                    b.send(src, &data, 0).expect("echo");
                    break;
                }
                Some(GmEvent::SendCompleted { .. }) | None => std::hint::spin_loop(),
            }
        }
        // Pinger side.
        loop {
            match a.poll() {
                Some(GmEvent::Received { .. }) => break,
                Some(GmEvent::SendCompleted { .. }) | None => std::hint::spin_loop(),
            }
        }
        rtts.push(t0.elapsed().as_nanos() as u64 / 2);
    }
    rtts
}

/// Simple command-line parsing: `--key value` pairs.
pub struct Args {
    pairs: std::collections::HashMap<String, String>,
}

impl Args {
    /// Parses `std::env::args()`.
    pub fn parse() -> Args {
        let mut pairs = std::collections::HashMap::new();
        let mut iter = std::env::args().skip(1);
        while let Some(k) = iter.next() {
            if let Some(key) = k.strip_prefix("--") {
                let v = iter.next().unwrap_or_else(|| "1".to_string());
                pairs.insert(key.to_string(), v);
            }
        }
        Args { pairs }
    }

    /// Typed lookup with default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.pairs
            .get(key)
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    }

    /// String lookup with default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.pairs
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Presence check.
    pub fn has(&self, key: &str) -> bool {
        self.pairs.contains_key(key)
    }
}

/// Mean of a sample slice, in microseconds.
pub fn mean_us(ns: &[u64]) -> f64 {
    if ns.is_empty() {
        return 0.0;
    }
    ns.iter().map(|&v| v as u128).sum::<u128>() as f64 / ns.len() as f64 / 1000.0
}

/// Median of a sample slice, in microseconds.
pub fn median_us(ns: &[u64]) -> f64 {
    Summary::from_samples(ns).median_us()
}

/// Drops the warm-up prefix (first 10 %, at least 50 samples when the
/// run is long enough): the first calls pay pool-population and cache
/// misses that the steady state does not.
pub fn steady_state(ns: &[u64]) -> &[u64] {
    if ns.len() < 100 {
        return ns;
    }
    let skip = (ns.len() / 10).max(50).min(ns.len() / 2);
    &ns[skip..]
}

/// Re-export for harness binaries.
pub use xdaq_probe::{linear_fit, LinearFit, Summary};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xdaq_run_completes_and_measures() {
        let run = xdaq_gm_pingpong(BlackboxConfig {
            payload: 64,
            calls: 50,
            ..Default::default()
        });
        assert_eq!(run.one_way_ns.len(), 50);
        assert!(run.one_way_ns.iter().all(|&v| v > 0));
        assert!(run.exec_a.stats().sent_peer >= 50);
    }

    #[test]
    fn raw_gm_run_measures() {
        let rtts = raw_gm_pingpong(64, 50, LatencyModel::ZERO);
        assert_eq!(rtts.len(), 50);
        assert!(rtts.iter().all(|&v| v > 0));
    }

    #[test]
    fn xdaq_is_slower_than_raw_gm() {
        let raw = mean_us(&raw_gm_pingpong(64, 500, LatencyModel::ZERO));
        let xdaq = mean_us(
            &xdaq_gm_pingpong(BlackboxConfig {
                payload: 64,
                calls: 500,
                ..Default::default()
            })
            .one_way_ns,
        );
        assert!(
            xdaq > raw,
            "framework must add overhead: xdaq {xdaq:.2}us vs raw {raw:.2}us"
        );
    }

    #[test]
    fn probes_populated_when_enabled() {
        let run = xdaq_gm_pingpong(BlackboxConfig {
            payload: 64,
            calls: 50,
            probes: Some(1024),
            allocator: AllocatorKind::Simple,
            ..Default::default()
        });
        let p = run.exec_b.probes().unwrap();
        assert!(p.pt_processing.len() >= 50);
        assert!(p.app.len() >= 50);
        assert!(p.frame_alloc.len() >= 50);
    }
}
