//! EXEC SCALING — aggregate dispatch throughput of the multi-worker
//! executive at 1, 2 and 4 dispatch workers.
//!
//! Sixteen sink devices each burn ~1–2 µs of synthetic listener work
//! per frame (the regime the paper's event-builder nodes live in:
//! dispatch overhead comparable to per-frame processing). The queues
//! are preloaded with the full flood before the loop starts, so the
//! measurement is pure drain time — scheduler + claim + steal
//! machinery, no producer throttling. Best of three runs per worker
//! count.
//!
//! The >=2x acceptance floor at 4 workers is asserted only when the
//! host actually has >=4 CPUs; on smaller boxes the numbers are still
//! recorded (honestly labelled) but extra dispatch threads cannot beat
//! time-slicing and the assertion would measure the box, not the code.
//!
//! Usage:
//! ```text
//! cargo run -p xdaq-bench --release --bin exec_scaling
//!     [--frames 60000] [--json results/BENCH_pr4.json]
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xdaq_bench::Args;
use xdaq_core::{Delivery, Dispatcher, Executive, I2oListener};
use xdaq_i2o::{DeviceClass, Message, Tid};

const ORG_BENCH: u16 = 0x0B;
const XFN_WORK: u16 = 0x0077;
const DEVICES: usize = 16;
/// Spin iterations per frame; ~1–2 µs of listener work on current
/// hardware without touching the clock in the hot path.
const WORK_SPINS: u64 = 1500;

struct SpinSink {
    done: Arc<AtomicU64>,
}

impl I2oListener for SpinSink {
    fn class(&self) -> DeviceClass {
        DeviceClass::Application(ORG_BENCH)
    }
    fn on_private(&mut self, _ctx: &mut Dispatcher<'_>, _msg: Delivery) {
        let mut acc = 0u64;
        for i in 0..WORK_SPINS {
            acc = std::hint::black_box(acc.wrapping_add(i));
        }
        std::hint::black_box(acc);
        self.done.fetch_add(1, Ordering::Relaxed);
    }
}

/// Preloads `frames` across [`DEVICES`] sinks, then times the drain
/// under `workers` dispatch workers. Returns wall-clock drain time.
fn drain_run(workers: usize, frames: u64) -> Duration {
    let exec = Executive::builder(&format!("bench-w{workers}"))
        .workers(workers)
        .build();
    let done = Arc::new(AtomicU64::new(0));
    let tids: Vec<Tid> = (0..DEVICES)
        .map(|i| {
            exec.register(
                &format!("sink{i}"),
                Box::new(SpinSink { done: done.clone() }),
                &[],
            )
            .unwrap()
        })
        .collect();
    exec.enable_all();

    for seq in 0..frames {
        let tid = tids[(seq % DEVICES as u64) as usize];
        exec.post(
            Message::build_private(tid, Tid::HOST, ORG_BENCH, XFN_WORK)
                .transaction(seq as u32)
                .finish(),
        )
        .unwrap();
    }

    let t0 = Instant::now();
    let handle = exec.spawn();
    while done.load(Ordering::Relaxed) < frames {
        std::thread::yield_now();
    }
    let elapsed = t0.elapsed();
    handle.shutdown();
    assert_eq!(done.load(Ordering::Relaxed), frames, "no frame lost");
    elapsed
}

fn main() {
    let args = Args::parse();
    let frames: u64 = args.get("frames", 60_000);
    let json_path = args.get_str("json", "results/BENCH_pr4.json");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!(
        "{:>8} {:>12} {:>12} {:>10}",
        "workers", "drain ms", "kframes/s", "speedup"
    );
    let mut rows = Vec::new();
    let mut thr_1 = 0.0f64;
    let mut speedup_4 = 0.0f64;
    for &workers in &[1usize, 2, 4] {
        let best = (0..3).map(|_| drain_run(workers, frames)).min().unwrap();
        let thr = frames as f64 / best.as_secs_f64();
        if workers == 1 {
            thr_1 = thr;
        }
        let speedup = thr / thr_1;
        if workers == 4 {
            speedup_4 = speedup;
        }
        println!(
            "{workers:>8} {:>12.1} {:>12.0} {:>9.2}x",
            best.as_secs_f64() * 1e3,
            thr / 1e3,
            speedup
        );
        rows.push(serde_json::json!({
            "workers": workers,
            "drain_ms": best.as_secs_f64() * 1e3,
            "frames_per_sec": thr,
            "speedup_vs_1": speedup,
        }));
    }

    let enforced = cores >= 4;
    if enforced {
        assert!(
            speedup_4 >= 2.0,
            "acceptance: 4 workers must deliver >=2x aggregate dispatch \
             throughput (got {speedup_4:.2}x on {cores} cores)"
        );
    } else {
        println!(
            "note: only {cores} CPU(s) — the >=2x floor needs >=4 cores, \
             recording numbers without enforcing it"
        );
    }

    let doc = serde_json::json!({
        "bench": "exec_scaling",
        "frames": frames,
        "devices": DEVICES,
        "work_spins_per_frame": WORK_SPINS,
        "host_cpus": cores,
        "acceptance_enforced": enforced,
        "rows": rows,
        "speedup_4_vs_1": speedup_4,
    });
    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&json_path, format!("{doc:#}")).unwrap();
    println!("wrote {json_path}");
}
