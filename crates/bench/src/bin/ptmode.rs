//! PTMODE — quantifies two §4 design discussions:
//!
//! 1. *"To allow efficient operation in polling mode it is advisable
//!    not to use more than one PT in this mode ... Otherwise a slow PT
//!    e.g. a poll operation on a TCP socket would negate the benefits
//!    of checking periodically a lightweight user level network
//!    interface."* — we add a deliberately slow second polling PT and
//!    measure the damage, then "suspend" it (unregister) and measure
//!    the recovery.
//! 2. Zero-copy vs copy-path frame hand-off in the loopback PT
//!    (DESIGN.md §5 ablation).
//!
//! Usage:
//! ```text
//! cargo run -p xdaq-bench --release --bin ptmode [--calls 10000] [--json ptmode.json]
//! ```

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;
use xdaq_app::{xfn, PingState, Pinger, Ponger, ORG_DAQ};
use xdaq_bench::{median_us, steady_state, Args};
use xdaq_core::{Executive, ExecutiveConfig, PeerAddr, PeerTransport, PtMode, SendFailure};
use xdaq_i2o::{Message, Tid};
use xdaq_mempool::{DynAllocator, FrameBuf, TablePool};
use xdaq_pt::{LoopbackHub, LoopbackPt};

/// A peer transport whose poll costs a fixed busy delay — the "poll
/// operation on a TCP socket" of §4.
struct SlowPt {
    delay: Duration,
}

impl PeerTransport for SlowPt {
    fn scheme(&self) -> &'static str {
        "slow"
    }
    fn mode(&self) -> PtMode {
        PtMode::Polling
    }
    fn send(&self, _dest: &PeerAddr, _frame: FrameBuf) -> Result<(), SendFailure> {
        Ok(())
    }
    fn poll(&self) -> Option<(FrameBuf, PeerAddr)> {
        // Busy-wait: a slow syscall occupies the CPU from the
        // executive loop's point of view.
        let t0 = std::time::Instant::now();
        while t0.elapsed() < self.delay {
            std::hint::spin_loop();
        }
        None
    }
    fn stop(&self) {}
}

fn pingpong(calls: u64, slow_pt: Option<Duration>, copy_path: bool) -> f64 {
    let hub = LoopbackHub::new();
    let a = Executive::new(ExecutiveConfig::named("a"));
    let b = Executive::new(ExecutiveConfig::named("b"));
    let copy_pool = |on: bool| -> Option<DynAllocator> {
        on.then(|| TablePool::with_defaults() as DynAllocator)
    };
    a.register_pt(
        "a.loop",
        LoopbackPt::with_options(&hub, "a", PtMode::Polling, copy_pool(copy_path)),
    )
    .unwrap();
    b.register_pt(
        "b.loop",
        LoopbackPt::with_options(&hub, "b", PtMode::Polling, copy_pool(copy_path)),
    )
    .unwrap();
    if let Some(delay) = slow_pt {
        // The second polling PT of §4's warning, on the echo side.
        b.register_pt("b.slow", Arc::new(SlowPt { delay })).unwrap();
    }

    let state = PingState::new();
    let pong_tid = b.register("pong", Box::new(Ponger::new()), &[]).unwrap();
    let proxy = a.proxy("loop://b", pong_tid, None).unwrap();
    let ping_tid = a
        .register(
            "ping",
            Box::new(Pinger::new(state.clone())),
            &[
                ("peer", &proxy.raw().to_string()),
                ("payload", "256"),
                ("count", &calls.to_string()),
            ],
        )
        .unwrap();
    a.enable_all();
    b.enable_all();
    a.post(Message::build_private(ping_tid, Tid::HOST, ORG_DAQ, xfn::PING_START).finish())
        .unwrap();
    while !state.done.load(Ordering::SeqCst) {
        a.run_once();
        b.run_once();
    }
    median_us(steady_state(&state.one_way_ns()))
}

fn main() {
    let args = Args::parse();
    let calls: u64 = args.get("calls", 10_000);

    println!("# PTMODE: peer-transport configuration effects ({calls} calls, loopback)");
    println!("#");
    println!("## 1. a slow second polling PT poisons the dispatch loop (paper §4)");
    let clean = pingpong(calls, None, false);
    let slow20 = pingpong(calls, Some(Duration::from_micros(20)), false);
    let slow200 = pingpong(calls.min(3000), Some(Duration::from_micros(200)), false);
    let suspended = pingpong(calls, None, false); // the PT "suspended": not registered
    println!("{:<44} {:>12}", "configuration", "one_way_us");
    println!("{:<44} {:>12.2}", "one fast polling PT", clean);
    println!("{:<44} {:>12.2}", "+ slow PT (20 us poll)", slow20);
    println!("{:<44} {:>12.2}", "+ slow PT (200 us poll)", slow200);
    println!("{:<44} {:>12.2}", "slow PT suspended again", suspended);
    println!(
        "# slowdown factors: {:.1}x (20us), {:.1}x (200us) — the paper's advice holds",
        slow20 / clean,
        slow200 / clean
    );
    println!("#");
    println!("## 2. zero-copy vs copy-path frame hand-off");
    let zero_copy = pingpong(calls, None, false);
    let copied = pingpong(calls, None, true);
    println!(
        "{:<44} {:>12.2}",
        "zero-copy (pooled buffer hand-off)", zero_copy
    );
    println!(
        "{:<44} {:>12.2}",
        "copy path (alloc + memcpy per hop)", copied
    );
    println!(
        "# copy penalty: {:+.2} us per one-way hop",
        copied - zero_copy
    );

    if args.has("json") {
        let path = args.get_str("json", "ptmode.json");
        let json = serde_json::json!({
            "experiment": "ptmode",
            "calls": calls,
            "slow_pt": { "clean_us": clean, "slow20_us": slow20,
                         "slow200_us": slow200, "suspended_us": suspended },
            "copy": { "zero_copy_us": zero_copy, "copied_us": copied },
        });
        std::fs::write(&path, serde_json::to_string_pretty(&json).unwrap()).unwrap();
        println!("# wrote {path}");
    }
}
