//! ALLOC — the paper's allocator ablation (§5 in-text): replacing the
//! original pre-allocated/linear-scan pool with the on-demand,
//! table-matched pool cuts the blackbox framework overhead from
//! 8.9 µs to 4.9 µs per call, because `frameAlloc` "shrinks
//! dramatically for applications that use similar buffer sizes
//! throughout their lifetimes".
//!
//! Two parts:
//! 1. end-to-end: the FIG6 overhead measurement, once per allocator;
//! 2. microbench: direct alloc/free cost per scheme across three
//!    working sets (stable, mixed, adversarial).
//!
//! Usage:
//! ```text
//! cargo run -p xdaq-bench --release --bin alloc_ablation
//!     [--calls 20000] [--rounds 100000] [--json alloc.json]
//! ```

use xdaq_bench::{
    median_us, raw_gm_pingpong, steady_state, xdaq_gm_pingpong, Args, BlackboxConfig, Summary,
};
use xdaq_core::AllocatorKind;
use xdaq_gm::LatencyModel;
use xdaq_mempool::{FrameAllocator, SimplePool, TablePool};

fn end_to_end_overhead(allocator: AllocatorKind, calls: u64) -> f64 {
    let run = xdaq_gm_pingpong(BlackboxConfig {
        payload: 64,
        calls,
        wire: LatencyModel::ZERO,
        allocator,
        probes: None,
    });
    let xdaq = median_us(steady_state(&run.one_way_ns));
    let gm = median_us(steady_state(&raw_gm_pingpong(
        64,
        calls,
        LatencyModel::ZERO,
    )));
    xdaq - gm
}

/// Direct alloc/free microbench under DAQ-realistic conditions: a
/// window of `live` buffers stays outstanding (an event builder holds
/// hundreds of fragments in flight), so the original scheme's free
/// list is long and mixed — the condition whose search cost the
/// table-based scheme eliminates. Returns (median, p90) ns per alloc.
fn microbench(
    pool: &dyn FrameAllocator,
    sizes: &[usize],
    rounds: usize,
    live: usize,
) -> (f64, f64) {
    let mut window = std::collections::VecDeque::with_capacity(live + 1);
    let mut samples = Vec::with_capacity(rounds);
    for i in 0..rounds {
        let len = sizes[i % sizes.len()];
        let t0 = std::time::Instant::now();
        let b = pool.alloc(len).expect("alloc");
        samples.push(t0.elapsed().as_nanos() as u64);
        window.push_back(b);
        if window.len() > live {
            window.pop_front(); // frees the oldest buffer
        }
    }
    let s = Summary::from_samples(&samples);
    (s.median_ns, s.p90_ns)
}

fn main() {
    let args = Args::parse();
    let calls: u64 = args.get("calls", 20_000);
    let rounds: usize = args.get("rounds", 100_000);

    println!("# ALLOC: buffer-pool scheme ablation (paper: 8.9 us -> 4.9 us per call)");
    println!("#");
    println!("## end-to-end blackbox overhead (payload 64 B, {calls} calls)");
    let simple = end_to_end_overhead(AllocatorKind::Simple, calls);
    let table = end_to_end_overhead(AllocatorKind::Table, calls);
    println!(
        "{:<28} {:>12} {:>12}",
        "allocator", "overhead_us", "paper_us"
    );
    println!(
        "{:<28} {:>12.2} {:>12}",
        "simple (original scheme)", simple, "8.9"
    );
    println!(
        "{:<28} {:>12.2} {:>12}",
        "table (optimized scheme)", table, "4.9"
    );
    println!(
        "# optimized/original ratio: {:.2} (paper: {:.2}) — optimized must win",
        table / simple,
        4.9 / 8.9
    );
    println!("#");

    // Working sets: stable (the paper's "similar buffer sizes
    // throughout their lifetimes"), mixed, adversarial (every class).
    let stable = vec![4096usize; 8];
    let mixed = vec![64usize, 4096, 64, 1024, 4096, 64, 256, 4096];
    let adversarial: Vec<usize> = (0..13).map(|c| 64usize << c).collect();
    let live: usize = args.get("live", 512);

    println!("## direct alloc/free cost with {live} buffers in flight,");
    println!("## median ns (p90 in parens), {rounds} rounds");
    println!(
        "{:<14} {:>22} {:>22} {:>22}",
        "scheme", "stable_ws", "mixed_ws", "adversarial_ws"
    );
    let mut json_rows = Vec::new();
    for scheme in ["simple", "table"] {
        let pool: std::sync::Arc<dyn FrameAllocator> = match scheme {
            "simple" => SimplePool::with_defaults(),
            _ => TablePool::with_defaults(),
        };
        let (sm, sp) = microbench(&*pool, &stable, rounds, live);
        let (mm, mp) = microbench(&*pool, &mixed, rounds, live);
        let (am, ap) = microbench(&*pool, &adversarial, rounds, live);
        println!(
            "{scheme:<14} {:>14.0} ({:>5.0}) {:>14.0} ({:>5.0}) {:>14.0} ({:>5.0})",
            sm, sp, mm, mp, am, ap
        );
        json_rows.push(serde_json::json!({
            "scheme": scheme,
            "stable_ns": sm, "mixed_ns": mm, "adversarial_ns": am,
        }));
    }
    println!("#");
    println!("# paper shape: table-based matching is the win on stable working sets;");
    println!("# frameAlloc 2.18 us (simple) shrinks 'dramatically' (paper, preliminary test).");

    if args.has("json") {
        let path = args.get_str("json", "alloc.json");
        let json = serde_json::json!({
            "experiment": "alloc_ablation",
            "end_to_end": { "simple_us": simple, "table_us": table },
            "microbench": json_rows,
        });
        std::fs::write(&path, serde_json::to_string_pretty(&json).unwrap()).unwrap();
        println!("# wrote {path}");
    }
}
