//! QoS — two-tenant fairness under admission control (DESIGN.md §13):
//! a gold tenant and a bulk tenant share one credit-metered link to a
//! slow consumer. Phase 1 measures the gold tenant's solo throughput;
//! phase 2 adds a bulk flooder with a token-bucket class limiting it.
//! Acceptance (PR 7): with admission on, gold retains ≥ 90% of its
//! solo throughput while the shed counters absorb the bulk excess.
//!
//! Usage:
//! ```text
//! cargo run -p xdaq-bench --release --bin qos_fairness
//!     [--secs 2] [--bulk_rate 500] [--json results/BENCH_pr7.json]
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xdaq_bench::Args;
use xdaq_core::{
    Delivery, Dispatcher, ExecError, Executive, ExecutiveConfig, FlowConfig, FlowPolicy,
    I2oListener, PtError,
};
use xdaq_i2o::{DeviceClass, Message, Priority, Tid};
use xdaq_pt::{LoopbackHub, LoopbackPt};

const ORG: u16 = 0x0DAB;
const XFN_GOLD: u16 = 0x0301;
const XFN_BULK: u16 = 0x0302;
const PAYLOAD: usize = 1024;

/// Per-initiator frame counter with a fixed per-frame service cost —
/// the "slow consumer" that makes link capacity the contended resource.
struct Sink {
    gold: Arc<AtomicU64>,
    bulk: Arc<AtomicU64>,
    cost: Duration,
}

impl I2oListener for Sink {
    fn class(&self) -> DeviceClass {
        DeviceClass::Application(ORG)
    }

    fn on_private(&mut self, _ctx: &mut Dispatcher<'_>, msg: Delivery) {
        std::thread::sleep(self.cost);
        // Tenant identity rides the x-function: the initiator TiD is
        // rewritten to a local reply proxy on ingest.
        if msg.private.map(|p| p.x_function) == Some(XFN_GOLD) {
            self.gold.fetch_add(1, Ordering::Relaxed);
        } else {
            self.bulk.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn flow_cfg() -> FlowConfig {
    FlowConfig {
        window: 64,
        replenish: 16,
        high_watermark: 128,
        policy: FlowPolicy::FailFast,
        reserve: 8,
        reserve_priority: 5,
        tick: Duration::from_millis(2),
    }
}

struct Tenants {
    gold_delivered: u64,
    bulk_delivered: u64,
    bulk_shed: u64,
    elapsed: Duration,
}

/// Runs one measurement phase: the gold tenant floods at max priority
/// for `secs`; when `with_bulk` is set a second thread floods normal-
/// priority bulk traffic through the same executive and link.
fn run_phase(secs: u64, with_bulk: bool, bulk_rate: f64) -> Tenants {
    let hub = LoopbackHub::new();
    let mut ca = ExecutiveConfig::named("a");
    ca.flow = Some(flow_cfg());
    let mut cb = ExecutiveConfig::named("b");
    cb.flow = Some(flow_cfg());
    let a = Arc::new(Executive::new(ca));
    let b = Executive::new(cb);
    a.register_pt("a.loop", LoopbackPt::new(&hub, "a")).unwrap();
    b.register_pt("b.loop", LoopbackPt::new(&hub, "b")).unwrap();

    let gold = Tid::new(0x30).unwrap();
    let bulk = Tid::new(0x31).unwrap();
    let gold_n = Arc::new(AtomicU64::new(0));
    let bulk_n = Arc::new(AtomicU64::new(0));
    let sink = Sink {
        gold: gold_n.clone(),
        bulk: bulk_n.clone(),
        cost: Duration::from_micros(50),
    };
    let sink_tid = b.register("sink", Box::new(sink), &[]).unwrap();
    let proxy = a.proxy("loop://b", sink_tid, None).unwrap();

    // The bulk class: token bucket at `bulk_rate`/s. Gold stays
    // unassigned — admission is fail-open for unclassified tenants.
    a.core()
        .admission()
        .apply_param(
            "qos.class.bulk",
            &format!("{bulk_rate}:64"),
            a.core().monitors().registry(),
        )
        .unwrap();
    a.core()
        .admission()
        .apply_param(
            &format!("qos.assign.{}", bulk.raw()),
            "bulk",
            a.core().monitors().registry(),
        )
        .unwrap();

    a.enable_all();
    b.enable_all();
    let ha = a.spawn();
    let hb = b.spawn();

    let stop = Arc::new(AtomicBool::new(false));
    let bulk_shed = Arc::new(AtomicU64::new(0));
    let flooder = with_bulk.then(|| {
        let a = a.clone();
        let stop = stop.clone();
        let shed = bulk_shed.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let m = Message::build_private(proxy, bulk, ORG, XFN_BULK)
                    .payload(vec![0u8; PAYLOAD])
                    .finish();
                match a.post(m) {
                    Ok(()) => {}
                    Err(ExecError::Shed(_)) => {
                        shed.fetch_add(1, Ordering::Relaxed);
                        // A shed tenant backs off briefly — without
                        // this the refusal loop itself becomes a CPU
                        // denial-of-service on the admission path.
                        std::thread::sleep(Duration::from_micros(100));
                    }
                    Err(ExecError::Transport(PtError::CreditExhausted(_))) => {
                        std::thread::sleep(Duration::from_micros(100));
                    }
                    Err(e) => panic!("bulk: {e}"),
                }
            }
        })
    });

    // Gold floods from this thread at high priority (above the
    // reserve threshold, so the protected lane is its fallback).
    let t0 = Instant::now();
    let deadline = t0 + Duration::from_secs(secs);
    while Instant::now() < deadline {
        let m = Message::build_private(proxy, gold, ORG, XFN_GOLD)
            .priority(Priority::MAX)
            .payload(vec![0u8; PAYLOAD])
            .finish();
        match a.post(m) {
            Ok(()) => {}
            Err(ExecError::Transport(PtError::CreditExhausted(_))) => {
                std::thread::sleep(Duration::from_micros(50));
            }
            Err(e) => panic!("gold: {e}"),
        }
    }
    stop.store(true, Ordering::Relaxed);
    if let Some(h) = flooder {
        h.join().unwrap();
    }
    // Let the receiver drain what the window already admitted.
    let drain = Instant::now() + Duration::from_secs(10);
    let settled = |n: &Arc<AtomicU64>| {
        let v = n.load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(50));
        v == n.load(Ordering::Relaxed)
    };
    while Instant::now() < drain && !(settled(&gold_n) && settled(&bulk_n)) {}
    let elapsed = t0.elapsed();
    ha.shutdown();
    hb.shutdown();
    Tenants {
        gold_delivered: gold_n.load(Ordering::Relaxed),
        bulk_delivered: bulk_n.load(Ordering::Relaxed),
        bulk_shed: bulk_shed.load(Ordering::Relaxed),
        elapsed,
    }
}

fn main() {
    let args = Args::parse();
    let secs: u64 = args.get("secs", 2);
    let bulk_rate: f64 = args.get("bulk_rate", 500.0);
    let json_path = args.get_str("json", "results/BENCH_pr7.json");

    println!("# QoS fairness: gold tenant solo vs. gold + rate-limited bulk");
    println!("# flooder sharing one credit-metered loopback link ({secs}s phases,");
    println!("# bulk class {bulk_rate}/s, {PAYLOAD} B frames, 50 us consumer).");
    let solo = run_phase(secs, false, bulk_rate);
    let solo_fps = solo.gold_delivered as f64 / solo.elapsed.as_secs_f64();
    println!("# solo:      gold {:>8.0} frames/s", solo_fps);

    let duet = run_phase(secs, true, bulk_rate);
    let duet_fps = duet.gold_delivered as f64 / duet.elapsed.as_secs_f64();
    let bulk_fps = duet.bulk_delivered as f64 / duet.elapsed.as_secs_f64();
    let retention = duet_fps / solo_fps;
    println!(
        "# contended: gold {:>8.0} frames/s, bulk {:>6.0} frames/s admitted, {} shed",
        duet_fps, bulk_fps, duet.bulk_shed
    );
    println!("# retention: {:.1}% (floor 90%)", retention * 100.0);

    // PR 7 acceptance: the high-priority tenant keeps ≥ 90% of its
    // solo throughput; the bulk excess shows up in the shed counter.
    assert!(
        retention >= 0.90,
        "gold tenant lost more than 10% to the bulk flood: {:.1}%",
        retention * 100.0
    );
    assert!(duet.bulk_shed > 0, "bulk flood was never rate-limited");

    let doc = serde_json::json!({
        "bench": "qos_fairness",
        "phase_secs": secs,
        "payload_bytes": PAYLOAD,
        "bulk_class_rate_per_s": bulk_rate,
        "gold_solo_frames_per_s": solo_fps,
        "gold_contended_frames_per_s": duet_fps,
        "bulk_admitted_frames_per_s": bulk_fps,
        "bulk_shed_frames": duet.bulk_shed,
        "gold_retention": retention,
        "floor": 0.90,
    });
    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&json_path, format!("{doc:#}")).unwrap();
    println!("wrote {json_path}");
}
