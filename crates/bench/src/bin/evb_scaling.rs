//! EVB — event-builder scaling on the `xdaq-evb` pull protocol: the
//! application-level validation of the paper's motivation (§1:
//! Tbytes/s, hundreds-of-kHz message rates; §4 footnote: the n×m
//! crossing mesh).
//!
//! Unlike the microbenchmarks this drives the *real* distributed
//! fabric: one executive per node connected by `shm://` regions (the
//! crossing RU↔BU channels of footnote 1), with the last readouts of
//! the larger points demoted to `tcp://` stragglers, and every
//! readout's transport wrapped in a fixed-seed `ChaosPt` that silently
//! drops a fraction of outgoing fragments. The builders' timeout
//! re-pull must turn that lossy fabric into zero event loss — each
//! point asserts `lost == 0` — while the run reports events/s and
//! build-latency percentiles from the merged per-builder histograms.
//!
//! Usage:
//! ```text
//! cargo run -p xdaq-bench --release --bin evb_scaling
//!     [--events 1000] [--drop 100] [--json results/BENCH_pr6.json]
//! ```

use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::Instant;
use xdaq_bench::Args;
use xdaq_core::pta::PtMode;
use xdaq_core::{Executive, ExecutiveConfig};
use xdaq_evb::{xfn, BuilderUnit, EventManager, ReadoutUnit, ORG_DAQ};
use xdaq_i2o::{Message, Tid};
use xdaq_mempool::TablePool;
use xdaq_mon::HistogramSnapshot;
use xdaq_pt::{ChaosPt, FaultPlan, TcpPt};
use xdaq_shm::{ShmConfig, ShmPt};

const FRAGMENT_SIZE: u32 = 1024;

fn cfg() -> ShmConfig {
    ShmConfig {
        block_size: 4096,
        nblocks: 128,
        ring_capacity: 256,
    }
}

struct PointResult {
    events_per_sec: f64,
    mb_per_s: f64,
    p50_ms: f64,
    p90_ms: f64,
    p99_ms: f64,
    built: u64,
    completed: u64,
    lost: u64,
}

/// One mesh point: `n` readouts (the last `stragglers` over tcp, the
/// rest over shm regions) × `m` builders, all on their own executive,
/// driven through a full `events`-event run.
fn run_point(n: usize, m: usize, stragglers: usize, events: u64, drop: u16) -> PointResult {
    let base = std::env::temp_dir().join(format!("xdaq-evb-bench-{}-{n}x{m}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let region = |name: String| -> PathBuf { base.join(name) };
    let shm_rus = n - stragglers;
    let chaos = |pt, i: usize| {
        let plan = FaultPlan {
            drop_per_mille: drop,
            ..FaultPlan::default()
        };
        ChaosPt::wrap(pt, 0xDA0 + i as u64, plan)
    };

    // The manager node owns one end of every control region; the
    // collector rides on it so builder→filter traffic reuses the
    // builder's control link.
    let mgr_shm = ShmPt::new(PtMode::Polling);
    let ru_ctl: Vec<String> = (0..shm_rus)
        .map(|i| {
            mgr_shm
                .create_link(&region(format!("p-ru{i}")), cfg())
                .unwrap()
                .peer_addr()
                .to_string()
        })
        .collect();
    let bu_ctl: Vec<String> = (0..m)
        .map(|j| {
            mgr_shm
                .create_link(&region(format!("p-bu{j}")), cfg())
                .unwrap()
                .peer_addr()
                .to_string()
        })
        .collect();

    // Readout nodes: shm first, tcp stragglers after. The crossing
    // RU↔BU regions are created readout-side and attached by builders.
    let mut ru_execs = Vec::new();
    let mut ru_tids = Vec::new();
    let mut ru_tcp_addrs = Vec::new();
    for i in 0..n {
        let exec = Executive::new(ExecutiveConfig::named(&format!("ru{i}")));
        if i < shm_rus {
            let shm = ShmPt::new(PtMode::Polling);
            shm.attach_link(&region(format!("p-ru{i}"))).unwrap();
            for j in 0..m {
                shm.create_link(&region(format!("x-ru{i}-bu{j}")), cfg())
                    .unwrap();
            }
            exec.register_pt("pt", chaos(shm, i)).unwrap();
        } else {
            let tcp = TcpPt::bind("127.0.0.1:0", TablePool::with_defaults()).unwrap();
            ru_tcp_addrs.push(tcp.addr().to_string());
            exec.register_pt("pt", chaos(tcp, i)).unwrap();
        }
        let tid = exec
            .register(
                "readout",
                Box::new(ReadoutUnit::new()),
                &[
                    ("source_id", &i.to_string()),
                    ("sources", &n.to_string()),
                    ("size", &FRAGMENT_SIZE.to_string()),
                ],
            )
            .unwrap();
        ru_tids.push(tid);
        ru_execs.push(exec);
    }

    // Builder nodes: attach the control + crossing regions, add a tcp
    // endpoint when stragglers exist, and wire proxies for every
    // readout plus the collector.
    let mut bu_execs = Vec::new();
    let mut bu_stats = Vec::new();
    let mut bu_tids = Vec::new();
    for j in 0..m {
        let shm = ShmPt::new(PtMode::Polling);
        let parent_url = shm
            .attach_link(&region(format!("p-bu{j}")))
            .unwrap()
            .peer_addr()
            .to_string();
        let ru_urls: Vec<String> = (0..shm_rus)
            .map(|i| {
                shm.attach_link(&region(format!("x-ru{i}-bu{j}")))
                    .unwrap()
                    .peer_addr()
                    .to_string()
            })
            .collect();
        let exec = Executive::new(ExecutiveConfig::named(&format!("bu{j}")));
        exec.register_pt("shm", shm).unwrap();
        if stragglers > 0 {
            exec.register_pt(
                "tcp",
                TcpPt::bind("127.0.0.1:0", TablePool::with_defaults()).unwrap(),
            )
            .unwrap();
        }
        let mut ru_names = Vec::new();
        for i in 0..n {
            let alias = format!("ru{i}");
            let url = if i < shm_rus {
                &ru_urls[i]
            } else {
                &ru_tcp_addrs[i - shm_rus]
            };
            exec.proxy(url, ru_tids[i], Some(&alias)).unwrap();
            ru_names.push(alias);
        }
        let unit = BuilderUnit::new();
        bu_stats.push(unit.stats());
        let tid = exec
            .register(
                &format!("builder{j}"),
                Box::new(unit),
                &[
                    ("rus", &ru_names.join(",")),
                    ("filter", "flt"),
                    ("credits", "8"),
                    ("timeout_ms", "40"),
                    ("max_retries", "1000"),
                ],
            )
            .unwrap();
        bu_tids.push(tid);
        bu_execs.push((exec, parent_url));
    }

    // Manager node: collector + event manager, proxies to everyone.
    let mgr = Executive::new(ExecutiveConfig::named("mgr"));
    mgr.register_pt("shm", mgr_shm).unwrap();
    if stragglers > 0 {
        mgr.register_pt(
            "tcp",
            TcpPt::bind("127.0.0.1:0", TablePool::with_defaults()).unwrap(),
        )
        .unwrap();
    }
    let f_stats = xdaq_app::FilterStats::new();
    let flt_tid = mgr
        .register(
            "flt",
            Box::new(xdaq_app::FilterUnit::new(f_stats)),
            &[("accept_percent", "100")],
        )
        .unwrap();
    // Builders reach the collector over their control link.
    for (exec, parent_url) in &bu_execs {
        exec.proxy(parent_url, flt_tid, Some("flt")).unwrap();
    }
    let mut ru_names = Vec::new();
    for i in 0..n {
        let alias = format!("ru{i}");
        let url = if i < shm_rus {
            ru_ctl[i].clone()
        } else {
            ru_tcp_addrs[i - shm_rus].clone()
        };
        mgr.proxy(&url, ru_tids[i], Some(&alias)).unwrap();
        ru_names.push(alias);
    }
    let mut bu_names = Vec::new();
    for (j, url) in bu_ctl.iter().enumerate() {
        let alias = format!("bu{j}");
        mgr.proxy(url, bu_tids[j], Some(&alias)).unwrap();
        bu_names.push(alias);
    }
    let evm = EventManager::new();
    let m_stats = evm.stats();
    let mgr_tid = mgr
        .register(
            "evm",
            Box::new(evm),
            &[
                ("readouts", &ru_names.join(",")),
                ("bus", &bu_names.join(",")),
            ],
        )
        .unwrap();

    // Spawn the whole cluster and run.
    let mut handles = Vec::new();
    for exec in std::iter::once(&mgr)
        .chain(ru_execs.iter())
        .chain(bu_execs.iter().map(|(e, _)| e))
    {
        exec.enable_all();
        handles.push(exec.spawn());
    }
    let t0 = Instant::now();
    mgr.post(
        Message::build_private(mgr_tid, Tid::HOST, ORG_DAQ, xfn::RUN)
            .payload(events.to_le_bytes().to_vec())
            .finish(),
    )
    .unwrap();
    let mut last = 0;
    let mut stuck = 0;
    while !m_stats.run_done.load(Ordering::SeqCst) {
        std::thread::sleep(std::time::Duration::from_millis(20));
        let done = m_stats.completed.load(Ordering::SeqCst);
        if done == last {
            stuck += 1;
            assert!(
                stuck < 1500,
                "mesh {n}x{m} stalled at {done}/{events} events"
            );
        } else {
            stuck = 0;
            last = done;
        }
    }
    let dt = t0.elapsed().as_secs_f64();

    // Merge the per-builder latency histograms for cluster percentiles.
    let mut latency = HistogramSnapshot::default();
    for (exec, _) in &bu_execs {
        let snap = exec.core().monitors().registry().snapshot();
        if let Some(h) = HistogramSnapshot::from_value(&snap["histograms"]["evb.build_latency_ns"])
        {
            latency.merge(&h);
        }
    }
    let built: u64 = bu_stats
        .iter()
        .map(|s| s.events_built.load(Ordering::SeqCst))
        .sum();
    let bytes: u64 = bu_stats
        .iter()
        .map(|s| s.bytes.load(Ordering::SeqCst))
        .sum();
    let result = PointResult {
        events_per_sec: events as f64 / dt,
        mb_per_s: bytes as f64 / dt / 1e6,
        p50_ms: latency.quantile(0.5).map_or(0.0, |ns| ns as f64 / 1e6),
        p90_ms: latency.quantile(0.9).map_or(0.0, |ns| ns as f64 / 1e6),
        p99_ms: latency.quantile(0.99).map_or(0.0, |ns| ns as f64 / 1e6),
        built,
        completed: m_stats.completed.load(Ordering::SeqCst),
        lost: m_stats.lost.load(Ordering::SeqCst),
    };
    for h in handles {
        h.shutdown();
    }
    let _ = std::fs::remove_dir_all(&base);
    result
}

fn main() {
    assert!(
        xdaq_shm::sys::supported(),
        "evb_scaling needs shared-memory support"
    );
    let args = Args::parse();
    let events: u64 = args.get("events", 1_000);
    let drop: u16 = args.get("drop", 100);
    let json_path = args.get_str("json", "results/BENCH_pr6.json");

    println!("# EVB scaling: n x m executives over shm:// (+ tcp stragglers),");
    println!("# {events} events per point, {FRAGMENT_SIZE} B fragments, readouts");
    println!("# dropping {drop}/1000 fragments (fixed-seed ChaosPt).");
    println!("#");
    println!(
        "{:>4} {:>4} {:>4} {:>10} {:>9} {:>8} {:>8} {:>8} {:>6}",
        "n", "m", "tcp", "events_s", "MB_s", "p50_ms", "p90_ms", "p99_ms", "lost"
    );
    let mut rows = Vec::new();
    for &(n, m, tcp) in &[(4usize, 2usize, 0usize), (8, 4, 1), (16, 8, 2)] {
        let r = run_point(n, m, tcp, events, drop);
        println!(
            "{n:>4} {m:>4} {tcp:>4} {:>10.0} {:>9.1} {:>8.3} {:>8.3} {:>8.3} {:>6}",
            r.events_per_sec, r.mb_per_s, r.p50_ms, r.p90_ms, r.p99_ms, r.lost
        );
        // Acceptance: the lossy fabric still loses nothing — the
        // credit/re-pull protocol absorbs every dropped fragment.
        assert_eq!(r.lost, 0, "mesh {n}x{m}: events lost under chaos");
        assert_eq!(r.completed, events, "mesh {n}x{m}: incomplete run");
        assert!(r.built >= events, "mesh {n}x{m}: builders under-report");
        rows.push(serde_json::json!({
            "readouts": n,
            "builders": m,
            "tcp_stragglers": tcp,
            "events_per_sec": r.events_per_sec,
            "mb_per_s": r.mb_per_s,
            "build_latency_ms": {"p50": r.p50_ms, "p90": r.p90_ms, "p99": r.p99_ms},
            "completed": r.completed,
            "lost": r.lost,
        }));
    }
    println!("#");
    println!("# zero loss at every point: timeout re-pull + EVM credits absorb");
    println!("# the {drop}/1000 fragment drops without losing a single event.");

    let doc = serde_json::json!({
        "bench": "evb_scaling",
        "events_per_point": events,
        "fragment_bytes": FRAGMENT_SIZE,
        "drop_per_mille": drop,
        "rows": rows,
    });
    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&json_path, format!("{doc:#}")).unwrap();
    println!("wrote {json_path}");
}
