//! EVB — event-builder scaling: the application-level validation of
//! the paper's motivation (§1: Tbytes/s, hundreds-of-kHz message
//! rates; §4 footnote: the n×m crossing mesh).
//!
//! For each (n readouts × m builders, fragment size) point, runs a
//! fixed number of events through the full DAQ chain (event manager →
//! readouts → builders → credits) on cooperative executives and
//! reports event rate and aggregate builder throughput.
//!
//! Usage:
//! ```text
//! cargo run -p xdaq-bench --release --bin evb_scaling
//!     [--events 2000] [--json evb.json]
//! ```

use std::sync::atomic::Ordering;
use std::time::Instant;
use xdaq_app::{xfn, BuilderStats, BuilderUnit, EventManager, EvtMgrStats, ReadoutUnit, ORG_DAQ};
use xdaq_bench::Args;
use xdaq_core::{Executive, ExecutiveConfig};
use xdaq_i2o::{Message, Tid};
use xdaq_pt::{LoopbackHub, LoopbackPt};

struct EvbResult {
    rate_hz: f64,
    mbytes_per_s: f64,
}

fn run_evb(readouts: usize, builders: usize, frag_size: u32, events: u64) -> EvbResult {
    let hub = LoopbackHub::new();
    let node = |name: &str| {
        let exec = Executive::new(ExecutiveConfig::named(name));
        exec.register_pt(&format!("{name}.pt"), LoopbackPt::new(&hub, name))
            .unwrap();
        exec
    };
    let mgr_node = node("mgr");
    let ru_nodes: Vec<Executive> = (0..readouts).map(|i| node(&format!("ru{i}"))).collect();
    let bu_nodes: Vec<Executive> = (0..builders).map(|i| node(&format!("bu{i}"))).collect();

    let m_stats = EvtMgrStats::new();
    let mgr_tid = mgr_node
        .register(
            "evm",
            Box::new(EventManager::new(m_stats.clone())),
            &[("window", "16")],
        )
        .unwrap();

    let mut b_stats = Vec::new();
    let mut bu_tids = Vec::new();
    for (i, bu) in bu_nodes.iter().enumerate() {
        let mgr_proxy = bu.proxy("loop://mgr", mgr_tid, None).unwrap();
        let stats = BuilderStats::new();
        let tid = bu
            .register(
                &format!("builder{i}"),
                Box::new(BuilderUnit::new(stats.clone())),
                &[("evtmgr", &mgr_proxy.raw().to_string())],
            )
            .unwrap();
        b_stats.push(stats);
        bu_tids.push(tid);
    }

    let mut ru_tids = Vec::new();
    for (i, ru) in ru_nodes.iter().enumerate() {
        let builder_proxies: Vec<String> = bu_tids
            .iter()
            .enumerate()
            .map(|(b, tid)| {
                ru.proxy(&format!("loop://bu{b}"), *tid, None)
                    .unwrap()
                    .raw()
                    .to_string()
            })
            .collect();
        let tid = ru
            .register(
                &format!("readout{i}"),
                Box::new(ReadoutUnit::new()),
                &[
                    ("source_id", &i.to_string()),
                    ("sources", &readouts.to_string()),
                    ("size", &frag_size.to_string()),
                    ("builders", &builder_proxies.join(",")),
                ],
            )
            .unwrap();
        ru_tids.push(tid);
    }
    let ru_proxies: Vec<String> = ru_tids
        .iter()
        .enumerate()
        .map(|(i, tid)| {
            mgr_node
                .proxy(&format!("loop://ru{i}"), *tid, None)
                .unwrap()
                .raw()
                .to_string()
        })
        .collect();
    mgr_node
        .post(
            Message::util(mgr_tid, Tid::HOST, xdaq_i2o::UtilFn::ParamsSet)
                .payload(xdaq_core::config::kv(&[(
                    "readouts",
                    &ru_proxies.join(","),
                )]))
                .finish(),
        )
        .unwrap();

    let all: Vec<&Executive> = std::iter::once(&mgr_node)
        .chain(ru_nodes.iter())
        .chain(bu_nodes.iter())
        .collect();
    for e in &all {
        e.enable_all();
    }
    // Process the config message before the run.
    for e in &all {
        while e.run_once() > 0 {}
    }

    let t0 = Instant::now();
    mgr_node
        .post(
            Message::build_private(mgr_tid, Tid::HOST, ORG_DAQ, xfn::RUN)
                .payload(events.to_le_bytes().to_vec())
                .finish(),
        )
        .unwrap();
    while !m_stats.run_done.load(Ordering::SeqCst) {
        for e in &all {
            e.run_once();
        }
    }
    let dt = t0.elapsed().as_secs_f64();
    let bytes: u64 = b_stats.iter().map(|s| s.bytes.load(Ordering::SeqCst)).sum();
    EvbResult {
        rate_hz: events as f64 / dt,
        mbytes_per_s: bytes as f64 / dt / 1e6,
    }
}

fn main() {
    let args = Args::parse();
    let events: u64 = args.get("events", 2_000);

    println!("# EVB: n x m event-builder scaling, {events} events per point");
    println!("# (cooperative single-thread drive: rates are per-core software capacity)");
    println!("#");
    println!(
        "{:>4} {:>4} {:>10} {:>12} {:>12}",
        "n", "m", "frag_B", "rate_Hz", "MB_per_s"
    );
    let mut rows = Vec::new();
    for &(n, m) in &[(2usize, 2usize), (4, 2), (4, 4), (8, 4), (8, 8)] {
        for &frag in &[512u32, 2048, 8192] {
            let r = run_evb(n, m, frag, events);
            println!(
                "{n:>4} {m:>4} {frag:>10} {:>12.0} {:>12.1}",
                r.rate_hz, r.mbytes_per_s
            );
            rows.push((n, m, frag, r.rate_hz, r.mbytes_per_s));
        }
    }
    println!("#");
    println!("# shape: throughput (MB/s) grows with fragment size (fixed per-message");
    println!("# cost amortizes); event rate falls with n (more fragments per event).");

    if args.has("json") {
        let path = args.get_str("json", "evb.json");
        let json = serde_json::json!({
            "experiment": "evb_scaling",
            "events": events,
            "rows": rows.iter().map(|(n, m, f, r, t)| serde_json::json!({
                "readouts": n, "builders": m, "fragment": f,
                "rate_hz": r, "mb_per_s": t
            })).collect::<Vec<_>>(),
        });
        std::fs::write(&path, serde_json::to_string_pretty(&json).unwrap()).unwrap();
        println!("# wrote {path}");
    }
}
