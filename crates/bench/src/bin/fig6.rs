//! FIG6 — regenerates Figure 6 of the paper: blackbox ping-pong
//! one-way latency versus payload size, three series:
//!
//! 1. XDAQ over Myrinet/GM,
//! 2. Myrinet/GM directly (the baseline),
//! 3. their difference — the constant framework overhead (paper:
//!    8.9 µs average on a 400 MHz Pentium II, fit y = −7·10⁻⁵x + 9.105).
//!
//! Usage:
//! ```text
//! cargo run -p xdaq-bench --release --bin fig6 [--calls 20000]
//!     [--wire 1]           # 1 = calibrated LANai-7 wire model (paper shape)
//!     [--alloc table|simple]
//!     [--json fig6.json]
//! ```

use xdaq_bench::{
    linear_fit, median_us, raw_gm_pingpong, steady_state, xdaq_gm_pingpong, Args, BlackboxConfig,
};
use xdaq_core::AllocatorKind;
use xdaq_gm::LatencyModel;

const PAYLOADS: &[usize] = &[1, 64, 128, 256, 512, 1024, 2048, 3072, 4096];

fn main() {
    let args = Args::parse();
    let calls: u64 = args.get("calls", 20_000);
    let wire_on: u32 = args.get("wire", 1);
    let wire = if wire_on != 0 {
        LatencyModel::myrinet_lanai7()
    } else {
        LatencyModel::ZERO
    };
    let allocator = match args.get_str("alloc", "table").as_str() {
        "simple" => AllocatorKind::Simple,
        _ => AllocatorKind::Table,
    };

    println!(
        "# FIG6: blackbox ping-pong latency (one-way, averaged over {calls} calls each direction)"
    );
    println!(
        "# wire model: {} | allocator: {allocator:?}",
        if wire_on != 0 {
            "Myrinet LANai-7 (18us + 21.5ns/B)"
        } else {
            "none (pure software path)"
        }
    );
    println!("#");
    println!(
        "{:>8} {:>14} {:>14} {:>14}",
        "bytes", "xdaq_gm_us", "gm_us", "overhead_us"
    );

    let mut xs = Vec::new();
    let mut xdaq_ys = Vec::new();
    let mut gm_ys = Vec::new();
    let mut overhead_ys = Vec::new();
    let mut rows = Vec::new();

    for &payload in PAYLOADS {
        // XDAQ series (medians over the steady state: the paper's
        // 100 000-call averages play the same outlier-rejection role).
        let run = xdaq_gm_pingpong(BlackboxConfig {
            payload,
            calls,
            wire,
            allocator,
            probes: None,
        });
        let xdaq_us = median_us(steady_state(&run.one_way_ns));
        // Baseline series on an identical fabric.
        let gm_us = median_us(steady_state(&raw_gm_pingpong(payload, calls, wire)));
        let overhead = xdaq_us - gm_us;
        println!("{payload:>8} {xdaq_us:>14.2} {gm_us:>14.2} {overhead:>14.2}");
        xs.push(payload as f64);
        xdaq_ys.push(xdaq_us);
        gm_ys.push(gm_us);
        overhead_ys.push(overhead);
        rows.push((payload, xdaq_us, gm_us, overhead));
    }

    println!("#");
    if let Some(f) = linear_fit(&xs, &xdaq_ys) {
        println!(
            "# linear fit, XDAQ/GM     : {} (r2={:.4})",
            f.equation(),
            f.r2
        );
    }
    if let Some(f) = linear_fit(&xs, &gm_ys) {
        println!(
            "# linear fit, GM direct   : {} (r2={:.4})",
            f.equation(),
            f.r2
        );
    }
    if let Some(f) = linear_fit(&xs, &overhead_ys) {
        println!(
            "# linear fit, overhead    : {}  <- paper: y = -7E-05x + 9.105",
            f.equation()
        );
        let mean_overhead = overhead_ys.iter().sum::<f64>() / overhead_ys.len() as f64;
        let var = overhead_ys
            .iter()
            .map(|v| (v - mean_overhead) * (v - mean_overhead))
            .sum::<f64>()
            / (overhead_ys.len() - 1).max(1) as f64;
        println!(
            "# framework overhead      : {mean_overhead:.2} us per call (s = {:.2})  <- paper: 8.9 us (s = 0.6)",
            var.sqrt()
        );
        println!(
            "# overhead is payload-independent: slope {:+.3e} us/byte (paper: -7e-5)",
            f.slope
        );
    }

    if args.has("json") {
        let path = args.get_str("json", "fig6.json");
        let json = serde_json::json!({
            "experiment": "fig6",
            "calls": calls,
            "wire": wire_on != 0,
            "allocator": format!("{allocator:?}"),
            "rows": rows.iter().map(|(p, x, g, o)| serde_json::json!({
                "payload": p, "xdaq_us": x, "gm_us": g, "overhead_us": o
            })).collect::<Vec<_>>(),
        });
        std::fs::write(&path, serde_json::to_string_pretty(&json).unwrap()).unwrap();
        println!("# wrote {path}");
    }
}
