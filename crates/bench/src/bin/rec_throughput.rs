//! REC — append and replay-scan throughput of the `xdaq-rec` event
//! store across record sizes, batched fsync vs fsync-per-record.
//!
//! Every append gathers its payload straight out of a pool block via
//! one iovec (`pwritev`), so the store's write path moves no payload
//! bytes in user space; the bench verifies the iovec aliases the block
//! on every row. The `sync_each` row prices full per-record durability
//! against the default batched `fdatasync` policy.
//!
//! Usage:
//! ```text
//! cargo run -p xdaq-bench --release --bin rec_throughput
//!     [--bytes 67108864] [--json results/BENCH_pr5.json]
//! ```

use std::time::Instant;
use xdaq_bench::Args;
use xdaq_mempool::{FrameAllocator, TablePool};
use xdaq_rec::{scan, RecConfig, RecReader, RecWriter};

const SIZES: &[usize] = &[1024, 4096, 65536, 262144];

struct Run {
    write_mib_s: f64,
    records_s: f64,
    scan_mib_s: f64,
    records: usize,
    segments: u64,
}

fn bench_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("xdaq-rec-bench-{tag}-{}", std::process::id()))
}

fn run(size: usize, bytes_target: usize, sync_each: bool) -> Run {
    let n = (bytes_target / size).clamp(200, 500_000);
    let dir = bench_dir(&format!("{size}-{sync_each}"));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = RecConfig::new(&dir);
    cfg.fsync_bytes = 4 << 20;
    let mut w = RecWriter::create(cfg).unwrap();

    let pool = TablePool::with_defaults();
    let mut frame = pool.alloc(size).unwrap();
    for (i, b) in frame.iter_mut().enumerate() {
        *b = i as u8;
    }
    let slice = frame.io_slice();
    assert_eq!(
        slice.as_ptr(),
        frame.as_ptr(),
        "append iovec must alias the pool block"
    );

    let t0 = Instant::now();
    for _ in 0..n {
        w.append(&[frame.io_slice()]).unwrap();
        if sync_each {
            w.sync().unwrap();
        } else {
            w.maybe_sync().unwrap();
        }
    }
    w.sync().unwrap();
    let write_elapsed = t0.elapsed();
    assert_eq!(w.records() as usize, n);
    let segments = w.segments_started();
    drop(w);

    let t1 = Instant::now();
    let report = RecReader::open(&dir).unwrap().scan_to_end();
    let scan_elapsed = t1.elapsed();
    assert_eq!(report.records as usize, n, "scan must see every record");
    assert!(report.torn.is_none(), "store must scan clean");

    let mib = (n * size) as f64 / (1 << 20) as f64;
    let _ = std::fs::remove_dir_all(&dir);
    Run {
        write_mib_s: mib / write_elapsed.as_secs_f64(),
        records_s: n as f64 / write_elapsed.as_secs_f64(),
        scan_mib_s: mib / scan_elapsed.as_secs_f64(),
        records: n,
        segments,
    }
}

fn main() {
    let args = Args::parse();
    let bytes_target: usize = args.get("bytes", 64 * 1024 * 1024);
    let json_path = args.get_str("json", "results/BENCH_pr5.json");

    if !xdaq_rec::sys::supported() {
        println!("rec_throughput: raw syscall layer unsupported on this target; skipping");
        return;
    }

    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>8} {:>5}",
        "size", "write MiB/s", "records/s", "scan MiB/s", "records", "segs"
    );
    let mut rows = Vec::new();
    for &size in SIZES {
        let r = run(size, bytes_target, false);
        println!(
            "{size:>8} {:>12.0} {:>12.0} {:>12.0} {:>8} {:>5}",
            r.write_mib_s, r.records_s, r.scan_mib_s, r.records, r.segments
        );
        rows.push(serde_json::json!({
            "size": size,
            "write_mib_s": r.write_mib_s,
            "records_s": r.records_s,
            "scan_mib_s": r.scan_mib_s,
            "records": r.records,
            "segments": r.segments,
            "durability": "batched",
        }));
    }
    // Price full per-record durability at 4 KiB.
    let durable = run(4096, bytes_target / 8, true);
    println!(
        "{:>8} {:>12.0} {:>12.0} {:>12.0} {:>8} {:>5}  (fsync per record)",
        4096,
        durable.write_mib_s,
        durable.records_s,
        durable.scan_mib_s,
        durable.records,
        durable.segments
    );
    rows.push(serde_json::json!({
        "size": 4096,
        "write_mib_s": durable.write_mib_s,
        "records_s": durable.records_s,
        "scan_mib_s": durable.scan_mib_s,
        "records": durable.records,
        "segments": durable.segments,
        "durability": "per_record",
    }));

    // Sanity: the recording written by the batched 4 KiB row above was
    // deleted, so prove scan() on a fresh tiny store agrees end-to-end.
    let dir = bench_dir("smoke");
    let _ = std::fs::remove_dir_all(&dir);
    let mut w = RecWriter::create(RecConfig::new(&dir)).unwrap();
    w.append(&[std::io::IoSlice::new(b"smoke")]).unwrap();
    w.sync().unwrap();
    drop(w);
    assert_eq!(scan(&dir).unwrap().records, 1);
    let _ = std::fs::remove_dir_all(&dir);

    let doc = serde_json::json!({
        "bench": "rec_throughput",
        "bytes_target": bytes_target,
        "rows": rows,
    });
    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&json_path, format!("{doc:#}")).unwrap();
    println!("wrote {json_path}");
}
