//! NET BATCHING — throughput of the `xpt://` submission/completion
//! transport (DESIGN.md §15) against plain `tcp://` and the `shm://`
//! descriptor ring, at 4 KiB and 64 KiB frames over localhost.
//!
//! `tcp://` costs one write syscall per frame on the sender and two
//! reads per frame on the receiver; `xpt://` coalesces up to 64 queued
//! frames into one `writev` gather batch, rings the driver's doorbell
//! only when it sleeps, and donates pool blocks to the kernel so large
//! inbound bodies skip the staging copy. Both xpt backends run the
//! identical driver loop — io_uring submits the same batches through a
//! ring, epoll through direct vectored syscalls — so the uring row
//! isolates the completion-ring overhead, not a different design.
//!
//! Per xpt row the mon registry is scraped for `pt.xpt.doorbells` to
//! report frames-per-doorbell, the coalescing the batch design exists
//! to buy.
//!
//! Usage:
//! ```text
//! cargo run -p xdaq-bench --release --bin net_batching
//!     [--bytes 33554432] [--json results/BENCH_pr9.json]
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use xdaq_bench::Args;
use xdaq_core::pta::{PeerTransport, PtMode};
use xdaq_mempool::{FrameAllocator, FrameBuf, TablePool};
use xdaq_pt::{TcpPt, XptBackend, XptPt};
use xdaq_shm::{ShmConfig, ShmPt};

const SIZES: &[usize] = &[4096, 65536];
const SHM_BLOCK: usize = 65536;

fn frames_for(bytes_target: usize, size: usize) -> usize {
    (bytes_target / size).clamp(400, 200_000)
}

/// Streams `n` self-delimiting frames of ~`size` bytes from `tx` to
/// `dest` and waits until `rx` surfaced all of them.
fn pt_run(
    tx: Arc<dyn PeerTransport>,
    rx: Arc<dyn PeerTransport>,
    dest: &str,
    size: usize,
    bytes_target: usize,
) -> f64 {
    let n = frames_for(bytes_target, size);
    let dest = dest.parse().unwrap();
    let got = Arc::new(AtomicU64::new(0));
    if rx.mode() == PtMode::Task {
        let got = got.clone();
        rx.start(Arc::new(move |_f, _src| {
            got.fetch_add(1, Ordering::Relaxed);
        }))
        .unwrap();
    }
    if tx.mode() == PtMode::Task {
        tx.start(Arc::new(|_f, _src| {})).unwrap();
    }

    let flen = size.clamp(xdaq_i2o::HEADER_LEN, u16::MAX as usize * 4) & !3;
    let mut payload = vec![0xA5u8; flen];
    payload[2..4].copy_from_slice(&((flen / 4) as u16).to_le_bytes());
    let t0 = Instant::now();
    let mut sent = 0usize;
    while sent < n {
        match tx.send(&dest, FrameBuf::from_bytes(&payload)) {
            Ok(()) => sent += 1,
            Err(_) => std::thread::yield_now(), // ring full: let rx drain
        }
    }
    while (got.load(Ordering::Relaxed) as usize) < n {
        std::thread::yield_now();
    }
    let elapsed = t0.elapsed();
    rx.stop();
    tx.stop();
    (n * flen) as f64 / (1 << 20) as f64 / elapsed.as_secs_f64()
}

/// One xpt run on `backend`; `None` when the kernel refuses rings.
/// Returns (MiB/s, frames sent per doorbell rung).
fn xpt_run(backend: XptBackend, size: usize, bytes_target: usize) -> Option<(f64, f64)> {
    let reg = xdaq_mon::Registry::new();
    let a = XptPt::bind_with("127.0.0.1:0", TablePool::with_defaults(), backend).ok()?;
    let b = XptPt::bind_with("127.0.0.1:0", TablePool::with_defaults(), backend).ok()?;
    a.bind_registry(&reg);
    let b_url = b.addr().to_string();
    let mib_s = pt_run(a, b, &b_url, size, bytes_target);
    let snap = reg.snapshot();
    let doorbells = snap["counters"]["pt.xpt.doorbells"].as_u64().unwrap_or(0);
    let n = frames_for(bytes_target, size) as f64;
    Some((mib_s, n / doorbells.max(1) as f64))
}

fn shm_run(size: usize, bytes_target: usize) -> f64 {
    let n = frames_for(bytes_target, size);
    let path = std::env::temp_dir().join(format!("xdaq-net-bench-{}-{size}", std::process::id()));
    let tx_pt = ShmPt::new(PtMode::Polling);
    let link = tx_pt
        .create_link(
            &path,
            ShmConfig {
                block_size: SHM_BLOCK,
                nblocks: 512,
                ring_capacity: 1024,
            },
        )
        .unwrap();
    let peer = link.peer_addr().clone();
    let rx_pt = ShmPt::new(PtMode::Polling);
    rx_pt.attach_link(&path).unwrap();

    let got = Arc::new(AtomicU64::new(0));
    let drainer = {
        let rx_pt = rx_pt.clone();
        let got = got.clone();
        std::thread::spawn(move || {
            while (got.load(Ordering::Relaxed) as usize) < n {
                let mut any = false;
                while rx_pt.poll().is_some() {
                    got.fetch_add(1, Ordering::Relaxed);
                    any = true;
                }
                if !any {
                    std::thread::yield_now();
                }
            }
        })
    };

    let pool = link.pool().clone();
    let t0 = Instant::now();
    let mut sent = 0usize;
    while sent < n {
        match pool.alloc(size) {
            Ok(f) => match tx_pt.send(&peer, f) {
                Ok(()) => sent += 1,
                Err(_) => std::thread::yield_now(),
            },
            Err(_) => std::thread::yield_now(),
        }
    }
    while (got.load(Ordering::Relaxed) as usize) < n {
        std::thread::yield_now();
    }
    let elapsed = t0.elapsed();
    drainer.join().unwrap();
    let _ = std::fs::remove_file(&path);
    (n * size) as f64 / (1 << 20) as f64 / elapsed.as_secs_f64()
}

fn main() {
    let args = Args::parse();
    let bytes_target: usize = args.get("bytes", 32 * 1024 * 1024);
    let json_path = args.get_str("json", "results/BENCH_pr9.json");

    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>10} {:>14}",
        "size", "tcp MiB/s", "xpt(ur) MiB/s", "xpt(ep) MiB/s", "shm MiB/s", "frames/doorbell"
    );
    let mut rows = Vec::new();
    let mut tcp_4k = 0.0f64;
    let mut xpt_4k = 0.0f64;
    for &size in SIZES {
        let ta = TcpPt::bind("127.0.0.1:0", TablePool::with_defaults()).unwrap();
        let tb = TcpPt::bind("127.0.0.1:0", TablePool::with_defaults()).unwrap();
        let tb_url = tb.addr().to_string();
        let tcp = pt_run(ta, tb, &tb_url, size, bytes_target);

        let uring = xpt_run(XptBackend::Uring, size, bytes_target);
        let (epoll, ep_coalesce) =
            xpt_run(XptBackend::Epoll, size, bytes_target).expect("epoll backend always binds");
        let shm = shm_run(size, bytes_target);

        let best_xpt = uring.map_or(epoll, |(u, _)| u.max(epoll));
        if size == 4096 {
            tcp_4k = tcp;
            xpt_4k = best_xpt;
        }
        let coalesce = uring.map_or(ep_coalesce, |(_, c)| c.max(ep_coalesce));
        println!(
            "{size:>8} {tcp:>10.0} {:>12} {epoll:>12.0} {shm:>10.0} {coalesce:>14.1}",
            uring.map_or("n/a".into(), |(u, _)| format!("{u:.0}")),
        );
        rows.push(serde_json::json!({
            "size": size,
            "tcp_mib_s": tcp,
            "xpt_uring_mib_s": uring.map(|(u, _)| u),
            "xpt_epoll_mib_s": epoll,
            "shm_mib_s": shm,
            "frames_per_doorbell": coalesce,
            "frames": frames_for(bytes_target, size),
        }));
    }

    let speedup = xpt_4k / tcp_4k;
    println!("xpt vs tcp at 4 KiB: {speedup:.1}x");
    assert!(
        speedup >= 3.0,
        "acceptance: xpt must beat tcp-localhost by >=3x at 4 KiB (got {speedup:.1}x)"
    );

    let doc = serde_json::json!({
        "bench": "net_batching",
        "bytes_target": bytes_target,
        "uring_available": !rows[0]["xpt_uring_mib_s"].is_null(),
        "rows": rows,
        "xpt_vs_tcp_4k_speedup": speedup,
    });
    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&json_path, format!("{doc:#}")).unwrap();
    println!("wrote {json_path}");
}
