//! HWFIFO — the experiment §7 announces: communication efficiency
//! with and without hardware FIFO support on a PCI bus segment (the
//! PLX IOP-480 board with I2O hardware FIFOs).
//!
//! Two executives on one simulated PCI segment exchange the blackbox
//! ping-pong; the segment's inbound queues are either bounded
//! lock-free rings ("hardware FIFOs") or mutex-protected unbounded
//! queues ("software mailbox").
//!
//! Usage:
//! ```text
//! cargo run -p xdaq-bench --release --bin hwfifo [--calls 20000] [--json hwfifo.json]
//! ```

use std::sync::atomic::Ordering;
use xdaq_app::{xfn, PingState, Pinger, Ponger, ORG_DAQ};
use xdaq_bench::{median_us, steady_state, Args};
use xdaq_core::{Executive, ExecutiveConfig};
use xdaq_i2o::{Message, Tid};
use xdaq_pt::{FifoKind, PciBus, PciPt};

fn run(kind: FifoKind, calls: u64, payload: usize) -> f64 {
    let bus = PciBus::new("seg0", kind);
    let a = Executive::new(ExecutiveConfig::named("host"));
    let b = Executive::new(ExecutiveConfig::named("iop"));
    a.register_pt("a.pci", PciPt::attach(&bus, 0)).unwrap();
    b.register_pt("b.pci", PciPt::attach(&bus, 1)).unwrap();

    let state = PingState::new();
    let pong_tid = b.register("pong", Box::new(Ponger::new()), &[]).unwrap();
    let proxy = a.proxy("pci://seg0/1", pong_tid, None).unwrap();
    let ping_tid = a
        .register(
            "ping",
            Box::new(Pinger::new(state.clone())),
            &[
                ("peer", &proxy.raw().to_string()),
                ("payload", &payload.to_string()),
                ("count", &calls.to_string()),
            ],
        )
        .unwrap();
    a.enable_all();
    b.enable_all();
    a.post(Message::build_private(ping_tid, Tid::HOST, ORG_DAQ, xfn::PING_START).finish())
        .unwrap();
    while !state.done.load(Ordering::SeqCst) {
        a.run_once();
        b.run_once();
    }
    median_us(steady_state(&state.one_way_ns()))
}

fn main() {
    let args = Args::parse();
    let calls: u64 = args.get("calls", 20_000);

    println!("# HWFIFO: messenger-instance queues in 'hardware' vs software (paper §7)");
    println!("# ping-pong one-way latency over a simulated PCI segment, {calls} calls");
    println!("#");
    println!(
        "{:>8} {:>16} {:>16} {:>10}",
        "bytes", "hw_fifo_us", "sw_queue_us", "hw/sw"
    );
    let mut rows = Vec::new();
    for payload in [1usize, 256, 1024, 4096] {
        let hw = run(FifoKind::Hardware { depth: 64 }, calls, payload);
        let sw = run(FifoKind::Software, calls, payload);
        println!("{payload:>8} {hw:>16.2} {sw:>16.2} {:>10.2}", hw / sw);
        rows.push((payload, hw, sw));
    }
    println!("#");
    println!("# the lock-free bounded ring must not lose to the mutex mailbox;");
    println!("# bounded depth additionally gives backpressure (measured in pt tests).");

    if args.has("json") {
        let path = args.get_str("json", "hwfifo.json");
        let json = serde_json::json!({
            "experiment": "hwfifo",
            "calls": calls,
            "rows": rows.iter().map(|(p, h, s)| serde_json::json!({
                "payload": p, "hw_us": h, "sw_us": s
            })).collect::<Vec<_>>(),
        });
        std::fs::write(&path, serde_json::to_string_pretty(&json).unwrap()).unwrap();
        println!("# wrote {path}");
    }
}
