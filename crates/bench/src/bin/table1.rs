//! TAB1 — regenerates Table 1 of the paper: whitebox timing of the
//! XDAQ framework, microseconds spent per activity on the receiver
//! side, medians over the sampled calls.
//!
//! Paper's values (400 MHz Pentium II, original allocator):
//!
//! ```text
//! PT GM processing                      2.92
//! Demultiplexing to functor             0.22
//! Upcall of Functor                     0.47
//! Application (incl. frameSend)         3.6
//! Release frame, call postprocessing    2.49
//! Sum of application overhead:          9.53
//! frameAlloc                            2.18
//! frameFree                             1.78
//! Cross check measurement:              4.12
//! ```
//!
//! Usage:
//! ```text
//! cargo run -p xdaq-bench --release --bin table1 [--calls 20000]
//!     [--payload 64] [--alloc simple|table] [--json table1.json]
//! ```

use xdaq_bench::{xdaq_gm_pingpong, Args, BlackboxConfig, Summary};
use xdaq_core::AllocatorKind;
use xdaq_gm::LatencyModel;
use xdaq_mempool::{FrameAllocator, SimplePool, TablePool};

fn main() {
    let args = Args::parse();
    let calls: u64 = args.get("calls", 20_000);
    let payload: usize = args.get("payload", 64);
    let allocator = match args.get_str("alloc", "simple").as_str() {
        "table" => AllocatorKind::Table,
        _ => AllocatorKind::Simple,
    };

    // The whitebox run: probes on, no wire model (pure software path),
    // same flood/echo program as the blackbox test (paper §5).
    let run = xdaq_gm_pingpong(BlackboxConfig {
        payload,
        calls,
        wire: LatencyModel::ZERO,
        allocator,
        probes: Some(calls as usize),
    });
    // Receiver-side probes: the ponger executive (exec_b) is the side
    // the paper instruments ("receiving an event and activating the
    // associated code on the receiver side").
    let p = run.exec_b.probes().expect("probes enabled");

    let med = |ring: &xdaq_probe::ProbeRing| ring.summary().median_us();
    let pt = med(&p.pt_processing);
    let demux = med(&p.demux);
    let upcall = med(&p.upcall);
    let app = med(&p.app);
    let release = med(&p.release);
    let frame_free = med(&p.frame_free);
    let frame_alloc = med(&p.frame_alloc);
    // In this implementation the received frame is released inside the
    // application upcall (ownership passes to the handler), so the
    // paper's "release frame, call postprocessing" row corresponds to
    // our post-upcall bookkeeping plus the frameFree of the incoming
    // frame. See EXPERIMENTS.md.
    let release_total = release + frame_free;
    let sum = pt + demux + upcall + app + release_total;

    // Cross-check (paper's footer): direct alloc+free measurement on
    // the same pool scheme.
    let pool: std::sync::Arc<dyn FrameAllocator> = match allocator {
        AllocatorKind::Simple => SimplePool::with_defaults(),
        AllocatorKind::Table => TablePool::with_defaults(),
    };
    let mut cross = Vec::with_capacity(calls as usize);
    for _ in 0..calls {
        let t0 = std::time::Instant::now();
        let b = pool.alloc(payload + 32).expect("alloc");
        drop(b);
        cross.push(t0.elapsed().as_nanos() as u64);
    }
    let cross_us = Summary::from_samples(&cross).median_us();

    println!("# TAB1: whitebox — microseconds spent in the XDAQ framework");
    println!("# medians of {calls} samples | payload {payload} B | allocator {allocator:?}");
    println!("#");
    println!("{:<44} {:>10} {:>10}", "Activity", "this_us", "paper_us");
    let rows: Vec<(&str, f64, &str)> = vec![
        ("PT GM processing", pt, "2.92"),
        ("Demultiplexing to functor", demux, "0.22"),
        ("Upcall of Functor", upcall, "0.47"),
        ("Application (incl. frameSend)", app, "3.6"),
        ("Release frame, call postprocessing", release_total, "2.49"),
        ("Sum of application overhead:", sum, "9.53"),
        ("frameAlloc", frame_alloc, "2.18"),
        ("frameFree", frame_free, "1.78"),
        ("Cross check measurement:", cross_us, "4.12"),
    ];
    for (name, v, paper) in &rows {
        println!("{name:<44} {v:>10.3} {paper:>10}");
    }
    println!("#");
    println!("# shape checks (must hold as in the paper):");
    println!(
        "#  - PT processing dominated by frameAlloc: alloc/pt = {:.0}% (paper: {:.0}%)",
        frame_alloc / pt * 100.0,
        2.18 / 2.92 * 100.0
    );
    println!(
        "#  - demux+upcall are the cheap steps: {:.3} us (paper: 0.69 us)",
        demux + upcall
    );
    println!(
        "#  - cross-check ~ frameAlloc+frameFree: {:.3} vs {:.3} us (paper: 4.12 vs 3.96)",
        cross_us,
        frame_alloc + frame_free
    );

    if args.has("json") {
        let path = args.get_str("json", "table1.json");
        let json = serde_json::json!({
            "experiment": "table1",
            "calls": calls,
            "payload": payload,
            "allocator": format!("{allocator:?}"),
            "rows": rows.iter().map(|(n, v, paper)| serde_json::json!({
                "activity": n, "us": v, "paper_us": paper
            })).collect::<Vec<_>>(),
        });
        std::fs::write(&path, serde_json::to_string_pretty(&json).unwrap()).unwrap();
        println!("# wrote {path}");
    }
}
