//! Deterministic simulation — fault-sweep throughput (DESIGN.md §16):
//! replays `seeds` seeded kill/partition/delay/corrupt schedules
//! against the simulated 5-node event-builder mesh and measures how
//! many whole-cluster fault experiments fit into a second of wall
//! time. Acceptance (PR 10): 100 seeds complete in under 10 s of wall
//! clock with zero event loss on every seed, and one seed replayed
//! twice produces byte-identical golden traces.
//!
//! Usage:
//! ```text
//! cargo run -p xdaq-bench --release --bin sim_sweeps
//!     [--seeds 100] [--target 30] [--json results/BENCH_pr10.json]
//! ```

use std::time::Instant;
use xdaq_sim::{sweep, EvbOptions};

fn main() {
    let args = xdaq_bench::Args::parse();
    let seeds: u64 = args.get("seeds", 100);
    let target: u64 = args.get("target", 30);
    let json_path = args.get_str("json", "results/BENCH_pr10.json");

    let opts = EvbOptions::default();
    println!("# Deterministic simulation: {seeds} fault-schedule sweeps over a");
    println!(
        "# {}-node evb mesh ({} events/run, {} ms trigger beat), virtual clock.",
        1 + opts.n_ru + opts.n_bu,
        target,
        opts.trigger_interval_us / 1000
    );

    let wall = Instant::now();
    let reports = match sweep::sweep(0..seeds, &opts, target) {
        Ok(r) => r,
        Err(f) => panic!("{f}"),
    };
    let wall = wall.elapsed();

    let virt: f64 = reports
        .iter()
        .map(|r| r.virtual_elapsed.as_secs_f64())
        .sum();
    let corrupted: u64 = reports.iter().map(|r| r.corrupted).sum();
    let schedules_per_s = seeds as f64 / wall.as_secs_f64();
    let speedup = virt / wall.as_secs_f64();
    println!(
        "# {seeds} seeds, zero loss: {:.2} s wall for {:.1} s virtual \
         ({schedules_per_s:.0} schedules/s, {speedup:.0}x real time, \
         {corrupted} fragments corrupted)",
        wall.as_secs_f64(),
        virt
    );

    // Replay one seed twice: the golden traces must match bit for bit.
    let replay = Instant::now();
    let a = sweep::golden_trace(seeds / 2, &opts, target).expect("golden seed");
    let b = sweep::golden_trace(seeds / 2, &opts, target).expect("golden seed");
    assert_eq!(a, b, "golden-trace replay diverged");
    println!(
        "# golden replay: seed {} reproduced {} trace bytes identically \
         ({:.0} ms)",
        seeds / 2,
        a.len(),
        replay.elapsed().as_secs_f64() * 1000.0
    );

    // PR 10 acceptance: 100 seeds in < 10 s wall (only enforced at the
    // canonical size — exploratory --seeds runs just report).
    if seeds >= 100 {
        assert!(
            wall.as_secs_f64() < 10.0,
            "sweep took {:.2} s — over the 10 s acceptance bar",
            wall.as_secs_f64()
        );
    }

    let doc = serde_json::json!({
        "bench": "sim_sweeps",
        "seeds": seeds,
        "events_per_run": target,
        "nodes": 1 + opts.n_ru + opts.n_bu,
        "wall_secs": wall.as_secs_f64(),
        "virtual_secs": virt,
        "schedules_per_s": schedules_per_s,
        "virtual_speedup": speedup,
        "fragments_corrupted": corrupted,
        "golden_trace_bytes": a.len(),
        "floor_wall_secs": 10.0,
    });
    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&json_path, format!("{doc:#}")).unwrap();
    println!("wrote {json_path}");
}
