//! SHM — throughput of the `shm://` zero-copy transport against the
//! in-process loopback PT and TCP over localhost, across frame sizes
//! from 64 B to 256 KB.
//!
//! The shm run streams frames allocated straight out of the
//! cross-process pool, so every send moves a 16-byte descriptor; the
//! region's copy counter is sampled per size to prove the send path
//! stayed copy-free for every frame that fits a pool block (oversize
//! frames legitimately chain + copy). TCP moves the same bytes through
//! the kernel socket stack, loopback through an in-process mailbox
//! with one memcpy per hop.
//!
//! Usage:
//! ```text
//! cargo run -p xdaq-bench --release --bin shm_throughput
//!     [--bytes 16777216] [--json results/BENCH_pr3.json]
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xdaq_bench::Args;
use xdaq_core::pta::{PeerTransport, PtMode};
use xdaq_mempool::{FrameAllocator, FrameBuf, TablePool};
use xdaq_pt::{LoopbackHub, LoopbackPt, TcpPt};
use xdaq_shm::{ShmConfig, ShmPt};

const SIZES: &[usize] = &[64, 1024, 4096, 65536, 262144];
const SHM_BLOCK: usize = 65536;

struct Run {
    mib_s: f64,
    frames: usize,
    /// Send-path payload copies recorded during the run (shm only).
    copies: u64,
}

fn frames_for(bytes_target: usize, size: usize) -> usize {
    (bytes_target / size).clamp(400, 200_000)
}

/// Streams `n` frames of `size` bytes through the shm transport: the
/// sender allocates out of the shared pool (descriptor-pass for every
/// size that fits a block), a drainer thread on side B counts frames.
fn shm_run(size: usize, bytes_target: usize) -> Run {
    let n = frames_for(bytes_target, size);
    let path = std::env::temp_dir().join(format!("xdaq-shm-bench-{}-{size}", std::process::id()));
    let tx_pt = ShmPt::new(PtMode::Polling);
    let link = tx_pt
        .create_link(
            &path,
            ShmConfig {
                block_size: SHM_BLOCK,
                nblocks: 512,
                ring_capacity: 1024,
            },
        )
        .unwrap();
    let peer = link.peer_addr().clone();
    let rx_pt = ShmPt::new(PtMode::Polling);
    rx_pt.attach_link(&path).unwrap();

    let got = Arc::new(AtomicU64::new(0));
    let drainer = {
        let rx_pt = rx_pt.clone();
        let got = got.clone();
        std::thread::spawn(move || {
            while (got.load(Ordering::Relaxed) as usize) < n {
                let mut any = false;
                while let Some((_f, _src)) = rx_pt.poll() {
                    got.fetch_add(1, Ordering::Relaxed);
                    any = true;
                }
                if !any {
                    std::thread::yield_now();
                }
            }
        })
    };

    let pool = link.pool().clone();
    let copies_before = pool.copies();
    let t0 = Instant::now();
    let mut sent = 0usize;
    while sent < n {
        // Pool frames when they fit a block (zero-copy descriptor
        // pass); heap frames otherwise (chained copy path).
        let frame = if size <= SHM_BLOCK {
            match pool.alloc(size) {
                Ok(f) => f,
                Err(_) => {
                    std::thread::yield_now();
                    continue;
                }
            }
        } else {
            FrameBuf::detached(size)
        };
        match tx_pt.send(&peer, frame) {
            Ok(()) => sent += 1,
            Err(_) => std::thread::yield_now(), // ring full: let B drain
        }
    }
    while (got.load(Ordering::Relaxed) as usize) < n {
        std::thread::yield_now();
    }
    let elapsed = t0.elapsed();
    drainer.join().unwrap();
    let copies = pool.copies() - copies_before;
    let _ = std::fs::remove_file(&path);
    Run {
        mib_s: (n * size) as f64 / (1 << 20) as f64 / elapsed.as_secs_f64(),
        frames: n,
        copies,
    }
}

/// The same streaming pattern over a generic PT pair: `tx` sends to
/// `dest`, frames surface either through `rx.poll()` (polling mode) or
/// through the ingest sink installed by `start` (task mode).
fn pt_run(
    tx: Arc<dyn PeerTransport>,
    rx: Arc<dyn PeerTransport>,
    dest: &str,
    size: usize,
    bytes_target: usize,
) -> Run {
    let n = frames_for(bytes_target, size);
    let dest = dest.parse().unwrap();
    let got = Arc::new(AtomicU64::new(0));
    if rx.mode() == PtMode::Task {
        let got = got.clone();
        rx.start(Arc::new(move |_f, _src| {
            got.fetch_add(1, Ordering::Relaxed);
        }))
        .unwrap();
    }
    let drainer = (rx.mode() == PtMode::Polling).then(|| {
        let rx = rx.clone();
        let got = got.clone();
        std::thread::spawn(move || {
            while (got.load(Ordering::Relaxed) as usize) < n {
                let mut any = false;
                while rx.poll().is_some() {
                    got.fetch_add(1, Ordering::Relaxed);
                    any = true;
                }
                if !any {
                    std::thread::yield_now();
                }
            }
        })
    });

    // TCP streams are self-delimiting I2O frames: the reader trusts
    // the u16 word count at bytes [2..4], so every transport gets the
    // same validly-framed payload (shm and loopback treat it as
    // opaque). The u16 caps one frame at 65535 words, so the 256 KiB
    // row streams maximal 262140 B frames over TCP — within 0.002 %
    // of the nominal size.
    let flen = size.clamp(xdaq_i2o::HEADER_LEN, u16::MAX as usize * 4) & !3;
    let mut payload = vec![0xA5u8; flen];
    payload[2..4].copy_from_slice(&((flen / 4) as u16).to_le_bytes());
    let t0 = Instant::now();
    let mut sent = 0usize;
    while sent < n {
        match tx.send(&dest, FrameBuf::from_bytes(&payload)) {
            Ok(()) => sent += 1,
            Err(_) => std::thread::yield_now(),
        }
    }
    while (got.load(Ordering::Relaxed) as usize) < n {
        std::thread::yield_now();
    }
    let elapsed = t0.elapsed();
    if let Some(d) = drainer {
        d.join().unwrap();
    }
    rx.stop();
    tx.stop();
    Run {
        mib_s: (n * flen) as f64 / (1 << 20) as f64 / elapsed.as_secs_f64(),
        frames: n,
        copies: 0,
    }
}

fn main() {
    let args = Args::parse();
    let bytes_target: usize = args.get("bytes", 16 * 1024 * 1024);
    let json_path = args.get_str("json", "results/BENCH_pr3.json");

    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>8}",
        "size", "shm MiB/s", "loop MiB/s", "tcp MiB/s", "copies"
    );
    let mut rows = Vec::new();
    let mut shm_4k = 0.0f64;
    let mut tcp_4k = 0.0f64;
    for &size in SIZES {
        let shm = shm_run(size, bytes_target);

        let hub = LoopbackHub::new();
        let la = LoopbackPt::new(&hub, "bench-a");
        let lb = LoopbackPt::new(&hub, "bench-b");
        let lo = pt_run(la, lb, "loop://bench-b", size, bytes_target);

        let ta = TcpPt::bind("127.0.0.1:0", TablePool::with_defaults()).unwrap();
        let tb = TcpPt::bind("127.0.0.1:0", TablePool::with_defaults()).unwrap();
        let tb_url = tb.addr().to_string();
        let tcp = pt_run(ta, tb, &tb_url, size, bytes_target);

        if size == 4096 {
            shm_4k = shm.mib_s;
            tcp_4k = tcp.mib_s;
        }
        println!(
            "{size:>8} {:>12.0} {:>12.0} {:>12.0} {:>8}",
            shm.mib_s, lo.mib_s, tcp.mib_s, shm.copies
        );
        // Every frame that fits one pool block must cross copy-free.
        if size <= SHM_BLOCK {
            assert_eq!(
                shm.copies, 0,
                "{size} B frames took the copy path ({} copies)",
                shm.copies
            );
        } else {
            assert_eq!(
                shm.copies as usize, shm.frames,
                "oversize frames chain through exactly one copy each"
            );
        }
        rows.push(serde_json::json!({
            "size": size,
            "shm_mib_s": shm.mib_s,
            "loopback_mib_s": lo.mib_s,
            "tcp_mib_s": tcp.mib_s,
            "frames": shm.frames,
            "shm_send_copies": shm.copies,
            "zero_copy": size <= SHM_BLOCK,
        }));
    }

    let speedup = shm_4k / tcp_4k;
    println!("shm vs tcp at 4 KiB: {speedup:.1}x");
    assert!(
        speedup >= 5.0,
        "acceptance: shm must beat TCP-localhost by >=5x at 4 KiB (got {speedup:.1}x)"
    );

    let doc = serde_json::json!({
        "bench": "shm_throughput",
        "bytes_target": bytes_target,
        "block_size": SHM_BLOCK,
        "rows": rows,
        "shm_vs_tcp_4k_speedup": speedup,
    });
    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&json_path, format!("{doc:#}")).unwrap();
    println!("wrote {json_path}");
    // TCP's acceptor threads park in blocking accept; exiting the
    // process reaps them.
    let _ = Duration::from_secs(0);
}
