//! RAII frame buffers with recycle-on-drop.

use crate::block::{drop_recycler, Block, BlockRecycler};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A uniquely-owned pooled buffer holding one encoded I2O frame.
///
/// `FrameBuf` is the currency of the zero-copy path: a peer transport
/// receives wire bytes directly into a `FrameBuf`, the executive
/// dispatches the *same* buffer to the listener, and the reply is
/// built into another pooled buffer. When the buffer is dropped the
/// block goes back to its pool — the paper's "automatic garbage
/// collection".
pub struct FrameBuf {
    /// `Some` until drop or conversion into [`SharedFrameBuf`].
    block: Option<Block>,
    recycler: Arc<dyn BlockRecycler>,
}

impl FrameBuf {
    /// Wraps a block with its home pool.
    pub fn new(block: Block, recycler: Arc<dyn BlockRecycler>) -> FrameBuf {
        FrameBuf {
            block: Some(block),
            recycler,
        }
    }

    /// A buffer that is not pooled at all (config path, tests).
    pub fn detached(len: usize) -> FrameBuf {
        let mut b = Block::new(len);
        b.set_len(len);
        FrameBuf::new(b, drop_recycler())
    }

    /// A detached buffer initialized from `bytes`.
    pub fn from_bytes(bytes: &[u8]) -> FrameBuf {
        let mut f = FrameBuf::detached(bytes.len());
        f.copy_from_slice(bytes);
        f
    }

    fn block_ref(&self) -> &Block {
        self.block.as_ref().expect("FrameBuf accessed after take")
    }

    fn block_mut(&mut self) -> &mut Block {
        self.block.as_mut().expect("FrameBuf accessed after take")
    }

    /// Valid length in bytes.
    pub fn len(&self) -> usize {
        self.block_ref().len()
    }

    /// True when the valid length is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Capacity of the underlying block.
    pub fn capacity(&self) -> usize {
        self.block_ref().capacity()
    }

    /// Adjusts the valid length (≤ capacity).
    pub fn set_len(&mut self, len: usize) {
        self.block_mut().set_len(len);
    }

    /// Full backing store for receive paths that fill then trim.
    pub fn raw_mut(&mut self) -> &mut [u8] {
        self.block_mut().raw_mut()
    }

    /// Replaces the recycler, returning the previous one.
    ///
    /// Lets instrumentation wrap the pool's recycler with a timing shim
    /// (the whitebox `frameFree` probe) without the pool knowing.
    pub fn replace_recycler(&mut self, recycler: Arc<dyn BlockRecycler>) -> Arc<dyn BlockRecycler> {
        std::mem::replace(&mut self.recycler, recycler)
    }

    /// Pool-assigned identity of the backing block when it lives in an
    /// external region (see [`Block::external_token`]); `None` for
    /// heap-backed frames. Zero-copy transports branch on this.
    pub fn external_token(&self) -> Option<u64> {
        self.block_ref().external_token()
    }

    /// The frame's valid bytes as one vectored-I/O element (`IoSlice`
    /// is ABI-compatible with `struct iovec` on Unix). Gather-writing
    /// consumers — the event recorder foremost — hand a chain of these
    /// straight to the kernel, so the frame's pool block is the I/O
    /// buffer and the payload is never copied.
    pub fn io_slice(&self) -> std::io::IoSlice<'_> {
        std::io::IoSlice::new(self.block_ref().bytes())
    }

    /// Dismantles the frame into its block and recycler without
    /// recycling. The caller takes over the block's lifecycle — used
    /// by descriptor-passing transports that hand ownership of a
    /// region-backed block to a peer process.
    pub fn into_parts(mut self) -> (Block, Arc<dyn BlockRecycler>) {
        let block = self.block.take().expect("fresh FrameBuf");
        (block, self.recycler.clone())
    }

    /// Converts into a shareable, immutable buffer. O(1), no copy.
    pub fn into_shared(mut self) -> SharedFrameBuf {
        let block = self.block.take().expect("fresh FrameBuf");
        SharedFrameBuf {
            inner: Arc::new(SharedInner {
                block: Some(block),
                recycler: self.recycler.clone(),
            }),
        }
    }
}

impl Deref for FrameBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.block_ref().bytes()
    }
}

impl DerefMut for FrameBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        self.block_mut().bytes_mut()
    }
}

impl Drop for FrameBuf {
    fn drop(&mut self) {
        if let Some(block) = self.block.take() {
            self.recycler.recycle(block);
        }
    }
}

impl std::fmt::Debug for FrameBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FrameBuf(len={}, cap={})", self.len(), self.capacity())
    }
}

struct SharedInner {
    /// `None` only after `try_unshare` reclaimed the block.
    block: Option<Block>,
    recycler: Arc<dyn BlockRecycler>,
}

impl Drop for SharedInner {
    fn drop(&mut self) {
        if let Some(block) = self.block.take() {
            self.recycler.recycle(block);
        }
    }
}

/// A reference-counted immutable frame buffer.
///
/// Cloning is O(1); the underlying block is recycled when the last
/// clone drops. Used when one received fragment fans out to several
/// consumers (paper §3.2's event model allows several listeners).
#[derive(Clone)]
pub struct SharedFrameBuf {
    inner: Arc<SharedInner>,
}

impl SharedFrameBuf {
    /// Number of live references (diagnostics).
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.inner)
    }

    /// Valid length in bytes.
    pub fn len(&self) -> usize {
        self.block().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn block(&self) -> &Block {
        self.inner.block.as_ref().expect("shared block present")
    }

    /// Attempts to recover unique ownership (succeeds only for the
    /// last reference), allowing in-place reuse of the block.
    pub fn try_unshare(self) -> Result<FrameBuf, SharedFrameBuf> {
        match Arc::try_unwrap(self.inner) {
            Ok(mut inner) => {
                let block = inner.block.take().expect("shared block present");
                Ok(FrameBuf::new(block, inner.recycler.clone()))
            }
            Err(inner) => Err(SharedFrameBuf { inner }),
        }
    }
}

impl Deref for SharedFrameBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.block().bytes()
    }
}

impl std::fmt::Debug for SharedFrameBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SharedFrameBuf(len={}, refs={})",
            self.len(),
            self.ref_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    /// Records recycled block capacities.
    #[derive(Default)]
    struct Recorder {
        recycled: Mutex<Vec<usize>>,
    }

    impl BlockRecycler for Recorder {
        fn recycle(&self, block: Block) {
            self.recycled.lock().push(block.capacity());
        }
    }

    #[test]
    fn drop_returns_block_to_pool() {
        let rec = Arc::new(Recorder::default());
        {
            let mut b = Block::new(128);
            b.set_len(5);
            let _f = FrameBuf::new(b, rec.clone());
        }
        assert_eq!(*rec.recycled.lock(), vec![128]);
    }

    #[test]
    fn deref_sees_valid_prefix_only() {
        let mut f = FrameBuf::detached(4);
        f.copy_from_slice(&[1, 2, 3, 4]);
        assert_eq!(&f[..], &[1, 2, 3, 4]);
        f.set_len(2);
        assert_eq!(&f[..], &[1, 2]);
        assert_eq!(f.capacity(), 4);
    }

    #[test]
    fn shared_recycles_once_on_last_drop() {
        let rec = Arc::new(Recorder::default());
        let mut b = Block::new(64);
        b.set_len(8);
        let s = FrameBuf::new(b, rec.clone()).into_shared();
        let s2 = s.clone();
        let s3 = s2.clone();
        drop(s);
        drop(s2);
        assert!(rec.recycled.lock().is_empty());
        drop(s3);
        assert_eq!(*rec.recycled.lock(), vec![64]);
    }

    #[test]
    fn try_unshare_last_reference() {
        let rec = Arc::new(Recorder::default());
        let mut b = Block::new(32);
        b.set_len(3);
        let s = FrameBuf::new(b, rec.clone()).into_shared();
        let f = s.try_unshare().expect("sole owner");
        assert_eq!(f.len(), 3);
        assert!(rec.recycled.lock().is_empty(), "no recycle during unshare");
        drop(f);
        assert_eq!(*rec.recycled.lock(), vec![32]);
    }

    #[test]
    fn try_unshare_fails_with_other_refs() {
        let s = FrameBuf::detached(4).into_shared();
        let s2 = s.clone();
        assert!(s.try_unshare().is_err());
        drop(s2);
    }

    #[test]
    fn from_bytes_copies() {
        let f = FrameBuf::from_bytes(b"abc");
        assert_eq!(&f[..], b"abc");
    }
}
