//! # xdaq-mempool — zero-copy frame buffer pools
//!
//! Paper §4: *"All communication employs a zero-copy scheme as the
//! message buffers are taken from the executive's memory pool. Memory
//! is allocated in fixed sized blocks with a maximum length of 256 KB.
//! ... Automatic garbage collection is provided, such that blocks are
//! recycled if they are not referenced anymore."*
//!
//! Two allocator implementations reproduce the paper's own ablation
//! (§5 whitebox / preliminary test):
//!
//! * [`SimplePool`] — the **original** scheme: every pool size is
//!   pre-allocated up front and allocation linearly scans the pool
//!   list under one lock for the first size that fits. This is the
//!   scheme whose `frameAlloc` cost (2.18 µs on the paper's Pentium II)
//!   dominates the measured framework overhead.
//! * [`TablePool`] — the **optimized** scheme: *"allocates memory for
//!   the buffer pool on demand. Furthermore it relies on a table based
//!   matching from requested memory size to pool buffer size, thus the
//!   time needed to allocate a frame shrinks dramatically for
//!   applications that use similar buffer sizes throughout their
//!   lifetimes"* — size-class table with O(1) class lookup and
//!   per-class free lists.
//!
//! Both hand out [`FrameBuf`]s: RAII buffers that return their block to
//! the pool on drop (the paper's "automatic garbage collection").
//! [`SharedFrameBuf`] provides the multiple-reference case (e.g. one
//! event fragment fanned out to several builder units) — the block is
//! recycled when the last reference drops.

pub mod block;
pub mod chain;
pub mod frame_buf;
pub mod simple;
pub mod stats;
pub mod table;

pub use block::{Block, BlockRecycler};
pub use chain::{reassemble, segment_lengths, split_into_frames, ChainError};
pub use frame_buf::{FrameBuf, SharedFrameBuf};
pub use simple::SimplePool;
pub use stats::PoolStats;
pub use table::TablePool;

use core::fmt;
use std::sync::Arc;

/// Hard upper bound on one pooled block (paper: 256 KB).
pub const MAX_BLOCK_LEN: usize = xdaq_i2o::MAX_BLOCK_LEN;

/// Allocation failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// Requested more than [`MAX_BLOCK_LEN`]; use frame chaining.
    TooLarge(usize),
    /// Pool reached its configured block budget.
    Exhausted {
        requested: usize,
        live_blocks: usize,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::TooLarge(n) => {
                write!(
                    f,
                    "requested {n} bytes exceeds max block of {MAX_BLOCK_LEN}; chain frames"
                )
            }
            AllocError::Exhausted {
                requested,
                live_blocks,
            } => write!(
                f,
                "pool exhausted: {requested} bytes requested with {live_blocks} blocks live"
            ),
        }
    }
}

impl std::error::Error for AllocError {}

/// A frame allocator usable by the executive and the peer transports.
///
/// Implementations must be thread-safe: PTs in task mode allocate from
/// their own threads while the executive frees on the dispatch thread.
pub trait FrameAllocator: Send + Sync {
    /// Allocates a buffer of at least `len` bytes, length set to `len`.
    fn alloc(&self, len: usize) -> Result<FrameBuf, AllocError>;

    /// Running counters.
    fn stats(&self) -> PoolStats;

    /// Human-readable scheme name (used by benchmark output).
    fn scheme(&self) -> &'static str;
}

/// Object-safe convenience alias used throughout the executive.
pub type DynAllocator = Arc<dyn FrameAllocator>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_error_messages() {
        let e = AllocError::TooLarge(1 << 20);
        assert!(e.to_string().contains("chain"));
        let e = AllocError::Exhausted {
            requested: 64,
            live_blocks: 3,
        };
        assert!(e.to_string().contains("exhausted"));
    }
}
