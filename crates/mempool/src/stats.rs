//! Pool accounting counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Snapshot of a pool's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Successful allocations.
    pub allocs: u64,
    /// Allocations served from the free list (recycled blocks).
    pub hits: u64,
    /// Allocations that had to create a fresh block.
    pub misses: u64,
    /// Blocks returned to the pool.
    pub frees: u64,
    /// Failed allocations.
    pub failures: u64,
    /// Blocks currently handed out.
    pub live_blocks: u64,
    /// Most blocks ever handed out simultaneously (high-water mark).
    pub high_water_blocks: u64,
    /// Total bytes of block capacity ever created.
    pub bytes_created: u64,
}

impl PoolStats {
    /// Recycling effectiveness in [0, 1]; `None` before any allocs.
    pub fn hit_rate(&self) -> Option<f64> {
        if self.allocs == 0 {
            None
        } else {
            Some(self.hits as f64 / self.allocs as f64)
        }
    }
}

/// Internal atomic counters shared by both pool implementations.
#[derive(Debug, Default)]
pub(crate) struct AtomicStats {
    pub allocs: AtomicU64,
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub frees: AtomicU64,
    pub failures: AtomicU64,
    pub live_blocks: AtomicU64,
    pub high_water_blocks: AtomicU64,
    pub bytes_created: AtomicU64,
}

impl AtomicStats {
    pub fn snapshot(&self) -> PoolStats {
        PoolStats {
            allocs: self.allocs.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            frees: self.frees.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            live_blocks: self.live_blocks.load(Ordering::Relaxed),
            high_water_blocks: self.high_water_blocks.load(Ordering::Relaxed),
            bytes_created: self.bytes_created.load(Ordering::Relaxed),
        }
    }

    pub fn on_alloc(&self, hit: bool, created_bytes: usize) {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.bytes_created
                .fetch_add(created_bytes as u64, Ordering::Relaxed);
        }
        let live = self.live_blocks.fetch_add(1, Ordering::Relaxed) + 1;
        self.high_water_blocks.fetch_max(live, Ordering::Relaxed);
    }

    pub fn on_free(&self) {
        self.frees.fetch_add(1, Ordering::Relaxed);
        self.live_blocks.fetch_sub(1, Ordering::Relaxed);
    }

    pub fn on_failure(&self) {
        self.failures.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_none_before_allocs() {
        assert_eq!(PoolStats::default().hit_rate(), None);
    }

    #[test]
    fn atomic_stats_snapshot() {
        let s = AtomicStats::default();
        s.on_alloc(false, 100);
        s.on_alloc(true, 0);
        s.on_free();
        s.on_failure();
        let snap = s.snapshot();
        assert_eq!(snap.allocs, 2);
        assert_eq!(snap.hits, 1);
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.frees, 1);
        assert_eq!(snap.failures, 1);
        assert_eq!(snap.live_blocks, 1);
        assert_eq!(snap.high_water_blocks, 2);
        assert_eq!(snap.bytes_created, 100);
        assert_eq!(snap.hit_rate(), Some(0.5));
    }

    #[test]
    fn high_water_survives_frees() {
        let s = AtomicStats::default();
        for _ in 0..3 {
            s.on_alloc(true, 0);
        }
        s.on_free();
        s.on_free();
        s.on_alloc(true, 0);
        let snap = s.snapshot();
        assert_eq!(snap.live_blocks, 2);
        assert_eq!(snap.high_water_blocks, 3, "peak, not current");
    }
}
