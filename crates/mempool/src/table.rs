//! The optimized, table-based buffer pool.
//!
//! Paper §5: *"A new allocation scheme that we tried, allocates memory
//! for the buffer pool on demand. Furthermore it relies on a table
//! based matching from requested memory size to pool buffer size, thus
//! the time needed to allocate a frame shrinks dramatically for
//! applications that use similar buffer sizes throughout their
//! lifetimes. In a preliminary black box test we were able to reduce
//! the framework overhead by another 4 µsec to 4.9 µsec."*
//!
//! Design:
//!
//! * size classes are powers of two from 64 B to 256 KB — the
//!   requested-size → class mapping is a constant-time bit operation
//!   (the "table"),
//! * each class has its own lock-free free list
//!   ([`crossbeam::queue::SegQueue`]), so concurrent PT threads and the
//!   dispatch thread never contend on one global lock,
//! * blocks are created **on demand**: nothing is pre-allocated, and a
//!   stable working set reaches 100 % recycle hits after warm-up.

use crate::block::{Block, BlockRecycler};
use crate::frame_buf::FrameBuf;
use crate::stats::AtomicStats;
use crate::{AllocError, FrameAllocator, PoolStats, MAX_BLOCK_LEN};
use crossbeam::queue::SegQueue;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Smallest size class: one cache line pair, enough for control frames.
pub const MIN_CLASS: usize = 64;
const MIN_SHIFT: u32 = MIN_CLASS.trailing_zeros();
/// Number of classes: 64, 128, ..., 262144.
pub const NUM_CLASSES: usize = (MAX_BLOCK_LEN.trailing_zeros() - MIN_SHIFT + 1) as usize;

/// Constant-time size→class lookup.
///
/// Returns `None` for requests above [`MAX_BLOCK_LEN`].
#[inline]
pub fn size_class(len: usize) -> Option<usize> {
    if len > MAX_BLOCK_LEN {
        return None;
    }
    let rounded = len.max(MIN_CLASS).next_power_of_two();
    Some((rounded.trailing_zeros() - MIN_SHIFT) as usize)
}

/// Capacity of a class.
#[inline]
pub const fn class_capacity(class: usize) -> usize {
    MIN_CLASS << class
}

/// The optimized pool. See module docs.
pub struct TablePool {
    classes: Vec<SegQueue<Block>>,
    stats: AtomicStats,
    created: AtomicUsize,
    max_blocks: usize,
    self_ref: Mutex<Option<std::sync::Weak<TablePool>>>,
}

impl TablePool {
    /// Unbounded pool (the usual configuration).
    pub fn with_defaults() -> Arc<TablePool> {
        TablePool::new(usize::MAX)
    }

    /// Pool bounded to `max_blocks` total block creations.
    pub fn new(max_blocks: usize) -> Arc<TablePool> {
        let classes = (0..NUM_CLASSES).map(|_| SegQueue::new()).collect();
        let pool = Arc::new(TablePool {
            classes,
            stats: AtomicStats::default(),
            created: AtomicUsize::new(0),
            max_blocks,
            self_ref: Mutex::new(None),
        });
        *pool.self_ref.lock() = Some(Arc::downgrade(&pool));
        pool
    }

    fn recycler(&self) -> Arc<dyn BlockRecycler> {
        self.self_ref
            .lock()
            .as_ref()
            .and_then(|w| w.upgrade())
            .expect("pool alive") as Arc<dyn BlockRecycler>
    }

    /// Pre-warms `count` blocks in the class serving `len`-byte
    /// requests. Optional — the pool is on-demand by design — but lets
    /// latency-critical setups avoid first-touch cost.
    pub fn prewarm(&self, len: usize, count: usize) -> Result<(), AllocError> {
        let class = size_class(len).ok_or(AllocError::TooLarge(len))?;
        for _ in 0..count {
            if self.created.fetch_add(1, Ordering::Relaxed) >= self.max_blocks {
                self.created.fetch_sub(1, Ordering::Relaxed);
                return Err(AllocError::Exhausted {
                    requested: len,
                    live_blocks: self.stats.snapshot().live_blocks as usize,
                });
            }
            let cap = class_capacity(class);
            self.stats
                .bytes_created
                .fetch_add(cap as u64, Ordering::Relaxed);
            self.classes[class].push(Block::new(cap));
        }
        Ok(())
    }
}

impl FrameAllocator for TablePool {
    #[inline]
    fn alloc(&self, len: usize) -> Result<FrameBuf, AllocError> {
        let Some(class) = size_class(len) else {
            self.stats.on_failure();
            return Err(AllocError::TooLarge(len));
        };
        if let Some(mut block) = self.classes[class].pop() {
            block.set_len(len);
            self.stats.on_alloc(true, 0);
            return Ok(FrameBuf::new(block, self.recycler()));
        }
        // On-demand creation.
        if self.created.fetch_add(1, Ordering::Relaxed) >= self.max_blocks {
            self.created.fetch_sub(1, Ordering::Relaxed);
            self.stats.on_failure();
            return Err(AllocError::Exhausted {
                requested: len,
                live_blocks: self.stats.snapshot().live_blocks as usize,
            });
        }
        let cap = class_capacity(class);
        let mut block = Block::new(cap);
        block.set_len(len);
        self.stats.on_alloc(false, cap);
        Ok(FrameBuf::new(block, self.recycler()))
    }

    fn stats(&self) -> PoolStats {
        self.stats.snapshot()
    }

    fn scheme(&self) -> &'static str {
        "table"
    }
}

impl BlockRecycler for TablePool {
    fn recycle(&self, mut block: Block) {
        let cap = block.capacity();
        // Capacities are always class capacities for our own blocks.
        if let Some(class) = size_class(cap) {
            if class_capacity(class) == cap {
                block.set_len(0);
                self.classes[class].push(block);
                self.stats.on_free();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_class_mapping() {
        assert_eq!(size_class(0), Some(0));
        assert_eq!(size_class(1), Some(0));
        assert_eq!(size_class(64), Some(0));
        assert_eq!(size_class(65), Some(1));
        assert_eq!(size_class(128), Some(1));
        assert_eq!(size_class(MAX_BLOCK_LEN), Some(NUM_CLASSES - 1));
        assert_eq!(size_class(MAX_BLOCK_LEN + 1), None);
    }

    #[test]
    fn class_capacity_roundtrip() {
        for c in 0..NUM_CLASSES {
            assert_eq!(size_class(class_capacity(c)), Some(c));
        }
        assert_eq!(class_capacity(NUM_CLASSES - 1), MAX_BLOCK_LEN);
    }

    #[test]
    fn on_demand_then_recycled() {
        let p = TablePool::with_defaults();
        let f = p.alloc(1000).unwrap();
        assert_eq!(f.capacity(), 1024);
        drop(f);
        let s = p.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.frees, 1);
        let _g = p.alloc(900).unwrap();
        assert_eq!(p.stats().hits, 1, "same class reuses the block");
    }

    #[test]
    fn stable_working_set_hits_100_percent_after_warmup() {
        let p = TablePool::with_defaults();
        for _ in 0..100 {
            let f = p.alloc(4096).unwrap();
            drop(f);
        }
        let s = p.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 99);
    }

    #[test]
    fn budget_enforced() {
        let p = TablePool::new(2);
        let _a = p.alloc(10).unwrap();
        let _b = p.alloc(10).unwrap();
        assert!(matches!(p.alloc(10), Err(AllocError::Exhausted { .. })));
    }

    #[test]
    fn prewarm_fills_class() {
        let p = TablePool::with_defaults();
        p.prewarm(512, 8).unwrap();
        for _ in 0..8 {
            let f = p.alloc(512).unwrap();
            std::mem::forget(f); // keep them live
        }
        assert_eq!(p.stats().misses, 0, "all served from prewarmed list");
    }

    #[test]
    fn too_large_rejected() {
        let p = TablePool::with_defaults();
        assert!(matches!(
            p.alloc(MAX_BLOCK_LEN * 2),
            Err(AllocError::TooLarge(_))
        ));
    }

    #[test]
    fn concurrent_stress_many_threads() {
        let p = TablePool::with_defaults();
        std::thread::scope(|s| {
            for t in 0..8 {
                let p = p.clone();
                s.spawn(move || {
                    for i in 0..2000usize {
                        let len = 1 + ((i * 37 + t * 101) % 8000);
                        let f = p.alloc(len).unwrap();
                        assert_eq!(f.len(), len);
                    }
                });
            }
        });
        let s = p.stats();
        assert_eq!(s.live_blocks, 0);
        assert_eq!(s.allocs, 16000);
        assert_eq!(s.frees as i64, s.allocs as i64 - s.failures as i64);
    }
}
