//! Raw pooled memory blocks.

use std::sync::Arc;

/// One fixed-size storage block.
///
/// Blocks are the unit of pooling: capacity never changes after
/// creation, only the valid length does. Capacity is always a
/// power-of-two-friendly pool size ≤ 256 KB chosen by the allocator.
#[derive(Debug)]
pub struct Block {
    storage: Box<[u8]>,
    /// Valid prefix of `storage`.
    len: usize,
}

impl Block {
    /// Creates a zeroed block of exactly `capacity` bytes.
    pub fn new(capacity: usize) -> Block {
        Block {
            storage: vec![0u8; capacity].into_boxed_slice(),
            len: 0,
        }
    }

    /// Fixed capacity.
    pub fn capacity(&self) -> usize {
        self.storage.len()
    }

    /// Valid length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no valid bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets the valid length (must not exceed capacity).
    pub fn set_len(&mut self, len: usize) {
        assert!(
            len <= self.capacity(),
            "len {len} > capacity {}",
            self.capacity()
        );
        self.len = len;
    }

    /// Valid bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.storage[..self.len]
    }

    /// Mutable valid bytes.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.storage[..self.len]
    }

    /// Whole backing store, regardless of valid length.
    pub fn raw_mut(&mut self) -> &mut [u8] {
        &mut self.storage
    }
}

/// Recycling sink a [`crate::FrameBuf`] returns its block to on drop.
///
/// Implemented by each pool. The indirection keeps `FrameBuf`
/// allocator-agnostic so frames from different pools can coexist in
/// one executive (e.g. a PT-owned receive pool and the executive's
/// send pool).
pub trait BlockRecycler: Send + Sync {
    /// Accepts a block back. Implementations must not panic: recycling
    /// happens in `Drop`.
    fn recycle(&self, block: Block);
}

/// A recycler that simply drops blocks (used by tests and by
/// [`crate::FrameBuf::detached`] buffers that bypass pooling).
#[derive(Debug, Default)]
pub struct DropRecycler;

impl BlockRecycler for DropRecycler {
    fn recycle(&self, _block: Block) {}
}

/// Shared handle to the drop-recycler singleton.
pub fn drop_recycler() -> Arc<dyn BlockRecycler> {
    static ONCE: std::sync::OnceLock<Arc<DropRecycler>> = std::sync::OnceLock::new();
    ONCE.get_or_init(|| Arc::new(DropRecycler)).clone() as Arc<dyn BlockRecycler>
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_len_tracking() {
        let mut b = Block::new(64);
        assert_eq!(b.capacity(), 64);
        assert!(b.is_empty());
        b.set_len(10);
        assert_eq!(b.len(), 10);
        b.bytes_mut().copy_from_slice(&[7u8; 10]);
        assert_eq!(b.bytes(), &[7u8; 10]);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn set_len_beyond_capacity_panics() {
        Block::new(8).set_len(9);
    }

    #[test]
    fn raw_mut_exposes_whole_store() {
        let mut b = Block::new(16);
        assert_eq!(b.raw_mut().len(), 16);
    }
}
