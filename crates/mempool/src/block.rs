//! Raw pooled memory blocks.

use std::sync::Arc;

/// Backing store of a [`Block`]: either process-private heap memory or
/// a borrowed range of an external region (e.g. a `mmap`ed shared
/// segment owned by `xdaq-shm`).
///
/// The `Raw` variant is what makes cross-process zero-copy possible: a
/// `FrameBuf` whose block points into a shared region can be handed to
/// another process as a `{offset, len}` descriptor instead of bytes.
#[derive(Debug)]
enum Storage {
    Heap(Box<[u8]>),
    /// Borrowed pointer into an external region. The block does NOT
    /// own this memory; dropping the block never frees it. Lifetime is
    /// guaranteed by the pool that minted the block (see safety notes
    /// on [`Block::from_raw_parts`]).
    Raw {
        ptr: *mut u8,
        cap: usize,
    },
}

/// One fixed-size storage block.
///
/// Blocks are the unit of pooling: capacity never changes after
/// creation, only the valid length does. Capacity is always a
/// power-of-two-friendly pool size ≤ 256 KB chosen by the allocator.
#[derive(Debug)]
pub struct Block {
    storage: Storage,
    /// Valid prefix of the storage.
    len: usize,
    /// Pool-assigned identity for externally-backed blocks; 0 for
    /// heap blocks. Encodes enough for the minting pool to recognize
    /// its own blocks (xdaq-shm packs `region_id << 32 | block_index`).
    token: u64,
}

// SAFETY: the `Raw` variant holds a pointer into an external region.
// Blocks are uniquely owned (a pool hands each block to exactly one
// owner at a time via its free list), so `&Block`/`Block` moves across
// threads cannot alias writes. The region outliving the block is part
// of the minting pool's contract: every `FrameBuf` carries an `Arc` to
// its recycler, which keeps the mapping alive.
unsafe impl Send for Block {}
unsafe impl Sync for Block {}

impl Block {
    /// Creates a zeroed heap block of exactly `capacity` bytes.
    pub fn new(capacity: usize) -> Block {
        Block {
            storage: Storage::Heap(vec![0u8; capacity].into_boxed_slice()),
            len: 0,
            token: 0,
        }
    }

    /// Wraps an externally-owned memory range as a block.
    ///
    /// `token` must be nonzero and identify the range to the minting
    /// pool (so its recycler can translate the block back to a slot).
    ///
    /// # Safety
    ///
    /// - `ptr` must be valid for reads and writes of `cap` bytes for
    ///   the entire life of the block, including across the processes
    ///   that map the region.
    /// - The caller must guarantee unique ownership: no other `Block`
    ///   (in this or any attached process) may cover the same range
    ///   while this one is live.
    pub unsafe fn from_raw_parts(ptr: *mut u8, cap: usize, token: u64) -> Block {
        debug_assert!(token != 0, "external blocks need a nonzero token");
        Block {
            storage: Storage::Raw { ptr, cap },
            len: 0,
            token,
        }
    }

    /// Pool-assigned identity for externally-backed blocks; `None` for
    /// plain heap blocks. Transports use this to detect frames they
    /// can descriptor-pass without copying.
    pub fn external_token(&self) -> Option<u64> {
        match self.storage {
            Storage::Heap(_) => None,
            Storage::Raw { .. } => Some(self.token),
        }
    }

    /// Fixed capacity.
    pub fn capacity(&self) -> usize {
        match &self.storage {
            Storage::Heap(b) => b.len(),
            Storage::Raw { cap, .. } => *cap,
        }
    }

    /// Valid length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no valid bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets the valid length (must not exceed capacity).
    pub fn set_len(&mut self, len: usize) {
        assert!(
            len <= self.capacity(),
            "len {len} > capacity {}",
            self.capacity()
        );
        self.len = len;
    }

    /// Valid bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.raw()[..self.len]
    }

    /// Mutable valid bytes.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        let len = self.len;
        &mut self.raw_mut()[..len]
    }

    fn raw(&self) -> &[u8] {
        match &self.storage {
            Storage::Heap(b) => b,
            // SAFETY: `from_raw_parts` contract — ptr valid for cap
            // bytes and uniquely owned by this block.
            Storage::Raw { ptr, cap } => unsafe { std::slice::from_raw_parts(*ptr, *cap) },
        }
    }

    /// Whole backing store, regardless of valid length.
    pub fn raw_mut(&mut self) -> &mut [u8] {
        match &mut self.storage {
            Storage::Heap(b) => b,
            // SAFETY: as in `raw`, plus `&mut self` rules out aliases.
            Storage::Raw { ptr, cap } => unsafe { std::slice::from_raw_parts_mut(*ptr, *cap) },
        }
    }
}

/// Recycling sink a [`crate::FrameBuf`] returns its block to on drop.
///
/// Implemented by each pool. The indirection keeps `FrameBuf`
/// allocator-agnostic so frames from different pools can coexist in
/// one executive (e.g. a PT-owned receive pool and the executive's
/// send pool).
pub trait BlockRecycler: Send + Sync {
    /// Accepts a block back. Implementations must not panic: recycling
    /// happens in `Drop`.
    fn recycle(&self, block: Block);
}

/// A recycler that simply drops blocks (used by tests and by
/// [`crate::FrameBuf::detached`] buffers that bypass pooling).
#[derive(Debug, Default)]
pub struct DropRecycler;

impl BlockRecycler for DropRecycler {
    fn recycle(&self, _block: Block) {}
}

/// Shared handle to the drop-recycler singleton.
pub fn drop_recycler() -> Arc<dyn BlockRecycler> {
    static ONCE: std::sync::OnceLock<Arc<DropRecycler>> = std::sync::OnceLock::new();
    ONCE.get_or_init(|| Arc::new(DropRecycler)).clone() as Arc<dyn BlockRecycler>
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_len_tracking() {
        let mut b = Block::new(64);
        assert_eq!(b.capacity(), 64);
        assert!(b.is_empty());
        b.set_len(10);
        assert_eq!(b.len(), 10);
        b.bytes_mut().copy_from_slice(&[7u8; 10]);
        assert_eq!(b.bytes(), &[7u8; 10]);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn set_len_beyond_capacity_panics() {
        Block::new(8).set_len(9);
    }

    #[test]
    fn raw_mut_exposes_whole_store() {
        let mut b = Block::new(16);
        assert_eq!(b.raw_mut().len(), 16);
    }

    #[test]
    fn heap_blocks_have_no_token() {
        assert_eq!(Block::new(8).external_token(), None);
    }

    #[test]
    fn raw_block_round_trip() {
        let mut backing = vec![0u8; 32];
        // SAFETY: `backing` outlives `b`, no aliases while `b` lives.
        let mut b = unsafe { Block::from_raw_parts(backing.as_mut_ptr(), 32, 42) };
        assert_eq!(b.capacity(), 32);
        assert_eq!(b.external_token(), Some(42));
        b.set_len(4);
        b.bytes_mut().copy_from_slice(&[9u8; 4]);
        drop(b); // dropping a raw block must not free the backing
        assert_eq!(&backing[..4], &[9u8; 4]);
    }
}
