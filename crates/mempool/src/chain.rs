//! Frame chaining: transmitting arbitrary-length payloads over
//! fixed-size pooled blocks.
//!
//! Paper §4: *"Making use of I2O's Scatter-Gather Lists (SGL) or
//! chaining blocks helps to transmit arbitrary length information."*
//! This module implements the chaining half: a logical payload larger
//! than one frame is split across several frames that share the
//! initiator/transaction contexts; every frame but the last carries the
//! `MORE` flag. Peer transports deliver frames of one (initiator,
//! transaction) pair in order, so reassembly is a concatenation with
//! integrity checks.

use crate::frame_buf::FrameBuf;
use crate::{AllocError, FrameAllocator};
use core::fmt;
use xdaq_i2o::{FrameError, MsgFlags, MsgHeader, PrivateHeader, HEADER_LEN, PRIVATE_HEADER_LEN};

/// Chaining failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainError {
    /// Underlying pool refused an allocation.
    Alloc(AllocError),
    /// Frame-level encode/decode failure.
    Frame(FrameError),
    /// `max_payload` too small to carry even the private extension.
    SegmentTooSmall(usize),
    /// Reassembly input was empty.
    NoFrames,
    /// A non-final frame lacked `MORE`, or the final frame carried it.
    BadMoreFlag { index: usize },
    /// Frames disagree on initiator/transaction context.
    ContextMismatch { index: usize },
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::Alloc(e) => write!(f, "chain allocation failed: {e}"),
            ChainError::Frame(e) => write!(f, "chain frame error: {e}"),
            ChainError::SegmentTooSmall(n) => {
                write!(f, "segment budget of {n} bytes cannot carry a frame")
            }
            ChainError::NoFrames => write!(f, "no frames to reassemble"),
            ChainError::BadMoreFlag { index } => {
                write!(f, "frame {index} has an inconsistent MORE flag")
            }
            ChainError::ContextMismatch { index } => {
                write!(f, "frame {index} belongs to a different transaction")
            }
        }
    }
}

impl std::error::Error for ChainError {}

impl From<AllocError> for ChainError {
    fn from(e: AllocError) -> ChainError {
        ChainError::Alloc(e)
    }
}

impl From<FrameError> for ChainError {
    fn from(e: FrameError) -> ChainError {
        ChainError::Frame(e)
    }
}

/// Computes the payload split for `total` bytes at `max_seg` bytes per
/// segment. Zero-length payloads yield one zero-length segment (a
/// chain is never empty).
pub fn segment_lengths(total: usize, max_seg: usize) -> Vec<usize> {
    assert!(max_seg > 0, "segment size must be positive");
    if total == 0 {
        return vec![0];
    }
    let mut out = Vec::with_capacity(total.div_ceil(max_seg));
    let mut rest = total;
    while rest > 0 {
        let n = rest.min(max_seg);
        out.push(n);
        rest -= n;
    }
    out
}

/// Splits `payload` into a chain of fully-encoded frames allocated from
/// `pool`.
///
/// `header` supplies addressing, flags and contexts; its `payload_len`
/// is overwritten per frame. The private extension (if any) is carried
/// by **every** frame of the chain so each frame is independently
/// routable. `max_payload` bounds the per-frame payload (extension
/// included), modelling the pool's block budget.
pub fn split_into_frames(
    pool: &dyn FrameAllocator,
    header: MsgHeader,
    private: Option<PrivateHeader>,
    payload: &[u8],
    max_payload: usize,
) -> Result<Vec<FrameBuf>, ChainError> {
    let ext = if private.is_some() { 4usize } else { 0 };
    if max_payload <= ext {
        return Err(ChainError::SegmentTooSmall(max_payload));
    }
    let data_per_frame = max_payload - ext;
    let segments = segment_lengths(payload.len(), data_per_frame);
    let n = segments.len();
    let mut frames = Vec::with_capacity(n);
    let mut off = 0usize;
    for (i, seg) in segments.into_iter().enumerate() {
        let mut h = header;
        h.payload_len = (seg + ext) as u32;
        h.flags = if i + 1 < n {
            h.flags.with(MsgFlags::MORE)
        } else {
            h.flags.without(MsgFlags::MORE)
        };
        let total = h.frame_len();
        let mut buf = pool.alloc(total)?;
        h.encode(&mut buf)?;
        let mut data_off = HEADER_LEN;
        if let Some(p) = &private {
            p.encode(&mut buf)?;
            data_off = PRIVATE_HEADER_LEN;
        }
        buf[data_off..data_off + seg].copy_from_slice(&payload[off..off + seg]);
        off += seg;
        frames.push(buf);
    }
    Ok(frames)
}

/// Reassembles a chain of encoded frames back into
/// `(header, private, payload)`.
///
/// The returned header is the first frame's header with `MORE` cleared
/// and `payload_len` covering the whole logical payload (extension
/// included when private).
pub fn reassemble<'a, I>(
    frames: I,
) -> Result<(MsgHeader, Option<PrivateHeader>, Vec<u8>), ChainError>
where
    I: IntoIterator<Item = &'a [u8]>,
{
    let mut iter = frames.into_iter().peekable();
    let mut payload = Vec::new();
    let mut first: Option<(MsgHeader, Option<PrivateHeader>)> = None;
    let mut index = 0usize;
    while let Some(bytes) = iter.next() {
        let h = MsgHeader::decode(bytes)?;
        let is_last = iter.peek().is_none();
        let has_more = h.flags.contains(MsgFlags::MORE);
        if has_more == is_last {
            return Err(ChainError::BadMoreFlag { index });
        }
        let (private, data_off, ext) = if h.is_private() {
            (
                Some(PrivateHeader::decode(bytes)?),
                PRIVATE_HEADER_LEN,
                4usize,
            )
        } else {
            (None, HEADER_LEN, 0)
        };
        match &first {
            None => first = Some((h, private)),
            Some((h0, _)) => {
                if h.initiator_context != h0.initiator_context
                    || h.transaction_context != h0.transaction_context
                    || h.target != h0.target
                    || h.initiator != h0.initiator
                {
                    return Err(ChainError::ContextMismatch { index });
                }
            }
        }
        let data_len = h.payload_len as usize - ext;
        payload.extend_from_slice(&bytes[data_off..data_off + data_len]);
        index += 1;
    }
    let (mut header, private) = first.ok_or(ChainError::NoFrames)?;
    header.flags = header.flags.without(MsgFlags::MORE);
    let ext = if private.is_some() { 4 } else { 0 };
    header.payload_len = (payload.len() + ext) as u32;
    Ok((header, private, payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TablePool;
    use xdaq_i2o::{FunctionCode, Tid};

    fn header() -> MsgHeader {
        let mut h = MsgHeader::new(
            Tid::new(0x111).unwrap(),
            Tid::new(0x222).unwrap(),
            FunctionCode::Private,
        );
        h.initiator_context = 0xAB;
        h.transaction_context = 0xCD;
        h
    }

    fn private() -> Option<PrivateHeader> {
        Some(PrivateHeader::new(xdaq_i2o::ORG_XDAQ, 9))
    }

    #[test]
    fn segment_lengths_cover_payload() {
        assert_eq!(segment_lengths(0, 10), vec![0]);
        assert_eq!(segment_lengths(10, 10), vec![10]);
        assert_eq!(segment_lengths(11, 10), vec![10, 1]);
        assert_eq!(segment_lengths(30, 10), vec![10, 10, 10]);
    }

    #[test]
    fn single_frame_chain_roundtrip() {
        let pool = TablePool::with_defaults();
        let payload = vec![7u8; 100];
        let frames = split_into_frames(&*pool, header(), private(), &payload, 1024).unwrap();
        assert_eq!(frames.len(), 1);
        let (h, p, data) = reassemble(frames.iter().map(|f| &f[..])).unwrap();
        assert_eq!(data, payload);
        assert_eq!(p, private());
        assert!(!h.flags.contains(MsgFlags::MORE));
        assert_eq!(h.payload_len as usize, payload.len() + 4);
    }

    #[test]
    fn multi_frame_chain_roundtrip() {
        let pool = TablePool::with_defaults();
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let frames = split_into_frames(&*pool, header(), private(), &payload, 1000).unwrap();
        assert_eq!(frames.len(), 11, "996 data bytes per frame");
        for (i, f) in frames.iter().enumerate() {
            let h = MsgHeader::decode(f).unwrap();
            assert_eq!(h.flags.contains(MsgFlags::MORE), i + 1 < frames.len());
        }
        let (_, _, data) = reassemble(frames.iter().map(|f| &f[..])).unwrap();
        assert_eq!(data, payload);
    }

    #[test]
    fn standard_frames_chain_without_extension() {
        let pool = TablePool::with_defaults();
        let mut h = header();
        h.function = 0x06; // UtilParamsGet
        let payload = vec![1u8; 50];
        let frames = split_into_frames(&*pool, h, None, &payload, 20).unwrap();
        assert_eq!(frames.len(), 3);
        let (rh, p, data) = reassemble(frames.iter().map(|f| &f[..])).unwrap();
        assert!(p.is_none());
        assert_eq!(data, payload);
        assert_eq!(rh.payload_len, 50);
    }

    #[test]
    fn empty_payload_yields_one_frame() {
        let pool = TablePool::with_defaults();
        let frames = split_into_frames(&*pool, header(), private(), &[], 256).unwrap();
        assert_eq!(frames.len(), 1);
        let (_, _, data) = reassemble(frames.iter().map(|f| &f[..])).unwrap();
        assert!(data.is_empty());
    }

    #[test]
    fn segment_too_small_rejected() {
        let pool = TablePool::with_defaults();
        assert!(matches!(
            split_into_frames(&*pool, header(), private(), b"xx", 4),
            Err(ChainError::SegmentTooSmall(4))
        ));
    }

    #[test]
    fn reassemble_detects_missing_tail() {
        let pool = TablePool::with_defaults();
        let payload = vec![3u8; 300];
        let frames = split_into_frames(&*pool, header(), private(), &payload, 100).unwrap();
        // Drop the last frame: the new last frame still carries MORE.
        let err = reassemble(frames[..frames.len() - 1].iter().map(|f| &f[..])).unwrap_err();
        assert!(matches!(err, ChainError::BadMoreFlag { .. }));
    }

    #[test]
    fn reassemble_detects_foreign_frame() {
        let pool = TablePool::with_defaults();
        let a = split_into_frames(&*pool, header(), private(), &[1u8; 200], 100).unwrap();
        let mut h2 = header();
        h2.transaction_context = 0x9999;
        let b = split_into_frames(&*pool, h2, private(), &[2u8; 200], 100).unwrap();
        let mixed: Vec<&[u8]> = vec![&a[0][..], &b[1][..], &a[1][..]];
        let err = reassemble(mixed).unwrap_err();
        assert!(matches!(err, ChainError::ContextMismatch { index: 1 }));
    }

    #[test]
    fn reassemble_empty_input() {
        let frames: Vec<&[u8]> = vec![];
        assert!(matches!(reassemble(frames), Err(ChainError::NoFrames)));
    }
}
