//! The paper's original buffer-pool scheme.
//!
//! §5 whitebox: *"The memory allocation scheme used in the whitebox
//! test is not optimised"* — `frameAlloc` took 2.18 µs and dominated
//! PT processing. What the optimized scheme added tells us what the
//! original lacked: *on-demand* growth (so the original pre-allocates
//! everything up front) and *"a table based matching from requested
//! memory size to pool buffer size"* (so the original had no size
//! classes — it searched). The scheme modeled here:
//!
//! * all blocks are created **up front** on one global free list,
//!   mixed sizes in creation order;
//! * one global lock protects the list;
//! * allocation does a **first-fit linear search** for a block whose
//!   capacity fits the request (no size→class table);
//! * freed blocks go back to the end of the list, so a churning
//!   working set degrades locality and search length over time.
//!
//! The linear search under the hot global lock is exactly the cost the
//! optimized [`crate::TablePool`] removes — reproduced by the `ALLOC`
//! experiment.

use crate::block::{Block, BlockRecycler};
use crate::frame_buf::FrameBuf;
use crate::stats::AtomicStats;
use crate::{AllocError, FrameAllocator, PoolStats, MAX_BLOCK_LEN};
use parking_lot::Mutex;
use std::sync::Arc;

/// Default pool-size ladder: from tiny control frames up to the 256 KB
/// maximum, mirroring typical DAQ fragment sizes.
pub const DEFAULT_SIZES: &[usize] = &[64, 256, 1024, 4096, 16 * 1024, 64 * 1024, 256 * 1024];

/// Default number of blocks pre-created per size. The paper's DAQ
/// pools are sized for hundreds of outstanding event fragments; the
/// whole ladder is materialized up front (nothing is on-demand in the
/// original scheme).
pub const DEFAULT_PREFILL: usize = 128;

struct Inner {
    /// One global first-fit free list, mixed capacities.
    free: Vec<Block>,
    /// Total blocks created, bounded by `max_blocks`.
    created: usize,
    /// Largest configured block capacity (for overflow requests).
    max_size: usize,
}

/// The original (unoptimized) pool. See module docs.
pub struct SimplePool {
    inner: Mutex<Inner>,
    stats: AtomicStats,
    max_blocks: usize,
    /// Set once at construction so recycled blocks find their way home.
    self_ref: Mutex<Option<std::sync::Weak<SimplePool>>>,
}

impl SimplePool {
    /// Builds a pool with the default ladder and prefill.
    pub fn with_defaults() -> Arc<SimplePool> {
        SimplePool::new(DEFAULT_SIZES, DEFAULT_PREFILL, usize::MAX)
    }

    /// Builds a pool pre-filled with `prefill` blocks of each size in
    /// `sizes` (ascending). `max_blocks` caps total block creation for
    /// failure-injection tests.
    pub fn new(sizes: &[usize], prefill: usize, max_blocks: usize) -> Arc<SimplePool> {
        assert!(!sizes.is_empty(), "need at least one pool size");
        assert!(
            sizes.windows(2).all(|w| w[0] < w[1]),
            "pool sizes must be strictly ascending"
        );
        assert!(
            *sizes.last().unwrap() <= MAX_BLOCK_LEN,
            "pool sizes must not exceed MAX_BLOCK_LEN"
        );
        let stats = AtomicStats::default();
        let mut free = Vec::new();
        let mut created = 0usize;
        'outer: for &cap in sizes {
            for _ in 0..prefill {
                if created >= max_blocks {
                    break 'outer;
                }
                free.push(Block::new(cap));
                created += 1;
                stats
                    .bytes_created
                    .fetch_add(cap as u64, std::sync::atomic::Ordering::Relaxed);
            }
        }
        let pool = Arc::new(SimplePool {
            inner: Mutex::new(Inner {
                free,
                created,
                max_size: *sizes.last().unwrap(),
            }),
            stats,
            max_blocks,
            self_ref: Mutex::new(None),
        });
        *pool.self_ref.lock() = Some(Arc::downgrade(&pool));
        pool
    }

    fn recycler(&self) -> Arc<dyn BlockRecycler> {
        self.self_ref
            .lock()
            .as_ref()
            .and_then(|w| w.upgrade())
            .expect("pool alive") as Arc<dyn BlockRecycler>
    }
}

impl FrameAllocator for SimplePool {
    fn alloc(&self, len: usize) -> Result<FrameBuf, AllocError> {
        if len > MAX_BLOCK_LEN {
            self.stats.on_failure();
            return Err(AllocError::TooLarge(len));
        }
        let mut inner = self.inner.lock();
        // The deliberate first-fit linear search of the original
        // scheme: no size table, walk the list until something fits.
        let mut found: Option<usize> = None;
        for (i, block) in inner.free.iter().enumerate() {
            if block.capacity() >= len {
                found = Some(i);
                break;
            }
        }
        if let Some(i) = found {
            // In-order removal, as a naive list implementation would do
            // (the optimized scheme's per-class free lists make removal
            // O(1); keeping that out is the point of this model).
            let mut block = inner.free.remove(i);
            drop(inner);
            block.set_len(len);
            self.stats.on_alloc(true, 0);
            return Ok(FrameBuf::new(block, self.recycler()));
        }
        if inner.created >= self.max_blocks {
            let live = self.stats.snapshot().live_blocks as usize;
            drop(inner);
            self.stats.on_failure();
            return Err(AllocError::Exhausted {
                requested: len,
                live_blocks: live,
            });
        }
        // Grow by one block of the largest configured size (the
        // original scheme has no per-request size matching).
        let cap = inner.max_size.max(len);
        inner.created += 1;
        drop(inner);
        let mut block = Block::new(cap);
        block.set_len(len);
        self.stats.on_alloc(false, cap);
        Ok(FrameBuf::new(block, self.recycler()))
    }

    fn stats(&self) -> PoolStats {
        self.stats.snapshot()
    }

    fn scheme(&self) -> &'static str {
        "simple"
    }
}

impl BlockRecycler for SimplePool {
    fn recycle(&self, mut block: Block) {
        block.set_len(0);
        let mut inner = self.inner.lock();
        inner.free.push(block);
        self.stats.on_free();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_pool_first_fit_returns_smallest() {
        let p = SimplePool::new(&[64, 1024], 2, usize::MAX);
        let f = p.alloc(65).unwrap();
        assert_eq!(f.capacity(), 1024, "first fitting block");
        assert_eq!(f.len(), 65);
        let g = p.alloc(64).unwrap();
        assert_eq!(g.capacity(), 64);
    }

    #[test]
    fn recycles_blocks() {
        let p = SimplePool::new(&[128], 1, 1);
        let f = p.alloc(100).unwrap();
        drop(f);
        // Budget is 1 block; a second alloc only succeeds via recycling.
        let g = p.alloc(100).unwrap();
        assert_eq!(g.capacity(), 128);
        let s = p.stats();
        assert_eq!(s.allocs, 2);
        assert_eq!(s.hits, 2, "prefilled + recycled");
        assert_eq!(s.frees, 1);
    }

    #[test]
    fn exhaustion_reported() {
        let p = SimplePool::new(&[64], 0, 1);
        let _a = p.alloc(10).unwrap();
        let e = p.alloc(10).unwrap_err();
        assert!(matches!(e, AllocError::Exhausted { .. }));
        assert_eq!(p.stats().failures, 1);
    }

    #[test]
    fn too_large_rejected() {
        let p = SimplePool::with_defaults();
        assert_eq!(
            p.alloc(MAX_BLOCK_LEN + 1).unwrap_err(),
            AllocError::TooLarge(MAX_BLOCK_LEN + 1)
        );
    }

    #[test]
    fn max_block_len_is_allocatable() {
        let p = SimplePool::with_defaults();
        let f = p.alloc(MAX_BLOCK_LEN).unwrap();
        assert_eq!(f.len(), MAX_BLOCK_LEN);
    }

    #[test]
    fn growth_beyond_prefill_creates_blocks() {
        let p = SimplePool::new(&[64], 1, usize::MAX);
        let a = p.alloc(64).unwrap();
        let b = p.alloc(64).unwrap(); // prefill exhausted: fresh block
        assert_eq!(p.stats().misses, 1);
        drop(a);
        drop(b);
    }

    #[test]
    fn live_block_accounting() {
        let p = SimplePool::new(&[64], 4, usize::MAX);
        let a = p.alloc(1).unwrap();
        let b = p.alloc(1).unwrap();
        assert_eq!(p.stats().live_blocks, 2);
        drop(a);
        drop(b);
        assert_eq!(p.stats().live_blocks, 0);
    }

    #[test]
    fn concurrent_alloc_free() {
        let p = SimplePool::new(&[256], 8, usize::MAX);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let p = p.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        let f = p.alloc(200).unwrap();
                        assert_eq!(f.len(), 200);
                    }
                });
            }
        });
        assert_eq!(p.stats().live_blocks, 0);
        assert_eq!(p.stats().allocs, 4000);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_ladder_rejected() {
        let _ = SimplePool::new(&[1024, 64], 1, usize::MAX);
    }
}
