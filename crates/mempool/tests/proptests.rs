//! Property-based tests of the buffer pools and frame chaining: no
//! sequence of alloc/free/share operations may corrupt accounting, and
//! chaining must reassemble any payload exactly.

use proptest::prelude::*;
use xdaq_i2o::{FunctionCode, MsgHeader, PrivateHeader, Tid};
use xdaq_mempool::{
    reassemble, segment_lengths, split_into_frames, FrameAllocator, SimplePool, TablePool,
};

fn header() -> MsgHeader {
    let mut h = MsgHeader::new(
        Tid::new(0x111).unwrap(),
        Tid::new(0x222).unwrap(),
        FunctionCode::Private,
    );
    h.initiator_context = 0x1234;
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn segment_lengths_partition_exactly(total in 0usize..1_000_000, seg in 1usize..65536) {
        let lens = segment_lengths(total, seg);
        prop_assert!(!lens.is_empty());
        prop_assert_eq!(lens.iter().sum::<usize>(), total);
        prop_assert!(lens.iter().all(|&l| l <= seg));
        // All but the last segment are full.
        for &l in &lens[..lens.len() - 1] {
            prop_assert_eq!(l, seg);
        }
    }

    #[test]
    fn chain_roundtrips_any_payload(
        payload in proptest::collection::vec(any::<u8>(), 0..20_000),
        max_payload in 32usize..2048,
        private in any::<bool>(),
    ) {
        let pool = TablePool::with_defaults();
        let ph = private.then(|| PrivateHeader::new(0x0cec, 5));
        let mut h = header();
        if !private {
            h.function = 0x06;
        }
        let frames = split_into_frames(&*pool, h, ph, &payload, max_payload).unwrap();
        let (rh, rp, data) = reassemble(frames.iter().map(|f| &f[..])).unwrap();
        prop_assert_eq!(data, payload);
        prop_assert_eq!(rp, ph);
        prop_assert_eq!(rh.initiator_context, h.initiator_context);
    }

    #[test]
    fn pool_accounting_is_consistent_table(
        ops in proptest::collection::vec((any::<bool>(), 1usize..100_000), 1..200)
    ) {
        let pool = TablePool::with_defaults();
        let mut live = Vec::new();
        for (alloc, size) in ops {
            if alloc || live.is_empty() {
                live.push(pool.alloc(size).unwrap());
            } else {
                live.pop();
            }
            let s = pool.stats();
            prop_assert_eq!(s.live_blocks as usize, live.len());
            prop_assert_eq!(s.allocs, s.hits + s.misses);
        }
        drop(live);
        let s = pool.stats();
        prop_assert_eq!(s.live_blocks, 0);
        prop_assert_eq!(s.frees, s.allocs);
    }

    #[test]
    fn pool_accounting_is_consistent_simple(
        ops in proptest::collection::vec((any::<bool>(), 1usize..100_000), 1..100)
    ) {
        let pool = SimplePool::with_defaults();
        let mut live = Vec::new();
        for (alloc, size) in ops {
            if alloc || live.is_empty() {
                live.push(pool.alloc(size).unwrap());
            } else {
                live.pop();
            }
            let s = pool.stats();
            prop_assert_eq!(s.live_blocks as usize, live.len());
        }
        drop(live);
        prop_assert_eq!(pool.stats().live_blocks, 0);
    }

    #[test]
    fn buffers_hold_written_data(
        writes in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..4096), 1..32)
    ) {
        let pool = TablePool::with_defaults();
        let bufs: Vec<_> = writes.iter().map(|w| {
            let mut b = pool.alloc(w.len()).unwrap();
            b.copy_from_slice(w);
            b
        }).collect();
        for (b, w) in bufs.iter().zip(&writes) {
            prop_assert_eq!(&b[..], &w[..]);
        }
    }

    #[test]
    fn shared_frames_recycle_exactly_once(clones in 1usize..20) {
        let pool = TablePool::with_defaults();
        let shared = pool.alloc(512).unwrap().into_shared();
        let copies: Vec<_> = (0..clones).map(|_| shared.clone()).collect();
        prop_assert_eq!(pool.stats().frees, 0);
        drop(copies);
        prop_assert_eq!(pool.stats().frees, 0, "original still live");
        drop(shared);
        let s = pool.stats();
        prop_assert_eq!(s.frees, 1);
        prop_assert_eq!(s.live_blocks, 0);
    }

    #[test]
    fn size_class_invariants(len in 0usize..=xdaq_mempool::MAX_BLOCK_LEN) {
        use xdaq_mempool::table::{class_capacity, size_class};
        let c = size_class(len).unwrap();
        prop_assert!(class_capacity(c) >= len.max(1));
        if c > 0 {
            prop_assert!(class_capacity(c - 1) < len.max(64).next_power_of_two()
                         || class_capacity(c) == len.max(64).next_power_of_two());
            // Tight: one class down would not fit (for len > MIN).
            if len > 64 {
                prop_assert!(class_capacity(c) / 2 < len);
            }
        }
    }
}
