//! The mmap-backed cross-process pool region.
//!
//! Layout (all offsets fixed at creation, see DESIGN.md §9):
//!
//! ```text
//! +---------------------------+ 0
//! | RegionHdr (one 4 KB page) |   magic/version/geometry, free-list
//! |                           |   head, copy counters, 2 side slots
//! +---------------------------+ 4096
//! | ring A→B                  |   RingHdr + cap descriptors
//! +---------------------------+
//! | ring B→A                  |   RingHdr + cap descriptors
//! +---------------------------+ blocks_off (page aligned)
//! | block 0 | block 1 | ...   |   nblocks × block_size payload blocks
//! +---------------------------+
//! ```
//!
//! The free list is a tagged Treiber stack shared by both processes:
//! `free_head` packs `(aba_tag << 32) | (index + 1)` and each free
//! block stores its successor's `index + 1` in its first eight bytes.
//! The tag makes pop immune to ABA when both sides allocate and
//! recycle concurrently.

use crate::sys;
use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicI32, AtomicU32, AtomicU64, Ordering};

/// `b"XDAQSHM1"` little-endian.
pub const SHM_MAGIC: u64 = u64::from_le_bytes(*b"XDAQSHM1");
/// Region layout version.
pub const SHM_VERSION: u32 = 1;
/// Header page size.
pub const HEADER_BYTES: usize = 4096;
/// Hard cap on one pooled block (paper: 256 KB).
pub const MAX_BLOCK: usize = 256 * 1024;

/// Creator side of a link.
pub const SIDE_A: usize = 0;
/// Attacher side of a link.
pub const SIDE_B: usize = 1;

/// Per-process slot in the region header. One cache line.
#[repr(C)]
pub struct SideHdr {
    /// 1 while the side's process holds the mapping.
    pub attached: AtomicU32,
    /// OS pid of the attached process.
    pub pid: AtomicU32,
    /// The side's doorbell eventfd *in that process*; peers reopen it
    /// through `/proc/<pid>/fd/<fd>`.
    pub doorbell_fd: AtomicI32,
    /// 1 while the side sleeps on its doorbell (senders ring only then).
    pub waiting: AtomicU32,
    /// Bumped on every attach/detach; a changed epoch with the same
    /// slot means the peer restarted.
    pub epoch: AtomicU64,
    _pad: [u8; 40],
}

/// Region header. Field groups are cache-line separated so free-list
/// CAS traffic does not bounce the read-mostly geometry line.
#[repr(C)]
pub struct RegionHdr {
    /// [`SHM_MAGIC`]; written last during creation (release) so an
    /// attacher never observes a half-initialized region.
    pub magic: AtomicU64,
    pub version: AtomicU32,
    pub block_size: AtomicU32,
    pub nblocks: AtomicU32,
    pub ring_cap: AtomicU32,
    /// Random-ish nonzero id baked into every block token.
    pub region_id: AtomicU32,
    _pad0: [u8; 36],
    /// Tagged free-list head: `(tag << 32) | (index + 1)`, 0 = empty.
    pub free_head: AtomicU64,
    _pad1: [u8; 56],
    /// Payload copies on the send path (zero-copy misses).
    pub copies: AtomicU64,
    /// Blocks handed out of the free list (both sides).
    pub shm_allocs: AtomicU64,
    /// Blocks returned to the free list (both sides).
    pub shm_frees: AtomicU64,
    _pad2: [u8; 40],
    pub sides: [SideHdr; 2],
}

/// Geometry of a new region.
#[derive(Debug, Clone, Copy)]
pub struct ShmConfig {
    /// Fixed block size, power of two, 64 B ..= 256 KB.
    pub block_size: usize,
    /// Number of pool blocks shared by both sides.
    pub nblocks: usize,
    /// Descriptor ring capacity per direction, power of two.
    pub ring_capacity: usize,
}

impl Default for ShmConfig {
    fn default() -> ShmConfig {
        ShmConfig {
            block_size: 64 * 1024,
            nblocks: 256,
            ring_capacity: 1024,
        }
    }
}

impl ShmConfig {
    fn validate(&self) -> Result<(), String> {
        if !self.block_size.is_power_of_two() || !(64..=MAX_BLOCK).contains(&self.block_size) {
            return Err(format!(
                "block_size {} must be a power of two in 64..=256K",
                self.block_size
            ));
        }
        if self.nblocks == 0 || self.nblocks > u32::MAX as usize / 2 {
            return Err(format!("nblocks {} out of range", self.nblocks));
        }
        if !self.ring_capacity.is_power_of_two() || self.ring_capacity < 2 {
            return Err(format!(
                "ring_capacity {} must be a power of two ≥ 2",
                self.ring_capacity
            ));
        }
        Ok(())
    }
}

/// Bytes of one ring: padded head + padded tail + slots.
pub fn ring_bytes(cap: usize) -> usize {
    128 + cap * crate::ring::DESC_BYTES
}

fn page_align(n: usize) -> usize {
    (n + 4095) & !4095
}

/// One mapped shared region (creator or attacher view).
pub struct Region {
    base: *mut u8,
    map_len: usize,
    path: PathBuf,
    /// Creator unlinks the backing file on drop.
    owner: bool,
    /// Keeps the backing file open for the life of the mapping.
    _file: File,
}

// SAFETY: all mutation of the mapping goes through atomics in the
// header/ring structs or through uniquely-owned blocks handed out by
// the free list.
unsafe impl Send for Region {}
unsafe impl Sync for Region {}

fn next_region_id() -> u32 {
    static SEQ: AtomicU32 = AtomicU32::new(1);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    // Mix pid and a process-local sequence so tokens from a stale or
    // foreign region never validate against this one.
    let mixed = (std::process::id() << 8) ^ seq.rotate_left(16) ^ 0x9E37_79B9;
    if mixed == 0 {
        1
    } else {
        mixed
    }
}

impl Region {
    /// Creates and maps a fresh region at `path` (truncating any
    /// leftover file), initializing header, rings and free list.
    pub fn create(path: &Path, cfg: ShmConfig) -> Result<Region, String> {
        cfg.validate()?;
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| format!("create {}: {e}", path.display()))?;
        let region = Region::map(file, path, cfg, true)?;
        region.init(cfg);
        Ok(region)
    }

    /// Maps an existing region created by a peer process, validating
    /// magic and version.
    pub fn attach(path: &Path) -> Result<Region, String> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| format!("open {}: {e}", path.display()))?;
        let len = file
            .metadata()
            .map_err(|e| format!("stat {}: {e}", path.display()))?
            .len() as usize;
        if len < HEADER_BYTES {
            return Err(format!("{}: too small for a region", path.display()));
        }
        let base = sys::mmap_shared(raw_fd(&file), len).map_err(|e| format!("mmap: errno {e}"))?;
        let region = Region {
            base,
            map_len: len,
            path: path.to_path_buf(),
            owner: false,
            _file: file,
        };
        let hdr = region.hdr();
        if hdr.magic.load(Ordering::Acquire) != SHM_MAGIC {
            return Err(format!("{}: bad region magic", path.display()));
        }
        if hdr.version.load(Ordering::Relaxed) != SHM_VERSION {
            return Err(format!(
                "{}: region version {} != {}",
                path.display(),
                hdr.version.load(Ordering::Relaxed),
                SHM_VERSION
            ));
        }
        let expect = Region::total_bytes(&region.config());
        if len < expect {
            return Err(format!(
                "{}: mapped {len} bytes, geometry needs {expect}",
                path.display()
            ));
        }
        Ok(region)
    }

    fn map(file: File, path: &Path, cfg: ShmConfig, owner: bool) -> Result<Region, String> {
        let len = Region::total_bytes(&cfg);
        file.set_len(len as u64)
            .map_err(|e| format!("truncate {}: {e}", path.display()))?;
        let base = sys::mmap_shared(raw_fd(&file), len).map_err(|e| format!("mmap: errno {e}"))?;
        Ok(Region {
            base,
            map_len: len,
            path: path.to_path_buf(),
            owner,
            _file: file,
        })
    }

    /// Total mapping size for a geometry.
    pub fn total_bytes(cfg: &ShmConfig) -> usize {
        page_align(HEADER_BYTES + 2 * ring_bytes(cfg.ring_capacity)) + cfg.block_size * cfg.nblocks
    }

    fn init(&self, cfg: ShmConfig) {
        let hdr = self.hdr();
        hdr.version.store(SHM_VERSION, Ordering::Relaxed);
        hdr.block_size
            .store(cfg.block_size as u32, Ordering::Relaxed);
        hdr.nblocks.store(cfg.nblocks as u32, Ordering::Relaxed);
        hdr.ring_cap
            .store(cfg.ring_capacity as u32, Ordering::Relaxed);
        hdr.region_id.store(next_region_id(), Ordering::Relaxed);
        // Chain every block through its first word: i → i+1, last → nil.
        for i in 0..cfg.nblocks {
            let next = if i + 1 < cfg.nblocks {
                (i + 2) as u64
            } else {
                0
            };
            self.block_link(i).store(next, Ordering::Relaxed);
        }
        hdr.free_head.store(1, Ordering::Relaxed); // index 0, tag 0
                                                   // Publish: attachers spin on magic.
        hdr.magic.store(SHM_MAGIC, Ordering::Release);
    }

    /// The header view.
    #[allow(clippy::missing_panics_doc)]
    pub fn hdr(&self) -> &RegionHdr {
        // SAFETY: base is a live RW mapping ≥ HEADER_BYTES and the
        // header is plain atomics initialized to zeroed file contents.
        unsafe { &*(self.base as *const RegionHdr) }
    }

    /// Geometry as stored in the header.
    pub fn config(&self) -> ShmConfig {
        let hdr = self.hdr();
        ShmConfig {
            block_size: hdr.block_size.load(Ordering::Relaxed) as usize,
            nblocks: hdr.nblocks.load(Ordering::Relaxed) as usize,
            ring_capacity: hdr.ring_cap.load(Ordering::Relaxed) as usize,
        }
    }

    /// Nonzero id baked into block tokens.
    pub fn id(&self) -> u32 {
        self.hdr().region_id.load(Ordering::Relaxed)
    }

    /// Backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Base of ring `dir` (0 = A→B, 1 = B→A).
    pub fn ring_base(&self, dir: usize) -> *mut u8 {
        debug_assert!(dir < 2);
        let cap = self.config().ring_capacity;
        // SAFETY: offset stays inside the mapping by construction.
        unsafe { self.base.add(HEADER_BYTES + dir * ring_bytes(cap)) }
    }

    fn blocks_off(&self) -> usize {
        page_align(HEADER_BYTES + 2 * ring_bytes(self.config().ring_capacity))
    }

    /// Start of payload block `idx`.
    pub fn block_ptr(&self, idx: usize) -> *mut u8 {
        let cfg = self.config();
        debug_assert!(idx < cfg.nblocks);
        // SAFETY: idx < nblocks keeps the offset inside the mapping.
        unsafe { self.base.add(self.blocks_off() + idx * cfg.block_size) }
    }

    /// Byte offset of block `idx` from the region base (the value
    /// descriptors carry).
    pub fn block_offset(&self, idx: usize) -> usize {
        self.blocks_off() + idx * self.config().block_size
    }

    /// Maps a descriptor offset back to its block index; `None` for
    /// unaligned or out-of-range offsets (corrupt descriptor).
    pub fn offset_to_index(&self, offset: usize) -> Option<usize> {
        let cfg = self.config();
        let rel = offset.checked_sub(self.blocks_off())?;
        if rel % cfg.block_size != 0 {
            return None;
        }
        let idx = rel / cfg.block_size;
        (idx < cfg.nblocks).then_some(idx)
    }

    /// Atomic view of a block's free-list link word (first 8 bytes).
    fn block_link(&self, idx: usize) -> &AtomicU64 {
        // SAFETY: blocks are ≥ 64 B and 8-aligned (page-aligned block
        // array, power-of-two block size), so the first word is a
        // valid AtomicU64. The word is only interpreted while the
        // block sits in the free list.
        unsafe { &*(self.block_ptr(idx) as *const AtomicU64) }
    }

    /// Pops a free block index, or `None` when the pool is empty.
    pub fn alloc_block(&self) -> Option<usize> {
        let hdr = self.hdr();
        loop {
            let old = hdr.free_head.load(Ordering::Acquire);
            let cur = old & 0xFFFF_FFFF;
            if cur == 0 {
                return None;
            }
            let idx = (cur - 1) as usize;
            // May race with the winning popper's payload writes; the
            // tag-checked CAS below discards any torn value read here.
            let next = self.block_link(idx).load(Ordering::Relaxed) & 0xFFFF_FFFF;
            let tag = (old >> 32).wrapping_add(1);
            let new = (tag << 32) | next;
            if hdr
                .free_head
                .compare_exchange_weak(old, new, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                hdr.shm_allocs.fetch_add(1, Ordering::Relaxed);
                return Some(idx);
            }
        }
    }

    /// Returns block `idx` to the shared free list.
    pub fn free_block(&self, idx: usize) {
        let hdr = self.hdr();
        debug_assert!(idx < self.config().nblocks);
        loop {
            let old = hdr.free_head.load(Ordering::Acquire);
            self.block_link(idx)
                .store(old & 0xFFFF_FFFF, Ordering::Relaxed);
            let tag = (old >> 32).wrapping_add(1);
            let new = (tag << 32) | (idx as u64 + 1);
            if hdr
                .free_head
                .compare_exchange_weak(old, new, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                hdr.shm_frees.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }

    /// Free blocks currently in the list (O(n) walk, diagnostics only;
    /// result is approximate under concurrent traffic).
    pub fn free_blocks(&self) -> usize {
        self.hdr().shm_frees.load(Ordering::Relaxed) as usize + self.config().nblocks
            - self.hdr().shm_allocs.load(Ordering::Relaxed) as usize
    }
}

impl Drop for Region {
    fn drop(&mut self) {
        // SAFETY: exact mapping recorded at construction; callers keep
        // the Region in an Arc that outlives every block/ring view.
        unsafe {
            let _ = sys::munmap(self.base, self.map_len);
        }
        if self.owner {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

fn raw_fd(file: &File) -> i32 {
    use std::os::fd::AsRawFd;
    file.as_raw_fd()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("xdaq-shm-{}-{name}", std::process::id()))
    }

    fn small() -> ShmConfig {
        ShmConfig {
            block_size: 256,
            nblocks: 8,
            ring_capacity: 8,
        }
    }

    #[test]
    fn header_fits_one_page() {
        assert!(std::mem::size_of::<RegionHdr>() <= HEADER_BYTES);
        assert_eq!(std::mem::size_of::<SideHdr>(), 64);
    }

    #[test]
    fn create_then_attach_sees_geometry() {
        let path = tmp("geom");
        let r = Region::create(&path, small()).unwrap();
        let a = Region::attach(&path).unwrap();
        assert_eq!(a.config().block_size, 256);
        assert_eq!(a.config().nblocks, 8);
        assert_eq!(a.id(), r.id());
        drop(a);
        drop(r);
        assert!(!path.exists(), "creator unlinks on drop");
    }

    #[test]
    fn free_list_hands_out_every_block_once() {
        let path = tmp("freelist");
        let r = Region::create(&path, small()).unwrap();
        let mut got: Vec<usize> = (0..8).map(|_| r.alloc_block().unwrap()).collect();
        assert!(r.alloc_block().is_none(), "pool exhausted");
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        for i in got {
            r.free_block(i);
        }
        assert_eq!(r.free_blocks(), 8);
        assert!(r.alloc_block().is_some());
    }

    #[test]
    fn cross_mapping_alloc_free() {
        // Two mappings of one file in the same process stand in for
        // two processes: distinct base addresses, shared header.
        let path = tmp("xmap");
        let r = Region::create(&path, small()).unwrap();
        let peer = Region::attach(&path).unwrap();
        let idx = r.alloc_block().unwrap();
        // Write through one mapping, read through the other.
        // SAFETY: idx is uniquely owned; both pointers map the same page.
        unsafe {
            r.block_ptr(idx).add(16).write(0x5A);
            assert_eq!(peer.block_ptr(idx).add(16).read(), 0x5A);
        }
        peer.free_block(idx);
        assert_eq!(r.alloc_block(), Some(idx), "peer's free visible here");
        r.free_block(idx);
    }

    #[test]
    fn attach_rejects_garbage() {
        let path = tmp("garbage");
        std::fs::write(&path, vec![0u8; HEADER_BYTES * 2]).unwrap();
        let err = Region::attach(&path).err().expect("attach must fail");
        assert!(err.contains("magic"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_bad_geometry() {
        let path = tmp("badgeom");
        let bad = ShmConfig {
            block_size: 100,
            ..small()
        };
        assert!(Region::create(&path, bad).is_err());
        let bad = ShmConfig {
            ring_capacity: 3,
            ..small()
        };
        assert!(Region::create(&path, bad).is_err());
    }
}
