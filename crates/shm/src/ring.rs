//! Lock-free SPSC descriptor rings.
//!
//! One ring per direction per link. The producer process owns `tail`,
//! the consumer process owns `head`; both live on their own cache
//! lines so the two sides never false-share. Descriptors are 16-byte
//! `{offset, len, tid, flags, seq}` records — chained frames travel as
//! descriptor lists ([`FLAG_MORE`] on all but the last entry), never
//! as bytes.
//!
//! The algorithm is the classic power-of-two index ring: indices grow
//! monotonically and are masked on access, so full/empty are
//! `tail - head == cap` / `tail == head` with no reserved slot. The
//! `tests/loom.rs` model checks the same publish/consume protocol
//! under loom's atomics — keep the two in sync when touching this.

use std::sync::atomic::{AtomicU32, Ordering};

/// Descriptor size in bytes (layout is `#[repr(C)]`, fixed).
pub const DESC_BYTES: usize = 16;

/// More descriptors of the same chained frame follow.
pub const FLAG_MORE: u16 = 0x0001;

/// One SGL entry in a ring.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Descriptor {
    /// Payload offset from the region base.
    pub offset: u32,
    /// Valid payload bytes at `offset`.
    pub len: u32,
    /// Target TiD of the frame (informational fast-path hint).
    pub tid: u16,
    /// [`FLAG_MORE`] etc.
    pub flags: u16,
    /// Producer sequence number (debugging/model checking).
    pub seq: u32,
}

/// Ring control block at the start of each ring area.
#[repr(C)]
pub struct RingHdr {
    /// Consumer cursor.
    pub head: AtomicU32,
    _pad0: [u8; 60],
    /// Producer cursor.
    pub tail: AtomicU32,
    _pad1: [u8; 60],
}

/// A process's view of one ring inside a mapped region.
///
/// The view is direction-agnostic: the link hands each side a `tx`
/// view it may only push into and an `rx` view it may only pop from
/// (SPSC discipline is enforced by construction, not at runtime).
pub struct RingView {
    hdr: *const RingHdr,
    slots: *mut Descriptor,
    mask: u32,
    cap: u32,
}

// SAFETY: shared-memory ring; all cross-thread/process access is via
// the head/tail atomics with acquire/release publication of slots.
unsafe impl Send for RingView {}
unsafe impl Sync for RingView {}

impl RingView {
    /// Builds a view over ring memory at `base` (a [`RingHdr`]
    /// followed by `cap` descriptor slots).
    ///
    /// # Safety
    /// `base` must point at a live mapping of at least
    /// [`crate::region::ring_bytes`]`(cap)` bytes, `cap` must be a
    /// power of two, and at most one live producer and one live
    /// consumer may use the ring at a time.
    pub unsafe fn new(base: *mut u8, cap: usize) -> RingView {
        debug_assert!(cap.is_power_of_two());
        RingView {
            hdr: base as *const RingHdr,
            slots: base.add(128) as *mut Descriptor,
            mask: cap as u32 - 1,
            cap: cap as u32,
        }
    }

    fn hdr(&self) -> &RingHdr {
        // SAFETY: `new` contract.
        unsafe { &*self.hdr }
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.cap as usize
    }

    /// Occupied slots (exact for the producer, a lower bound for
    /// everyone else).
    pub fn len(&self) -> usize {
        let h = self.hdr().head.load(Ordering::Acquire);
        let t = self.hdr().tail.load(Ordering::Acquire);
        t.wrapping_sub(h) as usize
    }

    /// True when no descriptors are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Free slots as seen by the producer. Only the producer may rely
    /// on this (the consumer can only grow it concurrently).
    pub fn free_slots(&self) -> usize {
        self.cap as usize - self.len()
    }

    /// Producer: publishes one descriptor. Returns the descriptor
    /// back when the ring is full.
    pub fn push(&self, mut d: Descriptor) -> Result<(), Descriptor> {
        let hdr = self.hdr();
        let tail = hdr.tail.load(Ordering::Relaxed); // sole producer
        let head = hdr.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= self.cap {
            return Err(d);
        }
        d.seq = tail;
        // SAFETY: slot index is masked; the head check above proves
        // the consumer is done with this slot; the release store of
        // `tail` below publishes the plain write.
        unsafe { self.slots.add((tail & self.mask) as usize).write(d) };
        hdr.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Consumer: takes the oldest descriptor, if any.
    pub fn pop(&self) -> Option<Descriptor> {
        let hdr = self.hdr();
        let head = hdr.head.load(Ordering::Relaxed); // sole consumer
        let tail = hdr.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: head != tail ⇒ the producer's release store made
        // this slot visible; masked index stays in bounds.
        let d = unsafe { self.slots.add((head & self.mask) as usize).read() };
        hdr.head.store(head.wrapping_add(1), Ordering::Release);
        Some(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(cap: usize) -> (Vec<u8>, RingView) {
        let mut mem = vec![0u8; crate::region::ring_bytes(cap)];
        // SAFETY: fresh zeroed buffer of the right size, single test
        // thread unless stated otherwise.
        let view = unsafe { RingView::new(mem.as_mut_ptr(), cap) };
        (mem, view)
    }

    fn desc(offset: u32, len: u32) -> Descriptor {
        Descriptor {
            offset,
            len,
            tid: 7,
            flags: 0,
            seq: 0,
        }
    }

    #[test]
    fn descriptor_is_16_bytes() {
        assert_eq!(std::mem::size_of::<Descriptor>(), DESC_BYTES);
    }

    #[test]
    fn fifo_order_and_capacity() {
        let (_mem, r) = ring(4);
        assert!(r.is_empty());
        for i in 0..4 {
            r.push(desc(i, 1)).unwrap();
        }
        assert_eq!(r.free_slots(), 0);
        assert!(r.push(desc(99, 1)).is_err(), "full ring refuses");
        for i in 0..4 {
            let d = r.pop().unwrap();
            assert_eq!(d.offset, i);
            assert_eq!(d.seq, i);
        }
        assert!(r.pop().is_none());
    }

    #[test]
    fn wraps_many_times() {
        let (_mem, r) = ring(8);
        for i in 0..1000u32 {
            r.push(desc(i, 4)).unwrap();
            assert_eq!(r.pop().unwrap().offset, i);
        }
    }

    #[test]
    fn two_views_one_memory() {
        // Producer and consumer use distinct views, as two processes do.
        let cap = 8;
        let mut mem = vec![0u8; crate::region::ring_bytes(cap)];
        // SAFETY: one producer view, one consumer view, same memory.
        let tx = unsafe { RingView::new(mem.as_mut_ptr(), cap) };
        let rx = unsafe { RingView::new(mem.as_mut_ptr(), cap) };
        tx.push(desc(5, 10)).unwrap();
        let d = rx.pop().unwrap();
        assert_eq!((d.offset, d.len), (5, 10));
        assert!(tx.free_slots() == cap);
    }

    #[test]
    fn concurrent_producer_consumer_stress() {
        const N: u32 = 100_000;
        let cap = 64;
        let mut mem = vec![0u8; crate::region::ring_bytes(cap)];
        let ptr = mem.as_mut_ptr() as usize;
        let producer = std::thread::spawn(move || {
            // SAFETY: sole producer view over live memory (mem is kept
            // alive by the joining thread below).
            let tx = unsafe { RingView::new(ptr as *mut u8, cap) };
            for i in 0..N {
                let mut d = desc(i, i % 17);
                loop {
                    match tx.push(d) {
                        Ok(()) => break,
                        Err(back) => {
                            d = back;
                            std::hint::spin_loop();
                        }
                    }
                }
            }
        });
        // SAFETY: sole consumer view.
        let rx = unsafe { RingView::new(mem.as_mut_ptr(), cap) };
        let mut next = 0u32;
        while next < N {
            if let Some(d) = rx.pop() {
                assert_eq!(d.offset, next, "no loss, no dup, no reorder");
                assert_eq!(d.len, next % 17);
                next += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert!(rx.pop().is_none());
    }
}
