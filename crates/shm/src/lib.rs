//! # xdaq-shm — zero-copy shared-memory peer transport
//!
//! The paper's buffer-pool design promises that a frame is never
//! copied on its way between co-located applications; this crate
//! extends that promise across *process* boundaries, the local
//! communication path DAQ nodes rely on when several executives share
//! one host.
//!
//! Three pieces (DESIGN.md §9):
//!
//! * a **pool region** ([`Region`]/[`ShmPool`]) — an mmap-backed file
//!   of fixed-size blocks (≤ 256 KB, per the paper) with a magic/
//!   version/epoch header and a tagged atomic free list, so both
//!   processes allocate and recycle blocks in place;
//! * a pair of lock-free **SPSC descriptor rings** ([`RingView`]) per
//!   link — cache-line-padded cursors, 16-byte `{offset, len, tid,
//!   flags}` descriptors, chained frames as descriptor lists;
//! * an **eventfd doorbell** ([`Doorbell`]) so the transport runs in
//!   both PTA polling and task mode, with a busy-poll spin budget
//!   before sleeping.
//!
//! [`ShmPt`] wires it all into the executive under the `shm://`
//! scheme: frames come back on [`xdaq_core::SendFailure`] (retry/
//! failover compose unchanged), and peer-process death is detected
//! from the region header and surfaced to the link supervisor.
//!
//! ```no_run
//! use xdaq_shm::{ShmConfig, ShmPt};
//! use xdaq_core::PtMode;
//! use xdaq_mempool::FrameAllocator;
//!
//! let pt = ShmPt::new(PtMode::Polling);
//! let link = pt.create_link("/dev/shm/xdaq-demo".as_ref(), ShmConfig::default()).unwrap();
//! // Frames from the link's pool cross with zero payload copies:
//! let frame = link.pool().alloc(4096).unwrap();
//! pt.send(link.peer_addr(), frame).unwrap();
//! # use xdaq_core::PeerTransport;
//! ```

pub mod doorbell;
pub mod pool;
pub mod region;
pub mod ring;
pub mod sys;

mod pt;

pub use doorbell::{Doorbell, PeerBell};
pub use pool::ShmPool;
pub use region::{Region, ShmConfig};
pub use ring::{Descriptor, RingView, FLAG_MORE};

pub use pt::{ShmLink, ShmPt};
