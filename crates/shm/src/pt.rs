//! `ShmPt`: the `shm://` peer transport.
//!
//! One [`ShmLink`] connects exactly two processes over one mapped
//! region: side A creates (`shm://<path>@a`), side B attaches
//! (`shm://<path>@b`). Frames whose blocks already live in the link's
//! pool cross as single 16-byte descriptors — zero payload copies.
//! Heap-backed frames are copied into pool blocks first (counted in
//! `shm.copies` and the region's copy counter) and chained across
//! blocks with [`FLAG_MORE`] descriptors when they exceed one block.
//!
//! The PT runs in both PTA modes: in polling mode the executive scans
//! the receive rings; in task mode a thread busy-polls for a
//! configurable spin budget, then advertises `waiting = 1` in its side
//! slot and sleeps on its eventfd doorbell — senders ring the peer's
//! doorbell (reopened via `/proc/<pid>/fd/<fd>`) only when that flag
//! is up, so the steady-state fast path makes no syscalls at all.
//!
//! Peer death is detected from the region header (side slot cleared,
//! epoch changed, or the advertised pid gone from `/proc`) and
//! surfaced through [`PeerTransport::take_down_peers`] so the link
//! supervisor can force the link Down without waiting for heartbeat
//! timeouts.

use crate::doorbell::{Doorbell, PeerBell};
use crate::pool::{unpack_token, ShmPool};
use crate::region::{Region, ShmConfig, SIDE_A, SIDE_B};
use crate::ring::{Descriptor, RingView, FLAG_MORE};
use parking_lot::{Mutex, RwLock};
use std::path::Path;
use std::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use xdaq_core::{IngestSink, PeerAddr, PeerTransport, PtError, PtMode, SendFailure};
use xdaq_mempool::{Block, FrameBuf};
use xdaq_mon::{PtCounters, Registry, ShmCounters};

/// How long a sleeping task thread waits per doorbell ppoll. Doubles
/// as the liveness-check cadence while idle.
const SLEEP_SLICE: Duration = Duration::from_millis(2);
/// Longest a consumer waits for the tail fragments of a chained frame
/// whose producer looks alive. A healthy producer pushes the whole
/// chain (nanoseconds apart) before ringing, so this only trips on a
/// corrupt chain (e.g. a fault-injected FLAG_MORE on the final
/// fragment) — without it a polling executive would spin forever.
const CHAIN_STALL_TIMEOUT: Duration = Duration::from_millis(200);
/// Polling-mode liveness check every this many `poll` calls.
const POLL_LIVENESS_PERIOD: u64 = 1024;

/// Peer state as read from the region header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PeerHealth {
    /// Peer has not attached yet.
    NotYetUp,
    /// Peer attached and its process exists.
    Up,
    /// Peer detached, restarted (epoch change) or its pid vanished.
    Dead,
}

/// One two-process link over a mapped region.
pub struct ShmLink {
    region: Arc<Region>,
    pool: Arc<ShmPool>,
    side: usize,
    tx: RingView,
    rx: RingView,
    bell: Doorbell,
    peer_bell: Mutex<Option<PeerBell>>,
    local: PeerAddr,
    peer: PeerAddr,
    /// Peer identity `(pid, epoch)` captured when first seen attached.
    peer_identity: Mutex<Option<(u32, u64)>>,
    /// Rate limiter for the `/proc` pid probe on the hot path.
    liveness_tick: AtomicU32,
    dead: AtomicBool,
    /// Set once the death has been handed to `take_down_peers`.
    death_reported: AtomicBool,
}

impl ShmLink {
    /// Creates the region at `path` and takes side A.
    pub fn create(path: &Path, cfg: ShmConfig) -> Result<Arc<ShmLink>, PtError> {
        let region = Region::create(path, cfg).map_err(PtError::Io)?;
        ShmLink::open(Arc::new(region), SIDE_A)
    }

    /// Attaches to an existing region at `path` as side B.
    pub fn attach(path: &Path) -> Result<Arc<ShmLink>, PtError> {
        let region = Region::attach(path).map_err(PtError::Io)?;
        ShmLink::open(Arc::new(region), SIDE_B)
    }

    fn open(region: Arc<Region>, side: usize) -> Result<Arc<ShmLink>, PtError> {
        let bell = Doorbell::for_region(region.path(), side).map_err(PtError::Io)?;
        let slot = &region.hdr().sides[side];
        if slot.attached.swap(1, Ordering::AcqRel) == 1 {
            return Err(PtError::Io(format!(
                "{}: side {} already attached",
                region.path().display(),
                ["a", "b"][side]
            )));
        }
        slot.pid.store(std::process::id(), Ordering::Relaxed);
        slot.doorbell_fd.store(bell.fd(), Ordering::Relaxed);
        slot.waiting.store(0, Ordering::Relaxed);
        slot.epoch.fetch_add(1, Ordering::Release);
        let path = region.path().display().to_string();
        let (local, peer) = match side {
            SIDE_A => (
                PeerAddr::new("shm", &format!("{path}@a")),
                PeerAddr::new("shm", &format!("{path}@b")),
            ),
            _ => (
                PeerAddr::new("shm", &format!("{path}@b")),
                PeerAddr::new("shm", &format!("{path}@a")),
            ),
        };
        // Ring 0 carries A→B, ring 1 carries B→A.
        let (tx_dir, rx_dir) = if side == SIDE_A { (0, 1) } else { (1, 0) };
        let cap = region.config().ring_capacity;
        // SAFETY: ring areas are inside the live mapping, sized by the
        // shared geometry; side exclusivity (checked above) gives each
        // ring exactly one producer and one consumer.
        let (tx, rx) = unsafe {
            (
                RingView::new(region.ring_base(tx_dir), cap),
                RingView::new(region.ring_base(rx_dir), cap),
            )
        };
        Ok(Arc::new(ShmLink {
            pool: ShmPool::new(region.clone()),
            region,
            side,
            tx,
            rx,
            bell,
            peer_bell: Mutex::new(None),
            liveness_tick: AtomicU32::new(1),
            local,
            peer,
            peer_identity: Mutex::new(None),
            dead: AtomicBool::new(false),
            death_reported: AtomicBool::new(false),
        }))
    }

    /// This side's canonical address (`shm://<path>@a|b`).
    pub fn local_addr(&self) -> &PeerAddr {
        &self.local
    }

    /// The peer side's canonical address — the address frames to this
    /// peer are routed to.
    pub fn peer_addr(&self) -> &PeerAddr {
        &self.peer
    }

    /// The link's shared frame pool. Frames allocated here cross the
    /// link without any payload copy.
    pub fn pool(&self) -> Arc<ShmPool> {
        self.pool.clone()
    }

    /// True once the peer process has attached its side.
    pub fn peer_attached(&self) -> bool {
        self.peer_slot().attached.load(Ordering::Acquire) == 1
    }

    /// True when the peer has been declared dead.
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    fn peer_slot(&self) -> &crate::region::SideHdr {
        &self.region.hdr().sides[1 - self.side]
    }

    fn own_slot(&self) -> &crate::region::SideHdr {
        &self.region.hdr().sides[self.side]
    }

    /// How many hot-path health checks share one `/proc` pid probe.
    const PID_CHECK_PERIOD: u32 = 1024;

    /// Reads peer health from the region header, latching `Dead`.
    /// Header-only (atomic loads); the `/proc` pid probe — a
    /// filesystem syscall — runs every [`Self::PID_CHECK_PERIOD`]-th
    /// call so per-frame cost stays in nanoseconds.
    fn check_peer(&self) -> PeerHealth {
        self.check_peer_at(false)
    }

    /// Like [`check_peer`](Self::check_peer) but always probing
    /// `/proc` — the liveness scan's variant, so a SIGKILLed peer is
    /// detected within one scan period regardless of traffic.
    fn check_peer_forced(&self) -> PeerHealth {
        self.check_peer_at(true)
    }

    fn check_peer_at(&self, force: bool) -> PeerHealth {
        if self.dead.load(Ordering::Acquire) {
            return PeerHealth::Dead;
        }
        let slot = self.peer_slot();
        let attached = slot.attached.load(Ordering::Acquire) == 1;
        let mut seen = self.peer_identity.lock();
        let health = match (*seen, attached) {
            (None, false) => PeerHealth::NotYetUp,
            (None, true) => {
                let pid = slot.pid.load(Ordering::Relaxed);
                *seen = Some((pid, slot.epoch.load(Ordering::Acquire)));
                if pid_exists(pid) {
                    PeerHealth::Up
                } else {
                    PeerHealth::Dead
                }
            }
            (Some(_), false) => PeerHealth::Dead, // clean detach: link over
            (Some((pid, epoch)), true) => {
                let probe = force
                    || self
                        .liveness_tick
                        .fetch_add(1, Ordering::Relaxed)
                        .is_multiple_of(Self::PID_CHECK_PERIOD);
                if slot.epoch.load(Ordering::Acquire) != epoch
                    || slot.pid.load(Ordering::Relaxed) != pid
                    || (probe && !pid_exists(pid))
                {
                    PeerHealth::Dead
                } else {
                    PeerHealth::Up
                }
            }
        };
        if health == PeerHealth::Dead {
            self.dead.store(true, Ordering::Release);
        }
        health
    }

    /// Rings the peer's doorbell if it advertised that it sleeps.
    fn ring_peer(&self, shm: &ShmCounters) {
        // SeqCst pairs with the receiver's waiting-then-recheck store:
        // either we see waiting = 1, or the receiver sees our tail.
        fence(Ordering::SeqCst);
        let slot = self.peer_slot();
        if slot.waiting.load(Ordering::SeqCst) == 0 {
            return;
        }
        let pid = slot.pid.load(Ordering::Relaxed);
        let fd = slot.doorbell_fd.load(Ordering::Relaxed);
        let mut bell = self.peer_bell.lock();
        match bell.as_mut() {
            Some(b) if b.target() == (pid, fd) => {
                if b.ring() {
                    shm.doorbells.inc();
                }
            }
            _ => {
                let fifo = crate::doorbell::bell_path(self.region.path(), self.side ^ 1);
                let mut fresh = PeerBell::with_fifo(pid, fd, fifo);
                if fresh.ring() {
                    shm.doorbells.inc();
                }
                *bell = Some(fresh);
            }
        }
    }

    /// Pushes one frame as descriptors. Zero-copy when the frame's
    /// block belongs to this link's region; otherwise copies into pool
    /// blocks (chaining across blocks with [`FLAG_MORE`]).
    fn send_frame(
        &self,
        frame: FrameBuf,
        counters: &PtCounters,
        shm: &ShmCounters,
    ) -> Result<(), SendFailure> {
        if self.check_peer() == PeerHealth::Dead {
            counters.on_send_error();
            return Err(SendFailure::with_frame(
                PtError::Unreachable(self.peer.to_string()),
                frame,
            ));
        }
        let len = frame.len();
        let tid = frame_tid(&frame);
        let own_block = frame
            .external_token()
            .and_then(|t| unpack_token(self.region.id(), t));
        if let Some(idx) = own_block {
            // Zero-copy: ownership of the block moves to the peer.
            if self.tx.free_slots() < 1 {
                counters.on_send_error();
                return Err(SendFailure::with_frame(PtError::WouldBlock, frame));
            }
            let (block, _recycler) = frame.into_parts();
            debug_assert_eq!(block.len(), len);
            self.pool.forget_live();
            drop(block); // raw storage: dropping frees nothing
            let d = Descriptor {
                offset: self.region.block_offset(idx) as u32,
                len: len as u32,
                tid,
                flags: 0,
                seq: 0,
            };
            self.tx.push(d).expect("free slot checked");
            shm.tx.inc();
        } else {
            // Copy path: stage the payload into pool blocks.
            let bs = self.pool.block_size();
            let nfrags = len.div_ceil(bs).max(1);
            if self.tx.free_slots() < nfrags {
                counters.on_send_error();
                return Err(SendFailure::with_frame(PtError::WouldBlock, frame));
            }
            let mut blocks: Vec<(usize, Block)> = Vec::with_capacity(nfrags);
            for frag in 0..nfrags {
                let frag_len = (len - frag * bs).min(bs);
                match self.pool.take_block(frag_len) {
                    Some(b) => blocks.push((frag_len, b)),
                    None => {
                        // Roll back: return staged blocks to the list.
                        for (_, b) in blocks {
                            self.pool.recycler().recycle(b);
                        }
                        counters.on_send_error();
                        return Err(SendFailure::with_frame(PtError::WouldBlock, frame));
                    }
                }
            }
            for (frag, (frag_len, block)) in blocks.iter_mut().enumerate() {
                block
                    .bytes_mut()
                    .copy_from_slice(&frame[frag * bs..frag * bs + *frag_len]);
            }
            self.region.hdr().copies.fetch_add(1, Ordering::Relaxed);
            shm.copies.inc();
            for (frag, (frag_len, block)) in blocks.into_iter().enumerate() {
                let token = block.external_token().expect("pool block");
                let idx = unpack_token(self.region.id(), token).expect("own token");
                self.pool.forget_live();
                drop(block);
                let d = Descriptor {
                    offset: self.region.block_offset(idx) as u32,
                    len: frag_len as u32,
                    tid,
                    flags: if frag + 1 < nfrags { FLAG_MORE } else { 0 },
                    seq: 0,
                };
                self.tx.push(d).expect("free slots checked");
                shm.tx.inc();
            }
            // The heap frame was only read; it recycles to its pool here.
            drop(frame);
        }
        counters.on_send(len);
        self.ring_peer(shm);
        Ok(())
    }

    /// Materializes a received descriptor as a pooled `FrameBuf`.
    fn frame_from(&self, d: Descriptor) -> Option<FrameBuf> {
        let idx = self.region.offset_to_index(d.offset as usize)?;
        if d.len as usize > self.pool.block_size() {
            self.region.free_block(idx);
            return None;
        }
        // SAFETY: the descriptor transferred exclusive ownership of
        // block `idx` to this process; the pointer is in-mapping and
        // the pool Arc inside the recycler keeps the region alive.
        let mut block = unsafe {
            Block::from_raw_parts(
                self.region.block_ptr(idx),
                self.pool.block_size(),
                crate::pool::pack_token(self.region.id(), idx),
            )
        };
        block.set_len(d.len as usize);
        self.pool.adopt_live();
        Some(FrameBuf::new(block, self.pool.recycler()))
    }

    /// Frees whatever blocks of a broken descriptor chain did arrive,
    /// counts one receive error (surfaced as `pt.shm.errors`) and
    /// drops the frame. Never panics and never leaks pool blocks.
    fn discard_chain(&self, parts: Vec<Descriptor>, counters: &PtCounters) -> Option<FrameBuf> {
        for d in parts {
            if let Some(i) = self.region.offset_to_index(d.offset as usize) {
                self.region.free_block(i);
            }
        }
        counters.on_recv_error();
        None
    }

    /// Pops one complete frame (gathering chained descriptors).
    fn recv_one(&self, counters: &PtCounters, shm: &ShmCounters) -> Option<FrameBuf> {
        let first = self.rx.pop()?;
        shm.rx.inc();
        if first.flags & FLAG_MORE == 0 {
            return match self.frame_from(first) {
                Some(f) => {
                    counters.on_recv(f.len());
                    Some(f)
                }
                // Corrupt descriptor (bad offset or oversize length):
                // `frame_from` already returned the block, if any.
                None => {
                    counters.on_recv_error();
                    None
                }
            };
        }
        // Chained frame: gather fragments. The producer pushes the
        // whole chain before ringing, but a polling consumer can catch
        // it mid-push — wait for the tail fragments, bounded by peer
        // death and by CHAIN_STALL_TIMEOUT so a corrupt chain (a
        // FLAG_MORE bit flipped onto the final fragment) cannot hang
        // the dispatch loop.
        let nblocks = self.region.config().nblocks;
        let mut parts = vec![first];
        let mut stalled_since = None;
        while parts.last().is_some_and(|d| d.flags & FLAG_MORE != 0) {
            if parts.len() > nblocks {
                // More fragments than blocks exist: corrupt chain.
                return self.discard_chain(parts, counters);
            }
            match self.rx.pop() {
                Some(d) => {
                    shm.rx.inc();
                    stalled_since = None;
                    parts.push(d);
                }
                None => {
                    if self.check_peer() == PeerHealth::Dead {
                        // Truncated chain from a dead peer.
                        return self.discard_chain(parts, counters);
                    }
                    let t0 = *stalled_since.get_or_insert_with(std::time::Instant::now);
                    if t0.elapsed() > CHAIN_STALL_TIMEOUT {
                        return self.discard_chain(parts, counters);
                    }
                    std::hint::spin_loop();
                }
            }
        }
        // Validate every fragment before touching any payload byte: a
        // corrupt offset or a length beyond the block size must not
        // read out of bounds.
        let bs = self.pool.block_size();
        if parts.iter().any(|d| {
            d.len as usize > bs || self.region.offset_to_index(d.offset as usize).is_none()
        }) {
            return self.discard_chain(parts, counters);
        }
        let total: usize = parts.iter().map(|d| d.len as usize).sum();
        let mut gathered = FrameBuf::detached(total);
        let mut at = 0usize;
        for d in &parts {
            let idx = self
                .region
                .offset_to_index(d.offset as usize)
                .expect("validated");
            let n = d.len as usize;
            // SAFETY: exclusive ownership via the descriptor; `n` is
            // within the block (validated above).
            let src = unsafe { std::slice::from_raw_parts(self.region.block_ptr(idx), n) };
            gathered[at..at + n].copy_from_slice(src);
            at += n;
            self.region.free_block(idx);
        }
        counters.on_recv(total);
        Some(gathered)
    }

    fn detach(&self) {
        let slot = self.own_slot();
        slot.waiting.store(0, Ordering::Relaxed);
        slot.attached.store(0, Ordering::Release);
        slot.epoch.fetch_add(1, Ordering::Release);
    }
}

impl Drop for ShmLink {
    fn drop(&mut self) {
        self.detach();
    }
}

fn pid_exists(pid: u32) -> bool {
    pid != 0 && Path::new(&format!("/proc/{pid}")).exists()
}

/// Target TiD from an encoded frame (low 12 bits of the LE word at
/// bytes 4..8 — see `xdaq-i2o`); 0 when the frame is too short.
fn frame_tid(bytes: &[u8]) -> u16 {
    if bytes.len() >= 8 {
        (u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]) & 0xFFF) as u16
    } else {
        0
    }
}

/// State shared between the PT facade and its task thread.
struct ShmShared {
    spin_budget: AtomicU32,
    links: RwLock<Vec<Arc<ShmLink>>>,
    counters: PtCounters,
    shm: RwLock<ShmCounters>,
    stopped: AtomicBool,
    polls: AtomicU64,
}

impl ShmShared {
    /// Checks every link's peer liveness, latching deaths.
    fn scan_liveness(&self) {
        let links = self.links.read();
        let shm = self.shm.read();
        for link in links.iter() {
            let was = link.is_dead();
            if link.check_peer_forced() == PeerHealth::Dead && !was {
                shm.peer_deaths.inc();
            }
        }
    }
}

/// The `shm://` peer transport: a set of [`ShmLink`]s plus the PTA
/// driving machinery (polling scan or task thread with spin budget).
pub struct ShmPt {
    mode: PtMode,
    shared: Arc<ShmShared>,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    panics: AtomicU64,
}

impl ShmPt {
    /// Default spin budget before a task-mode thread sleeps.
    pub const DEFAULT_SPIN_BUDGET: u32 = 2_000;

    /// New transport in the given PTA mode.
    pub fn new(mode: PtMode) -> Arc<ShmPt> {
        ShmPt::with_spin_budget(mode, ShmPt::DEFAULT_SPIN_BUDGET)
    }

    /// New transport with an explicit busy-poll spin budget (task
    /// mode: iterations of empty scanning before sleeping on the
    /// doorbell).
    pub fn with_spin_budget(mode: PtMode, spin_budget: u32) -> Arc<ShmPt> {
        Arc::new(ShmPt {
            mode,
            shared: Arc::new(ShmShared {
                spin_budget: AtomicU32::new(spin_budget),
                links: RwLock::new(Vec::new()),
                counters: PtCounters::new(),
                shm: RwLock::new(ShmCounters::new()),
                stopped: AtomicBool::new(false),
                polls: AtomicU64::new(0),
            }),
            thread: Mutex::new(None),
            panics: AtomicU64::new(0),
        })
    }

    /// Points the `shm.*` counters at a node's metric registry (call
    /// before `start`).
    pub fn bind_registry(&self, registry: &Registry) {
        *self.shared.shm.write() = ShmCounters::bound_to(registry);
    }

    /// Creates a region and adds its side-A link.
    pub fn create_link(&self, path: &Path, cfg: ShmConfig) -> Result<Arc<ShmLink>, PtError> {
        let link = ShmLink::create(path, cfg)?;
        self.shared.links.write().push(link.clone());
        Ok(link)
    }

    /// Attaches to a peer-created region and adds its side-B link.
    pub fn attach_link(&self, path: &Path) -> Result<Arc<ShmLink>, PtError> {
        let link = ShmLink::attach(path)?;
        self.shared.links.write().push(link.clone());
        Ok(link)
    }

    /// Shared-memory counters handle (tx/rx/doorbells/spin/copies).
    pub fn shm_counters(&self) -> ShmCounters {
        self.shared.shm.read().clone()
    }

    /// The link whose peer address matches `dest`, if any.
    pub fn link_for(&self, dest: &PeerAddr) -> Option<Arc<ShmLink>> {
        self.shared
            .links
            .read()
            .iter()
            .find(|l| l.peer_addr().rest() == dest.rest())
            .cloned()
    }
}

impl PeerTransport for ShmPt {
    fn scheme(&self) -> &'static str {
        "shm"
    }

    fn mode(&self) -> PtMode {
        self.mode
    }

    fn send(&self, dest: &PeerAddr, frame: FrameBuf) -> Result<(), SendFailure> {
        let shared = &self.shared;
        if shared.stopped.load(Ordering::Acquire) {
            shared.counters.on_send_error();
            return Err(SendFailure::with_frame(PtError::Closed, frame));
        }
        let Some(link) = self.link_for(dest) else {
            shared.counters.on_send_error();
            return Err(SendFailure::with_frame(
                PtError::Unreachable(dest.to_string()),
                frame,
            ));
        };
        let shm = shared.shm.read();
        link.send_frame(frame, &shared.counters, &shm)
    }

    fn poll(&self) -> Option<(FrameBuf, PeerAddr)> {
        let shared = &self.shared;
        let n = shared.polls.fetch_add(1, Ordering::Relaxed);
        if n % POLL_LIVENESS_PERIOD == POLL_LIVENESS_PERIOD - 1 {
            shared.scan_liveness();
        }
        let links = shared.links.read();
        let shm = shared.shm.read();
        for link in links.iter() {
            if let Some(f) = link.recv_one(&shared.counters, &shm) {
                return Some((f, link.peer_addr().clone()));
            }
        }
        None
    }

    fn start(&self, sink: IngestSink) -> Result<(), PtError> {
        if self.mode != PtMode::Task {
            return Ok(());
        }
        let shared = self.shared.clone();
        let handle = std::thread::Builder::new()
            .name("shm-pt".into())
            .spawn(move || task_loop(&shared, sink))
            .map_err(|e| PtError::Io(format!("spawn shm task: {e}")))?;
        *self.thread.lock() = Some(handle);
        Ok(())
    }

    fn stop(&self) {
        self.shared.stopped.store(true, Ordering::Release);
        // Wake the task thread if it sleeps on a doorbell.
        for link in self.shared.links.read().iter() {
            link.bell.ring_self();
        }
        if let Some(handle) = self.thread.lock().take() {
            if handle.join().is_err() {
                self.panics.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn configure(&self, key: &str, value: &str) -> Result<(), PtError> {
        if key == "spin_budget" {
            let v: u32 = value
                .parse()
                .map_err(|_| PtError::Io(format!("spin_budget '{value}' not a number")))?;
            self.shared.spin_budget.store(v, Ordering::Relaxed);
        }
        Ok(())
    }

    fn take_panics(&self) -> u64 {
        self.panics.swap(0, Ordering::Relaxed)
    }

    fn counters(&self) -> Option<&PtCounters> {
        Some(&self.shared.counters)
    }

    fn take_down_peers(&self) -> Vec<PeerAddr> {
        self.shared.scan_liveness();
        let links = self.shared.links.read();
        links
            .iter()
            .filter(|l| l.is_dead() && !l.death_reported.swap(true, Ordering::AcqRel))
            .map(|l| l.peer_addr().clone())
            .collect()
    }
}

fn task_loop(shared: &ShmShared, sink: IngestSink) {
    let mut spins: u32 = 0;
    while !shared.stopped.load(Ordering::Acquire) {
        // Snapshot so links attached mid-run are picked up.
        let links = shared.links.read().clone();
        let shm = shared.shm.read().clone();
        let mut harvested = 0usize;
        for link in &links {
            while let Some(f) = link.recv_one(&shared.counters, &shm) {
                sink(f, link.peer_addr().clone());
                harvested += 1;
            }
        }
        if harvested > 0 {
            spins = 0;
            continue;
        }
        spins = spins.saturating_add(1);
        if spins <= shared.spin_budget.load(Ordering::Relaxed) {
            shm.spin.inc();
            std::hint::spin_loop();
            continue;
        }
        // Sleep path: advertise, recheck (SeqCst pairs with senders'
        // post-push fence), then ppoll all doorbells.
        for link in &links {
            link.own_slot().waiting.store(1, Ordering::SeqCst);
        }
        let pending = links.iter().any(|l| !l.rx.is_empty());
        if !pending && !links.is_empty() {
            let mut fds = Vec::with_capacity(links.len() * 2);
            for l in &links {
                l.bell.poll_fds(&mut fds);
            }
            let _ = crate::sys::ppoll_readable_many(&fds, SLEEP_SLICE);
        } else if links.is_empty() {
            std::thread::sleep(SLEEP_SLICE);
        }
        for link in &links {
            link.own_slot().waiting.store(0, Ordering::SeqCst);
            link.bell.drain();
            link.check_peer();
        }
        spins = 0;
    }
    // Drain undelivered frames so their blocks recycle.
    let links = shared.links.read().clone();
    let shm = shared.shm.read().clone();
    for link in &links {
        while link.recv_one(&shared.counters, &shm).is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use xdaq_mempool::FrameAllocator;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("xdaq-shm-pt-{}-{name}", std::process::id()))
    }

    fn small() -> ShmConfig {
        ShmConfig {
            block_size: 1024,
            nblocks: 32,
            ring_capacity: 16,
        }
    }

    /// Two PTs in one process over one region — stands in for two
    /// processes (the multi-process case lives in tests/shm.rs).
    fn pair(name: &str) -> (Arc<ShmPt>, Arc<ShmLink>, Arc<ShmPt>, Arc<ShmLink>) {
        let path = tmp(name);
        let a = ShmPt::new(PtMode::Polling);
        let la = a.create_link(&path, small()).unwrap();
        let b = ShmPt::new(PtMode::Polling);
        let lb = b.attach_link(&path).unwrap();
        (a, la, b, lb)
    }

    #[test]
    fn zero_copy_round_trip() {
        let (a, la, b, _lb) = pair("zc");
        let pool = la.pool();
        let mut f = pool.alloc(512).unwrap();
        f.copy_from_slice(&[0x42; 512]);
        a.send(la.peer_addr(), f).unwrap();
        let (got, src) = b.poll().unwrap();
        assert_eq!(&got[..], &[0x42u8; 512][..]);
        assert_eq!(&src, la.local_addr());
        assert_eq!(pool.copies(), 0, "no payload copy on the pool path");
        drop(got); // recycles into the shared free list
        assert_eq!(la.pool().region().free_blocks(), 32);
    }

    #[test]
    fn heap_frames_take_the_copy_path() {
        let (a, la, b, lb) = pair("copy");
        a.send(la.peer_addr(), FrameBuf::from_bytes(&[7u8; 100]))
            .unwrap();
        let (got, _) = b.poll().unwrap();
        assert_eq!(&got[..], &[7u8; 100][..]);
        assert_eq!(la.pool().copies(), 1);
        assert_eq!(lb.pool().copies(), 1, "copy counter is region-global");
    }

    #[test]
    fn oversize_heap_frame_chains_across_blocks() {
        let (a, la, b, _lb) = pair("chain");
        let payload: Vec<u8> = (0..3000).map(|i| (i % 251) as u8).collect();
        a.send(la.peer_addr(), FrameBuf::from_bytes(&payload))
            .unwrap();
        let (got, _) = b.poll().unwrap();
        assert_eq!(&got[..], &payload[..]);
        // 3000 bytes over 1024-byte blocks = 3 descriptors.
        assert_eq!(a.shm_counters().tx.get(), 3);
        assert_eq!(la.pool().region().free_blocks(), 32, "fragments recycled");
    }

    /// Transfers one pool block to the peer by hand-crafting its
    /// descriptor — the fault-injection surface for corrupt chains.
    fn push_raw(link: &ShmLink, len: u32, flags: u16) {
        let pool = link.pool();
        let block = pool.take_block(8).expect("free block");
        let idx = unpack_token(pool.region().id(), block.external_token().unwrap()).unwrap();
        pool.forget_live();
        drop(block);
        let d = Descriptor {
            offset: pool.region().block_offset(idx) as u32,
            len,
            tid: 0,
            flags,
            seq: 0,
        };
        link.tx.push(d).expect("ring has room");
    }

    #[test]
    fn corrupt_chain_tail_flag_is_discarded_not_hung() {
        let (_a, la, b, _lb) = pair("badchain");
        // A single fragment wrongly carrying FLAG_MORE: the tail the
        // consumer waits for will never arrive, and the peer stays
        // alive — previously this spun the dispatch loop forever.
        push_raw(&la, 8, FLAG_MORE);
        let t0 = std::time::Instant::now();
        assert!(b.poll().is_none(), "corrupt chain yields no frame");
        let waited = t0.elapsed();
        assert!(
            waited >= CHAIN_STALL_TIMEOUT,
            "bounded wait ran: {waited:?}"
        );
        assert!(waited < CHAIN_STALL_TIMEOUT * 10, "but did not hang");
        assert_eq!(
            la.pool().region().free_blocks(),
            32,
            "arrived fragment returned to the pool"
        );
        assert_eq!(b.shared.counters.recv_errors.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn oversize_descriptor_len_is_discarded() {
        let (_a, la, b, _lb) = pair("badlen");
        // Unchained descriptor claiming more bytes than a block holds:
        // must not read out of bounds, must recycle the block.
        push_raw(&la, 5000, 0);
        assert!(b.poll().is_none());
        assert_eq!(la.pool().region().free_blocks(), 32);
        assert_eq!(b.shared.counters.recv_errors.load(Ordering::Relaxed), 1);
        // The link still works afterwards.
        let mut f = la.pool().alloc(16).unwrap();
        f.copy_from_slice(&[9u8; 16]);
        _a.send(la.peer_addr(), f).unwrap();
        assert_eq!(&b.poll().unwrap().0[..], &[9u8; 16][..]);
    }

    #[test]
    fn corrupt_fragment_in_chain_is_discarded() {
        let (_a, la, b, _lb) = pair("badfrag");
        // Two-fragment chain whose tail fragment lies about its
        // length: the whole chain is dropped, both blocks recycle.
        push_raw(&la, 8, FLAG_MORE);
        push_raw(&la, 4096, 0);
        assert!(b.poll().is_none());
        assert_eq!(la.pool().region().free_blocks(), 32);
        assert_eq!(b.shared.counters.recv_errors.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn ring_full_returns_frame_for_retry() {
        let (a, la, _b, _lb) = pair("full");
        let pool = la.pool();
        for _ in 0..16 {
            a.send(la.peer_addr(), pool.alloc(8).unwrap()).unwrap();
        }
        let err = a.send(la.peer_addr(), pool.alloc(8).unwrap()).unwrap_err();
        assert!(matches!(err.error, PtError::WouldBlock));
        assert!(err.frame.is_some(), "frame handed back for failover");
    }

    #[test]
    fn unknown_destination_is_unreachable() {
        let (a, _la, _b, _lb) = pair("unknown");
        let err = a
            .send(
                &"shm:///nonexistent@b".parse().unwrap(),
                FrameBuf::from_bytes(&[1]),
            )
            .unwrap_err();
        assert!(matches!(err.error, PtError::Unreachable(_)));
        assert!(err.frame.is_some());
    }

    #[test]
    fn double_attach_same_side_fails() {
        let path = tmp("dup");
        let _a = ShmLink::create(&path, small()).unwrap();
        let _b = ShmLink::attach(&path).unwrap();
        assert!(ShmLink::attach(&path).is_err(), "side b taken");
    }

    #[test]
    fn clean_detach_reports_peer_down() {
        let (a, _la, b, lb) = pair("detach");
        // A must have seen B attached before the detach counts as death.
        a.send(lb.local_addr(), FrameBuf::from_bytes(&[1])).unwrap();
        assert!(a.take_down_peers().is_empty());
        drop(b);
        drop(lb);
        let down = a.take_down_peers();
        assert_eq!(down.len(), 1);
        assert!(down[0].rest().ends_with("@b"));
        assert!(a.take_down_peers().is_empty(), "reported once");
        let err = a.send(&down[0], FrameBuf::from_bytes(&[2])).unwrap_err();
        assert!(matches!(err.error, PtError::Unreachable(_)));
    }

    #[test]
    fn task_mode_delivers_through_sink() {
        let path = tmp("task");
        let a = ShmPt::new(PtMode::Polling);
        let la = a.create_link(&path, small()).unwrap();
        let b = ShmPt::with_spin_budget(PtMode::Task, 64);
        let lb = b.attach_link(&path).unwrap();
        let got = Arc::new(Mutex::new(Vec::new()));
        let sink_got = got.clone();
        let sink: IngestSink = Arc::new(move |f, src| {
            sink_got.lock().push((f.len(), src));
        });
        b.start(sink).unwrap();
        let pool = la.pool();
        for i in 0..50usize {
            let mut f = pool.alloc(64 + i).unwrap();
            let fill = (i % 255) as u8;
            f.iter_mut().for_each(|b| *b = fill);
            let mut f = Some(f);
            loop {
                match a.send(la.peer_addr(), f.take().unwrap()) {
                    Ok(()) => break,
                    Err(e) => {
                        f = e.frame;
                        std::thread::yield_now();
                    }
                }
            }
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while got.lock().len() < 50 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        b.stop();
        let got = got.lock();
        assert_eq!(got.len(), 50);
        assert!(got.iter().all(|(_, src)| src == lb.peer_addr()));
        assert_eq!(pool.copies(), 0);
        let _ = lb; // keep link alive until after assertions
    }

    #[test]
    fn spin_budget_configurable() {
        let pt = ShmPt::new(PtMode::Task);
        pt.configure("spin_budget", "17").unwrap();
        assert_eq!(pt.shared.spin_budget.load(Ordering::Relaxed), 17);
        assert!(pt.configure("spin_budget", "nope").is_err());
        pt.configure("unrelated", "x").unwrap();
    }
}
