//! The cross-process frame pool over a mapped region.
//!
//! `ShmPool` is a [`FrameAllocator`] whose blocks live inside the
//! shared region: a `FrameBuf` allocated here can be handed to the
//! peer process as a 16-byte descriptor — the paper's zero-copy claim
//! extended across address spaces. It is simultaneously the
//! [`BlockRecycler`] for those frames, translating a dropped block
//! back to its region slot (which may have been allocated by the
//! *other* process — recycling is symmetric).

use crate::region::Region;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use xdaq_mempool::block::BlockRecycler;
use xdaq_mempool::{AllocError, Block, FrameAllocator, FrameBuf, PoolStats};

/// Packs a region block identity into a [`Block`] token:
/// `region_id << 32 | (index + 1)` (nonzero by construction).
pub fn pack_token(region_id: u32, idx: usize) -> u64 {
    ((region_id as u64) << 32) | (idx as u64 + 1)
}

/// Reverses [`pack_token`] when the token belongs to `region_id`.
pub fn unpack_token(region_id: u32, token: u64) -> Option<usize> {
    if (token >> 32) as u32 == region_id && token & 0xFFFF_FFFF != 0 {
        Some((token & 0xFFFF_FFFF) as usize - 1)
    } else {
        None
    }
}

/// Frame allocator + recycler over one shared region.
pub struct ShmPool {
    region: Arc<Region>,
    /// For minting `Arc<dyn BlockRecycler>` handles to ourselves.
    self_ref: Weak<ShmPool>,
    allocs: AtomicU64,
    frees: AtomicU64,
    failures: AtomicU64,
    live: AtomicU64,
    high_water: AtomicU64,
}

impl ShmPool {
    /// Wraps a mapped region.
    pub fn new(region: Arc<Region>) -> Arc<ShmPool> {
        Arc::new_cyclic(|weak| ShmPool {
            region,
            self_ref: weak.clone(),
            allocs: AtomicU64::new(0),
            frees: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            live: AtomicU64::new(0),
            high_water: AtomicU64::new(0),
        })
    }

    /// The underlying region.
    pub fn region(&self) -> &Arc<Region> {
        &self.region
    }

    /// Fixed block size of this pool.
    pub fn block_size(&self) -> usize {
        self.region.config().block_size
    }

    /// This pool as a recycler handle for `FrameBuf::new`.
    pub fn recycler(&self) -> Arc<dyn BlockRecycler> {
        self.self_ref.upgrade().expect("pool alive") as Arc<dyn BlockRecycler>
    }

    /// True when `token` names a block of this pool's region.
    pub fn owns_token(&self, token: u64) -> bool {
        unpack_token(self.region.id(), token).is_some_and(|i| i < self.region.config().nblocks)
    }

    /// Send-path payload copies recorded against this region (both
    /// sides): the zero-copy miss counter the benches assert on.
    pub fn copies(&self) -> u64 {
        self.region.hdr().copies.load(Ordering::Relaxed)
    }

    /// Takes a bare block out of the region free list (transport
    /// internal; applications use [`FrameAllocator::alloc`]).
    pub(crate) fn take_block(&self, len: usize) -> Option<Block> {
        let idx = self.region.alloc_block()?;
        let bs = self.block_size();
        // SAFETY: the free list guarantees exclusive ownership of
        // block `idx`; the pointer covers `bs` in-mapping bytes and
        // the Arc<Region> inside this pool (held via every FrameBuf's
        // recycler handle) keeps the mapping alive.
        let mut block = unsafe {
            Block::from_raw_parts(
                self.region.block_ptr(idx),
                bs,
                pack_token(self.region.id(), idx),
            )
        };
        block.set_len(len);
        self.allocs.fetch_add(1, Ordering::Relaxed);
        let live = self.live.fetch_add(1, Ordering::Relaxed) + 1;
        self.high_water.fetch_max(live, Ordering::Relaxed);
        Some(block)
    }

    /// Accounts a block that left this process without being recycled
    /// (ownership moved to the peer through a descriptor).
    pub(crate) fn forget_live(&self) {
        self.live.fetch_sub(1, Ordering::Relaxed);
    }

    /// Accounts a block that arrived from the peer through a
    /// descriptor (now live in this process until recycled).
    pub(crate) fn adopt_live(&self) {
        let live = self.live.fetch_add(1, Ordering::Relaxed) + 1;
        self.high_water.fetch_max(live, Ordering::Relaxed);
    }
}

impl FrameAllocator for ShmPool {
    fn alloc(&self, len: usize) -> Result<FrameBuf, AllocError> {
        if len > self.block_size() {
            self.failures.fetch_add(1, Ordering::Relaxed);
            return Err(AllocError::TooLarge(len));
        }
        match self.take_block(len) {
            Some(block) => Ok(FrameBuf::new(block, self.recycler())),
            None => {
                self.failures.fetch_add(1, Ordering::Relaxed);
                Err(AllocError::Exhausted {
                    requested: len,
                    live_blocks: self.live.load(Ordering::Relaxed) as usize,
                })
            }
        }
    }

    fn stats(&self) -> PoolStats {
        let allocs = self.allocs.load(Ordering::Relaxed);
        PoolStats {
            allocs,
            // Every alloc reuses a pre-created region block.
            hits: allocs,
            misses: 0,
            frees: self.frees.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            live_blocks: self.live.load(Ordering::Relaxed),
            high_water_blocks: self.high_water.load(Ordering::Relaxed),
            bytes_created: 0,
        }
    }

    fn scheme(&self) -> &'static str {
        "shm"
    }
}

impl BlockRecycler for ShmPool {
    fn recycle(&self, block: Block) {
        let Some(token) = block.external_token() else {
            // A heap block cannot belong to this pool; just drop it.
            return;
        };
        match unpack_token(self.region.id(), token) {
            Some(idx) if idx < self.region.config().nblocks => {
                self.region.free_block(idx);
                self.frees.fetch_add(1, Ordering::Relaxed);
                self.live.fetch_sub(1, Ordering::Relaxed);
            }
            // Foreign region's block: its own pool keeps the mapping;
            // dropping the Block here frees nothing (borrowed memory),
            // which is the correct leak-free behaviour for a block
            // whose home pool is already gone.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::ShmConfig;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("xdaq-shm-pool-{}-{name}", std::process::id()))
    }

    fn pool(name: &str) -> Arc<ShmPool> {
        let region = Region::create(
            &tmp(name),
            ShmConfig {
                block_size: 256,
                nblocks: 4,
                ring_capacity: 8,
            },
        )
        .unwrap();
        ShmPool::new(Arc::new(region))
    }

    #[test]
    fn token_packing_round_trips() {
        let t = pack_token(0xDEAD_BEEF, 41);
        assert_eq!(unpack_token(0xDEAD_BEEF, t), Some(41));
        assert_eq!(unpack_token(0xDEAD_BEE0, t), None);
        assert_eq!(unpack_token(0xDEAD_BEEF, (0xDEAD_BEEFu64) << 32), None);
    }

    #[test]
    fn alloc_recycle_cycle() {
        let p = pool("cycle");
        let f = p.alloc(100).unwrap();
        assert_eq!(f.len(), 100);
        assert!(f.external_token().is_some());
        assert!(p.owns_token(f.external_token().unwrap()));
        assert_eq!(p.stats().live_blocks, 1);
        drop(f);
        let s = p.stats();
        assert_eq!((s.live_blocks, s.frees), (0, 1));
    }

    #[test]
    fn exhaustion_then_recovery() {
        let p = pool("exhaust");
        let held: Vec<_> = (0..4).map(|_| p.alloc(10).unwrap()).collect();
        assert!(matches!(
            p.alloc(10),
            Err(AllocError::Exhausted { live_blocks: 4, .. })
        ));
        drop(held);
        assert!(p.alloc(10).is_ok());
    }

    #[test]
    fn oversize_requests_are_rejected() {
        let p = pool("oversize");
        assert!(matches!(p.alloc(257), Err(AllocError::TooLarge(257))));
    }

    #[test]
    fn frames_are_writable_region_memory() {
        let p = pool("write");
        let mut f = p.alloc(32).unwrap();
        f.copy_from_slice(&[0xCD; 32]);
        let tok = f.external_token().unwrap();
        let idx = unpack_token(p.region().id(), tok).unwrap();
        // SAFETY: reading the block this frame exclusively owns.
        let direct = unsafe { std::slice::from_raw_parts(p.region().block_ptr(idx), 32) };
        assert_eq!(direct, &[0xCD; 32]);
    }
}
