//! Eventfd doorbells with a FIFO fallback.
//!
//! Each attached process owns one nonblocking eventfd. Its `(pid, fd)`
//! pair is published in the region header; the peer process reopens
//! the fd through `/proc/<pid>/fd/<fd>` (same-user access) and writes
//! to it to wake the sleeper. Some kernels refuse to reopen anonymous
//! inodes through procfs (`ENXIO`), so each side additionally creates
//! a small named FIFO next to the region file (`<region>.bell<side>`)
//! that the peer can always open by path; the sleeper ppolls the
//! eventfd and the FIFO together. Senders ring only when the receiver
//! has advertised `waiting = 1`, so the doorbell costs nothing on the
//! busy path; a sleeping receiver additionally bounds its `ppoll` with
//! a short timeout, which doubles as the liveness-check cadence should
//! both wake paths ever fail.

use crate::sys;
use std::fs::File;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// `O_NONBLOCK` for `OpenOptionsExt::custom_flags`.
const O_NONBLOCK: i32 = 0o4000;

/// Path of the FIFO doorbell for `side` of the region at `region_path`.
pub fn bell_path(region_path: &Path, side: usize) -> PathBuf {
    let mut os = region_path.as_os_str().to_os_string();
    os.push(format!(".bell{side}"));
    PathBuf::from(os)
}

/// This process's wakeable doorbell.
pub struct Doorbell {
    file: File,
    fd: i32,
    /// FIFO fallback: receive end held `O_RDWR|O_NONBLOCK` (an RDWR
    /// open of a FIFO never blocks and keeps the read side alive).
    fifo: Option<File>,
    fifo_path: Option<PathBuf>,
}

impl Doorbell {
    /// Creates a fresh eventfd doorbell (no FIFO fallback).
    pub fn new() -> Result<Doorbell, String> {
        let fd = sys::eventfd().map_err(|e| format!("eventfd: errno {e}"))?;
        // SAFETY: fd is a fresh eventfd owned exclusively by this File.
        let file = unsafe {
            use std::os::fd::FromRawFd;
            File::from_raw_fd(fd)
        };
        Ok(Doorbell {
            file,
            fd,
            fifo: None,
            fifo_path: None,
        })
    }

    /// Creates a doorbell with its FIFO fallback at
    /// [`bell_path`]`(region_path, side)`.
    pub fn for_region(region_path: &Path, side: usize) -> Result<Doorbell, String> {
        let mut bell = Doorbell::new()?;
        let path = bell_path(region_path, side);
        sys::mkfifo(&path).map_err(|e| format!("mkfifo {}: errno {e}", path.display()))?;
        use std::os::unix::fs::OpenOptionsExt;
        let fifo = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .custom_flags(O_NONBLOCK)
            .open(&path)
            .map_err(|e| format!("open {}: {e}", path.display()))?;
        bell.fifo = Some(fifo);
        bell.fifo_path = Some(path);
        Ok(bell)
    }

    /// Raw eventfd to publish in the region header.
    pub fn fd(&self) -> i32 {
        self.fd
    }

    /// Every fd a sleeper should ppoll (eventfd, plus the FIFO when
    /// present).
    pub fn poll_fds(&self, out: &mut Vec<i32>) {
        out.push(self.fd);
        if let Some(fifo) = &self.fifo {
            use std::os::fd::AsRawFd;
            out.push(fifo.as_raw_fd());
        }
    }

    /// Consumes any pending signal on both wake paths (nonblocking).
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        let _ = (&self.file).read(&mut buf);
        if let Some(fifo) = &self.fifo {
            let mut sink = [0u8; 64];
            while matches!((fifo as &File).read(&mut sink), Ok(n) if n > 0) {}
        }
    }

    /// Wakes this doorbell from the owning process (used by `stop` to
    /// unblock the task thread).
    pub fn ring_self(&self) {
        let _ = (&self.file).write_all(&1u64.to_ne_bytes());
    }

    /// Sleeps until rung or `timeout` elapses; returns true when rung.
    /// Drains the counter before returning.
    pub fn wait(&self, timeout: Duration) -> bool {
        let mut fds = Vec::with_capacity(2);
        self.poll_fds(&mut fds);
        match sys::ppoll_readable_many(&fds, timeout) {
            Ok(true) => {
                self.drain();
                true
            }
            _ => false,
        }
    }
}

impl Drop for Doorbell {
    fn drop(&mut self) {
        if let Some(path) = &self.fifo_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// A peer process's doorbell: its eventfd reopened via `/proc` when
/// the kernel allows, else its FIFO opened by path.
pub struct PeerBell {
    file: Option<File>,
    pid: u32,
    fd: i32,
    fifo_path: Option<PathBuf>,
}

impl PeerBell {
    /// Binds to the peer's `(pid, fd)` pair. The `/proc` open is
    /// attempted lazily on first ring so attach order does not matter.
    pub fn new(pid: u32, fd: i32) -> PeerBell {
        PeerBell {
            file: None,
            pid,
            fd,
            fifo_path: None,
        }
    }

    /// Binds with the peer's FIFO fallback path as well.
    pub fn with_fifo(pid: u32, fd: i32, fifo_path: PathBuf) -> PeerBell {
        PeerBell {
            file: None,
            pid,
            fd,
            fifo_path: Some(fifo_path),
        }
    }

    /// Identity this bell was bound to.
    pub fn target(&self) -> (u32, i32) {
        (self.pid, self.fd)
    }

    fn open(&self) -> Option<File> {
        let path = format!("/proc/{}/fd/{}", self.pid, self.fd);
        if let Ok(f) = std::fs::OpenOptions::new().write(true).open(path) {
            return Some(f);
        }
        // Kernels without anon-inode reopen: use the named FIFO. The
        // nonblocking open only succeeds while the peer holds its read
        // end, which is exactly the liveness we want.
        let fifo = self.fifo_path.as_ref()?;
        use std::os::unix::fs::OpenOptionsExt;
        std::fs::OpenOptions::new()
            .write(true)
            .custom_flags(O_NONBLOCK)
            .open(fifo)
            .ok()
    }

    /// Rings the peer. Returns false when the peer cannot be reached
    /// on either wake path (e.g. it died); the caller falls back to
    /// the receiver's ppoll timeout.
    pub fn ring(&mut self) -> bool {
        if self.file.is_none() {
            self.file = self.open();
        }
        match &mut self.file {
            Some(f) => match f.write_all(&1u64.to_ne_bytes()) {
                Ok(()) => true,
                Err(_) => {
                    self.file = None;
                    false
                }
            },
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_ring_wakes_wait() {
        if !sys::supported() {
            return;
        }
        let bell = Doorbell::new().unwrap();
        assert!(!bell.wait(Duration::from_millis(1)), "no signal yet");
        bell.ring_self();
        assert!(bell.wait(Duration::from_millis(50)));
        assert!(!bell.wait(Duration::from_millis(1)), "drained");
    }

    #[test]
    fn peer_bell_reaches_a_live_receiver() {
        if !sys::supported() {
            return;
        }
        let region = std::env::temp_dir().join(format!("xdaq-shm-bell-{}", std::process::id()));
        let bell = Doorbell::for_region(&region, 0).unwrap();
        // Our own pid stands in for a peer process: the /proc reopen
        // and FIFO open paths are identical cross-process.
        let mut peer = PeerBell::with_fifo(std::process::id(), bell.fd(), bell_path(&region, 0));
        assert!(peer.ring());
        assert!(bell.wait(Duration::from_millis(50)));
        assert!(!bell.wait(Duration::from_millis(1)), "drained");
    }

    #[test]
    fn dead_peer_ring_fails_gracefully() {
        let mut peer = PeerBell::new(u32::MAX - 7, 3);
        assert!(!peer.ring());
        let mut with_fifo = PeerBell::with_fifo(
            u32::MAX - 7,
            3,
            std::env::temp_dir().join("xdaq-shm-bell-nonexistent"),
        );
        assert!(!with_fifo.ring());
    }
}
