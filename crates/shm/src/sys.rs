//! Minimal raw-syscall layer for the shared-memory transport.
//!
//! The build environment vendors no `libc`, so the few kernel
//! services this crate needs — `mmap`/`munmap` for the region,
//! `eventfd2` for doorbells, `ppoll` for bounded doorbell sleeps and
//! `mknodat` for the FIFO doorbell fallback — are issued directly via
//! inline assembly on the supported Linux targets (x86_64, aarch64).
//! Everything else (file creation, `/proc` probing, eventfd
//! reads/writes) goes through `std`.
//!
//! On unsupported targets every entry point returns `ENOSYS`, so the
//! crate still compiles and `ShmLink::create`/`attach` fail cleanly.

/// `PROT_READ | PROT_WRITE`.
pub const PROT_RW: usize = 0x3;
/// `MAP_SHARED`.
pub const MAP_SHARED: usize = 0x1;
/// `EFD_CLOEXEC | EFD_NONBLOCK`.
pub const EFD_FLAGS: usize = 0o2000000 | 0o4000;
/// `poll(2)` readable event.
pub const POLLIN: i16 = 0x1;
/// Errno for "not supported here".
pub const ENOSYS: i32 = 38;

/// `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct PollFd {
    pub fd: i32,
    pub events: i16,
    pub revents: i16,
}

/// `struct timespec` (64-bit ABI).
#[repr(C)]
#[derive(Clone, Copy)]
pub struct Timespec {
    pub sec: i64,
    pub nsec: i64,
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod arch {
    pub const SYS_MMAP: usize = 9;
    pub const SYS_MUNMAP: usize = 11;
    pub const SYS_PPOLL: usize = 271;
    pub const SYS_EVENTFD2: usize = 290;
    pub const SYS_MKNODAT: usize = 259;

    /// # Safety
    /// Caller must pass arguments valid for the given syscall number.
    pub unsafe fn syscall6(
        nr: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") nr => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            in("r9") a6,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
mod arch {
    pub const SYS_MMAP: usize = 222;
    pub const SYS_MUNMAP: usize = 215;
    pub const SYS_PPOLL: usize = 73;
    pub const SYS_EVENTFD2: usize = 19;
    pub const SYS_MKNODAT: usize = 33;

    /// # Safety
    /// Caller must pass arguments valid for the given syscall number.
    pub unsafe fn syscall6(
        nr: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc 0",
            inlateout("x0") a1 => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            in("x4") a5,
            in("x5") a6,
            in("x8") nr,
            options(nostack),
        );
        ret
    }
}

/// True when the running target has a real syscall backend.
pub const fn supported() -> bool {
    cfg!(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod imp {
    use super::arch::*;
    use super::*;

    fn check(ret: isize) -> Result<usize, i32> {
        if (-4095..0).contains(&ret) {
            Err(-ret as i32)
        } else {
            Ok(ret as usize)
        }
    }

    /// Maps `len` bytes of `fd` shared read/write.
    pub fn mmap_shared(fd: i32, len: usize) -> Result<*mut u8, i32> {
        // SAFETY: all-arguments-by-value syscall; the kernel validates.
        let ret = unsafe { syscall6(SYS_MMAP, 0, len, PROT_RW, MAP_SHARED, fd as usize, 0) };
        check(ret).map(|p| p as *mut u8)
    }

    /// Unmaps a region previously returned by [`mmap_shared`].
    ///
    /// # Safety
    /// `(ptr, len)` must be an exact live mapping with no outstanding
    /// references into it.
    pub unsafe fn munmap(ptr: *mut u8, len: usize) -> Result<(), i32> {
        check(syscall6(SYS_MUNMAP, ptr as usize, len, 0, 0, 0, 0)).map(|_| ())
    }

    /// New nonblocking close-on-exec eventfd.
    pub fn eventfd() -> Result<i32, i32> {
        // SAFETY: plain value arguments.
        let ret = unsafe { syscall6(SYS_EVENTFD2, 0, EFD_FLAGS, 0, 0, 0, 0) };
        check(ret).map(|fd| fd as i32)
    }

    /// Waits up to `timeout` for `fd` to become readable. Returns true
    /// when readable, false on timeout.
    pub fn ppoll_readable(fd: i32, timeout: std::time::Duration) -> Result<bool, i32> {
        ppoll_readable_many(&[fd], timeout)
    }

    /// Creates a FIFO at `path`, mode 0600. Succeeds when one already
    /// exists (doorbell fallback files are shared by both sides).
    pub fn mkfifo(path: &std::path::Path) -> Result<(), i32> {
        const AT_FDCWD: isize = -100;
        const S_IFIFO_0600: usize = 0o010600;
        const EEXIST: i32 = 17;
        use std::os::unix::ffi::OsStrExt;
        let mut bytes = path.as_os_str().as_bytes().to_vec();
        bytes.push(0);
        // SAFETY: bytes is a live NUL-terminated path buffer.
        let ret = unsafe {
            syscall6(
                SYS_MKNODAT,
                AT_FDCWD as usize,
                bytes.as_ptr() as usize,
                S_IFIFO_0600,
                0,
                0,
                0,
            )
        };
        match check(ret) {
            Ok(_) | Err(EEXIST) => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Waits up to `timeout` for any of `fds` to become readable.
    pub fn ppoll_readable_many(fds: &[i32], timeout: std::time::Duration) -> Result<bool, i32> {
        let mut pfds: Vec<PollFd> = fds
            .iter()
            .map(|&fd| PollFd {
                fd,
                events: POLLIN,
                revents: 0,
            })
            .collect();
        let ts = Timespec {
            sec: timeout.as_secs() as i64,
            nsec: timeout.subsec_nanos() as i64,
        };
        // SAFETY: pfds/ts outlive the call; null sigmask is allowed.
        let ret = unsafe {
            syscall6(
                SYS_PPOLL,
                pfds.as_mut_ptr() as usize,
                pfds.len(),
                &ts as *const Timespec as usize,
                0,
                8,
                0,
            )
        };
        match check(ret) {
            Ok(n) => Ok(n > 0 && pfds.iter().any(|p| p.revents & POLLIN != 0)),
            // EINTR: treat as a timeout; callers loop anyway.
            Err(4) => Ok(false),
            Err(e) => Err(e),
        }
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod imp {
    use super::ENOSYS;

    pub fn mmap_shared(_fd: i32, _len: usize) -> Result<*mut u8, i32> {
        Err(ENOSYS)
    }

    /// # Safety
    /// No-op stub; never maps anything.
    pub unsafe fn munmap(_ptr: *mut u8, _len: usize) -> Result<(), i32> {
        Err(ENOSYS)
    }

    pub fn eventfd() -> Result<i32, i32> {
        Err(ENOSYS)
    }

    pub fn ppoll_readable(_fd: i32, _timeout: std::time::Duration) -> Result<bool, i32> {
        Err(ENOSYS)
    }

    pub fn ppoll_readable_many(_fds: &[i32], _timeout: std::time::Duration) -> Result<bool, i32> {
        Err(ENOSYS)
    }

    pub fn mkfifo(_path: &std::path::Path) -> Result<(), i32> {
        Err(ENOSYS)
    }
}

pub use imp::{eventfd, mkfifo, mmap_shared, munmap, ppoll_readable, ppoll_readable_many};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_round_trip() {
        if !supported() {
            return;
        }
        let fd = eventfd().expect("eventfd");
        assert!(fd >= 0);
        // Not readable while unsignalled.
        assert_eq!(
            ppoll_readable(fd, std::time::Duration::from_millis(1)),
            Ok(false)
        );
        use std::io::{Read, Write};
        use std::os::fd::FromRawFd;
        // SAFETY: fd is a fresh eventfd owned by this test.
        let mut f = unsafe { std::fs::File::from_raw_fd(fd) };
        f.write_all(&1u64.to_ne_bytes()).unwrap();
        assert_eq!(
            ppoll_readable(fd, std::time::Duration::from_millis(1)),
            Ok(true)
        );
        let mut buf = [0u8; 8];
        f.read_exact(&mut buf).unwrap();
        assert_eq!(u64::from_ne_bytes(buf), 1);
    }

    #[test]
    fn mkfifo_is_idempotent_and_pollable() {
        if !supported() {
            return;
        }
        let path = std::env::temp_dir().join(format!("xdaq-shm-fifo-{}", std::process::id()));
        mkfifo(&path).expect("mkfifo");
        mkfifo(&path).expect("mkfifo twice (EEXIST ok)");
        use std::io::Write;
        use std::os::fd::AsRawFd;
        use std::os::unix::fs::OpenOptionsExt;
        // O_RDWR open of a FIFO never blocks and keeps a reader alive.
        let rx = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .custom_flags(0o4000) // O_NONBLOCK
            .open(&path)
            .unwrap();
        let mut tx = std::fs::OpenOptions::new()
            .write(true)
            .custom_flags(0o4000)
            .open(&path)
            .unwrap();
        assert_eq!(
            ppoll_readable(rx.as_raw_fd(), std::time::Duration::from_millis(1)),
            Ok(false)
        );
        tx.write_all(&[1]).unwrap();
        assert_eq!(
            ppoll_readable(rx.as_raw_fd(), std::time::Duration::from_millis(50)),
            Ok(true)
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mmap_anonymous_file() {
        if !supported() {
            return;
        }
        let path = std::env::temp_dir().join(format!("xdaq-shm-sys-{}", std::process::id()));
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .unwrap();
        file.set_len(4096).unwrap();
        use std::os::fd::AsRawFd;
        let ptr = mmap_shared(file.as_raw_fd(), 4096).expect("mmap");
        // SAFETY: fresh exclusive mapping of 4096 bytes.
        unsafe {
            ptr.write(0xAB);
            assert_eq!(ptr.read(), 0xAB);
            munmap(ptr, 4096).unwrap();
        }
        let _ = std::fs::remove_file(&path);
    }
}
