//! Loom model of the SPSC descriptor ring publish/consume protocol.
//!
//! Mirrors `src/ring.rs` exactly — monotonic masked cursors, Relaxed
//! own-cursor load, Acquire other-cursor load, plain slot write
//! published by a Release cursor store. Keep the two in sync when
//! touching either. Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p xdaq-shm --test loom --release
//! ```
#![cfg(loom)]

use loom::sync::atomic::{AtomicU32, Ordering};
use loom::sync::Arc;
use loom::thread;

const CAP: u32 = 4;
const MASK: u32 = CAP - 1;
/// More items than slots, so the model exercises full-ring rejection
/// and wraparound, not just the happy path.
const ITEMS: u32 = 6;

/// The model ring: cursors + one u32 payload per slot standing in for
/// the descriptor (the slot write/publish protocol is what matters;
/// descriptor width does not change the memory-ordering argument).
struct ModelRing {
    head: AtomicU32,
    tail: AtomicU32,
    slots: [AtomicU32; CAP as usize],
}

impl ModelRing {
    fn new() -> ModelRing {
        ModelRing {
            head: AtomicU32::new(0),
            tail: AtomicU32::new(0),
            slots: [
                AtomicU32::new(u32::MAX),
                AtomicU32::new(u32::MAX),
                AtomicU32::new(u32::MAX),
                AtomicU32::new(u32::MAX),
            ],
        }
    }

    /// `RingView::push` — sole producer.
    fn push(&self, value: u32) -> bool {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= CAP {
            return false;
        }
        // Stands in for the plain descriptor write (Relaxed is the
        // loom-checkable equivalent: ordered only by the Release tail
        // store below).
        self.slots[(tail & MASK) as usize].store(value, Ordering::Relaxed);
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        true
    }

    /// `RingView::pop` — sole consumer.
    fn pop(&self) -> Option<u32> {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let value = self.slots[(head & MASK) as usize].load(Ordering::Relaxed);
        self.head.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }
}

#[test]
fn spsc_ring_never_loses_reorders_or_duplicates() {
    loom::model(|| {
        let ring = Arc::new(ModelRing::new());
        let producer = {
            let ring = Arc::clone(&ring);
            thread::spawn(move || {
                let mut sent = 0u32;
                while sent < ITEMS {
                    if ring.push(sent) {
                        sent += 1;
                    } else {
                        thread::yield_now();
                    }
                }
            })
        };
        let mut got = Vec::new();
        while got.len() < ITEMS as usize {
            match ring.pop() {
                Some(v) => got.push(v),
                None => thread::yield_now(),
            }
        }
        producer.join().unwrap();
        // FIFO, gap-free, duplicate-free.
        let expect: Vec<u32> = (0..ITEMS).collect();
        assert_eq!(got, expect);
        assert!(ring.pop().is_none(), "ring drained");
    });
}

#[test]
fn full_ring_rejects_until_a_pop_frees_a_slot() {
    loom::model(|| {
        let ring = ModelRing::new();
        for i in 0..CAP {
            assert!(ring.push(i));
        }
        assert!(!ring.push(99), "full ring must reject");
        assert_eq!(ring.pop(), Some(0));
        assert!(ring.push(99), "freed slot accepts again");
        for want in 1..CAP {
            assert_eq!(ring.pop(), Some(want));
        }
        assert_eq!(ring.pop(), Some(99));
        assert!(ring.pop().is_none());
    });
}
