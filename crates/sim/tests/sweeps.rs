//! Sweep-level guarantees: reproducibility, zero loss at scale, and
//! schedule minimization.
//!
//! * `same_seed_replays_bit_for_bit` — the golden-trace property: one
//!   seed, two fresh clusters, identical `XREC` bytes.
//! * `hundred_seed_sweep_loses_nothing` — the headline invariant: 100
//!   seeded kill/partition/delay/corrupt schedules over the 5-node
//!   mesh, every event built, every seed, in seconds of wall time.
//! * `shrink_reduces_to_the_single_guilty_fault` — delta-debugging a
//!   deliberately failing configuration down to a one-fault repro.

use std::time::{Duration, Instant};
use xdaq_sim::sweep::{self, Fault, FaultKind, Schedule};
use xdaq_sim::{trace, EvbOptions};

#[test]
fn same_seed_replays_bit_for_bit() {
    let opts = EvbOptions::default();
    let first = sweep::golden_trace(0xC1A0, &opts, 40).expect("seed must pass");
    let second = sweep::golden_trace(0xC1A0, &opts, 40).expect("seed must pass");
    assert_eq!(
        first, second,
        "identical seeds must replay to identical traces"
    );
    let (seed, lines) = trace::decode(&first).expect("trace must decode");
    assert_eq!(seed, 0xC1A0);
    // The trace carries the whole story: every event completion, every
    // fault injection, the final accounting line.
    assert!(lines.len() > 40, "trace too thin: {} lines", lines.len());
    assert!(lines.iter().any(|l| l.contains("fault ")));
    assert!(lines
        .last()
        .unwrap()
        .contains("run done completed=40 lost=0"));
}

#[test]
fn different_seeds_scatter_differently() {
    let opts = EvbOptions::default();
    let a = sweep::run_seed(3, &opts, 30).expect("seed 3");
    let b = sweep::run_seed(4, &opts, 30).expect("seed 4");
    assert_ne!(a.trace, b.trace, "seeds 3 and 4 produced identical runs");
}

#[test]
fn hundred_seed_sweep_loses_nothing() {
    let opts = EvbOptions::default();
    let wall = Instant::now();
    let reports = match sweep::sweep(0..100, &opts, 30) {
        Ok(r) => r,
        Err(f) => panic!("{f}"),
    };
    let wall = wall.elapsed();
    assert_eq!(reports.len(), 100);
    for r in &reports {
        assert_eq!(r.lost, 0, "seed {} lost events", r.seed);
        assert_eq!(r.completed, 30, "seed {} incomplete", r.seed);
        assert_eq!(r.distinct, 30, "seed {} missed the filter", r.seed);
    }
    // The schedules really exercised the fault paths.
    let corrupted: u64 = reports.iter().map(|r| r.corrupted).sum();
    assert!(corrupted > 0, "no schedule ever corrupted a fragment");
    let virt: Duration = reports.iter().map(|r| r.virtual_elapsed).sum();
    println!(
        "sweep: 100 seeds, {:.1}s virtual in {:.2}s wall ({:.0} schedules/s)",
        virt.as_secs_f64(),
        wall.as_secs_f64(),
        100.0 / wall.as_secs_f64().max(1e-9),
    );
    // The acceptance bar is <10 s; leave headroom for slow CI but
    // catch a collapse into wall-clock sleeping outright.
    assert!(
        wall < Duration::from_secs(60),
        "sweep took {wall:?} — virtual time is leaking into wall time"
    );
}

/// A mesh tuned so one corrupted fragment is fatal: no re-pull
/// retries, no reassignment budget. The shrinker must strip the two
/// decoy faults and keep the corruption.
#[test]
fn shrink_reduces_to_the_single_guilty_fault() {
    let opts = EvbOptions {
        bu_max_retries: 0,
        max_reassign: 0,
        ..EvbOptions::default()
    };
    let schedule = Schedule {
        seed: 99,
        faults: vec![
            Fault {
                at: Duration::from_millis(2),
                kind: FaultKind::Delay {
                    from: "host".into(),
                    to: "bu1".into(),
                    micros: 1_000,
                },
            },
            Fault {
                at: Duration::from_millis(4),
                kind: FaultKind::Corrupt {
                    from: "ru0".into(),
                    to: "bu0".into(),
                    n: 1,
                },
            },
            Fault {
                at: Duration::from_millis(40),
                kind: FaultKind::ClearDelay {
                    from: "host".into(),
                    to: "bu1".into(),
                },
            },
        ],
    };
    let (minimal, failure) =
        sweep::shrink(&schedule, &opts, 20).expect("schedule must fail under zero budgets");
    assert_eq!(
        minimal.faults.len(),
        1,
        "decoys survived shrinking: {:?}",
        minimal.faults
    );
    assert!(
        matches!(minimal.faults[0].kind, FaultKind::Corrupt { .. }),
        "wrong culprit: {:?}",
        minimal.faults[0].kind
    );
    assert!(failure.cause.contains("lost"), "cause: {}", failure.cause);
    // The failure message is the repro recipe: seed plus schedule.
    let shown = failure.to_string();
    assert!(shown.contains("seed 99"), "{shown}");
    assert!(shown.contains("corrupt ru0->bu0"), "{shown}");
}
