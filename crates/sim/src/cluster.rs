//! The discrete-event cluster harness.
//!
//! [`SimCluster`] runs N executives in one thread on one shared
//! [`VirtualClock`], connected by a [`SimNet`] fabric. The drive loop
//! alternates two phases:
//!
//! 1. **Pump to quiescence** — every live (non-killed) node's
//!    [`Executive::run_once`] is called round-robin until one full
//!    pass performs zero work. At that point nothing in the cluster
//!    can make progress without time passing: every queue is empty
//!    and every pending action is parked behind a timer deadline or a
//!    delayed frame.
//! 2. **Jump** — the clock advances *directly* to the earliest armed
//!    deadline: the minimum over every live node's timer wheel and
//!    the fabric's next delayed-frame release. No interval is ever
//!    stepped through; a heartbeat schedule that would take minutes
//!    of wall time replays in microseconds.
//!
//! Killed nodes are excluded from both phases — they are frozen in
//! time, and their stale timer deadlines must not drag the clock (a
//! past deadline that can never fire would otherwise pin `now`
//! forever). The sweep driver wakes the cluster for revive/heal
//! points by bounding the run with [`SimCluster::run_to`].
//!
//! If the cluster quiesces with *no* deadline anywhere and the
//! predicate is still false, the run is genuinely deadlocked —
//! [`SimError::Stalled`] reports it rather than spinning.

use crate::net::{SimNet, SimPt};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};
use xdaq_core::{Clock, Executive, ExecutiveBuilder, VirtualClock};

/// Why a simulation run stopped early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Quiescent, no armed timer or delayed frame, predicate false:
    /// the cluster can never make progress again.
    Stalled {
        /// Virtual time since the cluster started.
        at: Duration,
    },
    /// The virtual-time budget ran out before the predicate held.
    Budget {
        /// The exhausted budget.
        max: Duration,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Stalled { at } => {
                write!(f, "simulation deadlocked at t+{}us", at.as_micros())
            }
            SimError::Budget { max } => {
                write!(f, "virtual budget of {}ms exhausted", max.as_millis())
            }
        }
    }
}

impl std::error::Error for SimError {}

struct Node {
    name: String,
    exec: Executive,
}

/// N in-process executives on a shared virtual clock and a simulated
/// fabric. See the module docs for the drive loop.
pub struct SimCluster {
    clock: Clock,
    vclock: Arc<VirtualClock>,
    net: Arc<SimNet>,
    nodes: Vec<Node>,
}

impl SimCluster {
    /// An empty cluster with a fresh virtual clock and fabric.
    pub fn new() -> SimCluster {
        let (clock, vclock) = Clock::simulated();
        let net = SimNet::new(clock.clone());
        SimCluster {
            clock,
            vclock,
            net,
            nodes: Vec::new(),
        }
    }

    /// The shared clock handle (pass to anything needing sim time).
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The underlying virtual clock.
    pub fn vclock(&self) -> &Arc<VirtualClock> {
        &self.vclock
    }

    /// The fabric (fault-injection controls live here).
    pub fn net(&self) -> &Arc<SimNet> {
        &self.net
    }

    /// Virtual time elapsed since the cluster was created.
    pub fn elapsed(&self) -> Duration {
        self.vclock.elapsed()
    }

    /// The `sim://` URL of a node.
    pub fn url(name: &str) -> String {
        format!("sim://{name}")
    }

    /// Adds a node: builds its executive on the shared clock, attaches
    /// it to the fabric under `name` (transport `"pt"`), and hands the
    /// builder to `f` for extra configuration (supervision, workers…).
    pub fn add_node_with(
        &mut self,
        name: &str,
        f: impl FnOnce(ExecutiveBuilder) -> ExecutiveBuilder,
    ) -> Executive {
        let builder = f(Executive::builder(name).clock(self.clock.clone()));
        let exec = builder.build();
        let pt: Arc<SimPt> = self.net.attach(name);
        exec.register_pt("pt", pt).expect("attach sim transport");
        self.nodes.push(Node {
            name: name.to_string(),
            exec: exec.clone(),
        });
        exec
    }

    /// Adds a node with default executive configuration.
    pub fn add_node(&mut self, name: &str) -> Executive {
        self.add_node_with(name, |b| b)
    }

    /// The executive of a node added earlier.
    pub fn exec(&self, name: &str) -> &Executive {
        &self
            .nodes
            .iter()
            .find(|n| n.name == name)
            .unwrap_or_else(|| panic!("unknown sim node {name:?}"))
            .exec
    }

    /// One pass of `run_once` over every live node.
    fn pump_pass(&self) -> usize {
        let mut work = 0;
        for n in &self.nodes {
            if !self.net.is_killed(&n.name) {
                work += n.exec.run_once();
            }
        }
        work
    }

    /// Earliest armed deadline across live timer wheels and the fabric.
    fn next_deadline(&self) -> Option<Instant> {
        let mut next: Option<Instant> = None;
        let mut fold = |t: Instant| match next {
            Some(n) if n <= t => {}
            _ => next = Some(t),
        };
        for n in &self.nodes {
            if self.net.is_killed(&n.name) {
                continue;
            }
            if let Some(t) = n.exec.core().timers().next_deadline() {
                fold(t);
            }
        }
        if let Some(t) = self.net.next_release() {
            fold(t);
        }
        next
    }

    fn drive(
        &self,
        mut pred: impl FnMut() -> bool,
        bound: Option<Instant>,
        max: Duration,
    ) -> Result<(), SimError> {
        // `run_to` passes Duration::MAX; saturate instead of panicking.
        let limit = self.vclock.now().checked_add(max);
        loop {
            while self.pump_pass() > 0 {}
            if pred() {
                return Ok(());
            }
            let now = self.vclock.now();
            if bound.is_some_and(|b| now >= b) {
                return Ok(());
            }
            let mut target = match (self.next_deadline(), bound) {
                (Some(t), Some(b)) => t.min(b),
                (Some(t), None) => t,
                (None, Some(b)) => b,
                (None, None) => {
                    return Err(SimError::Stalled {
                        at: self.vclock.elapsed(),
                    })
                }
            };
            if target <= now {
                // A deadline in the (virtual) past — fire it on the
                // very next instant rather than freezing time.
                target = now + Duration::from_nanos(1);
            }
            if limit.is_some_and(|l| target > l) {
                return Err(SimError::Budget { max });
            }
            self.vclock.advance_to(target);
        }
    }

    /// Pumps and jumps until `pred` holds, spending at most `max`
    /// virtual time from now.
    pub fn run_until(&self, pred: impl FnMut() -> bool, max: Duration) -> Result<(), SimError> {
        self.drive(pred, None, max)
    }

    /// Pumps and jumps until the virtual clock reaches `deadline`
    /// (used by the sweep driver to wake up at fault times). A
    /// deadlock before the deadline is *not* an error here — time
    /// simply jumps to the deadline.
    pub fn run_to(&self, deadline: Instant) {
        let r = self.drive(|| false, Some(deadline), Duration::MAX);
        debug_assert!(r.is_ok(), "bounded drive cannot fail: {r:?}");
    }
}

impl Default for SimCluster {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cluster_stalls_cleanly() {
        let c = SimCluster::new();
        let err = c.run_until(|| false, Duration::from_secs(1)).unwrap_err();
        assert!(matches!(err, SimError::Stalled { .. }));
    }

    #[test]
    fn run_to_jumps_without_deadlines() {
        let c = SimCluster::new();
        let t = c.vclock().now() + Duration::from_millis(250);
        c.run_to(t);
        assert!(c.vclock().now() >= t);
    }

    #[test]
    fn heartbeats_replay_in_virtual_time() {
        use std::time::Instant as WallInstant;
        use xdaq_core::SupervisionConfig;

        let mut c = SimCluster::new();
        let a = c.add_node_with("a", |b| {
            b.supervision(SupervisionConfig {
                interval: Duration::from_millis(100),
                suspect_after: 2,
                down_after: 5,
            })
        });
        let _b = c.add_node("b");
        a.supervise(&SimCluster::url("b")).unwrap();
        a.enable_all();
        c.exec("b").enable_all();

        // Ten supervision intervals = a second of virtual time; the
        // wall clock should see almost none of it.
        let wall = WallInstant::now();
        let t = c.vclock().now() + Duration::from_secs(1);
        c.run_to(t);
        assert!(
            wall.elapsed() < Duration::from_secs(1),
            "virtual heartbeats must not sleep on the wall clock"
        );
        // The link stayed Up the whole time: pongs flowed every tick.
        let states = a.link_states();
        assert_eq!(states.len(), 1);
        assert_eq!(format!("{:?}", states[0].1), "Up");
    }
}
