//! # xdaq-sim — deterministic cluster simulation
//!
//! Runs whole multi-node xdaq clusters inside one thread on one
//! virtual clock, FoundationDB-style: every executive, timer wheel,
//! heartbeat schedule and retry backoff reads time from a shared
//! [`xdaq_core::VirtualClock`], frames cross an in-memory `sim://`
//! fabric with deterministic delivery order, and the drive loop
//! advances time *only when the cluster is quiescent* — jumping
//! straight to the next armed deadline instead of sleeping through
//! it. A second of simulated heartbeats costs microseconds of wall
//! time, and the same seed replays the same run bit for bit.
//!
//! The pieces (DESIGN.md §16):
//!
//! * [`SimNet`] / [`SimPt`] — the fabric: per-node mailboxes plus
//!   schedulable kill/partition/delay/corruption faults.
//! * [`SimCluster`] — N executives, one clock, the
//!   pump-to-quiescence / jump-to-deadline loop.
//! * [`SimEvb`] — the standard workload: a full N×M event-builder
//!   mesh (EVM + readouts + builders + filter) on the fabric.
//! * [`sweep`] — seeded fault schedules over the mesh asserting zero
//!   event loss; failures print the seed and shrink to a minimal
//!   repro.
//! * [`trace`] — golden traces: the run's decision log in `xdaq-rec`
//!   `XREC` framing, compared byte-for-byte across replays.
//!
//! ```
//! use xdaq_sim::sweep::{self};
//! use xdaq_sim::EvbOptions;
//!
//! // One seed, 30 events, kill/partition/delay/corrupt faults:
//! // finishes in milliseconds of wall time, loses nothing.
//! let report = sweep::run_seed(7, &EvbOptions::default(), 30).unwrap();
//! assert_eq!(report.lost, 0);
//! assert_eq!(report.completed, 30);
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod evb;
pub mod net;
pub mod sweep;
pub mod trace;

pub use cluster::{SimCluster, SimError};
pub use evb::{EvbOptions, SimEvb};
pub use net::{SimNet, SimPt};
pub use sweep::{Fault, FaultKind, Report, Rng, Schedule, SweepFailure};
pub use trace::TraceLog;
