//! The simulated fabric: an in-memory `sim://` peer transport with
//! schedulable faults.
//!
//! [`SimNet`] plays the role of the network for a whole in-process
//! cluster. Each node attaches one [`SimPt`]; frames cross the fabric
//! through per-node mailboxes under a single lock, so delivery order
//! is a pure function of send order — no thread interleaving, no hash
//! seeds, no wall-clock races. On top of plain delivery the fabric
//! injects the four failure modes of the sweep harness
//! (DESIGN.md §16):
//!
//! * **kill / revive** — a killed node is *blacked out*: sends from it
//!   fail `Closed`, sends toward it fail `Unreachable`, and the
//!   simulation stops pumping its executive. Its mailbox and all
//!   in-memory state survive, modelling a hung-then-recovered process
//!   rather than a restarted one (a restart is a different experiment:
//!   it needs re-registration, which the control plane owns).
//! * **partition / heal** — an undirected node pair whose sends fail
//!   `Unreachable` in both directions while the partition holds.
//! * **delay** — a directed link latency: frames are parked in a
//!   per-node delay queue and promoted to the mailbox once the
//!   *virtual* clock passes their release time, in (release, sequence)
//!   order.
//! * **corrupt** — flips one payload byte of the next n event-builder
//!   `FRAGMENT` frames on a directed link. Corruption is deliberately
//!   restricted to fragments: they carry a checksum and a re-pull
//!   recovery path, while the control verbs (`ASSIGN`, `CREDIT`, …)
//!   have no end-to-end integrity layer — corrupting those would
//!   wedge the protocol rather than exercise recovery, which models a
//!   fabric with protected control lanes and best-effort data lanes.
//!
//! Everything observable is deterministic: mailboxes are `VecDeque`s,
//! fault state lives in `BTreeMap`/`BTreeSet`, and ties in the delay
//! queue break on a global send sequence number.

use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xdaq_core::{Clock, PeerAddr, PeerTransport, PtError, PtMode, SendFailure};
use xdaq_evb::FRAGMENT_HEADER_LEN;
use xdaq_i2o::{PRIVATE_FUNCTION, PRIVATE_HEADER_LEN};
use xdaq_mempool::FrameBuf;

/// Offset of the standard-header function byte in an encoded frame
/// (the high byte of the little-endian address word at +4).
const FUNCTION_BYTE: usize = 7;
/// Offset of the private x-function field (little-endian u16).
const X_FUNCTION: usize = xdaq_i2o::HEADER_LEN;

/// A frame parked on a delayed link.
struct Delayed {
    release: Instant,
    seq: u64,
    frame: FrameBuf,
    from: PeerAddr,
}

#[derive(Default)]
struct NodeBox {
    killed: bool,
    ready: VecDeque<(FrameBuf, PeerAddr)>,
    /// Kept sorted by (release, seq); promoted into `ready` by `poll`.
    delayed: Vec<Delayed>,
}

#[derive(Default)]
struct NetState {
    nodes: BTreeMap<String, NodeBox>,
    /// Undirected partitions, stored as sorted name pairs.
    partitions: BTreeSet<(String, String)>,
    /// Directed link latency (from, to) → delay.
    delays: BTreeMap<(String, String), Duration>,
    /// Directed budget of fragment corruptions left on (from, to).
    corrupt: BTreeMap<(String, String), u32>,
    /// Global send sequence: total order on frames entering the fabric.
    seq: u64,
    corrupted: u64,
}

fn pair(a: &str, b: &str) -> (String, String) {
    if a <= b {
        (a.to_string(), b.to_string())
    } else {
        (b.to_string(), a.to_string())
    }
}

/// True for an encoded event-builder `FRAGMENT` frame.
fn is_fragment(frame: &[u8]) -> bool {
    frame.len() > PRIVATE_HEADER_LEN + FRAGMENT_HEADER_LEN
        && frame[FUNCTION_BYTE] == PRIVATE_FUNCTION
        && u16::from_le_bytes([frame[X_FUNCTION], frame[X_FUNCTION + 1]]) == xdaq_evb::xfn::FRAGMENT
}

/// The in-memory cluster fabric. See the module docs.
pub struct SimNet {
    clock: Clock,
    state: Mutex<NetState>,
}

impl SimNet {
    /// An empty fabric keeping time on `clock` (normally the cluster's
    /// shared virtual clock; delays are released against it).
    pub fn new(clock: Clock) -> Arc<SimNet> {
        Arc::new(SimNet {
            clock,
            state: Mutex::new(NetState::default()),
        })
    }

    /// Attaches a node and returns its transport endpoint.
    pub fn attach(self: &Arc<SimNet>, node: &str) -> Arc<SimPt> {
        self.state.lock().nodes.entry(node.to_string()).or_default();
        Arc::new(SimPt {
            net: self.clone(),
            node: node.to_string(),
            self_addr: PeerAddr::new("sim", node),
        })
    }

    /// Blacks a node out (see module docs; idempotent).
    pub fn kill(&self, node: &str) {
        if let Some(b) = self.state.lock().nodes.get_mut(node) {
            b.killed = true;
        }
    }

    /// Lifts a blackout. Frames queued before the kill are delivered
    /// again once the node is pumped.
    pub fn revive(&self, node: &str) {
        if let Some(b) = self.state.lock().nodes.get_mut(node) {
            b.killed = false;
        }
    }

    /// True while `node` is blacked out.
    pub fn is_killed(&self, node: &str) -> bool {
        self.state
            .lock()
            .nodes
            .get(node)
            .map(|b| b.killed)
            .unwrap_or(false)
    }

    /// Severs the (undirected) link between two nodes.
    pub fn partition(&self, a: &str, b: &str) {
        self.state.lock().partitions.insert(pair(a, b));
    }

    /// Restores the link between two nodes.
    pub fn heal(&self, a: &str, b: &str) {
        self.state.lock().partitions.remove(&pair(a, b));
    }

    /// Imposes a latency on the directed link `from → to`
    /// (`Duration::ZERO` clears it).
    pub fn set_delay(&self, from: &str, to: &str, d: Duration) {
        let key = (from.to_string(), to.to_string());
        let mut st = self.state.lock();
        if d.is_zero() {
            st.delays.remove(&key);
        } else {
            st.delays.insert(key, d);
        }
    }

    /// Corrupts one payload byte of the next `n` `FRAGMENT` frames
    /// sent on the directed link `from → to`.
    pub fn corrupt_next(&self, from: &str, to: &str, n: u32) {
        let mut st = self.state.lock();
        *st.corrupt
            .entry((from.to_string(), to.to_string()))
            .or_insert(0) += n;
    }

    /// Fragments corrupted so far (assertion hook for the sweeps).
    pub fn corrupted(&self) -> u64 {
        self.state.lock().corrupted
    }

    /// Lifts every standing fault — revives all nodes, heals all
    /// partitions, clears all delays (corruption budgets are one-shot
    /// and left to drain). Returns true if anything actually changed;
    /// the sweep runner uses this as a safety net under *shrunk*
    /// schedules, whose windows may have lost their closing action.
    pub fn restore_all(&self) -> bool {
        let mut st = self.state.lock();
        let mut changed = !st.partitions.is_empty() || !st.delays.is_empty();
        st.partitions.clear();
        st.delays.clear();
        for b in st.nodes.values_mut() {
            changed |= b.killed;
            b.killed = false;
        }
        changed
    }

    /// Earliest release time over every parked (delayed) frame — the
    /// fabric's contribution to the simulation's next-deadline scan.
    /// Killed nodes are skipped: they are frozen and never polled, so
    /// their past-due releases would otherwise pin the clock.
    pub fn next_release(&self) -> Option<Instant> {
        let st = self.state.lock();
        st.nodes
            .values()
            .filter(|b| !b.killed)
            .flat_map(|b| b.delayed.iter().map(|d| d.release))
            .min()
    }

    fn send_from(
        &self,
        from: &str,
        from_addr: &PeerAddr,
        dest: &PeerAddr,
        mut frame: FrameBuf,
    ) -> Result<(), SendFailure> {
        let to = dest.rest();
        let mut st = self.state.lock();
        if st.nodes.get(from).map(|b| b.killed).unwrap_or(true) {
            return Err(SendFailure::with_frame(PtError::Closed, frame));
        }
        let reachable = st.nodes.get(to).map(|b| !b.killed).unwrap_or(false)
            && !st.partitions.contains(&pair(from, to));
        if !reachable {
            return Err(SendFailure::with_frame(
                PtError::Unreachable(dest.to_string()),
                frame,
            ));
        }
        let link = (from.to_string(), to.to_string());
        if let Some(budget) = st.corrupt.get_mut(&link) {
            if *budget > 0 && is_fragment(&frame) {
                *budget -= 1;
                frame[PRIVATE_HEADER_LEN + FRAGMENT_HEADER_LEN] ^= 0xFF;
                st.corrupted += 1;
            }
        }
        st.seq += 1;
        let seq = st.seq;
        let delay = st.delays.get(&link).copied();
        let node = st.nodes.get_mut(to).expect("checked above");
        match delay {
            Some(d) => {
                let release = self.clock.now() + d;
                let at = node
                    .delayed
                    .partition_point(|p| (p.release, p.seq) <= (release, seq));
                node.delayed.insert(
                    at,
                    Delayed {
                        release,
                        seq,
                        frame,
                        from: from_addr.clone(),
                    },
                );
            }
            None => node.ready.push_back((frame, from_addr.clone())),
        }
        Ok(())
    }

    fn poll_for(&self, node: &str) -> Option<(FrameBuf, PeerAddr)> {
        let now = self.clock.now();
        let mut st = self.state.lock();
        let b = st.nodes.get_mut(node)?;
        if b.killed {
            return None;
        }
        // Promote every due delayed frame in (release, seq) order.
        while b.delayed.first().is_some_and(|d| d.release <= now) {
            let d = b.delayed.remove(0);
            b.ready.push_back((d.frame, d.from));
        }
        b.ready.pop_front()
    }

    fn drain(&self, node: &str) {
        let mut st = self.state.lock();
        if let Some(b) = st.nodes.get_mut(node) {
            b.ready.clear();
            b.delayed.clear();
        }
    }
}

/// One node's attachment to a [`SimNet`].
pub struct SimPt {
    net: Arc<SimNet>,
    node: String,
    self_addr: PeerAddr,
}

impl SimPt {
    /// This endpoint's canonical `sim://` address.
    pub fn addr(&self) -> &PeerAddr {
        &self.self_addr
    }
}

impl PeerTransport for SimPt {
    fn scheme(&self) -> &'static str {
        "sim"
    }

    fn mode(&self) -> PtMode {
        PtMode::Polling
    }

    fn send(&self, dest: &PeerAddr, frame: FrameBuf) -> Result<(), SendFailure> {
        self.net.send_from(&self.node, &self.self_addr, dest, frame)
    }

    fn poll(&self) -> Option<(FrameBuf, PeerAddr)> {
        self.net.poll_for(&self.node)
    }

    fn stop(&self) {
        // Frames parked for a stopping node would pin pool blocks
        // forever (same leak the loopback PT drains against).
        self.net.drain(&self.node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdaq_core::VirtualClock;

    fn rig() -> (Arc<SimNet>, Arc<VirtualClock>) {
        let (clock, v) = Clock::simulated();
        (SimNet::new(clock), v)
    }

    fn frame(n: usize) -> FrameBuf {
        FrameBuf::from_bytes(&vec![0u8; n])
    }

    #[test]
    fn delivers_in_send_order() {
        let (net, _v) = rig();
        let a = net.attach("a");
        let b = net.attach("b");
        let to_b: PeerAddr = "sim://b".parse().unwrap();
        a.send(&to_b, FrameBuf::from_bytes(b"one")).unwrap();
        a.send(&to_b, FrameBuf::from_bytes(b"two")).unwrap();
        assert_eq!(&b.poll().unwrap().0[..], b"one");
        let (f, src) = b.poll().unwrap();
        assert_eq!(&f[..], b"two");
        assert_eq!(src.to_string(), "sim://a");
        assert!(b.poll().is_none());
    }

    #[test]
    fn killed_node_is_blacked_out_not_erased() {
        let (net, _v) = rig();
        let a = net.attach("a");
        let b = net.attach("b");
        let to_b: PeerAddr = "sim://b".parse().unwrap();
        let to_a: PeerAddr = "sim://a".parse().unwrap();
        a.send(&to_b, frame(4)).unwrap();
        net.kill("b");
        // Toward the dead node: unreachable, frame handed back.
        let err = a.send(&to_b, frame(4)).unwrap_err();
        assert!(matches!(err.error, PtError::Unreachable(_)));
        assert!(err.frame.is_some());
        // From the dead node: closed; and it cannot receive.
        assert!(matches!(
            b.send(&to_a, frame(4)).unwrap_err().error,
            PtError::Closed
        ));
        assert!(b.poll().is_none());
        // Revive: the pre-kill frame is still there.
        net.revive("b");
        assert!(b.poll().is_some());
    }

    #[test]
    fn partitions_cut_both_directions_until_healed() {
        let (net, _v) = rig();
        let a = net.attach("a");
        let b = net.attach("b");
        net.partition("a", "b");
        assert!(a.send(&"sim://b".parse().unwrap(), frame(1)).is_err());
        assert!(b.send(&"sim://a".parse().unwrap(), frame(1)).is_err());
        net.heal("a", "b");
        a.send(&"sim://b".parse().unwrap(), frame(1)).unwrap();
        assert!(b.poll().is_some());
    }

    #[test]
    fn delayed_frames_release_on_the_virtual_clock() {
        let (net, v) = rig();
        let a = net.attach("a");
        let b = net.attach("b");
        net.set_delay("a", "b", Duration::from_millis(10));
        a.send(&"sim://b".parse().unwrap(), frame(1)).unwrap();
        assert!(b.poll().is_none(), "frame leaked ahead of its release");
        assert_eq!(
            net.next_release(),
            Some(v.now() + Duration::from_millis(10))
        );
        v.advance(Duration::from_millis(10));
        assert!(b.poll().is_some());
        assert_eq!(net.next_release(), None);
    }

    #[test]
    fn corruption_skips_control_frames_and_flips_fragments() {
        let (net, _v) = rig();
        let a = net.attach("a");
        let b = net.attach("b");
        net.corrupt_next("a", "b", 1);
        let to_b: PeerAddr = "sim://b".parse().unwrap();
        // A small control-ish frame passes untouched and keeps the budget.
        a.send(&to_b, frame(24)).unwrap();
        assert_eq!(net.corrupted(), 0);
        // A synthetic FRAGMENT frame gets one payload byte flipped.
        let mut raw = vec![0u8; PRIVATE_HEADER_LEN + FRAGMENT_HEADER_LEN + 8];
        raw[FUNCTION_BYTE] = PRIVATE_FUNCTION;
        raw[X_FUNCTION..X_FUNCTION + 2].copy_from_slice(&xdaq_evb::xfn::FRAGMENT.to_le_bytes());
        a.send(&to_b, FrameBuf::from_bytes(&raw)).unwrap();
        assert_eq!(net.corrupted(), 1);
        let _ = b.poll().unwrap();
        let (f, _) = b.poll().unwrap();
        assert_eq!(f[PRIVATE_HEADER_LEN + FRAGMENT_HEADER_LEN], 0xFF);
        // Budget spent: the next fragment passes clean.
        a.send(&to_b, FrameBuf::from_bytes(&raw)).unwrap();
        let (f, _) = b.poll().unwrap();
        assert_eq!(f[PRIVATE_HEADER_LEN + FRAGMENT_HEADER_LEN], 0);
    }
}
