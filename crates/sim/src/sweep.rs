//! Seeded fault-schedule sweeps: reproducible chaos over the
//! simulated event builder.
//!
//! A sweep seed deterministically expands into a [`Schedule`] of
//! kill/revive, partition/heal, delay and corruption events over the
//! mesh, the schedule replays on a [`SimEvb`], and the invariant is
//! absolute: **zero event loss and full completion, every seed**.
//! Failures carry the seed (and the exact schedule) so a red CI line
//! is a one-command local repro — rerun the seed, get the identical
//! virtual-time interleaving, byte for byte.
//!
//! The schedule generator is built around the recovery machinery's
//! actual detection horizons rather than uniform noise:
//!
//! * kill and partition windows always *outlast* the supervisor's
//!   down-detection time (`interval × down_after`), because a fault
//!   window shorter than detection can eat a `DONE`/`CREDIT` frame
//!   without ever being declared — a loss the protocol has no timer
//!   against. That is a real protocol property, not a test dodge:
//!   production deployments get the same guarantee from TCP
//!   connection resets, which the in-memory fabric does not model.
//! * after every revive/heal the driver raises `evb.rescan=1`, as the
//!   `xdaq-ctl` convergence loop does after a respawn.
//! * corruption only targets `FRAGMENT` frames (see `net.rs`), whose
//!   checksum-verify-and-re-pull path is the recovery under test.
//!
//! [`shrink`] minimizes a failing schedule by greedy delta-debugging:
//! repeatedly drop one fault pair and keep the reduction whenever the
//! failure survives, converging on a locally-minimal repro.

use crate::evb::{EvbOptions, SimEvb};
use crate::trace;
use std::fmt;
use std::time::Duration;

/// xorshift64* — tiny, seedable, and good enough to scatter fault
/// schedules. The stdlib has no seedable RNG and external crates are
/// off the table, so the generator is pinned here; changing it
/// re-keys every seed in CI.
pub struct Rng(u64);

impl Rng {
    /// Seeds the generator (a zero seed is remapped; xorshift is a
    /// fixed point at zero).
    pub fn new(seed: u64) -> Rng {
        Rng(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// One scheduled fault action.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Blackout of a node.
    Kill(String),
    /// End of a blackout.
    Revive(String),
    /// Sever a node pair.
    Partition(String, String),
    /// Restore a node pair.
    Heal(String, String),
    /// Impose latency on a directed link.
    Delay {
        /// Sending node.
        from: String,
        /// Receiving node.
        to: String,
        /// Imposed latency in microseconds.
        micros: u64,
    },
    /// Clear a directed link's latency.
    ClearDelay {
        /// Sending node.
        from: String,
        /// Receiving node.
        to: String,
    },
    /// Corrupt the next `n` fragments on a directed link.
    Corrupt {
        /// Sending node.
        from: String,
        /// Receiving node.
        to: String,
        /// Fragments to corrupt.
        n: u32,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Kill(n) => write!(f, "kill {n}"),
            FaultKind::Revive(n) => write!(f, "revive {n}"),
            FaultKind::Partition(a, b) => write!(f, "partition {a}|{b}"),
            FaultKind::Heal(a, b) => write!(f, "heal {a}|{b}"),
            FaultKind::Delay { from, to, micros } => {
                write!(f, "delay {from}->{to} {micros}us")
            }
            FaultKind::ClearDelay { from, to } => write!(f, "clear-delay {from}->{to}"),
            FaultKind::Corrupt { from, to, n } => write!(f, "corrupt {from}->{to} x{n}"),
        }
    }
}

/// A fault at a virtual-time offset from run start.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fault {
    /// Offset from the start of the run.
    pub at: Duration,
    /// What happens.
    pub kind: FaultKind,
}

/// A seed plus its expanded fault list (sorted by time).
#[derive(Clone, Debug)]
pub struct Schedule {
    /// The generating seed.
    pub seed: u64,
    /// Time-ordered faults.
    pub faults: Vec<Fault>,
}

/// Outcome of one schedule replay.
#[derive(Debug, Clone)]
pub struct Report {
    /// The seed that was replayed.
    pub seed: u64,
    /// Events built.
    pub completed: u64,
    /// Events lost (must be zero).
    pub lost: u64,
    /// Distinct events seen by the filter.
    pub distinct: u64,
    /// Fragments the fabric corrupted.
    pub corrupted: u64,
    /// Virtual time the run took.
    pub virtual_elapsed: Duration,
    /// The golden trace of the run.
    pub trace: Vec<String>,
}

/// A failed replay: which seed, why, and the schedule to replay.
#[derive(Debug, Clone)]
pub struct SweepFailure {
    /// The failing seed.
    pub seed: u64,
    /// Human-readable cause.
    pub cause: String,
    /// The schedule that produced the failure.
    pub schedule: Vec<Fault>,
}

impl fmt::Display for SweepFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "sweep seed {} failed: {} — replay with run_seed({}, ..); schedule:",
            self.seed, self.cause, self.seed
        )?;
        for fault in &self.schedule {
            writeln!(f, "  t+{:>7}us {}", fault.at.as_micros(), fault.kind)?;
        }
        Ok(())
    }
}

impl std::error::Error for SweepFailure {}

/// Expands a seed into a fault schedule over the mesh described by
/// `opts`. Windowed faults (kill, partition, delay) always emit their
/// closing action; windows affecting builders outlast the
/// supervisor's detection horizon (see module docs).
pub fn generate(seed: u64, opts: &EvbOptions) -> Schedule {
    let mut rng = Rng::new(seed);
    let detect =
        opts.supervision.interval * opts.supervision.down_after + opts.supervision.interval * 2;
    let detect_ms = detect.as_millis() as u64;
    let ru = |rng: &mut Rng| format!("ru{}", rng.below(opts.n_ru as u64));
    let bu = |rng: &mut Rng| format!("bu{}", rng.below(opts.n_bu as u64));
    let mut faults = Vec::new();
    let episodes = 2 + rng.below(4);
    for _ in 0..episodes {
        let at = Duration::from_millis(5 + rng.below(350));
        match rng.below(4) {
            0 => {
                // Kill a readout or builder; never the host (the EVM
                // has no failover — killing it ends the experiment
                // rather than exercising recovery).
                let node = if rng.below(2) == 0 {
                    ru(&mut rng)
                } else {
                    bu(&mut rng)
                };
                let window = Duration::from_millis(detect_ms + 20 + rng.below(150));
                faults.push(Fault {
                    at,
                    kind: FaultKind::Kill(node.clone()),
                });
                faults.push(Fault {
                    at: at + window,
                    kind: FaultKind::Revive(node),
                });
            }
            1 => {
                let (a, b) = match rng.below(3) {
                    0 => ("host".to_string(), bu(&mut rng)),
                    1 => ("host".to_string(), ru(&mut rng)),
                    _ => (ru(&mut rng), bu(&mut rng)),
                };
                let window = Duration::from_millis(detect_ms + 40 + rng.below(150));
                faults.push(Fault {
                    at,
                    kind: FaultKind::Partition(a.clone(), b.clone()),
                });
                faults.push(Fault {
                    at: at + window,
                    kind: FaultKind::Heal(a, b),
                });
            }
            2 => {
                let (from, to) = match rng.below(3) {
                    0 => ("host".to_string(), bu(&mut rng)),
                    1 => (bu(&mut rng), "host".to_string()),
                    _ => (ru(&mut rng), bu(&mut rng)),
                };
                let micros = 500 + rng.below(10_000);
                let window = Duration::from_millis(20 + rng.below(150));
                faults.push(Fault {
                    at,
                    kind: FaultKind::Delay {
                        from: from.clone(),
                        to: to.clone(),
                        micros,
                    },
                });
                faults.push(Fault {
                    at: at + window,
                    kind: FaultKind::ClearDelay { from, to },
                });
            }
            _ => {
                faults.push(Fault {
                    at,
                    kind: FaultKind::Corrupt {
                        from: ru(&mut rng),
                        to: bu(&mut rng),
                        n: 1 + rng.below(3) as u32,
                    },
                });
            }
        }
    }
    faults.sort_by_key(|f| f.at);
    Schedule { seed, faults }
}

fn apply(evb: &SimEvb, fault: &FaultKind) {
    let net = evb.cluster.net();
    match fault {
        FaultKind::Kill(n) => net.kill(n),
        FaultKind::Revive(n) => net.revive(n),
        FaultKind::Partition(a, b) => net.partition(a, b),
        FaultKind::Heal(a, b) => net.heal(a, b),
        FaultKind::Delay { from, to, micros } => {
            net.set_delay(from, to, Duration::from_micros(*micros))
        }
        FaultKind::ClearDelay { from, to } => net.set_delay(from, to, Duration::ZERO),
        FaultKind::Corrupt { from, to, n } => net.corrupt_next(from, to, *n),
    }
}

/// Replays `schedule` against a fresh mesh for a `target`-event run
/// and checks the zero-loss invariant.
pub fn run_schedule(
    schedule: &Schedule,
    opts: &EvbOptions,
    target: u64,
) -> Result<Report, SweepFailure> {
    let fail = |cause: String| SweepFailure {
        seed: schedule.seed,
        cause,
        schedule: schedule.faults.clone(),
    };
    let evb = SimEvb::new(opts.clone());
    let t0 = evb.cluster.vclock().now();
    evb.start_run(target);
    for fault in &schedule.faults {
        evb.cluster.run_to(t0 + fault.at);
        evb.log
            .push(evb.cluster.elapsed(), &format!("fault {}", fault.kind));
        apply(&evb, &fault.kind);
        if matches!(fault.kind, FaultKind::Revive(_) | FaultKind::Heal(..)) {
            evb.rescan();
        }
    }
    // Every generator window has closed; shrunk schedules may have
    // lost a closing action, so lift anything still standing (no-op —
    // and no trace line — on a well-formed schedule).
    if evb.cluster.net().restore_all() {
        evb.log.push(evb.cluster.elapsed(), "restore-all");
        evb.rescan();
    }
    if let Err(e) = evb
        .cluster
        .run_until(|| evb.run_done(), Duration::from_secs(120))
    {
        return Err(fail(format!(
            "{e} (completed {} of {target}, lost {})",
            evb.completed(),
            evb.lost()
        )));
    }
    let report = Report {
        seed: schedule.seed,
        completed: evb.completed(),
        lost: evb.lost(),
        distinct: evb.distinct_events(),
        corrupted: evb.cluster.net().corrupted(),
        virtual_elapsed: evb.cluster.elapsed(),
        trace: Vec::new(),
    };
    if report.lost != 0 {
        return Err(fail(format!("{} events lost", report.lost)));
    }
    if report.completed != target {
        return Err(fail(format!("completed {} of {target}", report.completed)));
    }
    // The filter may still be digesting the final EVENT frames.
    let _ = evb
        .cluster
        .run_until(|| evb.distinct_events() == target, Duration::from_secs(1));
    if evb.distinct_events() != target {
        return Err(fail(format!(
            "filter saw {} distinct events of {target}",
            evb.distinct_events()
        )));
    }
    evb.log.push(
        evb.cluster.elapsed(),
        &format!(
            "run done completed={} lost=0 corrupted={}",
            report.completed, report.corrupted
        ),
    );
    Ok(Report {
        distinct: evb.distinct_events(),
        trace: evb.log.lines(),
        ..report
    })
}

/// Generates and replays one seed.
pub fn run_seed(seed: u64, opts: &EvbOptions, target: u64) -> Result<Report, SweepFailure> {
    run_schedule(&generate(seed, opts), opts, target)
}

/// Replays `seeds` in order, failing on the first violated seed (the
/// failure prints the seed and its schedule for replay).
pub fn sweep(
    seeds: impl IntoIterator<Item = u64>,
    opts: &EvbOptions,
    target: u64,
) -> Result<Vec<Report>, SweepFailure> {
    seeds
        .into_iter()
        .map(|seed| run_seed(seed, opts, target))
        .collect()
}

/// The golden trace of one seed: the run's decision log in `XREC`
/// framing. Deterministic — two calls return identical bytes.
pub fn golden_trace(seed: u64, opts: &EvbOptions, target: u64) -> Result<Vec<u8>, SweepFailure> {
    let report = run_seed(seed, opts, target)?;
    Ok(trace::encode(seed, &report.trace))
}

/// Greedy delta-debugging: drops one fault at a time (windowed faults
/// drop together with their closing action) and keeps any reduction
/// that still fails, until no single removal preserves the failure.
/// Returns the minimized schedule and the failure it produces.
pub fn shrink(
    schedule: &Schedule,
    opts: &EvbOptions,
    target: u64,
) -> Option<(Schedule, SweepFailure)> {
    let mut current = schedule.clone();
    let mut failure = match run_schedule(&current, opts, target) {
        Ok(_) => return None,
        Err(f) => f,
    };
    'outer: loop {
        for i in 0..current.faults.len() {
            let mut candidate = current.clone();
            let removed = candidate.faults.remove(i);
            // A window's opener and closer travel together: dropping a
            // Kill but keeping its Revive (or vice versa) explores
            // schedules the generator can never emit.
            candidate.faults.retain(|f| !paired(&removed.kind, &f.kind));
            if let Err(f) = run_schedule(&candidate, opts, target) {
                current = candidate;
                failure = f;
                continue 'outer;
            }
        }
        return Some((current, failure));
    }
}

#[cfg(test)]
fn closing_of(kind: &FaultKind) -> Option<FaultKind> {
    match kind {
        FaultKind::Kill(n) => Some(FaultKind::Revive(n.clone())),
        FaultKind::Partition(a, b) => Some(FaultKind::Heal(a.clone(), b.clone())),
        FaultKind::Delay { from, to, .. } => Some(FaultKind::ClearDelay {
            from: from.clone(),
            to: to.clone(),
        }),
        _ => None,
    }
}

/// True when `a` and `b` open/close the same fault window.
fn paired(a: &FaultKind, b: &FaultKind) -> bool {
    use FaultKind::*;
    match (a, b) {
        (Kill(x), Revive(y)) | (Revive(x), Kill(y)) => x == y,
        (Partition(a1, a2), Heal(b1, b2)) | (Heal(a1, a2), Partition(b1, b2)) => {
            a1 == b1 && a2 == b2
        }
        (
            Delay {
                from: f1, to: t1, ..
            },
            ClearDelay { from: f2, to: t2 },
        )
        | (
            ClearDelay { from: f1, to: t1 },
            Delay {
                from: f2, to: t2, ..
            },
        ) => f1 == f2 && t1 == t2,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_pure_functions_of_the_seed() {
        let opts = EvbOptions::default();
        for seed in [0, 1, 7, 0xDEAD_BEEF] {
            assert_eq!(generate(seed, &opts).faults, generate(seed, &opts).faults);
        }
        assert_ne!(
            generate(1, &opts).faults,
            generate(2, &opts).faults,
            "different seeds should scatter differently"
        );
    }

    #[test]
    fn every_window_closes() {
        let opts = EvbOptions::default();
        for seed in 0..50 {
            let s = generate(seed, &opts);
            for f in &s.faults {
                if let Some(closer) = closing_of(&f.kind) {
                    assert!(
                        s.faults.iter().any(|g| g.kind == closer && g.at > f.at),
                        "seed {seed}: {} never closes",
                        f.kind
                    );
                }
            }
        }
    }
}
