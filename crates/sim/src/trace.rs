//! Golden traces: the simulation's observable decision log, framed in
//! the event store's `XREC` format.
//!
//! A [`TraceLog`] accumulates one line per observable decision —
//! fault injections, event completions at the filter, final run
//! accounting — each stamped with the *virtual* time. Because the
//! whole simulation is deterministic, the log for a given seed is a
//! function of the code: [`encode`] turns it into a single `XREC`
//! segment (`xdaq-rec`'s torn-tail-safe framing, one record per
//! line), and a regression test replays the seed and asserts the
//! bytes match the previous encoding bit for bit. A diff means the
//! protocol's decisions changed — deliberately or not.

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;
use xdaq_rec::crc32;
use xdaq_rec::segment::{decode_header, encode_header, REC_FRAMING_LEN, SEG_HEADER_LEN};

/// A shared, append-only, virtually-timestamped line log.
#[derive(Clone, Default)]
pub struct TraceLog {
    lines: Arc<Mutex<Vec<String>>>,
}

impl TraceLog {
    /// An empty log.
    pub fn new() -> TraceLog {
        TraceLog::default()
    }

    /// Appends one line stamped with virtual time `t`.
    pub fn push(&self, t: Duration, line: &str) {
        self.lines
            .lock()
            .push(format!("t={:012} {line}", t.as_nanos()));
    }

    /// Snapshot of every line in append order.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().clone()
    }

    /// Number of lines logged so far.
    pub fn len(&self) -> usize {
        self.lines.lock().len()
    }

    /// True when nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Encodes trace lines as one `XREC` segment: the standard 16-byte
/// header (sequence = the sweep seed) followed by one CRC-framed
/// record per line.
pub fn encode(seed: u64, lines: &[String]) -> Vec<u8> {
    let mut out =
        Vec::with_capacity(SEG_HEADER_LEN + lines.iter().map(|l| l.len() + 8).sum::<usize>());
    out.extend_from_slice(&encode_header(seed));
    for line in lines {
        let payload = line.as_bytes();
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(payload).to_le_bytes());
        out.extend_from_slice(payload);
    }
    out
}

/// Decodes an [`encode`]d trace, validating the header and every
/// record CRC. Returns `(seed, lines)`.
pub fn decode(bytes: &[u8]) -> Result<(u64, Vec<String>), String> {
    let seed = decode_header(bytes)?;
    let mut lines = Vec::new();
    let mut at = SEG_HEADER_LEN;
    while at < bytes.len() {
        if bytes.len() - at < REC_FRAMING_LEN {
            return Err(format!("torn record framing at byte {at}"));
        }
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap());
        at += REC_FRAMING_LEN;
        if bytes.len() - at < len {
            return Err(format!(
                "record length {len} overruns the trace at byte {at}"
            ));
        }
        let payload = &bytes[at..at + len];
        if crc32(payload) != crc {
            return Err(format!("record CRC mismatch at byte {at}"));
        }
        lines.push(String::from_utf8_lossy(payload).into_owned());
        at += len;
    }
    Ok((seed, lines))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_and_detects_corruption() {
        let log = TraceLog::new();
        log.push(Duration::from_micros(5), "fault kill bu0");
        log.push(Duration::from_micros(9), "built event=1");
        let bytes = encode(42, &log.lines());
        let (seed, lines) = decode(&bytes).unwrap();
        assert_eq!(seed, 42);
        assert_eq!(lines, log.lines());
        assert_eq!(lines[0], "t=000000005000 fault kill bu0");

        let mut torn = bytes.clone();
        let last = torn.len() - 1;
        torn[last] ^= 1;
        assert!(decode(&torn).unwrap_err().contains("CRC"));
        assert!(decode(&bytes[..SEG_HEADER_LEN + 3])
            .unwrap_err()
            .contains("torn"));
    }
}
