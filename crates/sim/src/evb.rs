//! A simulated N×M event-builder topology: the sweep harness's
//! standard workload.
//!
//! [`SimEvb`] assembles `1 + n_ru + n_bu` nodes on one [`SimCluster`]:
//! a host node running the [`EventManager`] plus the filter collector,
//! `n_ru` readout nodes and `n_bu` builder nodes — the same mesh the
//! 7-process `tests/evb.rs` integration test builds out of real OS
//! processes and `shm://` regions, shrunk onto the simulated fabric
//! where a whole run takes microseconds of wall time and every
//! delivery is deterministic.
//!
//! The host supervises each builder's `sim://` URL, so a blackout
//! turns into `XFN_PEER_DOWN` at the EVM (credit reclamation +
//! reassignment) exactly as in production; after the sweep driver
//! revives or heals something it raises `evb.rescan=1` the way the
//! `xdaq-ctl` convergence loop does after a respawn.

use crate::cluster::SimCluster;
use crate::trace::TraceLog;
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;
use xdaq_core::config::kv;
use xdaq_core::{Delivery, Dispatcher, Executive, I2oListener, SupervisionConfig, VirtualClock};
use xdaq_evb::{xfn, BuilderUnit, EventManager, EvmStats, ReadoutUnit, ORG_DAQ};
use xdaq_i2o::{DeviceClass, Message, Tid, UtilFn};

/// Shape and tuning of the simulated mesh.
#[derive(Clone, Debug)]
pub struct EvbOptions {
    /// Readout-unit count.
    pub n_ru: usize,
    /// Builder-unit count.
    pub n_bu: usize,
    /// Fragment payload bytes per source.
    pub fragment_size: u32,
    /// Credits each builder grants the EVM.
    pub credits: u32,
    /// Trigger pacing (virtual microseconds per fresh event; 0 =
    /// free-running). Pacing is what makes a run *occupy* virtual
    /// time: free-running, the pump drains a whole run without the
    /// clock ever advancing, so scheduled faults would all land after
    /// the last event. At the default 10 ms beat a 30-event run spans
    /// 300 ms of virtual time — the window the fault generator aims at.
    pub trigger_interval_us: u64,
    /// Builder reassembly timeout (virtual milliseconds).
    pub bu_timeout_ms: u64,
    /// Re-pull rounds before a builder discards an event.
    pub bu_max_retries: u32,
    /// Reassignments before the EVM counts an event lost. Generous:
    /// the sweeps assert *zero* loss, so recovery must be allowed to
    /// grind through long fault windows rather than give up.
    pub max_reassign: u32,
    /// Host-side supervision of the builder links. The defaults
    /// detect a blackout in `interval × down_after` = 80 ms of
    /// virtual time — faster than the shortest scheduled fault
    /// window, so a killed builder is always reclaimed.
    pub supervision: SupervisionConfig,
}

impl Default for EvbOptions {
    fn default() -> EvbOptions {
        EvbOptions {
            n_ru: 2,
            n_bu: 2,
            fragment_size: 256,
            credits: 4,
            trigger_interval_us: 10_000,
            bu_timeout_ms: 20,
            bu_max_retries: 25,
            max_reassign: 100,
            supervision: SupervisionConfig {
                interval: Duration::from_millis(20),
                suspect_after: 2,
                down_after: 4,
            },
        }
    }
}

/// Counts distinct event ids reaching the filter (delivery after a
/// reassignment is at-least-once; the id set is the exactly-once
/// view) and logs each first arrival into the golden trace.
struct Collector {
    ids: Arc<Mutex<BTreeSet<u64>>>,
    log: TraceLog,
    vclock: Arc<VirtualClock>,
}

impl I2oListener for Collector {
    fn class(&self) -> DeviceClass {
        DeviceClass::Application(ORG_DAQ)
    }

    fn on_private(&mut self, _ctx: &mut Dispatcher<'_>, msg: Delivery) {
        if msg.private.map(|p| p.x_function) != Some(xfn::EVENT) {
            return;
        }
        let Some(bytes) = msg.payload().get(0..8) else {
            return;
        };
        let id = u64::from_le_bytes(bytes.try_into().unwrap());
        if self.ids.lock().insert(id) {
            self.log
                .push(self.vclock.elapsed(), &format!("built event={id}"));
        }
    }
}

/// The assembled mesh. Fault-injection goes through
/// `evb.cluster.net()`; node names are `host`, `ru0..`, `bu0..`.
pub struct SimEvb {
    /// The underlying cluster (drive loop, fabric, clock).
    pub cluster: SimCluster,
    /// The golden-trace log (faults, completions, accounting).
    pub log: TraceLog,
    host: Executive,
    evm_tid: Tid,
    /// Builder (name, url, remote tid) triples for proxy repair: the
    /// host executive *evicts* a Down builder's proxy (routes, name,
    /// tid), so after a revive the control plane must re-proxy before
    /// the EVM's rescan can resolve the name again.
    bu_proxies: Vec<(String, String, Tid)>,
    stats: Arc<EvmStats>,
    ids: Arc<Mutex<BTreeSet<u64>>>,
    opts: EvbOptions,
}

impl SimEvb {
    /// Builds the mesh. Node registration order is fixed, so TiD
    /// assignment — and therefore every downstream route — is
    /// deterministic.
    pub fn new(opts: EvbOptions) -> SimEvb {
        let mut cluster = SimCluster::new();
        let log = TraceLog::new();
        let sup = opts.supervision.clone();
        let host = cluster.add_node_with("host", |b| b.supervision(sup));
        let ru_execs: Vec<Executive> = (0..opts.n_ru)
            .map(|i| cluster.add_node(&format!("ru{i}")))
            .collect();
        let bu_execs: Vec<Executive> = (0..opts.n_bu)
            .map(|j| cluster.add_node(&format!("bu{j}")))
            .collect();

        let ids = Arc::new(Mutex::new(BTreeSet::new()));
        let flt_tid = host
            .register(
                "flt",
                Box::new(Collector {
                    ids: ids.clone(),
                    log: log.clone(),
                    vclock: cluster.vclock().clone(),
                }),
                &[],
            )
            .expect("register collector");

        let mut ru_tids = Vec::new();
        for (i, exec) in ru_execs.iter().enumerate() {
            let tid = exec
                .register(
                    "readout",
                    Box::new(ReadoutUnit::new()),
                    &[
                        ("source_id", &i.to_string()),
                        ("sources", &opts.n_ru.to_string()),
                        ("size", &opts.fragment_size.to_string()),
                    ],
                )
                .expect("register readout");
            ru_tids.push(tid);
        }

        let ru_names: Vec<String> = (0..opts.n_ru).map(|i| format!("ru{i}")).collect();
        let mut bu_tids = Vec::new();
        for exec in bu_execs.iter() {
            exec.proxy(&SimCluster::url("host"), flt_tid, Some("flt"))
                .expect("proxy filter");
            for (i, &ru_tid) in ru_tids.iter().enumerate() {
                exec.proxy(
                    &SimCluster::url(&format!("ru{i}")),
                    ru_tid,
                    Some(&ru_names[i]),
                )
                .expect("proxy readout");
            }
            let tid = exec
                .register(
                    "builder",
                    Box::new(BuilderUnit::new()),
                    &[
                        ("rus", &ru_names.join(",")),
                        ("filter", "flt"),
                        ("credits", &opts.credits.to_string()),
                        ("timeout_ms", &opts.bu_timeout_ms.to_string()),
                        ("max_retries", &opts.bu_max_retries.to_string()),
                    ],
                )
                .expect("register builder");
            bu_tids.push(tid);
        }

        let mut bu_urls = Vec::new();
        let mut bu_proxies = Vec::new();
        for (i, &ru_tid) in ru_tids.iter().enumerate() {
            host.proxy(
                &SimCluster::url(&format!("ru{i}")),
                ru_tid,
                Some(&ru_names[i]),
            )
            .expect("host proxy readout");
        }
        let bu_names: Vec<String> = (0..opts.n_bu).map(|j| format!("bu{j}")).collect();
        for (j, &bu_tid) in bu_tids.iter().enumerate() {
            let url = SimCluster::url(&format!("bu{j}"));
            host.proxy(&url, bu_tid, Some(&bu_names[j]))
                .expect("host proxy builder");
            host.supervise(&url).expect("supervise builder");
            bu_proxies.push((bu_names[j].clone(), url.clone(), bu_tid));
            bu_urls.push(url);
        }

        let evm = EventManager::new();
        let stats = evm.stats();
        let evm_tid = host
            .register(
                "evm",
                Box::new(evm),
                &[
                    ("readouts", &ru_names.join(",")),
                    ("bus", &bu_names.join(",")),
                    ("bu_urls", &bu_urls.join(",")),
                    ("max_reassign", &opts.max_reassign.to_string()),
                    ("trigger_interval_us", &opts.trigger_interval_us.to_string()),
                ],
            )
            .expect("register evm");

        host.enable_all();
        for e in ru_execs.iter().chain(bu_execs.iter()) {
            e.enable_all();
        }

        SimEvb {
            cluster,
            log,
            host,
            evm_tid,
            bu_proxies,
            stats,
            ids,
            opts,
        }
    }

    /// The mesh options this instance was built with.
    pub fn opts(&self) -> &EvbOptions {
        &self.opts
    }

    /// The event manager's live counters.
    pub fn stats(&self) -> &Arc<EvmStats> {
        &self.stats
    }

    /// Opens a run of `target` events.
    pub fn start_run(&self, target: u64) {
        self.stats.run_done.store(target == 0, Ordering::SeqCst);
        self.host
            .post(
                Message::build_private(self.evm_tid, Tid::HOST, ORG_DAQ, xfn::RUN)
                    .payload(target.to_le_bytes().to_vec())
                    .finish(),
            )
            .expect("post RUN");
    }

    /// Repairs proxies and raises `evb.rescan=1` on the event manager
    /// — what the control plane does after reviving a node. When
    /// supervision declared a builder Down, the host *evicted* its
    /// proxy entirely (name, tid, routes), so the first step is
    /// re-proxying any builder whose name no longer resolves; only
    /// then can the EVM's rescan clear its dead set and re-invite
    /// builders without a credit entry.
    pub fn rescan(&self) {
        for (name, url, remote) in &self.bu_proxies {
            if self.host.core().lookup_name(name).is_none() {
                self.log
                    .push(self.cluster.elapsed(), &format!("reproxy {name}"));
                self.host
                    .proxy(url, *remote, Some(name))
                    .expect("re-proxy builder");
            }
        }
        self.log.push(self.cluster.elapsed(), "rescan");
        self.host
            .post(
                Message::util(self.evm_tid, Tid::HOST, UtilFn::ParamsSet)
                    .payload(kv(&[("evb.rescan", "1")]))
                    .finish(),
            )
            .expect("post rescan");
    }

    /// True once `completed + lost` reached the run target.
    pub fn run_done(&self) -> bool {
        self.stats.run_done.load(Ordering::SeqCst)
    }

    /// Events built and cleared.
    pub fn completed(&self) -> u64 {
        self.stats.completed.load(Ordering::SeqCst)
    }

    /// Events abandoned after `max_reassign` attempts.
    pub fn lost(&self) -> u64 {
        self.stats.lost.load(Ordering::SeqCst)
    }

    /// Distinct event ids that reached the filter.
    pub fn distinct_events(&self) -> u64 {
        self.ids.lock().len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_run_builds_every_event() {
        let evb = SimEvb::new(EvbOptions::default());
        evb.start_run(50);
        evb.cluster
            .run_until(|| evb.run_done(), Duration::from_secs(30))
            .expect("run to completion");
        assert_eq!(evb.completed(), 50);
        assert_eq!(evb.lost(), 0);
        assert_eq!(evb.distinct_events(), 50);
    }

    #[test]
    fn killed_builder_is_reclaimed_in_virtual_time() {
        let evb = SimEvb::new(EvbOptions::default());
        evb.start_run(200);
        // Let the run get going, then black out builder 0 for 150 ms.
        evb.cluster
            .run_until(|| evb.completed() >= 20, Duration::from_secs(10))
            .expect("run never got going");
        evb.cluster.net().kill("bu0");
        let t = evb.cluster.vclock().now() + Duration::from_millis(150);
        evb.cluster.run_to(t);
        evb.cluster.net().revive("bu0");
        evb.rescan();
        evb.cluster
            .run_until(|| evb.run_done(), Duration::from_secs(60))
            .expect("survivors stalled");
        assert_eq!(evb.lost(), 0, "events lost across the blackout");
        assert_eq!(evb.completed(), 200);
        assert_eq!(evb.distinct_events(), 200);
    }
}
