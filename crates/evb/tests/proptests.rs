//! Property tests for fragment reassembly: whatever order, duplication
//! or loss the fabric inflicts on fragments, the assembler never
//! corrupts an event, never completes one twice, and never leaks a
//! pool block.

use proptest::prelude::*;
use std::collections::{HashMap, HashSet};
use std::time::Instant;
use xdaq_evb::{Assembler, FragmentHeader, Offer};
use xdaq_mempool::{FrameAllocator, TablePool};

const EVENTS: u64 = 6;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fragments arrive shuffled, duplicated and with arbitrary gaps:
    /// an event completes exactly once, exactly when its last distinct
    /// in-range source lands, and every offer outcome is consistent
    /// with what was fed in before.
    #[test]
    fn reassembly_is_exactly_once(
        sources in 1usize..5,
        ops in proptest::collection::vec((0u64..EVENTS, 0usize..8), 0..160),
    ) {
        let pool = TablePool::with_defaults();
        let mut a = Assembler::new();
        for e in 0..EVENTS {
            prop_assert!(a.begin(e, sources, Instant::now()));
        }
        let mut offered: HashMap<u64, HashSet<usize>> = HashMap::new();
        let mut completed: HashSet<u64> = HashSet::new();
        let mut built = Vec::new();
        for &(e, s) in &ops {
            let slot = (pool.alloc(64).unwrap(), 64);
            let prior = offered.get(&e).cloned().unwrap_or_default();
            match a.offer(e, s, slot) {
                Offer::Complete(c) => {
                    prop_assert!(!completed.contains(&e), "double completion of {e}");
                    prop_assert!(s < sources);
                    prop_assert_eq!(c.fragments.len(), sources);
                    prop_assert_eq!(prior.len(), sources - 1, "completed early");
                    completed.insert(e);
                    built.push(c);
                }
                Offer::Stored => {
                    prop_assert!(s < sources);
                    prop_assert!(!prior.contains(&s));
                    prop_assert!(!completed.contains(&e));
                    offered.entry(e).or_default().insert(s);
                }
                Offer::Duplicate => {
                    prop_assert!(prior.contains(&s), "false duplicate");
                }
                Offer::Invalid => {
                    prop_assert!(s >= sources);
                }
                Offer::Unknown => {
                    prop_assert!(completed.contains(&e), "open event reported unknown");
                }
            }
        }
        // An event is complete iff all its distinct in-range sources
        // were offered; everything else is still open in the table.
        for e in 0..EVENTS {
            let distinct: HashSet<usize> = ops
                .iter()
                .filter(|&&(oe, os)| oe == e && os < sources)
                .map(|&(_, os)| os)
                .collect();
            prop_assert_eq!(completed.contains(&e), distinct.len() == sources);
            prop_assert_eq!(a.contains(e), distinct.len() < sources);
        }
        // Incomplete events recycle their blocks on discard; built
        // events recycle on drop. Nothing leaks.
        drop(built);
        a.discard_all();
        prop_assert_eq!(pool.stats().live_blocks, 0, "pool blocks leaked");
    }

    /// A single flipped payload byte (or a truncation) never verifies —
    /// the builder's corruption check catches what chaos injects.
    #[test]
    fn corrupted_payloads_never_verify(
        event_id in any::<u64>(),
        source_id in any::<u16>(),
        len in 1u32..512,
        flip_pos in any::<u16>(),
        flip_delta in any::<u8>(),
    ) {
        let h = FragmentHeader { event_id, source_id, total_sources: 8, len };
        let good = h.build_payload();
        prop_assert!(h.verify_payload(&good));
        let mut bad = good.clone();
        let pos = xdaq_evb::FRAGMENT_HEADER_LEN + (flip_pos as usize % len as usize);
        let delta = (flip_delta % 255) + 1; // never zero: a real flip
        bad[pos] = bad[pos].wrapping_add(delta);
        prop_assert!(!h.verify_payload(&bad), "flipped byte verified");
        prop_assert!(!h.verify_payload(&good[..good.len() - 1]));
    }
}
