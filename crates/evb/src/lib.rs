//! # xdaq-evb — the N×M event builder
//!
//! The workload that named XDAQ (paper footnote 1: *"n nodes talk to m
//! other nodes in both directions, thus resulting in communication
//! channels that cross over"*), built as a first-class subsystem: many
//! [`ReadoutUnit`]s feed many [`BuilderUnit`]s through an
//! [`EventManager`] that allocates event ids and throttles the fabric
//! with credit-based flow control — the CMS dataflow of *"Using XDAQ in
//! Application Scenarios of the CMS Experiment"*.
//!
//! ## Protocol
//!
//! All messages are I2O private frames under [`ORG_DAQ`]. The flow is
//! **pull-based**: builder units request fragments within the buffer
//! credits they granted to the event manager, so backpressure
//! propagates source-ward instead of shedding at queues.
//!
//! ```text
//!  host ──RUN──▶ EVM                      start a run of N events
//!  EVM ──INVITE──▶ BU                     solicit credits (run epoch)
//!  BU ──CREDIT──▶ EVM                     grant buffer credits
//!  EVM ──TRIGGER──▶ RU (each)             event id: digitize fragment
//!  EVM ──ASSIGN──▶ BU                     event allocation (1 credit)
//!  BU ──PULL──▶ RU (each)                 request fragment of event
//!  RU ──FRAGMENT──▶ BU                    fragment data (zero-copy)
//!  BU ──EVENT──▶ filter                   built-event summary
//!  BU ──DONE──▶ EVM                       built (or discarded): credit
//!  EVM ──CLEAR──▶ RU (each)               drop stored fragment
//! ```
//!
//! Readout units keep each fragment until the EVM broadcasts `CLEAR`,
//! so an event assigned to a builder that dies can be reassigned and
//! rebuilt from the sources. Builder units tolerate out-of-order and
//! duplicated fragments ([`Assembler`]), re-pull missing fragments on a
//! timer-wheel timeout, and discard (recycling every pool block) after
//! a bounded number of retries — the discard returns the event to the
//! EVM as failed, which reassigns or counts it lost.
//!
//! Everything is observable: `evb.*` counters and the
//! `evb.build_latency_ns` histogram in each node's monitoring registry,
//! and the EVM mirrors its live credit/event-id state into its
//! parameters on every `ParamsGet` (the `xcl` `evb` command scrapes
//! both).

pub mod assembler;
pub mod bu;
pub mod evm;
pub mod fragment;
pub mod ru;

pub use assembler::{Assembler, Completed, Offer};
pub use bu::{BuilderStats, BuilderUnit};
pub use evm::{EventManager, EvmStats};
pub use fragment::{FragmentHeader, FRAGMENT_HEADER_LEN};
pub use ru::ReadoutUnit;

/// Organization id of the DAQ application classes.
pub const ORG_DAQ: u16 = 0x0da0;

/// Private x-function codes of the event-builder protocol.
pub mod xfn {
    /// Trigger: "digitize your fragment of event N" (EVM → RU).
    pub const TRIGGER: u16 = 0x0020;
    /// A detector fragment (RU → BU).
    pub const FRAGMENT: u16 = 0x0021;
    /// A fully built event summary (BU → filter).
    pub const EVENT: u16 = 0x0022;
    /// Start a run of N events (host → EVM).
    pub const RUN: u16 = 0x0024;
    /// Credit solicitation at run start (EVM → BU).
    pub const INVITE: u16 = 0x0030;
    /// Buffer-credit grant (BU → EVM).
    pub const CREDIT: u16 = 0x0031;
    /// Event-id allocation, consuming one credit (EVM → BU).
    pub const ASSIGN: u16 = 0x0032;
    /// Fragment request (BU → RU).
    pub const PULL: u16 = 0x0033;
    /// Event terminated at the builder: built or discarded (BU → EVM).
    pub const DONE: u16 = 0x0034;
    /// Drop the stored fragment of a finished event (EVM → RU).
    pub const CLEAR: u16 = 0x0035;
}

/// `DONE` status: the event was fully assembled and shipped.
pub const DONE_BUILT: u8 = 0;
/// `DONE` status: the builder gave up after its retry budget and
/// recycled the partial event's blocks.
pub const DONE_DISCARDED: u8 = 1;

pub(crate) fn u64_at(p: &[u8], off: usize) -> Option<u64> {
    p.get(off..off + 8)
        .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
}

pub(crate) fn u32_at(p: &[u8], off: usize) -> Option<u32> {
    p.get(off..off + 4)
        .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
}
