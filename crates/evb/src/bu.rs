//! Builder units: the event assemblers.
//!
//! A builder grants buffer credits to the event manager (`CREDIT` in
//! answer to `INVITE`), receives one `ASSIGN` per credit, and *pulls*
//! the event's fragments from every readout unit. Fragments land in the
//! [`Assembler`] zero-copy and in any order; when the last source
//! arrives the unit ships an `EVENT` summary to its filter and returns
//! the credit with `DONE`. Missing fragments are re-pulled when the
//! per-event timeout (riding the executive's timer wheel) expires;
//! after `max_retries` fruitless rounds the partial event is discarded
//! — every pool block recycles — and reported `DONE_DISCARDED` so the
//! event manager can reassign it.

use crate::assembler::{Assembler, Offer};
use crate::fragment::FragmentHeader;
use crate::{u64_at, xfn, DONE_BUILT, DONE_DISCARDED, ORG_DAQ};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use xdaq_core::{Delivery, Dispatcher, I2oListener, TimerId};
use xdaq_i2o::{DeviceClass, Message, Tid};
use xdaq_mon::{Counter, Gauge, Histogram};

/// Shared observable counters of one builder unit.
#[derive(Debug, Default)]
pub struct BuilderStats {
    /// Events fully assembled and shipped.
    pub events_built: AtomicU64,
    /// Partial events given up after the retry budget.
    pub discarded: AtomicU64,
    /// Fragments accepted into the table.
    pub fragments: AtomicU64,
    /// Payload bytes of built events.
    pub bytes: AtomicU64,
    /// Fragments failing header decode or pattern verification.
    pub corrupt: AtomicU64,
    /// Fragments rejected because the slot was already filled.
    pub duplicates: AtomicU64,
    /// Event ids in completion order.
    pub built_ids: Mutex<Vec<u64>>,
}

/// One builder unit.
///
/// Parameters:
/// * `rus` — comma-separated device names of the readout units (proxy
///   aliases work),
/// * `filter` — device name to ship `EVENT` summaries to (optional),
/// * `credits` — buffer credits granted per `INVITE` (default 8),
/// * `timeout_ms` — per-event reassembly timeout (default 50),
/// * `max_retries` — re-pull rounds before discarding (default 10).
pub struct BuilderUnit {
    rus: Vec<Tid>,
    filter: Option<Tid>,
    credits: u32,
    timeout: Duration,
    max_retries: u32,
    evm: Option<Tid>,
    run: u64,
    assembler: Assembler,
    timers: HashMap<TimerId, u64>,
    stats: Arc<BuilderStats>,
    configured: bool,
    metrics: Option<BuMetrics>,
}

struct BuMetrics {
    assigned: Counter,
    built: Counter,
    discarded: Counter,
    repulls: Counter,
    duplicates: Counter,
    corrupt: Counter,
    stale: Counter,
    open: Gauge,
    latency: Histogram,
}

impl BuilderUnit {
    /// Creates an unconfigured builder unit.
    pub fn new() -> BuilderUnit {
        BuilderUnit {
            rus: Vec::new(),
            filter: None,
            credits: 8,
            timeout: Duration::from_millis(50),
            max_retries: 10,
            evm: None,
            run: 0,
            assembler: Assembler::new(),
            timers: HashMap::new(),
            stats: Arc::new(BuilderStats::default()),
            configured: false,
            metrics: None,
        }
    }

    /// Shared handle to the unit's counters.
    pub fn stats(&self) -> Arc<BuilderStats> {
        self.stats.clone()
    }

    fn configure(&mut self, ctx: &Dispatcher<'_>) {
        if self.configured {
            return;
        }
        if let Some(names) = ctx.param("rus") {
            self.rus = names
                .split(',')
                .filter(|n| !n.is_empty())
                .filter_map(|n| ctx.lookup(n.trim()))
                .collect();
        }
        self.filter = ctx.param("filter").and_then(|n| ctx.lookup(n));
        if let Some(v) = ctx.param("credits").and_then(|s| s.parse().ok()) {
            self.credits = v;
        }
        if let Some(v) = ctx.param("timeout_ms").and_then(|s| s.parse().ok()) {
            self.timeout = Duration::from_millis(v);
        }
        if let Some(v) = ctx.param("max_retries").and_then(|s| s.parse().ok()) {
            self.max_retries = v;
        }
        self.configured = true;
    }

    fn arm_timer(&mut self, ctx: &mut Dispatcher<'_>, event: u64) {
        let id = ctx.start_timer(self.timeout);
        self.assembler.set_timer(event, id);
        self.timers.insert(id, event);
    }

    fn pull(&mut self, ctx: &mut Dispatcher<'_>, event: u64, sources: &[usize]) {
        for &s in sources {
            let Some(&ru) = self.rus.get(s) else { continue };
            let msg = Message::build_private(ru, ctx.own_tid(), ORG_DAQ, xfn::PULL)
                .payload(event.to_le_bytes().to_vec())
                .finish();
            let _ = ctx.send(msg);
        }
    }

    fn send_done(&mut self, ctx: &mut Dispatcher<'_>, event: u64, status: u8) {
        let Some(evm) = self.evm else { return };
        let mut p = Vec::with_capacity(17);
        p.extend_from_slice(&self.run.to_le_bytes());
        p.extend_from_slice(&event.to_le_bytes());
        p.push(status);
        let msg = Message::build_private(evm, ctx.own_tid(), ORG_DAQ, xfn::DONE)
            .payload(p)
            .finish();
        let _ = ctx.send(msg);
    }

    fn on_invite(&mut self, ctx: &mut Dispatcher<'_>, run: u64, evm: Tid) {
        self.run = run;
        self.evm = Some(evm);
        // A new run supersedes anything still in flight.
        for t in self.assembler.discard_all() {
            ctx.cancel_timer(t);
        }
        self.timers.clear();
        if let Some(m) = &self.metrics {
            m.open.set(0);
        }
        let mut p = Vec::with_capacity(12);
        p.extend_from_slice(&run.to_le_bytes());
        p.extend_from_slice(&self.credits.to_le_bytes());
        let msg = Message::build_private(evm, ctx.own_tid(), ORG_DAQ, xfn::CREDIT)
            .payload(p)
            .finish();
        let _ = ctx.send(msg);
    }

    fn on_assign(&mut self, ctx: &mut Dispatcher<'_>, run: u64, event: u64) {
        if run != self.run {
            if let Some(m) = &self.metrics {
                m.stale.inc();
            }
            return;
        }
        let sources = self.rus.len().max(1);
        if !self.assembler.begin(event, sources, ctx.now()) {
            return;
        }
        if let Some(m) = &self.metrics {
            m.assigned.inc();
            m.open.set(self.assembler.len() as i64);
        }
        let all: Vec<usize> = (0..sources).collect();
        self.pull(ctx, event, &all);
        self.arm_timer(ctx, event);
    }

    fn on_fragment(&mut self, ctx: &mut Dispatcher<'_>, msg: Delivery) {
        let Some(h) = FragmentHeader::decode(msg.payload()) else {
            self.stats.corrupt.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.metrics {
                m.corrupt.inc();
            }
            return;
        };
        if !h.verify_payload(msg.payload()) {
            self.stats.corrupt.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.metrics {
                m.corrupt.inc();
            }
            return;
        }
        let plen = msg.payload().len();
        let offer = self
            .assembler
            .offer(h.event_id, h.source_id as usize, (msg.into_buf(), plen));
        match offer {
            Offer::Stored => {
                self.stats.fragments.fetch_add(1, Ordering::Relaxed);
            }
            Offer::Duplicate => {
                self.stats.duplicates.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = &self.metrics {
                    m.duplicates.inc();
                }
            }
            Offer::Invalid => {
                self.stats.corrupt.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = &self.metrics {
                    m.corrupt.inc();
                }
            }
            Offer::Unknown => {
                // Never assigned here, or already complete/discarded —
                // a late answer to a pull that stopped mattering.
                if let Some(m) = &self.metrics {
                    m.stale.inc();
                }
            }
            Offer::Complete(done) => {
                self.stats.fragments.fetch_add(1, Ordering::Relaxed);
                if let Some(t) = done.timer {
                    ctx.cancel_timer(t);
                    self.timers.remove(&t);
                }
                let bytes = done.bytes() as u64;
                let event = done.event_id;
                if let Some(m) = &self.metrics {
                    m.built.inc();
                    m.open.set(self.assembler.len() as i64);
                    let took = ctx.now().saturating_duration_since(done.started);
                    m.latency.record(took.as_nanos() as u64);
                }
                // `done` drops here: every fragment block recycles.
                drop(done);
                if let Some(filter) = self.filter {
                    let mut p = Vec::with_capacity(16);
                    p.extend_from_slice(&event.to_le_bytes());
                    p.extend_from_slice(&bytes.to_le_bytes());
                    let m = Message::build_private(filter, ctx.own_tid(), ORG_DAQ, xfn::EVENT)
                        .payload(p)
                        .finish();
                    let _ = ctx.send(m);
                }
                self.send_done(ctx, event, DONE_BUILT);
                self.stats.events_built.fetch_add(1, Ordering::Relaxed);
                self.stats.bytes.fetch_add(bytes, Ordering::Relaxed);
                self.stats.built_ids.lock().push(event);
            }
        }
    }
}

impl Default for BuilderUnit {
    fn default() -> Self {
        Self::new()
    }
}

impl I2oListener for BuilderUnit {
    fn class(&self) -> DeviceClass {
        DeviceClass::Application(ORG_DAQ)
    }

    fn plugged(&mut self, ctx: &mut Dispatcher<'_>) {
        let reg = ctx.metrics();
        self.metrics = Some(BuMetrics {
            assigned: reg.counter("evb.bu.assigned"),
            built: reg.counter("evb.bu.built"),
            discarded: reg.counter("evb.bu.discarded"),
            repulls: reg.counter("evb.bu.repulls"),
            duplicates: reg.counter("evb.bu.duplicates"),
            corrupt: reg.counter("evb.bu.corrupt"),
            stale: reg.counter("evb.bu.stale"),
            open: reg.gauge("evb.bu.open"),
            latency: reg.histogram("evb.build_latency_ns"),
        });
    }

    fn on_private(&mut self, ctx: &mut Dispatcher<'_>, msg: Delivery) {
        let Some(p) = msg.private else { return };
        if p.org_id != ORG_DAQ {
            return;
        }
        self.configure(ctx);
        match p.x_function {
            xfn::INVITE => {
                if let Some(run) = u64_at(msg.payload(), 0) {
                    let evm = msg.header.initiator;
                    self.on_invite(ctx, run, evm);
                }
            }
            xfn::ASSIGN => {
                if let (Some(run), Some(event)) =
                    (u64_at(msg.payload(), 0), u64_at(msg.payload(), 8))
                {
                    self.on_assign(ctx, run, event);
                }
            }
            xfn::FRAGMENT => self.on_fragment(ctx, msg),
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Dispatcher<'_>, id: TimerId) {
        let Some(event) = self.timers.remove(&id) else {
            return;
        };
        if !self.assembler.contains(event) {
            return;
        }
        if self.assembler.retries(event) >= self.max_retries {
            if let Some(t) = self.assembler.discard(event).flatten() {
                ctx.cancel_timer(t);
                self.timers.remove(&t);
            }
            self.stats.discarded.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.metrics {
                m.discarded.inc();
                m.open.set(self.assembler.len() as i64);
            }
            self.send_done(ctx, event, DONE_DISCARDED);
            return;
        }
        self.assembler.bump_retries(event);
        let missing = self.assembler.missing(event);
        if let Some(m) = &self.metrics {
            m.repulls.add(missing.len() as u64);
        }
        self.pull(ctx, event, &missing);
        self.arm_timer(ctx, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ru::ReadoutUnit;
    use std::time::Instant;
    use xdaq_core::{Executive, ExecutiveConfig};

    /// Records EVENT (at a filter tid) and DONE (at an evm tid) frames.
    #[derive(Default)]
    struct Sink {
        events: Arc<Mutex<Vec<(u64, u64)>>>,
        dones: Arc<Mutex<Vec<(u64, u64, u8)>>>,
    }
    impl I2oListener for Sink {
        fn class(&self) -> DeviceClass {
            DeviceClass::Application(ORG_DAQ)
        }
        fn on_private(&mut self, _ctx: &mut Dispatcher<'_>, msg: Delivery) {
            match msg.private.map(|p| p.x_function) {
                Some(xfn::EVENT) => {
                    let id = u64_at(msg.payload(), 0).unwrap();
                    let bytes = u64_at(msg.payload(), 8).unwrap();
                    self.events.lock().push((id, bytes));
                }
                Some(xfn::DONE) => {
                    let run = u64_at(msg.payload(), 0).unwrap();
                    let ev = u64_at(msg.payload(), 8).unwrap();
                    let st = msg.payload()[16];
                    self.dones.lock().push((run, ev, st));
                }
                _ => {}
            }
        }
    }

    struct Rig {
        exec: Executive,
        bu: Tid,
        evm: Tid,
        events: Arc<Mutex<Vec<(u64, u64)>>>,
        dones: Arc<Mutex<Vec<(u64, u64, u8)>>>,
    }

    fn rig(timeout_ms: &str, max_retries: &str) -> Rig {
        let exec = Executive::new(ExecutiveConfig::named("n"));
        let sink = Sink::default();
        let (events, dones) = (sink.events.clone(), sink.dones.clone());
        let evm = exec.register("evm", Box::new(sink), &[]).unwrap();
        let filter = {
            let s = Sink {
                events: events.clone(),
                dones: dones.clone(),
            };
            exec.register("filter", Box::new(s), &[]).unwrap()
        };
        let _ = filter;
        for i in 0..2u16 {
            exec.register(
                &format!("ru{i}"),
                Box::new(ReadoutUnit::new()),
                &[
                    ("source_id", &i.to_string()),
                    ("sources", "2"),
                    ("size", "64"),
                ],
            )
            .unwrap();
        }
        let bu = exec
            .register(
                "bu",
                Box::new(BuilderUnit::new()),
                &[
                    ("rus", "ru0,ru1"),
                    ("filter", "filter"),
                    ("credits", "4"),
                    ("timeout_ms", timeout_ms),
                    ("max_retries", max_retries),
                ],
            )
            .unwrap();
        exec.enable_all();
        Rig {
            exec,
            bu,
            evm,
            events,
            dones,
        }
    }

    fn post(r: &Rig, to: Tid, from: Tid, f: u16, payload: Vec<u8>) {
        r.exec
            .post(
                Message::build_private(to, from, ORG_DAQ, f)
                    .payload(payload)
                    .finish(),
            )
            .unwrap();
    }

    fn assign(run: u64, event: u64) -> Vec<u8> {
        let mut p = run.to_le_bytes().to_vec();
        p.extend_from_slice(&event.to_le_bytes());
        p
    }

    #[test]
    fn builds_one_event_end_to_end() {
        let r = rig("1000", "10");
        post(&r, r.bu, r.evm, xfn::INVITE, 1u64.to_le_bytes().to_vec());
        // Digitize event 1 at both readout units, then assign it.
        for name in ["ru0", "ru1"] {
            let tid = r.exec.core().lookup_name(name).unwrap();
            post(&r, tid, r.evm, xfn::TRIGGER, 1u64.to_le_bytes().to_vec());
        }
        post(&r, r.bu, r.evm, xfn::ASSIGN, assign(1, 1));
        while r.exec.run_once() > 0 {}
        assert_eq!(r.events.lock().as_slice(), &[(1, 2 * (16 + 64))]);
        assert_eq!(r.dones.lock().as_slice(), &[(1, 1, DONE_BUILT)]);
    }

    #[test]
    fn repulls_until_trigger_arrives() {
        let r = rig("5", "50");
        post(&r, r.bu, r.evm, xfn::INVITE, 3u64.to_le_bytes().to_vec());
        // Assign before the readout units have digitized: the pulls
        // park, the timer re-pulls, and once TRIGGER lands it builds.
        post(&r, r.bu, r.evm, xfn::ASSIGN, assign(3, 9));
        while r.exec.run_once() > 0 {}
        assert!(r.events.lock().is_empty());
        for name in ["ru0", "ru1"] {
            let tid = r.exec.core().lookup_name(name).unwrap();
            post(&r, tid, r.evm, xfn::TRIGGER, 9u64.to_le_bytes().to_vec());
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while r.events.lock().is_empty() && Instant::now() < deadline {
            r.exec.run_once();
        }
        assert_eq!(r.events.lock().len(), 1);
        assert_eq!(r.dones.lock().as_slice(), &[(3, 9, DONE_BUILT)]);
    }

    #[test]
    fn discards_after_retry_budget_and_reports_it() {
        let r = rig("2", "1");
        post(&r, r.bu, r.evm, xfn::INVITE, 7u64.to_le_bytes().to_vec());
        post(&r, r.bu, r.evm, xfn::ASSIGN, assign(7, 4));
        let deadline = Instant::now() + Duration::from_secs(5);
        while r.dones.lock().is_empty() && Instant::now() < deadline {
            r.exec.run_once();
        }
        assert_eq!(r.dones.lock().as_slice(), &[(7, 4, DONE_DISCARDED)]);
        assert!(r.events.lock().is_empty());
    }

    #[test]
    fn stale_run_assign_is_ignored() {
        let r = rig("1000", "10");
        post(&r, r.bu, r.evm, xfn::INVITE, 2u64.to_le_bytes().to_vec());
        post(&r, r.bu, r.evm, xfn::ASSIGN, assign(1, 5));
        while r.exec.run_once() > 0 {}
        assert!(r.events.lock().is_empty());
        assert!(r.dones.lock().iter().all(|d| d.0 != 1));
    }
}
