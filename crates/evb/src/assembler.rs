//! The builder-side reassembly table.
//!
//! One [`Assembler`] holds every partially built event of a builder
//! unit: a slot per source, filled as fragments arrive in any order.
//! The table owns the fragments' pool buffers zero-copy — the block a
//! peer transport received into is the block the assembler holds — so
//! dropping a [`Completed`] event or a discarded partial recycles every
//! block back to its pool. Duplicated fragments are rejected without
//! replacing the slot already held; an event completes exactly once,
//! when the last missing source arrives.

use std::collections::HashMap;
use std::time::Instant;
use xdaq_core::TimerId;
use xdaq_mempool::FrameBuf;

/// One stored fragment: the frame buffer and the payload length inside
/// it (header + pattern bytes; the buffer also carries the I2O frame
/// headers in front).
pub type Slot = (FrameBuf, usize);

struct Partial {
    slots: Vec<Option<Slot>>,
    got: usize,
    started: Instant,
    retries: u32,
    timer: Option<TimerId>,
}

/// Outcome of offering one fragment to the table.
#[derive(Debug)]
pub enum Offer {
    /// No partial event with this id exists (never assigned, already
    /// completed, or already discarded) — the caller drops the buffer.
    Unknown,
    /// The slot for this source is already filled.
    Duplicate,
    /// The source id is out of range for the event's slot count.
    Invalid,
    /// Stored; the event is still incomplete.
    Stored,
    /// This fragment completed the event. The partial has been removed
    /// from the table; dropping [`Completed`] recycles the blocks.
    Complete(Completed),
}

/// A fully assembled event, removed from the table.
#[derive(Debug)]
pub struct Completed {
    /// The event id.
    pub event_id: u64,
    /// When assembly of this event began.
    pub started: Instant,
    /// Re-pull rounds it took.
    pub retries: u32,
    /// The timeout timer armed for the event, if any (cancel it).
    pub timer: Option<TimerId>,
    /// One `(buffer, payload_len)` per source, in source order.
    pub fragments: Vec<Slot>,
}

impl Completed {
    /// Total payload bytes across all fragments (headers included).
    pub fn bytes(&self) -> usize {
        self.fragments.iter().map(|(_, len)| len).sum()
    }
}

/// The reassembly table of one builder unit.
#[derive(Default)]
pub struct Assembler {
    pending: HashMap<u64, Partial>,
}

impl Assembler {
    /// Empty table.
    pub fn new() -> Assembler {
        Assembler::default()
    }

    /// Opens a partial event with `sources` slots. Returns false (and
    /// changes nothing) if the event is already open.
    pub fn begin(&mut self, event_id: u64, sources: usize, now: Instant) -> bool {
        if self.pending.contains_key(&event_id) {
            return false;
        }
        self.pending.insert(
            event_id,
            Partial {
                slots: (0..sources.max(1)).map(|_| None).collect(),
                got: 0,
                started: now,
                retries: 0,
                timer: None,
            },
        );
        true
    }

    /// Offers one fragment. The buffer is returned inside the result
    /// (`Complete`) or dropped by the caller (`Unknown`/`Duplicate`/
    /// `Invalid`); on `Stored` the table keeps it.
    pub fn offer(&mut self, event_id: u64, source: usize, slot: Slot) -> Offer {
        let Some(p) = self.pending.get_mut(&event_id) else {
            return Offer::Unknown;
        };
        if source >= p.slots.len() {
            return Offer::Invalid;
        }
        if p.slots[source].is_some() {
            return Offer::Duplicate;
        }
        p.slots[source] = Some(slot);
        p.got += 1;
        if p.got < p.slots.len() {
            return Offer::Stored;
        }
        let p = self.pending.remove(&event_id).expect("present");
        Offer::Complete(Completed {
            event_id,
            started: p.started,
            retries: p.retries,
            timer: p.timer,
            fragments: p.slots.into_iter().map(|s| s.expect("full")).collect(),
        })
    }

    /// Drops a partial event, returning its timer (to cancel). The
    /// stored buffers are dropped here — every pool block recycles.
    pub fn discard(&mut self, event_id: u64) -> Option<Option<TimerId>> {
        self.pending.remove(&event_id).map(|p| p.timer)
    }

    /// Drops every partial event (run reset), returning the timers.
    pub fn discard_all(&mut self) -> Vec<TimerId> {
        let timers = self.pending.values().filter_map(|p| p.timer).collect();
        self.pending.clear();
        timers
    }

    /// Is this event partially assembled?
    pub fn contains(&self, event_id: u64) -> bool {
        self.pending.contains_key(&event_id)
    }

    /// Source indices still missing for an open event.
    pub fn missing(&self, event_id: u64) -> Vec<usize> {
        self.pending
            .get(&event_id)
            .map(|p| {
                p.slots
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.is_none())
                    .map(|(i, _)| i)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Re-pull rounds consumed so far for an open event.
    pub fn retries(&self, event_id: u64) -> u32 {
        self.pending.get(&event_id).map_or(0, |p| p.retries)
    }

    /// Counts one re-pull round.
    pub fn bump_retries(&mut self, event_id: u64) {
        if let Some(p) = self.pending.get_mut(&event_id) {
            p.retries += 1;
        }
    }

    /// Arms (or replaces) the timeout timer recorded for an event.
    pub fn set_timer(&mut self, event_id: u64, id: TimerId) {
        if let Some(p) = self.pending.get_mut(&event_id) {
            p.timer = Some(id);
        }
    }

    /// Number of partially assembled events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when no event is in flight.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Ids of the open partial events (diagnostics, run reset).
    pub fn open_events(&self) -> Vec<u64> {
        self.pending.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdaq_mempool::{FrameAllocator, TablePool};

    fn slot(pool: &TablePool, len: usize) -> Slot {
        (pool.alloc(len).unwrap(), len)
    }

    #[test]
    fn completes_exactly_once_out_of_order() {
        let pool = TablePool::with_defaults();
        let mut a = Assembler::new();
        assert!(a.begin(7, 3, Instant::now()));
        assert!(!a.begin(7, 3, Instant::now()), "double begin rejected");
        assert!(matches!(a.offer(7, 2, slot(&pool, 64)), Offer::Stored));
        assert!(matches!(a.offer(7, 0, slot(&pool, 64)), Offer::Stored));
        assert!(matches!(a.offer(7, 2, slot(&pool, 64)), Offer::Duplicate));
        let Offer::Complete(done) = a.offer(7, 1, slot(&pool, 64)) else {
            panic!("expected completion");
        };
        assert_eq!(done.event_id, 7);
        assert_eq!(done.fragments.len(), 3);
        assert_eq!(done.bytes(), 192);
        assert!(matches!(a.offer(7, 1, slot(&pool, 64)), Offer::Unknown));
        drop(done);
        assert_eq!(pool.stats().live_blocks, 0, "all blocks recycled");
    }

    #[test]
    fn discard_recycles_blocks() {
        let pool = TablePool::with_defaults();
        let mut a = Assembler::new();
        a.begin(1, 4, Instant::now());
        for s in 0..3 {
            assert!(matches!(a.offer(1, s, slot(&pool, 128)), Offer::Stored));
        }
        assert_eq!(a.missing(1), vec![3]);
        assert!(pool.stats().live_blocks > 0);
        a.discard(1);
        assert_eq!(pool.stats().live_blocks, 0, "discard frees the partial");
        assert!(matches!(a.offer(1, 3, slot(&pool, 128)), Offer::Unknown));
    }

    #[test]
    fn out_of_range_source_is_invalid() {
        let pool = TablePool::with_defaults();
        let mut a = Assembler::new();
        a.begin(9, 2, Instant::now());
        assert!(matches!(a.offer(9, 2, slot(&pool, 8)), Offer::Invalid));
        assert!(a.contains(9));
    }
}
