//! Event-fragment headers.
//!
//! Detector data travels as *fragments*: each readout unit contributes
//! one fragment per event; a builder unit owns the event and assembles
//! the fragments from all sources. The header rides at the front of
//! the private-frame payload.

/// Fixed 16-byte fragment header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FragmentHeader {
    /// Globally increasing event number.
    pub event_id: u64,
    /// Which readout unit produced this fragment.
    pub source_id: u16,
    /// How many sources contribute to each event.
    pub total_sources: u16,
    /// Payload bytes following the header.
    pub len: u32,
}

/// Encoded header size.
pub const FRAGMENT_HEADER_LEN: usize = 16;

impl FragmentHeader {
    /// Writes the header into the first 16 bytes of `buf`.
    pub fn encode(&self, buf: &mut [u8]) {
        assert!(buf.len() >= FRAGMENT_HEADER_LEN);
        buf[0..8].copy_from_slice(&self.event_id.to_le_bytes());
        buf[8..10].copy_from_slice(&self.source_id.to_le_bytes());
        buf[10..12].copy_from_slice(&self.total_sources.to_le_bytes());
        buf[12..16].copy_from_slice(&self.len.to_le_bytes());
    }

    /// Reads a header from `buf`.
    pub fn decode(buf: &[u8]) -> Option<FragmentHeader> {
        if buf.len() < FRAGMENT_HEADER_LEN {
            return None;
        }
        Some(FragmentHeader {
            event_id: u64::from_le_bytes(buf[0..8].try_into().unwrap()),
            source_id: u16::from_le_bytes(buf[8..10].try_into().unwrap()),
            total_sources: u16::from_le_bytes(buf[10..12].try_into().unwrap()),
            len: u32::from_le_bytes(buf[12..16].try_into().unwrap()),
        })
    }

    /// Builds a complete fragment payload: header + `len` bytes of
    /// deterministic pattern data (seeded by event and source so
    /// builders can verify integrity).
    pub fn build_payload(&self) -> Vec<u8> {
        let mut out = vec![0u8; FRAGMENT_HEADER_LEN + self.len as usize];
        self.encode(&mut out);
        let seed = (self.event_id as u32)
            .wrapping_mul(31)
            .wrapping_add(self.source_id as u32);
        for (i, b) in out[FRAGMENT_HEADER_LEN..].iter_mut().enumerate() {
            *b = (seed.wrapping_add(i as u32) % 251) as u8;
        }
        out
    }

    /// Verifies pattern data produced by [`FragmentHeader::build_payload`].
    pub fn verify_payload(&self, payload: &[u8]) -> bool {
        if payload.len() != FRAGMENT_HEADER_LEN + self.len as usize {
            return false;
        }
        let seed = (self.event_id as u32)
            .wrapping_mul(31)
            .wrapping_add(self.source_id as u32);
        payload[FRAGMENT_HEADER_LEN..]
            .iter()
            .enumerate()
            .all(|(i, &b)| b == (seed.wrapping_add(i as u32) % 251) as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = FragmentHeader {
            event_id: 0xDEAD_BEEF_1234,
            source_id: 7,
            total_sources: 16,
            len: 4096,
        };
        let mut buf = [0u8; FRAGMENT_HEADER_LEN];
        h.encode(&mut buf);
        assert_eq!(FragmentHeader::decode(&buf), Some(h));
    }

    #[test]
    fn decode_rejects_short_buffer() {
        assert_eq!(FragmentHeader::decode(&[0u8; 15]), None);
    }

    #[test]
    fn payload_builds_and_verifies() {
        let h = FragmentHeader {
            event_id: 42,
            source_id: 3,
            total_sources: 4,
            len: 100,
        };
        let p = h.build_payload();
        assert_eq!(p.len(), 116);
        assert!(h.verify_payload(&p));
        let mut corrupted = p.clone();
        corrupted[50] ^= 0xFF;
        assert!(!h.verify_payload(&corrupted));
        assert!(!h.verify_payload(&p[..100]));
    }

    #[test]
    fn different_sources_differ() {
        let a = FragmentHeader {
            event_id: 1,
            source_id: 0,
            total_sources: 2,
            len: 32,
        };
        let b = FragmentHeader {
            event_id: 1,
            source_id: 1,
            total_sources: 2,
            len: 32,
        };
        assert_ne!(a.build_payload()[16..], b.build_payload()[16..]);
    }
}
