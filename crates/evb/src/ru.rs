//! Readout units: the data sources of the event builder.
//!
//! A `TRIGGER` from the event manager "digitizes" one fragment of the
//! event into the unit's local store. Builders *pull*: a `PULL` request
//! answers with the fragment; the store entry survives until the EVM
//! broadcasts `CLEAR`, so a builder that dies mid-event can be replaced
//! and the survivor re-pulls the same fragments. A `PULL` racing ahead
//! of its `TRIGGER` (the two ride different links) is parked and served
//! the moment the trigger lands.

use crate::fragment::FragmentHeader;
use crate::{u64_at, xfn, ORG_DAQ};
use std::collections::{HashMap, HashSet};
use xdaq_core::{Delivery, Dispatcher, I2oListener};
use xdaq_i2o::{DeviceClass, Message, Tid};
use xdaq_mon::{Counter, Gauge};

/// One readout unit.
///
/// Parameters:
/// * `source_id` — this unit's index among the sources,
/// * `sources` — total number of readout units,
/// * `size` — fragment payload bytes.
pub struct ReadoutUnit {
    source_id: u16,
    total_sources: u16,
    size: u32,
    /// Events digitized and not yet cleared. The payload itself is a
    /// deterministic pattern of (event, source), so the store holds
    /// only the id — regeneration on pull costs nothing and the store
    /// stays bounded by the EVM's trigger window.
    store: HashSet<u64>,
    /// Highest event id ever triggered (stale-pull detection).
    highest: Option<u64>,
    /// Pulls that arrived before their trigger: event → requesters.
    parked: HashMap<u64, Vec<Tid>>,
    configured: bool,
    metrics: Option<RuMetrics>,
    /// Fragments produced (observable for tests).
    pub produced: u64,
}

struct RuMetrics {
    triggers: Counter,
    fragments: Counter,
    stale_pulls: Counter,
    parked: Counter,
    store: Gauge,
}

impl ReadoutUnit {
    /// Creates an unconfigured readout unit (parameters are read on
    /// first frame).
    pub fn new() -> ReadoutUnit {
        ReadoutUnit {
            source_id: 0,
            total_sources: 1,
            size: 1024,
            store: HashSet::new(),
            highest: None,
            parked: HashMap::new(),
            configured: false,
            metrics: None,
            produced: 0,
        }
    }

    fn configure(&mut self, ctx: &Dispatcher<'_>) {
        if self.configured {
            return;
        }
        if let Some(v) = ctx.param("source_id").and_then(|s| s.parse().ok()) {
            self.source_id = v;
        }
        if let Some(v) = ctx.param("sources").and_then(|s| s.parse().ok()) {
            self.total_sources = v;
        }
        if let Some(v) = ctx.param("size").and_then(|s| s.parse().ok()) {
            self.size = v;
        }
        self.configured = true;
    }

    fn send_fragment(&mut self, ctx: &mut Dispatcher<'_>, event: u64, dest: Tid) {
        let header = FragmentHeader {
            event_id: event,
            source_id: self.source_id,
            total_sources: self.total_sources,
            len: self.size,
        };
        let frag = Message::build_private(dest, ctx.own_tid(), ORG_DAQ, xfn::FRAGMENT)
            .payload(header.build_payload())
            .finish();
        let _ = ctx.send(frag);
        self.produced += 1;
        if let Some(m) = &self.metrics {
            m.fragments.inc();
        }
    }
}

impl Default for ReadoutUnit {
    fn default() -> Self {
        Self::new()
    }
}

impl I2oListener for ReadoutUnit {
    fn class(&self) -> DeviceClass {
        DeviceClass::Application(ORG_DAQ)
    }

    fn plugged(&mut self, ctx: &mut Dispatcher<'_>) {
        let reg = ctx.metrics();
        self.metrics = Some(RuMetrics {
            triggers: reg.counter("evb.ru.triggers"),
            fragments: reg.counter("evb.ru.fragments"),
            stale_pulls: reg.counter("evb.ru.stale_pulls"),
            parked: reg.counter("evb.ru.parked_pulls"),
            store: reg.gauge("evb.ru.store"),
        });
    }

    fn on_private(&mut self, ctx: &mut Dispatcher<'_>, msg: Delivery) {
        let Some(p) = msg.private else { return };
        if p.org_id != ORG_DAQ {
            return;
        }
        self.configure(ctx);
        let Some(event) = u64_at(msg.payload(), 0) else {
            return;
        };
        match p.x_function {
            xfn::TRIGGER => {
                self.store.insert(event);
                self.highest = Some(self.highest.map_or(event, |h| h.max(event)));
                if let Some(m) = &self.metrics {
                    m.triggers.inc();
                    m.store.set(self.store.len() as i64);
                }
                if let Some(waiters) = self.parked.remove(&event) {
                    for dest in waiters {
                        self.send_fragment(ctx, event, dest);
                    }
                }
            }
            xfn::PULL => {
                let requester = msg.header.initiator;
                if self.store.contains(&event) {
                    self.send_fragment(ctx, event, requester);
                } else if self.highest.is_some_and(|h| event <= h) {
                    // Already cleared: the event finished elsewhere and
                    // this is a stale re-pull crossing its completion.
                    if let Some(m) = &self.metrics {
                        m.stale_pulls.inc();
                    }
                } else {
                    // Pull overtook the trigger: park the requester.
                    self.parked.entry(event).or_default().push(requester);
                    if let Some(m) = &self.metrics {
                        m.parked.inc();
                    }
                }
            }
            xfn::CLEAR => {
                self.store.remove(&event);
                self.parked.remove(&event);
                if let Some(m) = &self.metrics {
                    m.store.set(self.store.len() as i64);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use xdaq_core::{Executive, ExecutiveConfig};

    struct Collector(Arc<AtomicU64>, Arc<parking_lot::Mutex<Vec<u64>>>);
    impl I2oListener for Collector {
        fn class(&self) -> DeviceClass {
            DeviceClass::Application(ORG_DAQ)
        }
        fn on_private(&mut self, _ctx: &mut Dispatcher<'_>, msg: Delivery) {
            if msg.private.map(|p| p.x_function) == Some(xfn::FRAGMENT) {
                let h = FragmentHeader::decode(msg.payload()).unwrap();
                assert!(h.verify_payload(msg.payload()));
                self.0.fetch_add(1, Ordering::SeqCst);
                self.1.lock().push(h.event_id);
            }
        }
    }

    fn send(exec: &Executive, ru: Tid, from: Tid, f: u16, event: u64) {
        exec.post(
            Message::build_private(ru, from, ORG_DAQ, f)
                .payload(event.to_le_bytes().to_vec())
                .finish(),
        )
        .unwrap();
    }

    #[allow(clippy::type_complexity)]
    fn harness() -> (
        Executive,
        Tid,
        Tid,
        Arc<AtomicU64>,
        Arc<parking_lot::Mutex<Vec<u64>>>,
    ) {
        let exec = Executive::new(ExecutiveConfig::named("n"));
        let count = Arc::new(AtomicU64::new(0));
        let ids = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let bu = exec
            .register("bu", Box::new(Collector(count.clone(), ids.clone())), &[])
            .unwrap();
        let ru = exec
            .register(
                "ru",
                Box::new(ReadoutUnit::new()),
                &[("source_id", "0"), ("sources", "2"), ("size", "256")],
            )
            .unwrap();
        exec.enable_all();
        (exec, ru, bu, count, ids)
    }

    #[test]
    fn pull_after_trigger_serves_fragment_until_clear() {
        let (exec, ru, bu, count, _) = harness();
        send(&exec, ru, bu, xfn::TRIGGER, 5);
        send(&exec, ru, bu, xfn::PULL, 5);
        // Re-pull before clear: served again (builder retry).
        send(&exec, ru, bu, xfn::PULL, 5);
        send(&exec, ru, bu, xfn::CLEAR, 5);
        send(&exec, ru, bu, xfn::PULL, 5);
        while exec.run_once() > 0 {}
        assert_eq!(count.load(Ordering::SeqCst), 2, "stale pull unanswered");
    }

    #[test]
    fn early_pull_is_parked_until_the_trigger_lands() {
        let (exec, ru, bu, count, ids) = harness();
        send(&exec, ru, bu, xfn::PULL, 9);
        while exec.run_once() > 0 {}
        assert_eq!(count.load(Ordering::SeqCst), 0, "not yet digitized");
        send(&exec, ru, bu, xfn::TRIGGER, 9);
        while exec.run_once() > 0 {}
        assert_eq!(count.load(Ordering::SeqCst), 1);
        assert_eq!(*ids.lock(), vec![9]);
    }
}
