//! The event manager: event-id allocation and credit-based flow
//! control.
//!
//! One EVM runs per event-builder mesh. A `RUN` frame opens a run
//! epoch: the EVM `INVITE`s every builder unit, collects their
//! `CREDIT` grants, and then drives the fabric — each credit buys one
//! `ASSIGN`, and an assignment is preceded by a `TRIGGER` to every
//! readout unit so the sources digitize the event before the builder
//! pulls. Builders return credits with `DONE`; a built event earns a
//! `CLEAR` broadcast so the sources drop their stored fragments, a
//! discarded one is re-queued (bounded by `max_reassign`) or counted
//! lost.
//!
//! Backpressure is structural: the EVM never has more events in flight
//! than the builders granted credits for, so a slow or stalled builder
//! throttles the trigger rate instead of overflowing queues — flow
//! control propagates source-ward.
//!
//! The EVM registers as the executive's fault listener
//! ([`xdaq_core::Dispatcher::watch_faults`]). When a builder's node
//! dies (`XFN_PEER_DOWN`), its credits are reclaimed and its in-flight
//! events re-queued for the survivors; the readout units still hold
//! those fragments (they clear only on `CLEAR`), so nothing is lost.

use crate::{u32_at, u64_at, xfn, DONE_BUILT, ORG_DAQ};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use xdaq_core::config::parse_kv;
use xdaq_core::listener::UtilOutcome;
use xdaq_core::xfn::XFN_PEER_DOWN;
use xdaq_core::{Delivery, Dispatcher, I2oListener, TimerId};
use xdaq_i2o::{DeviceClass, Message, ReplyStatus, Tid, UtilFn, ORG_XDAQ};
use xdaq_mon::{Counter, Gauge};

/// Shared observable counters of one event manager.
#[derive(Debug, Default)]
pub struct EvmStats {
    /// Trigger broadcasts issued (== events launched).
    pub triggered: AtomicU64,
    /// Events built and cleared.
    pub completed: AtomicU64,
    /// Events re-queued after a discard or a builder death.
    pub reassigned: AtomicU64,
    /// Events abandoned after `max_reassign` attempts.
    pub lost: AtomicU64,
    /// Set once `completed + lost` reaches the run target.
    pub run_done: AtomicBool,
}

/// One event manager.
///
/// Parameters:
/// * `readouts` — comma-separated device names of the readout units,
/// * `bus` — comma-separated device names of the builder units,
/// * `bu_urls` — peer URLs aligned with `bus` (optional; enables
///   credit reclamation when a builder's node dies),
/// * `max_reassign` — reassignment attempts per event before it is
///   counted lost (default 3),
/// * `trigger_interval_us` — paced trigger source: fresh events are
///   launched at most one per interval, emulating a fixed-rate
///   physics trigger instead of free-running as fast as credits
///   return (default 0 = free-running). Re-assignments of already
///   triggered events are not paced.
pub struct EventManager {
    rus: Vec<Tid>,
    bus: Vec<Tid>,
    bu_by_url: HashMap<String, Tid>,
    max_reassign: u32,
    run: u64,
    /// Next event id — globally monotonic, never reset across runs:
    /// readout-unit stale-pull detection relies on ids only growing.
    next_event: u64,
    target: u64,
    launched: u64,
    finished: u64,
    credits: HashMap<Tid, u32>,
    dead: HashSet<Tid>,
    /// Builders being drained for a rolling restart: they keep their
    /// credits and finish their in-flight events, but `pick_bu` stops
    /// assigning them new ones. `evb.drain_inflight` (ParamsGet)
    /// reaches zero once a drained builder is idle.
    draining: HashSet<Tid>,
    rr: usize,
    /// Events awaiting (re)assignment. Re-queued events are already
    /// digitized at the sources; fresh ones get a TRIGGER first.
    queue: VecDeque<u64>,
    assigned: HashMap<u64, Tid>,
    attempts: HashMap<u64, u32>,
    /// Trigger pacing (zero = free-running): fresh launches are capped
    /// at `trigger_budget`, which a periodic timer grows one event per
    /// `trigger_interval`.
    trigger_interval: Duration,
    trigger_budget: u64,
    trigger_timer: Option<TimerId>,
    stats: Arc<EvmStats>,
    configured: bool,
    metrics: Option<EvmMetrics>,
}

struct EvmMetrics {
    triggers: Counter,
    assigns: Counter,
    completed: Counter,
    reassigned: Counter,
    lost: Counter,
    bu_down: Counter,
    credits: Gauge,
    inflight: Gauge,
    queued: Gauge,
}

impl EventManager {
    /// Creates an unconfigured event manager.
    pub fn new() -> EventManager {
        EventManager {
            rus: Vec::new(),
            bus: Vec::new(),
            bu_by_url: HashMap::new(),
            max_reassign: 3,
            run: 0,
            next_event: 1,
            target: 0,
            launched: 0,
            finished: 0,
            credits: HashMap::new(),
            dead: HashSet::new(),
            draining: HashSet::new(),
            rr: 0,
            queue: VecDeque::new(),
            assigned: HashMap::new(),
            attempts: HashMap::new(),
            trigger_interval: Duration::ZERO,
            trigger_budget: 0,
            trigger_timer: None,
            stats: Arc::new(EvmStats::default()),
            configured: false,
            metrics: None,
        }
    }

    /// Shared handle to the manager's counters.
    pub fn stats(&self) -> Arc<EvmStats> {
        self.stats.clone()
    }

    fn configure(&mut self, ctx: &Dispatcher<'_>) {
        if self.configured {
            return;
        }
        let resolve = |names: &str| -> Vec<Tid> {
            names
                .split(',')
                .filter(|n| !n.is_empty())
                .filter_map(|n| ctx.lookup(n.trim()))
                .collect()
        };
        if let Some(names) = ctx.param("readouts") {
            self.rus = resolve(names);
        }
        if let Some(names) = ctx.param("bus") {
            self.bus = resolve(names);
        }
        if let Some(urls) = ctx.param("bu_urls") {
            for (url, &bu) in urls
                .split(',')
                .filter(|u| !u.is_empty())
                .zip(self.bus.iter())
            {
                self.bu_by_url.insert(url.trim().to_string(), bu);
            }
        }
        if let Some(v) = ctx.param("max_reassign").and_then(|s| s.parse().ok()) {
            self.max_reassign = v;
        }
        if let Some(v) = ctx
            .param("trigger_interval_us")
            .and_then(|s| s.parse().ok())
        {
            self.trigger_interval = Duration::from_micros(v);
        }
        self.configured = true;
    }

    fn gauge_sync(&self) {
        if let Some(m) = &self.metrics {
            m.credits
                .set(self.credits.values().map(|&c| c as i64).sum());
            m.inflight.set(self.assigned.len() as i64);
            m.queued.set(self.queue.len() as i64);
        }
    }

    fn broadcast_rus(&mut self, ctx: &mut Dispatcher<'_>, f: u16, event: u64) {
        for &ru in &self.rus {
            let msg = Message::build_private(ru, ctx.own_tid(), ORG_DAQ, f)
                .payload(event.to_le_bytes().to_vec())
                .finish();
            let _ = ctx.send(msg);
        }
    }

    fn on_run(&mut self, ctx: &mut Dispatcher<'_>, target: u64) {
        self.configure(ctx);
        self.run += 1;
        self.target = target;
        self.launched = 0;
        self.finished = 0;
        self.queue.clear();
        self.assigned.clear();
        self.attempts.clear();
        self.credits.clear();
        self.dead.clear();
        self.draining.clear();
        self.rr = 0;
        self.stats.run_done.store(target == 0, Ordering::SeqCst);
        if let Some(t) = self.trigger_timer.take() {
            ctx.cancel_timer(t);
        }
        if !self.trigger_interval.is_zero() && target > 1 {
            // One event is launchable now; the rest arrive on the beat.
            self.trigger_budget = 1;
            self.trigger_timer = Some(ctx.start_periodic(self.trigger_interval));
        } else {
            self.trigger_budget = target;
        }
        self.gauge_sync();
        for i in 0..self.bus.len() {
            let bu = self.bus[i];
            let msg = Message::build_private(bu, ctx.own_tid(), ORG_DAQ, xfn::INVITE)
                .payload(self.run.to_le_bytes().to_vec())
                .finish();
            if ctx.send(msg).is_err() {
                self.mark_dead(ctx, bu);
            }
        }
    }

    /// Assigns queued and fresh events while any builder has credits.
    fn pump(&mut self, ctx: &mut Dispatcher<'_>) {
        loop {
            if self.queue.is_empty()
                && (self.launched >= self.target || self.launched >= self.trigger_budget)
            {
                break;
            }
            let Some(bu) = self.pick_bu() else { break };
            let (event, fresh) = match self.queue.pop_front() {
                Some(e) => (e, false),
                None => {
                    let e = self.next_event;
                    self.next_event += 1;
                    self.launched += 1;
                    (e, true)
                }
            };
            // Triggers are broadcast fire-and-forget, so a source that
            // was dead or partitioned when a fresh event launched never
            // digitized it — and no amount of re-pulling can conjure the
            // fragment. Re-broadcasting on every reassignment closes
            // that hole: `TRIGGER` is idempotent at the readout (the
            // store is a set, parked pulls are served on arrival), and
            // an event is only ever re-queued while unfinished, so no
            // source can have `CLEAR`ed it yet.
            self.broadcast_rus(ctx, xfn::TRIGGER, event);
            if fresh {
                self.stats.triggered.fetch_add(1, Ordering::Relaxed);
            }
            if let Some(m) = &self.metrics {
                m.triggers.inc();
            }
            *self.credits.get_mut(&bu).expect("picked with credit") -= 1;
            self.assigned.insert(event, bu);
            let mut p = Vec::with_capacity(16);
            p.extend_from_slice(&self.run.to_le_bytes());
            p.extend_from_slice(&event.to_le_bytes());
            let msg = Message::build_private(bu, ctx.own_tid(), ORG_DAQ, xfn::ASSIGN)
                .payload(p)
                .finish();
            if ctx.send(msg).is_err() {
                // The builder's link is gone: reclaim and re-queue.
                self.mark_dead(ctx, bu);
                continue;
            }
            if let Some(m) = &self.metrics {
                m.assigns.inc();
            }
        }
        self.gauge_sync();
    }

    /// Round-robin over builders holding at least one credit.
    fn pick_bu(&mut self) -> Option<Tid> {
        if self.bus.is_empty() {
            return None;
        }
        for step in 0..self.bus.len() {
            let bu = self.bus[(self.rr + step) % self.bus.len()];
            if self.dead.contains(&bu) || self.draining.contains(&bu) {
                continue;
            }
            if self.credits.get(&bu).copied().unwrap_or(0) > 0 {
                self.rr = (self.rr + step + 1) % self.bus.len();
                return Some(bu);
            }
        }
        None
    }

    fn on_credit(&mut self, ctx: &mut Dispatcher<'_>, run: u64, count: u32, bu: Tid) {
        if run != self.run || self.dead.contains(&bu) {
            return;
        }
        *self.credits.entry(bu).or_insert(0) += count;
        self.pump(ctx);
    }

    fn on_done(&mut self, ctx: &mut Dispatcher<'_>, run: u64, event: u64, status: u8, bu: Tid) {
        if run != self.run {
            return;
        }
        // Exactly-once completion accounting: only the current owner's
        // DONE counts; anything else is a duplicate from a reassigned
        // (or wrongly-declared-dead) builder.
        if self.assigned.get(&event) != Some(&bu) {
            return;
        }
        self.assigned.remove(&event);
        if !self.dead.contains(&bu) {
            *self.credits.entry(bu).or_insert(0) += 1;
        }
        if status == DONE_BUILT {
            self.finish(ctx, event, true);
        } else {
            let tries = self.attempts.entry(event).or_insert(0);
            *tries += 1;
            if *tries <= self.max_reassign {
                self.queue.push_back(event);
                self.stats.reassigned.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = &self.metrics {
                    m.reassigned.inc();
                }
            } else {
                self.finish(ctx, event, false);
            }
        }
        self.pump(ctx);
    }

    /// Terminal accounting for one event: clear the sources, count it,
    /// and flip `run_done` when the run drains.
    fn finish(&mut self, ctx: &mut Dispatcher<'_>, event: u64, built: bool) {
        self.broadcast_rus(ctx, xfn::CLEAR, event);
        self.attempts.remove(&event);
        self.finished += 1;
        if built {
            self.stats.completed.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.metrics {
                m.completed.inc();
            }
        } else {
            self.stats.lost.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.metrics {
                m.lost.inc();
            }
        }
        if self.finished >= self.target {
            self.stats.run_done.store(true, Ordering::SeqCst);
        }
    }

    /// Declares a builder dead: reclaims its credits and re-queues its
    /// in-flight events for the survivors.
    fn mark_dead(&mut self, ctx: &mut Dispatcher<'_>, bu: Tid) {
        if !self.dead.insert(bu) {
            return;
        }
        self.credits.remove(&bu);
        self.draining.remove(&bu);
        if let Some(m) = &self.metrics {
            m.bu_down.inc();
        }
        let mut orphaned: Vec<u64> = self
            .assigned
            .iter()
            .filter(|(_, &owner)| owner == bu)
            .map(|(&e, _)| e)
            .collect();
        // Requeue in event order, not hash order: the simulator's
        // golden-trace replay (DESIGN.md §16) needs reclamation to be
        // deterministic run over run.
        orphaned.sort_unstable();
        for event in orphaned {
            self.assigned.remove(&event);
            self.queue.push_back(event);
            self.stats.reassigned.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.metrics {
                m.reassigned.inc();
            }
        }
        self.pump(ctx);
    }

    /// Re-resolves the mesh from the (freshly updated) parameters —
    /// the control plane pushes new `bus`/`bu_urls`/`readouts` values
    /// and `evb.rescan=1` after it respawns a node. Builders already
    /// holding a credits entry (live through the whole incident, even
    /// at zero credits) are *not* re-invited: a second INVITE to a
    /// live builder would double its credit grant. Everyone else —
    /// the respawned builder's fresh proxy in particular — gets an
    /// INVITE for the current run.
    fn rescan(&mut self, ctx: &mut Dispatcher<'_>) {
        let resolve = |names: &str| -> Vec<Tid> {
            names
                .split(',')
                .filter(|n| !n.is_empty())
                .filter_map(|n| ctx.lookup(n.trim()))
                .collect()
        };
        if let Some(names) = ctx.param("readouts") {
            self.rus = resolve(names);
        }
        if let Some(names) = ctx.param("bus") {
            self.bus = resolve(names);
        }
        self.bu_by_url.clear();
        if let Some(urls) = ctx.param("bu_urls") {
            for (url, &bu) in urls
                .split(',')
                .filter(|u| !u.is_empty())
                .zip(self.bus.iter())
            {
                self.bu_by_url.insert(url.trim().to_string(), bu);
            }
        }
        self.configured = true;
        self.dead.clear();
        self.draining.clear();
        let live: HashSet<Tid> = self.bus.iter().copied().collect();
        self.credits.retain(|t, _| live.contains(t));
        if self.target > 0 && !self.stats.run_done.load(Ordering::SeqCst) {
            for i in 0..self.bus.len() {
                let bu = self.bus[i];
                if self.credits.contains_key(&bu) {
                    continue;
                }
                let msg = Message::build_private(bu, ctx.own_tid(), ORG_DAQ, xfn::INVITE)
                    .payload(self.run.to_le_bytes().to_vec())
                    .finish();
                if ctx.send(msg).is_err() {
                    self.mark_dead(ctx, bu);
                }
            }
        }
        self.pump(ctx);
    }

    fn on_peer_down(&mut self, ctx: &mut Dispatcher<'_>, payload: &[u8]) {
        let Ok(kv) = parse_kv(payload) else { return };
        let Some(url) = kv.get("peer") else { return };
        if let Some(&bu) = self.bu_by_url.get(url.as_str()) {
            self.mark_dead(ctx, bu);
        }
    }
}

impl Default for EventManager {
    fn default() -> Self {
        Self::new()
    }
}

impl I2oListener for EventManager {
    fn class(&self) -> DeviceClass {
        DeviceClass::Application(ORG_DAQ)
    }

    fn plugged(&mut self, ctx: &mut Dispatcher<'_>) {
        ctx.watch_faults();
        let reg = ctx.metrics();
        self.metrics = Some(EvmMetrics {
            triggers: reg.counter("evb.evm.triggers"),
            assigns: reg.counter("evb.evm.assigns"),
            completed: reg.counter("evb.evm.completed"),
            reassigned: reg.counter("evb.evm.reassigned"),
            lost: reg.counter("evb.evm.lost"),
            bu_down: reg.counter("evb.evm.bu_down"),
            credits: reg.gauge("evb.evm.credits"),
            inflight: reg.gauge("evb.evm.inflight"),
            queued: reg.gauge("evb.evm.queued"),
        });
    }

    fn on_timer(&mut self, ctx: &mut Dispatcher<'_>, id: TimerId) {
        if Some(id) != self.trigger_timer {
            return;
        }
        self.trigger_budget += 1;
        if self.trigger_budget >= self.target {
            // Every event of the run has been paced out; stop ticking
            // so an idle manager arms no deadlines.
            ctx.cancel_timer(id);
            self.trigger_timer = None;
        }
        self.pump(ctx);
    }

    fn on_private(&mut self, ctx: &mut Dispatcher<'_>, msg: Delivery) {
        let Some(p) = msg.private else { return };
        if p.org_id == ORG_XDAQ {
            if p.x_function == XFN_PEER_DOWN {
                let payload = msg.payload().to_vec();
                self.on_peer_down(ctx, &payload);
            }
            return;
        }
        if p.org_id != ORG_DAQ {
            return;
        }
        match p.x_function {
            xfn::RUN => {
                if let Some(target) = u64_at(msg.payload(), 0) {
                    self.on_run(ctx, target);
                }
            }
            xfn::CREDIT => {
                if let (Some(run), Some(count)) =
                    (u64_at(msg.payload(), 0), u32_at(msg.payload(), 8))
                {
                    let bu = msg.header.initiator;
                    self.on_credit(ctx, run, count, bu);
                }
            }
            xfn::DONE => {
                if let (Some(run), Some(event), Some(&status)) = (
                    u64_at(msg.payload(), 0),
                    u64_at(msg.payload(), 8),
                    msg.payload().get(16),
                ) {
                    let bu = msg.header.initiator;
                    self.on_done(ctx, run, event, status, bu);
                }
            }
            _ => {}
        }
    }

    fn on_util(&mut self, ctx: &mut Dispatcher<'_>, f: UtilFn, msg: &Delivery) -> UtilOutcome {
        if f == UtilFn::ParamsSet {
            // Control-plane verbs ride on ParamsSet:
            //   evb.drain=<name>  stop assigning to that builder,
            //   evb.rescan=1      re-resolve the mesh and invite
            //                     builders that have no credit entry.
            // Frames without control keys fall through to the default
            // handler (plain parameter stores).
            let Ok(map) = parse_kv(msg.payload()) else {
                return UtilOutcome::Default;
            };
            if !map.contains_key("evb.drain") && !map.contains_key("evb.rescan") {
                return UtilOutcome::Default;
            }
            // Store every key first: a rescan in the same frame must
            // resolve against the freshly pushed `bus`/`bu_urls`.
            for (k, v) in &map {
                ctx.set_param(k, v);
            }
            if let Some(name) = map.get("evb.drain") {
                let Some(tid) = ctx.lookup(name) else {
                    let _ = ctx.reply(msg, ReplyStatus::DeviceError, b"unknown builder");
                    return UtilOutcome::Handled;
                };
                self.draining.insert(tid);
            }
            if map.get("evb.rescan").map(String::as_str) == Some("1") {
                self.rescan(ctx);
            }
            let _ = ctx.reply(msg, ReplyStatus::Success, &[]);
            return UtilOutcome::Handled;
        }
        if f == UtilFn::ParamsGet {
            // Mirror live state into the parameter map so the default
            // ParamsGet reply carries it (the `xcl` `evb` command).
            ctx.set_param("evb.run", &self.run.to_string());
            ctx.set_param("evb.next_event", &self.next_event.to_string());
            ctx.set_param("evb.target", &self.target.to_string());
            ctx.set_param("evb.launched", &self.launched.to_string());
            ctx.set_param("evb.finished", &self.finished.to_string());
            ctx.set_param(
                "evb.completed",
                &self.stats.completed.load(Ordering::Relaxed).to_string(),
            );
            ctx.set_param(
                "evb.lost",
                &self.stats.lost.load(Ordering::Relaxed).to_string(),
            );
            ctx.set_param(
                "evb.reassigned",
                &self.stats.reassigned.load(Ordering::Relaxed).to_string(),
            );
            let total: u32 = self.credits.values().sum();
            ctx.set_param("evb.credits", &total.to_string());
            ctx.set_param("evb.inflight", &self.assigned.len().to_string());
            ctx.set_param("evb.queued", &self.queue.len().to_string());
            ctx.set_param("evb.bus", &self.bus.len().to_string());
            ctx.set_param("evb.bus_dead", &self.dead.len().to_string());
            ctx.set_param("evb.draining", &self.draining.len().to_string());
            let drain_inflight = self
                .assigned
                .values()
                .filter(|bu| self.draining.contains(bu))
                .count();
            ctx.set_param("evb.drain_inflight", &drain_inflight.to_string());
            ctx.set_param(
                "evb.run_done",
                if self.stats.run_done.load(Ordering::SeqCst) {
                    "1"
                } else {
                    "0"
                },
            );
        }
        UtilOutcome::Default
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bu::BuilderUnit;
    use crate::ru::ReadoutUnit;
    use std::time::{Duration, Instant};
    use xdaq_core::{Executive, ExecutiveConfig};

    /// Full single-executive mesh: 3 RU × 2 BU × 1 EVM + filter sink.
    struct Mesh {
        exec: Executive,
        evm_tid: Tid,
        evm: Arc<EvmStats>,
        bu_stats: Vec<Arc<crate::bu::BuilderStats>>,
        received: Arc<parking_lot::Mutex<Vec<u64>>>,
    }

    struct FilterSink(Arc<parking_lot::Mutex<Vec<u64>>>);
    impl I2oListener for FilterSink {
        fn class(&self) -> DeviceClass {
            DeviceClass::Application(ORG_DAQ)
        }
        fn on_private(&mut self, _ctx: &mut Dispatcher<'_>, msg: Delivery) {
            if msg.private.map(|p| p.x_function) == Some(xfn::EVENT) {
                self.0.lock().push(u64_at(msg.payload(), 0).unwrap());
            }
        }
    }

    fn mesh(n_ru: usize, n_bu: usize) -> Mesh {
        let exec = Executive::new(ExecutiveConfig::named("mesh"));
        let received = Arc::new(parking_lot::Mutex::new(Vec::new()));
        exec.register("filter", Box::new(FilterSink(received.clone())), &[])
            .unwrap();
        let ru_names: Vec<String> = (0..n_ru).map(|i| format!("ru{i}")).collect();
        for (i, name) in ru_names.iter().enumerate() {
            exec.register(
                name,
                Box::new(ReadoutUnit::new()),
                &[
                    ("source_id", &i.to_string()),
                    ("sources", &n_ru.to_string()),
                    ("size", "128"),
                ],
            )
            .unwrap();
        }
        let bu_names: Vec<String> = (0..n_bu).map(|i| format!("bu{i}")).collect();
        let mut bu_stats = Vec::new();
        for name in &bu_names {
            let bu = BuilderUnit::new();
            bu_stats.push(bu.stats());
            exec.register(
                name,
                Box::new(bu),
                &[
                    ("rus", &ru_names.join(",")),
                    ("filter", "filter"),
                    ("credits", "4"),
                    ("timeout_ms", "20"),
                    ("max_retries", "10"),
                ],
            )
            .unwrap();
        }
        let evm = EventManager::new();
        let stats = evm.stats();
        let evm_tid = exec
            .register(
                "evm",
                Box::new(evm),
                &[
                    ("readouts", &ru_names.join(",")),
                    ("bus", &bu_names.join(",")),
                ],
            )
            .unwrap();
        exec.enable_all();
        Mesh {
            exec,
            evm_tid,
            evm: stats,
            bu_stats,
            received,
        }
    }

    fn run_to_completion(m: &Mesh, target: u64) {
        // The flag may still be set from a previous run; clear it
        // before the RUN frame is posted so the wait loop below
        // can't exit on stale state.
        m.evm.run_done.store(false, Ordering::SeqCst);
        m.exec
            .post(
                Message::build_private(m.evm_tid, Tid::HOST, ORG_DAQ, xfn::RUN)
                    .payload(target.to_le_bytes().to_vec())
                    .finish(),
            )
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(30);
        while !m.evm.run_done.load(Ordering::SeqCst) && Instant::now() < deadline {
            m.exec.run_once();
        }
        assert!(m.evm.run_done.load(Ordering::SeqCst), "run stalled");
    }

    #[test]
    fn builds_a_full_run_without_loss() {
        let m = mesh(3, 2);
        run_to_completion(&m, 100);
        assert_eq!(m.evm.completed.load(Ordering::SeqCst), 100);
        assert_eq!(m.evm.lost.load(Ordering::SeqCst), 0);
        let mut ids = m.received.lock().clone();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 100, "every event reached the filter once");
        // Both builders participated (credits spread the load).
        for s in &m.bu_stats {
            assert!(s.events_built.load(Ordering::SeqCst) > 0);
        }
    }

    #[test]
    fn event_ids_stay_monotonic_across_runs() {
        let m = mesh(2, 1);
        run_to_completion(&m, 10);
        let first: Vec<u64> = m.received.lock().clone();
        run_to_completion(&m, 10);
        let all = m.received.lock().clone();
        let second = &all[first.len()..];
        let max1 = first.iter().max().unwrap();
        assert!(
            second.iter().all(|e| e > max1),
            "second run reuses event ids"
        );
        assert_eq!(m.evm.completed.load(Ordering::SeqCst), 20);
    }
}
