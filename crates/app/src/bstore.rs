//! A classic I2O Block Storage DDM.
//!
//! Paper §3.3: *"each concrete I2O device has to implement executive
//! and utility events ... Finally it must implement the interface of
//! one of the I2O devices, e.g. the Block Storage or Tape device
//! class."* This module provides that classic side of I2O — a block
//! device driven entirely by messages — to show that the same
//! executive hosts device-driver modules and DAQ applications alike.
//! It doubles as the storage stage of DAQ examples (built events
//! persisted to a "disk" node).
//!
//! The backing store is RAM by default; with the `file` parameter set
//! the BSA address space maps onto a preallocated on-disk
//! [`xdaq_rec::BlockFile`] (raw `pwritev`/`fdatasync`, same no-libc
//! syscall layer as the event recorder), so written blocks survive a
//! process restart.
//!
//! Operations are private frames using the RMI adapters
//! ([`xdaq_core::rmi`]):
//!
//! * `BSA_READ`  (block: u32, count: u32) → bytes
//! * `BSA_WRITE` (block: u32, bytes)      → blocks_written: u32
//! * `BSA_INFO`  ()                       → block_size: u32, blocks: u32
//!
//! Out-of-range addresses are answered with a `DeviceError` reply
//! (never silently truncated); malformed arguments stay `BadFrame`.

use crate::ORG_DAQ;
use std::io::IoSlice;
use xdaq_core::{ArgReader, ArgWriter, Delivery, Dispatcher, I2oListener, Skeleton};
use xdaq_i2o::{DeviceClass, ReplyStatus};
use xdaq_rec::BlockFile;

/// x-function codes of the block-storage class.
pub mod bsa {
    /// Read `count` blocks starting at `block`.
    pub const READ: u16 = 0x0030;
    /// Write bytes starting at `block`.
    pub const WRITE: u16 = 0x0031;
    /// Device geometry query.
    pub const INFO: u16 = 0x0032;
}

/// Where the blocks live.
enum Backing {
    Ram(Vec<u8>),
    Disk(BlockFile),
}

impl Backing {
    fn capacity(&self) -> usize {
        match self {
            Backing::Ram(v) => v.len(),
            Backing::Disk(f) => f.len() as usize,
        }
    }

    fn read(&self, start: usize, len: usize) -> Result<Vec<u8>, String> {
        match self {
            Backing::Ram(v) => Ok(v[start..start + len].to_vec()),
            Backing::Disk(f) => {
                let mut buf = vec![0u8; len];
                f.read_at(start as u64, &mut buf)
                    .map_err(|e| e.to_string())?;
                Ok(buf)
            }
        }
    }

    fn write(&mut self, start: usize, bytes: &[u8]) -> Result<(), String> {
        match self {
            Backing::Ram(v) => {
                v[start..start + bytes.len()].copy_from_slice(bytes);
                Ok(())
            }
            Backing::Disk(f) => f
                .write_at(start as u64, &[IoSlice::new(bytes)])
                .map_err(|e| e.to_string()),
        }
    }
}

/// Block storage device (RAM or file backed).
///
/// Parameters: `block_size` (default 512), `blocks` (default 1024),
/// `file` (optional path: durable backing).
pub struct BlockStorage {
    block_size: usize,
    backing: Backing,
    read_skel: Skeleton,
    write_skel: Skeleton,
    info_skel: Skeleton,
    /// Reads served (observable).
    pub reads: u64,
    /// Writes served (observable).
    pub writes: u64,
    configured: bool,
}

impl BlockStorage {
    /// Creates an unconfigured device (geometry read from params at
    /// plug time).
    pub fn new() -> BlockStorage {
        BlockStorage {
            block_size: 512,
            backing: Backing::Ram(Vec::new()),
            read_skel: Skeleton::new(ORG_DAQ, bsa::READ),
            write_skel: Skeleton::new(ORG_DAQ, bsa::WRITE),
            info_skel: Skeleton::new(ORG_DAQ, bsa::INFO),
            reads: 0,
            writes: 0,
            configured: false,
        }
    }

    fn configure(&mut self, ctx: &mut Dispatcher<'_>) {
        if self.configured {
            return;
        }
        let block_size = ctx
            .param("block_size")
            .and_then(|s| s.parse().ok())
            .unwrap_or(512usize);
        let blocks = ctx
            .param("blocks")
            .and_then(|s| s.parse().ok())
            .unwrap_or(1024usize);
        self.block_size = block_size;
        let bytes = block_size.saturating_mul(blocks);
        self.backing = match ctx.param("file").map(str::to_string) {
            Some(path) => match BlockFile::open(std::path::Path::new(&path), bytes as u64) {
                Ok(f) => Backing::Disk(f),
                Err(e) => {
                    // Stay serviceable in RAM, but make the degradation
                    // observable to the control host.
                    ctx.set_param("bsa.error", &format!("open {path}: {e}"));
                    Backing::Ram(vec![0u8; bytes])
                }
            },
            None => Backing::Ram(vec![0u8; bytes]),
        };
        self.configured = true;
    }

    fn blocks(&self) -> usize {
        self.backing
            .capacity()
            .checked_div(self.block_size)
            .unwrap_or(0)
    }
}

impl Default for BlockStorage {
    fn default() -> Self {
        Self::new()
    }
}

/// Overflow-safe `block * block_size .. + len` byte range against the
/// device capacity. `Err` is the `DeviceError` reply body.
fn byte_range(
    block: usize,
    len: usize,
    block_size: usize,
    capacity: usize,
) -> Result<usize, String> {
    let start = block
        .checked_mul(block_size)
        .filter(|s| s.checked_add(len).is_some_and(|end| end <= capacity))
        .ok_or_else(|| {
            format!("range [block {block}, +{len} bytes] exceeds device capacity {capacity}")
        })?;
    Ok(start)
}

impl I2oListener for BlockStorage {
    fn class(&self) -> DeviceClass {
        DeviceClass::BlockStorage
    }

    fn plugged(&mut self, ctx: &mut Dispatcher<'_>) {
        self.configure(ctx);
    }

    fn on_private(&mut self, ctx: &mut Dispatcher<'_>, msg: Delivery) {
        self.configure(ctx);
        let block_size = self.block_size;
        let total_blocks = self.blocks();
        let capacity = self.backing.capacity();
        let dev_err = |detail: String| (ReplyStatus::DeviceError, detail);
        let bad_frame = |e: xdaq_core::MarshalError| (ReplyStatus::BadFrame, e.to_string());

        // READ
        let backing = &self.backing;
        let mut reads = self.reads;
        if self
            .read_skel
            .serve_with(ctx, &msg, |args: &mut ArgReader<'_>| {
                let block = args.u32().map_err(bad_frame)? as usize;
                let count = args.u32().map_err(bad_frame)? as usize;
                let len = count
                    .checked_mul(block_size)
                    .ok_or_else(|| dev_err(format!("count {count} overflows byte length")))?;
                let start = byte_range(block, len, block_size, capacity).map_err(dev_err)?;
                let data = backing.read(start, len).map_err(dev_err)?;
                reads += 1;
                Ok(ArgWriter::new().bytes(&data))
            })
        {
            self.reads = reads;
            return;
        }

        // WRITE
        let backing = &mut self.backing;
        let mut writes = self.writes;
        if self
            .write_skel
            .serve_with(ctx, &msg, |args: &mut ArgReader<'_>| {
                let block = args.u32().map_err(bad_frame)? as usize;
                let bytes = args.bytes().map_err(bad_frame)?;
                let start =
                    byte_range(block, bytes.len(), block_size, capacity).map_err(dev_err)?;
                backing.write(start, bytes).map_err(dev_err)?;
                writes += 1;
                let blocks_written = bytes.len().div_ceil(block_size.max(1)) as u32;
                Ok(ArgWriter::new().u32(blocks_written))
            })
        {
            self.writes = writes;
            return;
        }

        // INFO
        self.info_skel.serve(ctx, &msg, |_args| {
            Ok(ArgWriter::new()
                .u32(block_size as u32)
                .u32(total_blocks as u32))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::Arc;
    use xdaq_core::{Executive, ExecutiveConfig, Stub};
    use xdaq_i2o::{ReplyStatus, Tid};

    type ReplyLog = Arc<Mutex<Vec<(u32, ReplyStatus, Vec<u8>)>>>;

    /// Client device driving the block store via stubs.
    struct Client {
        store: Tid,
        log: ReplyLog,
        read: Stub,
        write: Stub,
        info: Stub,
        script: Vec<Op>,
    }

    enum Op {
        Write(u32, Vec<u8>),
        Read(u32, u32),
        Info,
    }

    impl I2oListener for Client {
        fn class(&self) -> DeviceClass {
            DeviceClass::Application(ORG_DAQ)
        }
        fn plugged(&mut self, _ctx: &mut Dispatcher<'_>) {}
        fn on_private(&mut self, ctx: &mut Dispatcher<'_>, msg: Delivery) {
            // Kick: run the scripted calls.
            if msg.private.map(|p| p.x_function) == Some(0x0001) {
                for op in self.script.drain(..) {
                    let _ = match op {
                        Op::Write(block, bytes) => self
                            .write
                            .call(ctx, ArgWriter::new().u32(block).bytes(&bytes)),
                        Op::Read(block, count) => {
                            self.read.call(ctx, ArgWriter::new().u32(block).u32(count))
                        }
                        Op::Info => self.info.call(ctx, ArgWriter::new()),
                    };
                }
                let _ = self.store;
                return;
            }
            // Replies from the store: record the raw marshalled result.
            for stub in [&self.read, &self.write, &self.info] {
                if let Some((ctx_id, status, _args)) = stub.match_reply(&msg) {
                    let raw = msg
                        .reply_status()
                        .map(|(_, b)| b.to_vec())
                        .unwrap_or_default();
                    self.log.lock().push((ctx_id, status, raw));
                    return;
                }
            }
        }
    }

    fn drive(exec: &Executive, store: Tid, script: Vec<Op>) -> ReplyLog {
        let log = Arc::new(Mutex::new(Vec::new()));
        let client = Client {
            store,
            log: log.clone(),
            read: Stub::new(store, ORG_DAQ, bsa::READ),
            write: Stub::new(store, ORG_DAQ, bsa::WRITE),
            info: Stub::new(store, ORG_DAQ, bsa::INFO),
            script,
        };
        let client_tid = exec.register("client", Box::new(client), &[]).unwrap();
        exec.enable_all();
        exec.post(
            xdaq_i2o::Message::build_private(client_tid, Tid::HOST, ORG_DAQ, 0x0001).finish(),
        )
        .unwrap();
        while exec.run_once() > 0 {}
        log
    }

    #[test]
    fn write_read_info_via_rmi() {
        let exec = Executive::new(ExecutiveConfig::named("disk"));
        let store = exec
            .register(
                "bsa0",
                Box::new(BlockStorage::new()),
                &[("block_size", "64"), ("blocks", "16")],
            )
            .unwrap();
        let log = drive(
            &exec,
            store,
            vec![
                Op::Write(2, vec![0xAB; 128]),
                Op::Read(2, 2),
                Op::Info,
                Op::Read(15, 5), // out of range
            ],
        );

        let log = log.lock();
        assert_eq!(log.len(), 4);
        // Write succeeded (2 blocks written).
        assert!(log[0].1.is_ok());
        assert_eq!(ArgReader::new(&log[0].2).u32().unwrap(), 2);
        // Read returned the written pattern.
        assert!(log[1].1.is_ok());
        assert_eq!(
            ArgReader::new(&log[1].2).bytes().unwrap(),
            &[0xABu8; 128][..]
        );
        // Info reports the configured geometry.
        assert!(log[2].1.is_ok());
        let mut info = ArgReader::new(&log[2].2);
        assert_eq!(info.u32().unwrap(), 64);
        assert_eq!(info.u32().unwrap(), 16);
        // Out-of-range read: a device-level error, not a marshalling one.
        assert_eq!(log[3].1, ReplyStatus::DeviceError);
    }

    #[test]
    fn geometry_violations_get_device_error_not_truncation() {
        let exec = Executive::new(ExecutiveConfig::named("disk"));
        let store = exec
            .register(
                "bsa0",
                Box::new(BlockStorage::new()),
                &[("block_size", "64"), ("blocks", "16")],
            )
            .unwrap();
        let log = drive(
            &exec,
            store,
            vec![
                // Write straddling the end: starts in range, runs past.
                Op::Write(15, vec![0x55; 128]),
                // Write with an offset that overflows usize arithmetic.
                Op::Write(u32::MAX, vec![1]),
                // Read whose count overflows the byte-length product.
                Op::Read(0, u32::MAX),
                // The device is still healthy afterwards.
                Op::Write(15, vec![0x77; 64]),
                Op::Read(15, 1),
            ],
        );
        let log = log.lock();
        assert_eq!(log.len(), 5);
        assert_eq!(log[0].1, ReplyStatus::DeviceError);
        assert!(
            String::from_utf8_lossy(&log[0].2).contains("exceeds device capacity"),
            "reply body names the violation: {:?}",
            String::from_utf8_lossy(&log[0].2)
        );
        assert_eq!(log[1].1, ReplyStatus::DeviceError);
        assert_eq!(log[2].1, ReplyStatus::DeviceError);
        assert!(log[3].1.is_ok(), "in-range write still served");
        assert!(log[4].1.is_ok());
        assert_eq!(
            ArgReader::new(&log[4].2).bytes().unwrap(),
            &[0x77u8; 64][..]
        );
    }

    #[test]
    fn file_backing_survives_restart() {
        let path = std::env::temp_dir().join(format!("xdaq-bsa-{}.dat", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let params: &[(&str, &str)] = &[
            ("block_size", "64"),
            ("blocks", "16"),
            ("file", path.to_str().unwrap()),
        ];
        {
            let exec = Executive::new(ExecutiveConfig::named("disk"));
            let store = exec
                .register("bsa0", Box::new(BlockStorage::new()), params)
                .unwrap();
            let log = drive(&exec, store, vec![Op::Write(3, vec![0xC4; 64])]);
            if !xdaq_rec::sys::supported() {
                return; // no raw-syscall backend: nothing durable to check
            }
            assert!(log.lock()[0].1.is_ok());
        }
        // A brand-new executive over the same file sees the data.
        let exec = Executive::new(ExecutiveConfig::named("disk2"));
        let store = exec
            .register("bsa0", Box::new(BlockStorage::new()), params)
            .unwrap();
        let log = drive(&exec, store, vec![Op::Read(3, 1)]);
        let log = log.lock();
        assert!(log[0].1.is_ok());
        assert_eq!(
            ArgReader::new(&log[0].2).bytes().unwrap(),
            &[0xC4u8; 64][..]
        );
        std::fs::remove_file(&path).unwrap();
    }
}
