//! A classic I2O Block Storage DDM.
//!
//! Paper §3.3: *"each concrete I2O device has to implement executive
//! and utility events ... Finally it must implement the interface of
//! one of the I2O devices, e.g. the Block Storage or Tape device
//! class."* This module provides that classic side of I2O — a
//! RAM-backed block device driven entirely by messages — to show that
//! the same executive hosts device-driver modules and DAQ applications
//! alike. It doubles as the storage stage of DAQ examples (built
//! events persisted to a "disk" node).
//!
//! Operations are private frames using the RMI adapters
//! ([`xdaq_core::rmi`]):
//!
//! * `BSA_READ`  (block: u32, count: u32) → bytes
//! * `BSA_WRITE` (block: u32, bytes)      → blocks_written: u32
//! * `BSA_INFO`  ()                       → block_size: u32, blocks: u32

use crate::ORG_DAQ;
use xdaq_core::{ArgReader, ArgWriter, Delivery, Dispatcher, I2oListener, MarshalError, Skeleton};
use xdaq_i2o::DeviceClass;

/// x-function codes of the block-storage class.
pub mod bsa {
    /// Read `count` blocks starting at `block`.
    pub const READ: u16 = 0x0030;
    /// Write bytes starting at `block`.
    pub const WRITE: u16 = 0x0031;
    /// Device geometry query.
    pub const INFO: u16 = 0x0032;
}

/// RAM-backed block storage device.
///
/// Parameters: `block_size` (default 512), `blocks` (default 1024).
pub struct BlockStorage {
    block_size: usize,
    data: Vec<u8>,
    read_skel: Skeleton,
    write_skel: Skeleton,
    info_skel: Skeleton,
    /// Reads served (observable).
    pub reads: u64,
    /// Writes served (observable).
    pub writes: u64,
    configured: bool,
}

impl BlockStorage {
    /// Creates an unconfigured device (geometry read from params at
    /// plug time).
    pub fn new() -> BlockStorage {
        BlockStorage {
            block_size: 512,
            data: Vec::new(),
            read_skel: Skeleton::new(ORG_DAQ, bsa::READ),
            write_skel: Skeleton::new(ORG_DAQ, bsa::WRITE),
            info_skel: Skeleton::new(ORG_DAQ, bsa::INFO),
            reads: 0,
            writes: 0,
            configured: false,
        }
    }

    fn configure(&mut self, ctx: &Dispatcher<'_>) {
        if self.configured {
            return;
        }
        let block_size = ctx
            .param("block_size")
            .and_then(|s| s.parse().ok())
            .unwrap_or(512usize);
        let blocks = ctx
            .param("blocks")
            .and_then(|s| s.parse().ok())
            .unwrap_or(1024usize);
        self.block_size = block_size;
        self.data = vec![0u8; block_size * blocks];
        self.configured = true;
    }

    fn blocks(&self) -> usize {
        self.data.len().checked_div(self.block_size).unwrap_or(0)
    }
}

impl Default for BlockStorage {
    fn default() -> Self {
        Self::new()
    }
}

impl I2oListener for BlockStorage {
    fn class(&self) -> DeviceClass {
        DeviceClass::BlockStorage
    }

    fn plugged(&mut self, ctx: &mut Dispatcher<'_>) {
        self.configure(ctx);
    }

    fn on_private(&mut self, ctx: &mut Dispatcher<'_>, msg: Delivery) {
        self.configure(ctx);
        let block_size = self.block_size;
        let total_blocks = self.blocks();

        // READ
        let data = &self.data;
        let mut reads = self.reads;
        if self.read_skel.serve(ctx, &msg, |args: &mut ArgReader<'_>| {
            let block = args.u32()? as usize;
            let count = args.u32()? as usize;
            if block + count > total_blocks {
                return Err(MarshalError::Truncated); // out of range
            }
            reads += 1;
            let start = block * block_size;
            Ok(ArgWriter::new().bytes(&data[start..start + count * block_size]))
        }) {
            self.reads = reads;
            return;
        }

        // WRITE
        let data = &mut self.data;
        let mut writes = self.writes;
        if self
            .write_skel
            .serve(ctx, &msg, |args: &mut ArgReader<'_>| {
                let block = args.u32()? as usize;
                let bytes = args.bytes()?;
                let start = block * block_size;
                if start + bytes.len() > data.len() {
                    return Err(MarshalError::Truncated); // out of range
                }
                data[start..start + bytes.len()].copy_from_slice(bytes);
                writes += 1;
                let blocks_written = bytes.len().div_ceil(block_size.max(1)) as u32;
                Ok(ArgWriter::new().u32(blocks_written))
            })
        {
            self.writes = writes;
            return;
        }

        // INFO
        self.info_skel.serve(ctx, &msg, |_args| {
            Ok(ArgWriter::new()
                .u32(block_size as u32)
                .u32(total_blocks as u32))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::Arc;
    use xdaq_core::{Executive, ExecutiveConfig, Stub};
    use xdaq_i2o::{ReplyStatus, Tid};

    type ReplyLog = Arc<Mutex<Vec<(u32, ReplyStatus, Vec<u8>)>>>;

    /// Client device driving the block store via stubs.
    struct Client {
        store: Tid,
        log: ReplyLog,
        read: Stub,
        write: Stub,
        info: Stub,
        script: Vec<Op>,
    }

    enum Op {
        Write(u32, Vec<u8>),
        Read(u32, u32),
        Info,
    }

    impl I2oListener for Client {
        fn class(&self) -> DeviceClass {
            DeviceClass::Application(ORG_DAQ)
        }
        fn plugged(&mut self, _ctx: &mut Dispatcher<'_>) {}
        fn on_private(&mut self, ctx: &mut Dispatcher<'_>, msg: Delivery) {
            // Kick: run the scripted calls.
            if msg.private.map(|p| p.x_function) == Some(0x0001) {
                for op in self.script.drain(..) {
                    let _ = match op {
                        Op::Write(block, bytes) => self
                            .write
                            .call(ctx, ArgWriter::new().u32(block).bytes(&bytes)),
                        Op::Read(block, count) => {
                            self.read.call(ctx, ArgWriter::new().u32(block).u32(count))
                        }
                        Op::Info => self.info.call(ctx, ArgWriter::new()),
                    };
                }
                let _ = self.store;
                return;
            }
            // Replies from the store: record the raw marshalled result.
            for stub in [&self.read, &self.write, &self.info] {
                if let Some((ctx_id, status, _args)) = stub.match_reply(&msg) {
                    let raw = msg
                        .reply_status()
                        .map(|(_, b)| b.to_vec())
                        .unwrap_or_default();
                    self.log.lock().push((ctx_id, status, raw));
                    return;
                }
            }
        }
    }

    #[test]
    fn write_read_info_via_rmi() {
        let exec = Executive::new(ExecutiveConfig::named("disk"));
        let store = exec
            .register(
                "bsa0",
                Box::new(BlockStorage::new()),
                &[("block_size", "64"), ("blocks", "16")],
            )
            .unwrap();
        let log = Arc::new(Mutex::new(Vec::new()));
        let client = Client {
            store,
            log: log.clone(),
            read: Stub::new(store, ORG_DAQ, bsa::READ),
            write: Stub::new(store, ORG_DAQ, bsa::WRITE),
            info: Stub::new(store, ORG_DAQ, bsa::INFO),
            script: vec![
                Op::Write(2, vec![0xAB; 128]),
                Op::Read(2, 2),
                Op::Info,
                Op::Read(15, 5), // out of range
            ],
        };
        let client_tid = exec.register("client", Box::new(client), &[]).unwrap();
        exec.enable_all();
        exec.post(
            xdaq_i2o::Message::build_private(client_tid, Tid::HOST, ORG_DAQ, 0x0001).finish(),
        )
        .unwrap();
        while exec.run_once() > 0 {}

        let log = log.lock();
        assert_eq!(log.len(), 4);
        // Write succeeded (2 blocks written).
        assert!(log[0].1.is_ok());
        assert_eq!(ArgReader::new(&log[0].2).u32().unwrap(), 2);
        // Read returned the written pattern.
        assert!(log[1].1.is_ok());
        assert_eq!(
            ArgReader::new(&log[1].2).bytes().unwrap(),
            &[0xABu8; 128][..]
        );
        // Info reports the configured geometry.
        assert!(log[2].1.is_ok());
        let mut info = ArgReader::new(&log[2].2);
        assert_eq!(info.u32().unwrap(), 64);
        assert_eq!(info.u32().unwrap(), 16);
        // Out-of-range read was refused, not a crash.
        assert_eq!(log[3].1, ReplyStatus::BadFrame);
    }
}
