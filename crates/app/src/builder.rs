//! Builder units: assemble complete events from per-source fragments.

use crate::fragment::FragmentHeader;
use crate::{xfn, ORG_DAQ};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use xdaq_core::{Delivery, Dispatcher, I2oListener};
use xdaq_i2o::{DeviceClass, Message, Tid};

/// Shared counters of one builder unit.
#[derive(Debug, Default)]
pub struct BuilderStats {
    /// Fully assembled events.
    pub events_built: AtomicU64,
    /// Fragments received.
    pub fragments: AtomicU64,
    /// Payload bytes received (headers included).
    pub bytes: AtomicU64,
    /// Fragments whose pattern data failed verification.
    pub corrupt: AtomicU64,
    /// Duplicate fragments (same event, same source).
    pub duplicates: AtomicU64,
    /// Event ids of built events (kept only when `record_events`).
    pub built_ids: Mutex<Vec<u64>>,
}

impl BuilderStats {
    /// Fresh stats handle.
    pub fn new() -> Arc<BuilderStats> {
        Arc::new(BuilderStats::default())
    }
}

/// One builder unit.
///
/// Parameters:
/// * `filter` — optional TiD (decimal) to forward built events to,
/// * `evtmgr` — optional TiD (decimal) to send `EVT_DONE` credits to,
/// * `verify` — `1` to verify fragment pattern data,
/// * `record` — `1` to record built event ids into the stats.
pub struct BuilderUnit {
    stats: Arc<BuilderStats>,
    /// event_id → (received-source bitmap as Vec<bool>, bytes so far).
    pending: HashMap<u64, (Vec<bool>, usize)>,
    filter: Option<Tid>,
    evtmgr: Option<Tid>,
    verify: bool,
    record: bool,
    configured: bool,
}

impl BuilderUnit {
    /// Creates a builder reporting into `stats`.
    pub fn new(stats: Arc<BuilderStats>) -> BuilderUnit {
        BuilderUnit {
            stats,
            pending: HashMap::new(),
            filter: None,
            evtmgr: None,
            verify: false,
            record: false,
            configured: false,
        }
    }

    fn configure(&mut self, ctx: &Dispatcher<'_>) {
        if self.configured {
            return;
        }
        self.filter = ctx
            .param("filter")
            .and_then(|s| s.parse::<u16>().ok())
            .and_then(|v| Tid::new(v).ok());
        self.evtmgr = ctx
            .param("evtmgr")
            .and_then(|s| s.parse::<u16>().ok())
            .and_then(|v| Tid::new(v).ok());
        self.verify = ctx.param("verify") == Some("1");
        self.record = ctx.param("record") == Some("1");
        self.configured = true;
    }

    /// Number of partially assembled events (diagnostics).
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }
}

impl I2oListener for BuilderUnit {
    fn class(&self) -> DeviceClass {
        DeviceClass::Application(ORG_DAQ)
    }

    fn on_private(&mut self, ctx: &mut Dispatcher<'_>, msg: Delivery) {
        if msg.private.map(|p| p.x_function) != Some(xfn::FRAGMENT) {
            return;
        }
        self.configure(ctx);
        let payload = msg.payload();
        let Some(header) = FragmentHeader::decode(payload) else {
            self.stats.corrupt.fetch_add(1, Ordering::Relaxed);
            return;
        };
        if self.verify && !header.verify_payload(payload) {
            self.stats.corrupt.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.stats.fragments.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes
            .fetch_add(payload.len() as u64, Ordering::Relaxed);

        let sources = header.total_sources.max(1) as usize;
        let entry = self
            .pending
            .entry(header.event_id)
            .or_insert_with(|| (vec![false; sources], 0));
        let idx = (header.source_id as usize).min(sources - 1);
        if entry.0[idx] {
            self.stats.duplicates.fetch_add(1, Ordering::Relaxed);
            return;
        }
        entry.0[idx] = true;
        entry.1 += payload.len();
        if !entry.0.iter().all(|&b| b) {
            return;
        }
        // Event complete.
        let (_, total_bytes) = self.pending.remove(&header.event_id).expect("present");
        self.stats.events_built.fetch_add(1, Ordering::Relaxed);
        if self.record {
            self.stats.built_ids.lock().push(header.event_id);
        }
        if let Some(filter) = self.filter {
            let mut body = Vec::with_capacity(16);
            body.extend_from_slice(&header.event_id.to_le_bytes());
            body.extend_from_slice(&(total_bytes as u64).to_le_bytes());
            let _ = ctx.send(
                Message::build_private(filter, ctx.own_tid(), ORG_DAQ, xfn::EVENT)
                    .payload(body)
                    .finish(),
            );
        }
        if let Some(mgr) = self.evtmgr {
            let _ = ctx.send(
                Message::build_private(mgr, ctx.own_tid(), ORG_DAQ, xfn::EVT_DONE)
                    .payload(header.event_id.to_le_bytes().to_vec())
                    .finish(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdaq_core::{Executive, ExecutiveConfig};

    fn fragment_msg(dest: Tid, event: u64, source: u16, total: u16, len: u32) -> Message {
        let h = FragmentHeader {
            event_id: event,
            source_id: source,
            total_sources: total,
            len,
        };
        Message::build_private(dest, Tid::HOST, ORG_DAQ, xfn::FRAGMENT)
            .payload(h.build_payload())
            .finish()
    }

    #[test]
    fn event_completes_when_all_sources_arrive() {
        let exec = Executive::new(ExecutiveConfig::named("n"));
        let stats = BuilderStats::new();
        let bu = exec
            .register(
                "bu",
                Box::new(BuilderUnit::new(stats.clone())),
                &[("record", "1")],
            )
            .unwrap();
        exec.enable_all();
        exec.post(fragment_msg(bu, 7, 0, 3, 64)).unwrap();
        exec.post(fragment_msg(bu, 7, 1, 3, 64)).unwrap();
        while exec.run_once() > 0 {}
        assert_eq!(stats.events_built.load(Ordering::SeqCst), 0, "incomplete");
        exec.post(fragment_msg(bu, 7, 2, 3, 64)).unwrap();
        while exec.run_once() > 0 {}
        assert_eq!(stats.events_built.load(Ordering::SeqCst), 1);
        assert_eq!(stats.fragments.load(Ordering::SeqCst), 3);
        assert_eq!(*stats.built_ids.lock(), vec![7]);
    }

    #[test]
    fn duplicates_counted_not_double_built() {
        let exec = Executive::new(ExecutiveConfig::named("n"));
        let stats = BuilderStats::new();
        let bu = exec
            .register("bu", Box::new(BuilderUnit::new(stats.clone())), &[])
            .unwrap();
        exec.enable_all();
        exec.post(fragment_msg(bu, 1, 0, 2, 16)).unwrap();
        exec.post(fragment_msg(bu, 1, 0, 2, 16)).unwrap();
        exec.post(fragment_msg(bu, 1, 1, 2, 16)).unwrap();
        while exec.run_once() > 0 {}
        assert_eq!(stats.events_built.load(Ordering::SeqCst), 1);
        assert_eq!(stats.duplicates.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn corrupt_fragment_detected_when_verifying() {
        let exec = Executive::new(ExecutiveConfig::named("n"));
        let stats = BuilderStats::new();
        let bu = exec
            .register(
                "bu",
                Box::new(BuilderUnit::new(stats.clone())),
                &[("verify", "1")],
            )
            .unwrap();
        exec.enable_all();
        let h = FragmentHeader {
            event_id: 1,
            source_id: 0,
            total_sources: 1,
            len: 32,
        };
        let mut payload = h.build_payload();
        payload[20] ^= 0xFF;
        exec.post(
            Message::build_private(bu, Tid::HOST, ORG_DAQ, xfn::FRAGMENT)
                .payload(payload)
                .finish(),
        )
        .unwrap();
        while exec.run_once() > 0 {}
        assert_eq!(stats.corrupt.load(Ordering::SeqCst), 1);
        assert_eq!(stats.events_built.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn built_event_forwarded_to_filter_and_credit_to_manager() {
        use std::sync::atomic::AtomicU64;
        struct Recorder(Arc<AtomicU64>, u16);
        impl I2oListener for Recorder {
            fn class(&self) -> DeviceClass {
                DeviceClass::Application(ORG_DAQ)
            }
            fn on_private(&mut self, _ctx: &mut Dispatcher<'_>, msg: Delivery) {
                if msg.private.map(|p| p.x_function) == Some(self.1) {
                    self.0.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
        let exec = Executive::new(ExecutiveConfig::named("n"));
        let events = Arc::new(AtomicU64::new(0));
        let credits = Arc::new(AtomicU64::new(0));
        let filter = exec
            .register(
                "filter",
                Box::new(Recorder(events.clone(), xfn::EVENT)),
                &[],
            )
            .unwrap();
        let mgr = exec
            .register(
                "mgr",
                Box::new(Recorder(credits.clone(), xfn::EVT_DONE)),
                &[],
            )
            .unwrap();
        let stats = BuilderStats::new();
        let bu = exec
            .register(
                "bu",
                Box::new(BuilderUnit::new(stats)),
                &[
                    ("filter", &filter.raw().to_string()),
                    ("evtmgr", &mgr.raw().to_string()),
                ],
            )
            .unwrap();
        exec.enable_all();
        exec.post(fragment_msg(bu, 3, 0, 1, 8)).unwrap();
        while exec.run_once() > 0 {}
        assert_eq!(events.load(Ordering::SeqCst), 1);
        assert_eq!(credits.load(Ordering::SeqCst), 1);
    }
}
