//! The event manager: trigger generation with credit-based flow
//! control.
//!
//! The manager keeps at most `window` events in flight. A run starts
//! with an [`crate::xfn::RUN`] frame carrying the event count; each
//! completed event (an [`crate::xfn::EVT_DONE`] credit from a builder)
//! releases the next trigger. Triggers go to every readout unit — the
//! event-synchronous broadcast typical of trigger-driven DAQ.

use crate::{xfn, ORG_DAQ};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use xdaq_core::{Delivery, Dispatcher, I2oListener};
use xdaq_i2o::{DeviceClass, Message, Tid};

/// Shared counters of the event manager.
#[derive(Debug, Default)]
pub struct EvtMgrStats {
    /// Triggers issued.
    pub triggered: AtomicU64,
    /// Completion credits received.
    pub completed: AtomicU64,
    /// Set when the run finished (all events completed).
    pub run_done: AtomicBool,
}

impl EvtMgrStats {
    /// Fresh stats handle.
    pub fn new() -> Arc<EvtMgrStats> {
        Arc::new(EvtMgrStats::default())
    }
}

/// The event manager device.
///
/// Parameters:
/// * `readouts` — comma-separated TiDs (decimal) of the readout units,
/// * `window` — maximum events in flight (default 8).
pub struct EventManager {
    stats: Arc<EvtMgrStats>,
    readouts: Vec<Tid>,
    window: u64,
    next_event: u64,
    target: u64,
    configured: bool,
}

impl EventManager {
    /// Creates a manager reporting into `stats`.
    pub fn new(stats: Arc<EvtMgrStats>) -> EventManager {
        EventManager {
            stats,
            readouts: Vec::new(),
            window: 8,
            next_event: 0,
            target: 0,
            configured: false,
        }
    }

    fn configure(&mut self, ctx: &Dispatcher<'_>) {
        if self.configured {
            return;
        }
        if let Some(list) = ctx.param("readouts") {
            self.readouts = list
                .split(',')
                .filter_map(|s| s.trim().parse::<u16>().ok())
                .filter_map(|v| Tid::new(v).ok())
                .collect();
        }
        if let Some(w) = ctx.param("window").and_then(|s| s.parse().ok()) {
            self.window = w;
        }
        self.configured = true;
    }

    fn fire_trigger(&mut self, ctx: &mut Dispatcher<'_>) {
        let event = self.next_event;
        self.next_event += 1;
        for &ru in &self.readouts {
            let _ = ctx.send(
                Message::build_private(ru, ctx.own_tid(), ORG_DAQ, xfn::TRIGGER)
                    .payload(event.to_le_bytes().to_vec())
                    .finish(),
            );
        }
        self.stats.triggered.fetch_add(1, Ordering::Relaxed);
    }
}

impl I2oListener for EventManager {
    fn class(&self) -> DeviceClass {
        DeviceClass::Application(ORG_DAQ)
    }

    fn on_private(&mut self, ctx: &mut Dispatcher<'_>, msg: Delivery) {
        match msg.private.map(|p| p.x_function) {
            Some(xfn::RUN) => {
                self.configure(ctx);
                let payload = msg.payload();
                if payload.len() < 8 || self.readouts.is_empty() {
                    return;
                }
                self.target = u64::from_le_bytes(payload[..8].try_into().unwrap());
                self.next_event = 0;
                self.stats.run_done.store(false, Ordering::SeqCst);
                self.stats.triggered.store(0, Ordering::SeqCst);
                self.stats.completed.store(0, Ordering::SeqCst);
                let burst = self.window.min(self.target);
                for _ in 0..burst {
                    self.fire_trigger(ctx);
                }
                if self.target == 0 {
                    self.stats.run_done.store(true, Ordering::SeqCst);
                }
            }
            Some(xfn::EVT_DONE) => {
                let done = self.stats.completed.fetch_add(1, Ordering::Relaxed) + 1;
                if self.next_event < self.target {
                    self.fire_trigger(ctx);
                }
                if done >= self.target {
                    self.stats.run_done.store(true, Ordering::SeqCst);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{BuilderStats, BuilderUnit};
    use crate::readout::ReadoutUnit;
    use xdaq_core::{Executive, ExecutiveConfig};

    /// Full single-node DAQ chain: manager → readouts → builders →
    /// credits back to the manager.
    #[test]
    fn credit_window_drives_full_run() {
        let exec = Executive::new(ExecutiveConfig::named("daq"));
        let mgr_stats = EvtMgrStats::new();
        let b_stats = BuilderStats::new();

        let mgr = exec
            .register("mgr", Box::new(EventManager::new(mgr_stats.clone())), &[])
            .unwrap();
        let bu = exec
            .register(
                "bu0",
                Box::new(BuilderUnit::new(b_stats.clone())),
                &[("evtmgr", &mgr.raw().to_string())],
            )
            .unwrap();
        let mut ru_tids = Vec::new();
        for i in 0..3 {
            let ru = exec
                .register(
                    &format!("ru{i}"),
                    Box::new(ReadoutUnit::new()),
                    &[
                        ("source_id", &i.to_string()),
                        ("sources", "3"),
                        ("size", "128"),
                        ("builders", &bu.raw().to_string()),
                    ],
                )
                .unwrap();
            ru_tids.push(ru.raw().to_string());
        }
        // Wire the manager to the readouts (params set post-registration
        // through the utility interface, as a host would).
        exec.post(
            Message::util(mgr, Tid::HOST, xdaq_i2o::UtilFn::ParamsSet)
                .payload(xdaq_core::config::kv(&[
                    ("readouts", &ru_tids.join(",")),
                    ("window", "4"),
                ]))
                .finish(),
        )
        .unwrap();
        exec.enable_all();
        exec.post(
            Message::build_private(mgr, Tid::HOST, ORG_DAQ, xfn::RUN)
                .payload(20u64.to_le_bytes().to_vec())
                .finish(),
        )
        .unwrap();
        while exec.run_once() > 0 {}
        assert!(mgr_stats.run_done.load(Ordering::SeqCst));
        assert_eq!(mgr_stats.triggered.load(Ordering::SeqCst), 20);
        assert_eq!(mgr_stats.completed.load(Ordering::SeqCst), 20);
        assert_eq!(b_stats.events_built.load(Ordering::SeqCst), 20);
        assert_eq!(
            b_stats.fragments.load(Ordering::SeqCst),
            60,
            "3 sources x 20 events"
        );
    }

    #[test]
    fn zero_event_run_completes_immediately() {
        let exec = Executive::new(ExecutiveConfig::named("daq"));
        let stats = EvtMgrStats::new();
        let mgr = exec
            .register(
                "mgr",
                Box::new(EventManager::new(stats.clone())),
                &[("readouts", "100")],
            )
            .unwrap();
        exec.enable_all();
        exec.post(
            Message::build_private(mgr, Tid::HOST, ORG_DAQ, xfn::RUN)
                .payload(0u64.to_le_bytes().to_vec())
                .finish(),
        )
        .unwrap();
        while exec.run_once() > 0 {}
        assert!(stats.run_done.load(Ordering::SeqCst));
        assert_eq!(stats.triggered.load(Ordering::SeqCst), 0);
    }
}
