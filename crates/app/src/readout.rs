//! Readout units: the data sources of the event builder.
//!
//! On each trigger a readout unit "digitizes" one fragment of the
//! event and ships it to the builder unit that owns the event. Event
//! ownership rotates over the builders (`event_id % builders`), which
//! is exactly the n×m crossing traffic of the paper's footnote: *"In
//! our DAQ system, n nodes talk to m other nodes in both directions,
//! thus resulting in communication channels that cross over."*

use crate::fragment::FragmentHeader;
use crate::{xfn, ORG_DAQ};
use xdaq_core::{Delivery, Dispatcher, I2oListener};
use xdaq_i2o::{DeviceClass, Message, Tid};

/// One readout unit.
///
/// Parameters:
/// * `source_id` — this unit's index among the sources,
/// * `sources` — total number of readout units,
/// * `builders` — comma-separated TiDs (decimal) of the builder units,
/// * `size` — fragment payload bytes.
pub struct ReadoutUnit {
    source_id: u16,
    total_sources: u16,
    builders: Vec<Tid>,
    size: u32,
    configured: bool,
    /// Fragments produced (observable for tests).
    pub produced: u64,
}

impl ReadoutUnit {
    /// Creates an unconfigured readout unit (parameters are read on
    /// first trigger).
    pub fn new() -> ReadoutUnit {
        ReadoutUnit {
            source_id: 0,
            total_sources: 1,
            builders: Vec::new(),
            size: 1024,
            configured: false,
            produced: 0,
        }
    }

    fn configure(&mut self, ctx: &Dispatcher<'_>) {
        if self.configured {
            return;
        }
        if let Some(v) = ctx.param("source_id").and_then(|s| s.parse().ok()) {
            self.source_id = v;
        }
        if let Some(v) = ctx.param("sources").and_then(|s| s.parse().ok()) {
            self.total_sources = v;
        }
        if let Some(v) = ctx.param("size").and_then(|s| s.parse().ok()) {
            self.size = v;
        }
        if let Some(list) = ctx.param("builders") {
            self.builders = list
                .split(',')
                .filter_map(|s| s.trim().parse::<u16>().ok())
                .filter_map(|v| Tid::new(v).ok())
                .collect();
        }
        self.configured = true;
    }
}

impl Default for ReadoutUnit {
    fn default() -> Self {
        Self::new()
    }
}

impl I2oListener for ReadoutUnit {
    fn class(&self) -> DeviceClass {
        DeviceClass::Application(ORG_DAQ)
    }

    fn on_private(&mut self, ctx: &mut Dispatcher<'_>, msg: Delivery) {
        if msg.private.map(|p| p.x_function) != Some(xfn::TRIGGER) {
            return;
        }
        self.configure(ctx);
        if self.builders.is_empty() {
            return;
        }
        let payload = msg.payload();
        if payload.len() < 8 {
            return;
        }
        let event_id = u64::from_le_bytes(payload[..8].try_into().unwrap());
        let header = FragmentHeader {
            event_id,
            source_id: self.source_id,
            total_sources: self.total_sources,
            len: self.size,
        };
        let dest = self.builders[(event_id % self.builders.len() as u64) as usize];
        let frag = Message::build_private(dest, ctx.own_tid(), ORG_DAQ, xfn::FRAGMENT)
            .payload(header.build_payload())
            .finish();
        let _ = ctx.send(frag);
        self.produced += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use xdaq_core::{Executive, ExecutiveConfig};

    struct Collector(Arc<AtomicU64>, Arc<parking_lot::Mutex<Vec<u64>>>);
    impl I2oListener for Collector {
        fn class(&self) -> DeviceClass {
            DeviceClass::Application(ORG_DAQ)
        }
        fn on_private(&mut self, _ctx: &mut Dispatcher<'_>, msg: Delivery) {
            if msg.private.map(|p| p.x_function) == Some(xfn::FRAGMENT) {
                let h = FragmentHeader::decode(msg.payload()).unwrap();
                assert!(h.verify_payload(msg.payload()));
                self.0.fetch_add(1, Ordering::SeqCst);
                self.1.lock().push(h.event_id);
            }
        }
    }

    fn trigger(exec: &Executive, ru: Tid, event: u64) {
        exec.post(
            Message::build_private(ru, Tid::HOST, ORG_DAQ, xfn::TRIGGER)
                .payload(event.to_le_bytes().to_vec())
                .finish(),
        )
        .unwrap();
    }

    #[test]
    fn fragments_rotate_over_builders() {
        let exec = Executive::new(ExecutiveConfig::named("n"));
        let c0 = (
            Arc::new(AtomicU64::new(0)),
            Arc::new(parking_lot::Mutex::new(Vec::new())),
        );
        let c1 = (
            Arc::new(AtomicU64::new(0)),
            Arc::new(parking_lot::Mutex::new(Vec::new())),
        );
        let b0 = exec
            .register("b0", Box::new(Collector(c0.0.clone(), c0.1.clone())), &[])
            .unwrap();
        let b1 = exec
            .register("b1", Box::new(Collector(c1.0.clone(), c1.1.clone())), &[])
            .unwrap();
        let ru = exec
            .register(
                "ru",
                Box::new(ReadoutUnit::new()),
                &[
                    ("source_id", "0"),
                    ("sources", "1"),
                    ("size", "256"),
                    ("builders", &format!("{},{}", b0.raw(), b1.raw())),
                ],
            )
            .unwrap();
        exec.enable_all();
        for event in 0..10u64 {
            trigger(&exec, ru, event);
        }
        while exec.run_once() > 0 {}
        assert_eq!(c0.0.load(Ordering::SeqCst), 5, "even events");
        assert_eq!(c1.0.load(Ordering::SeqCst), 5, "odd events");
        assert!(c0.1.lock().iter().all(|e| e % 2 == 0));
        assert!(c1.1.lock().iter().all(|e| e % 2 == 1));
    }

    #[test]
    fn unconfigured_readout_produces_nothing() {
        let exec = Executive::new(ExecutiveConfig::named("n"));
        let ru = exec
            .register("ru", Box::new(ReadoutUnit::new()), &[])
            .unwrap();
        exec.enable_all();
        trigger(&exec, ru, 0);
        while exec.run_once() > 0 {}
        // No builders parameter: nothing sent, nothing crashes.
        assert_eq!(exec.stats().dropped, 0);
    }
}
