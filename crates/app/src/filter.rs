//! Filter units: the consumers of built events.
//!
//! In the CMS DAQ that motivated XDAQ, builder units feed filter farms
//! that run physics selection. Here a filter unit applies a
//! deterministic accept/reject decision (a hash of the event id against
//! an accept fraction), modelling the selection stage with a
//! reproducible workload.

use crate::{xfn, ORG_DAQ};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use xdaq_core::{Delivery, Dispatcher, I2oListener};
use xdaq_i2o::DeviceClass;

/// Shared counters of one filter unit.
#[derive(Debug, Default)]
pub struct FilterStats {
    /// Events received.
    pub received: AtomicU64,
    /// Events accepted.
    pub accepted: AtomicU64,
    /// Events rejected.
    pub rejected: AtomicU64,
    /// Sum of event sizes seen (bytes).
    pub bytes: AtomicU64,
}

impl FilterStats {
    /// Fresh stats handle.
    pub fn new() -> Arc<FilterStats> {
        Arc::new(FilterStats::default())
    }

    /// Accept fraction observed so far.
    pub fn accept_rate(&self) -> f64 {
        let r = self.received.load(Ordering::Relaxed);
        if r == 0 {
            return 0.0;
        }
        self.accepted.load(Ordering::Relaxed) as f64 / r as f64
    }
}

/// One filter unit.
///
/// Parameters:
/// * `accept_percent` — events to accept, 0..=100 (default 100).
pub struct FilterUnit {
    stats: Arc<FilterStats>,
    accept_percent: u64,
    configured: bool,
}

impl FilterUnit {
    /// Creates a filter reporting into `stats`.
    pub fn new(stats: Arc<FilterStats>) -> FilterUnit {
        FilterUnit {
            stats,
            accept_percent: 100,
            configured: false,
        }
    }

    fn configure(&mut self, ctx: &Dispatcher<'_>) {
        if self.configured {
            return;
        }
        if let Some(v) = ctx.param("accept_percent").and_then(|s| s.parse().ok()) {
            self.accept_percent = v;
        }
        self.configured = true;
    }
}

/// SplitMix64 — deterministic "physics" decision per event.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl I2oListener for FilterUnit {
    fn class(&self) -> DeviceClass {
        DeviceClass::Application(ORG_DAQ)
    }

    fn on_private(&mut self, ctx: &mut Dispatcher<'_>, msg: Delivery) {
        if msg.private.map(|p| p.x_function) != Some(xfn::EVENT) {
            return;
        }
        self.configure(ctx);
        let payload = msg.payload();
        if payload.len() < 16 {
            return;
        }
        let event_id = u64::from_le_bytes(payload[..8].try_into().unwrap());
        let size = u64::from_le_bytes(payload[8..16].try_into().unwrap());
        self.stats.received.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes.fetch_add(size, Ordering::Relaxed);
        if mix(event_id) % 100 < self.accept_percent {
            self.stats.accepted.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.rejected.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdaq_core::{Executive, ExecutiveConfig};
    use xdaq_i2o::{Message, Tid};

    fn event_msg(dest: Tid, event: u64, size: u64) -> Message {
        let mut body = Vec::new();
        body.extend_from_slice(&event.to_le_bytes());
        body.extend_from_slice(&size.to_le_bytes());
        Message::build_private(dest, Tid::HOST, ORG_DAQ, xfn::EVENT)
            .payload(body)
            .finish()
    }

    #[test]
    fn accept_all_by_default() {
        let exec = Executive::new(ExecutiveConfig::named("n"));
        let stats = FilterStats::new();
        let f = exec
            .register("f", Box::new(FilterUnit::new(stats.clone())), &[])
            .unwrap();
        exec.enable_all();
        for e in 0..50 {
            exec.post(event_msg(f, e, 1000)).unwrap();
        }
        while exec.run_once() > 0 {}
        assert_eq!(stats.received.load(Ordering::SeqCst), 50);
        assert_eq!(stats.accepted.load(Ordering::SeqCst), 50);
        assert_eq!(stats.bytes.load(Ordering::SeqCst), 50_000);
        assert_eq!(stats.accept_rate(), 1.0);
    }

    #[test]
    fn partial_accept_rate_is_plausible_and_deterministic() {
        let run = || {
            let exec = Executive::new(ExecutiveConfig::named("n"));
            let stats = FilterStats::new();
            let f = exec
                .register(
                    "f",
                    Box::new(FilterUnit::new(stats.clone())),
                    &[("accept_percent", "30")],
                )
                .unwrap();
            exec.enable_all();
            for e in 0..1000 {
                exec.post(event_msg(f, e, 10)).unwrap();
            }
            while exec.run_once() > 0 {}
            stats.accepted.load(Ordering::SeqCst)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "decisions are deterministic");
        assert!((200..400).contains(&a), "~30% of 1000, got {a}");
    }

    #[test]
    fn short_event_frames_ignored() {
        let exec = Executive::new(ExecutiveConfig::named("n"));
        let stats = FilterStats::new();
        let f = exec
            .register("f", Box::new(FilterUnit::new(stats.clone())), &[])
            .unwrap();
        exec.enable_all();
        exec.post(
            Message::build_private(f, Tid::HOST, ORG_DAQ, xfn::EVENT)
                .payload(&b"tiny"[..])
                .finish(),
        )
        .unwrap();
        while exec.run_once() > 0 {}
        assert_eq!(stats.received.load(Ordering::SeqCst), 0);
    }
}
