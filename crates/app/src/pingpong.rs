//! The blackbox-benchmark device classes.
//!
//! Paper §5: *"we built a simple private device class that is
//! instantiated on one node and continuously floods a remote instance
//! of this class with messages. The second instance responds by
//! replying to each received message with exactly the same content. We
//! carried out this round-trip test with increasing payload sizes."*

use crate::{xfn, ORG_DAQ};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use xdaq_core::{Delivery, Dispatcher, I2oListener};
use xdaq_i2o::{DeviceClass, Message, Priority, Tid};

/// Shared observation window into a running [`Pinger`].
#[derive(Debug, Default)]
pub struct PingState {
    /// Set when the configured number of round trips completed.
    pub done: AtomicBool,
    /// Round trips completed so far.
    pub completed: AtomicU64,
    /// Round-trip times in nanoseconds, one per completed ping.
    pub rtts_ns: Mutex<Vec<u64>>,
}

impl PingState {
    /// Fresh state.
    pub fn new() -> Arc<PingState> {
        Arc::new(PingState::default())
    }

    /// Clears the state for a new run.
    pub fn reset(&self) {
        self.done.store(false, Ordering::SeqCst);
        self.completed.store(0, Ordering::SeqCst);
        self.rtts_ns.lock().clear();
    }

    /// One-way latencies in nanoseconds (RTT/2, the paper's metric:
    /// *"To obtain the combined transfer and upcall latency we divided
    /// the measurement values by two"*).
    pub fn one_way_ns(&self) -> Vec<u64> {
        self.rtts_ns.lock().iter().map(|r| r / 2).collect()
    }
}

/// The flooding side of the round-trip test.
///
/// Parameters (read lazily from the device's parameter set):
/// * `peer` — TiD (decimal) of the remote [`Ponger`] (usually a proxy),
/// * `payload` — payload bytes per ping,
/// * `count` — round trips to run.
///
/// The flood starts when an [`xfn::PING_START`] frame arrives.
pub struct Pinger {
    state: Arc<PingState>,
    peer: Option<Tid>,
    payload: usize,
    count: u64,
    sent_at: Option<Instant>,
    priority: Priority,
}

impl Pinger {
    /// Creates a pinger reporting into `state`.
    pub fn new(state: Arc<PingState>) -> Pinger {
        Pinger {
            state,
            peer: None,
            payload: 1,
            count: 1,
            sent_at: None,
            priority: Priority::NORMAL,
        }
    }

    fn configure(&mut self, ctx: &Dispatcher<'_>) {
        if let Some(p) = ctx.param("peer").and_then(|s| s.parse::<u16>().ok()) {
            self.peer = Tid::new(p).ok();
        }
        if let Some(n) = ctx.param("payload").and_then(|s| s.parse().ok()) {
            self.payload = n;
        }
        if let Some(c) = ctx.param("count").and_then(|s| s.parse().ok()) {
            self.count = c;
        }
    }

    fn send_ping(&mut self, ctx: &mut Dispatcher<'_>) {
        let Some(peer) = self.peer else { return };
        let seq = self.state.completed.load(Ordering::Relaxed) as u32;
        let msg = Message::build_private(peer, ctx.own_tid(), ORG_DAQ, xfn::PING)
            .priority(self.priority)
            .transaction(seq)
            .payload(vec![0xA5u8; self.payload])
            .finish();
        self.sent_at = Some(Instant::now());
        let _ = ctx.send(msg);
    }
}

impl I2oListener for Pinger {
    fn class(&self) -> DeviceClass {
        DeviceClass::Application(ORG_DAQ)
    }

    fn on_private(&mut self, ctx: &mut Dispatcher<'_>, msg: Delivery) {
        let Some(p) = msg.private else { return };
        match p.x_function {
            xfn::PING_START => {
                self.configure(ctx);
                self.state.reset();
                self.state.rtts_ns.lock().reserve(self.count as usize);
                self.send_ping(ctx);
            }
            xfn::PING => {
                // The echo came back: complete the round trip.
                if let Some(t0) = self.sent_at.take() {
                    let rtt = t0.elapsed().as_nanos() as u64;
                    self.state.rtts_ns.lock().push(rtt);
                }
                let done = self.state.completed.fetch_add(1, Ordering::Relaxed) + 1;
                if done >= self.count {
                    self.state.done.store(true, Ordering::SeqCst);
                } else {
                    self.send_ping(ctx);
                }
            }
            _ => {}
        }
    }
}

/// The echoing side: replies to each received message with exactly the
/// same content (a fresh frameSend back to the initiator, which is the
/// application pattern Table 1's "Application (incl. frameSend)" row
/// measures).
pub struct Ponger {
    /// Messages echoed (observable by tests).
    pub echoed: Arc<AtomicU64>,
}

impl Ponger {
    /// Creates a ponger.
    pub fn new() -> Ponger {
        Ponger {
            echoed: Arc::new(AtomicU64::new(0)),
        }
    }
}

impl Default for Ponger {
    fn default() -> Self {
        Self::new()
    }
}

impl I2oListener for Ponger {
    fn class(&self) -> DeviceClass {
        DeviceClass::Application(ORG_DAQ)
    }

    fn on_private(&mut self, ctx: &mut Dispatcher<'_>, msg: Delivery) {
        if msg.private.map(|p| p.x_function) != Some(xfn::PING) {
            return;
        }
        let echo = Message::build_private(msg.header.initiator, ctx.own_tid(), ORG_DAQ, xfn::PING)
            .priority(msg.priority())
            .transaction(msg.header.transaction_context)
            .payload(msg.payload().to_vec())
            .finish();
        let _ = ctx.send(echo);
        self.echoed.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdaq_core::{Executive, ExecutiveConfig};

    /// In-process ping-pong across two devices on one executive.
    #[test]
    fn local_ping_pong_completes() {
        let exec = Executive::new(ExecutiveConfig::named("n"));
        let state = PingState::new();
        let ponger = Ponger::new();
        let echoed = ponger.echoed.clone();
        let pong_tid = exec.register("pong", Box::new(ponger), &[]).unwrap();
        let ping_tid = exec
            .register(
                "ping",
                Box::new(Pinger::new(state.clone())),
                &[
                    ("peer", &pong_tid.raw().to_string()),
                    ("payload", "64"),
                    ("count", "10"),
                ],
            )
            .unwrap();
        exec.enable_all();
        exec.post(Message::build_private(ping_tid, Tid::HOST, ORG_DAQ, xfn::PING_START).finish())
            .unwrap();
        while exec.run_once() > 0 {}
        assert!(state.done.load(Ordering::SeqCst));
        assert_eq!(state.completed.load(Ordering::SeqCst), 10);
        assert_eq!(echoed.load(Ordering::SeqCst), 10);
        assert_eq!(state.rtts_ns.lock().len(), 10);
        assert!(state.one_way_ns().iter().all(|&v| v > 0));
    }

    #[test]
    fn pinger_without_peer_stays_idle() {
        let exec = Executive::new(ExecutiveConfig::named("n"));
        let state = PingState::new();
        let ping_tid = exec
            .register("ping", Box::new(Pinger::new(state.clone())), &[])
            .unwrap();
        exec.enable_all();
        exec.post(Message::build_private(ping_tid, Tid::HOST, ORG_DAQ, xfn::PING_START).finish())
            .unwrap();
        while exec.run_once() > 0 {}
        assert!(!state.done.load(Ordering::SeqCst));
        assert_eq!(state.completed.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn ponger_ignores_foreign_functions() {
        let exec = Executive::new(ExecutiveConfig::named("n"));
        let ponger = Ponger::new();
        let echoed = ponger.echoed.clone();
        let tid = exec.register("pong", Box::new(ponger), &[]).unwrap();
        exec.enable_all();
        exec.post(Message::build_private(tid, Tid::HOST, ORG_DAQ, 0x7777).finish())
            .unwrap();
        while exec.run_once() > 0 {}
        assert_eq!(echoed.load(Ordering::SeqCst), 0);
    }
}
