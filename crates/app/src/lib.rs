//! # xdaq-app — DAQ application device classes
//!
//! The application layer of the reproduction: private device classes
//! in the sense of paper §3.3 (*"an application is merely a new,
//! private 'device' class"*), namespaced under [`ORG_DAQ`].
//!
//! * [`pingpong`] — the flood/echo pair of the blackbox benchmark
//!   (§5): a [`pingpong::Pinger`] floods a remote [`pingpong::Ponger`]
//!   with fixed-payload messages and records round-trip times.
//! * [`fragment`] — event-fragment headers shared by the DAQ classes.
//! * [`readout`] — readout units: produce detector fragments on
//!   trigger.
//! * [`builder`] — builder units: assemble full events from all
//!   sources (the n×m crossing traffic that gave XDAQ its name).
//! * [`evtmgr`] — the event manager: trigger generation with a
//!   credit-based window.
//! * [`filter`] — filter units: consume built events and accept or
//!   reject them.

pub mod bstore;
pub mod builder;
pub mod evtmgr;
pub mod filter;
pub mod fragment;
pub mod pingpong;
pub mod readout;

pub use bstore::BlockStorage;
pub use builder::{BuilderStats, BuilderUnit};
pub use evtmgr::{EventManager, EvtMgrStats};
pub use filter::{FilterStats, FilterUnit};
pub use fragment::FragmentHeader;
pub use pingpong::{PingState, Pinger, Ponger};
pub use readout::ReadoutUnit;

/// Organization id of the DAQ application classes.
pub const ORG_DAQ: u16 = 0x0da0;

/// Private x-function codes of the DAQ protocol.
pub mod xfn {
    /// Ping payload (pinger → ponger and echoed back).
    pub const PING: u16 = 0x0010;
    /// Kick a pinger into its flood loop.
    pub const PING_START: u16 = 0x0011;
    /// Trigger: "produce your fragment of event N".
    pub const TRIGGER: u16 = 0x0020;
    /// A detector fragment (readout → builder).
    pub const FRAGMENT: u16 = 0x0021;
    /// A fully built event (builder → filter).
    pub const EVENT: u16 = 0x0022;
    /// Event-complete credit (builder → event manager).
    pub const EVT_DONE: u16 = 0x0023;
    /// Start a run of N events (host → event manager).
    pub const RUN: u16 = 0x0024;
}
