//! # xdaq-app — DAQ application device classes
//!
//! The application layer of the reproduction: private device classes
//! in the sense of paper §3.3 (*"an application is merely a new,
//! private 'device' class"*), namespaced under [`ORG_DAQ`].
//!
//! * [`pingpong`] — the flood/echo pair of the blackbox benchmark
//!   (§5): a [`pingpong::Pinger`] floods a remote [`pingpong::Ponger`]
//!   with fixed-payload messages and records round-trip times.
//! * [`filter`] — filter units: consume built events and accept or
//!   reject them.
//! * [`bstore`] — block storage: a sink device draining event data.
//!
//! The event-building classes — readout units, builder units, the
//! event manager and the fragment format — live in their own
//! subsystem crate, `xdaq-evb`, and are re-exported here so existing
//! `xdaq::app::*` paths keep working. The old push-style toys
//! (`EVT_DONE` and friends) are gone; the re-exports are the
//! credit-based pull implementation.

pub mod bstore;
pub mod filter;
pub mod pingpong;

pub use bstore::BlockStorage;
pub use filter::{FilterStats, FilterUnit};
pub use pingpong::{PingState, Pinger, Ponger};

pub use xdaq_evb::{
    Assembler, BuilderStats, BuilderUnit, Completed, EventManager, EvmStats, FragmentHeader, Offer,
    ReadoutUnit, FRAGMENT_HEADER_LEN,
};

/// Former name of [`EvmStats`], kept for source compatibility.
pub use xdaq_evb::EvmStats as EvtMgrStats;

/// Organization id of the DAQ application classes (shared with
/// `xdaq-evb`).
pub use xdaq_evb::ORG_DAQ;

/// Private x-function codes of the DAQ protocol. The event-builder
/// codes are aliases of [`xdaq_evb::xfn`].
pub mod xfn {
    /// Ping payload (pinger → ponger and echoed back).
    pub const PING: u16 = 0x0010;
    /// Kick a pinger into its flood loop.
    pub const PING_START: u16 = 0x0011;
    pub use xdaq_evb::xfn::{
        ASSIGN, CLEAR, CREDIT, DONE, EVENT, FRAGMENT, INVITE, PULL, RUN, TRIGGER,
    };
}
