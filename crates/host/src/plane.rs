//! The control-plane surface xcl scripts drive.
//!
//! The declarative controller lives in `xdaq-ctl`, which depends on
//! this crate (it drives nodes through a [`crate::ControlHost`]). xcl
//! must not depend on `ctl` in turn, so the interpreter talks to the
//! controller through this object-safe trait: attach an implementation
//! with [`crate::XclInterpreter::with_plane`] and the `plan` / `apply`
//! / `registry` / `drain` verbs come alive, plus a `ctl_status`
//! section in `mon` output.

/// One row of the live service registry: a managed node's desired and
/// observed state.
#[derive(Debug, Clone)]
pub struct RegistryRow {
    /// Node name from the topology declaration.
    pub node: String,
    /// Desired state (`up`, `absent`).
    pub desired: String,
    /// Observed state (`pending`, `up`, `degraded`, `draining`,
    /// `down`).
    pub actual: String,
    /// Incarnation counter — bumped on every (re)spawn.
    pub generation: u64,
    /// The node's transport URL (empty until first publish).
    pub url: String,
}

/// A declarative cluster controller, as seen from xcl.
pub trait ControlPlane: Send + Sync {
    /// Diffs desired vs actual without changing anything; returns one
    /// human-readable pending action per line (empty = converged).
    fn plan(&self) -> Vec<String>;

    /// Converges the fleet to the declaration (spawn, configure,
    /// route, enable). Returns a summary line, or an error message.
    fn apply(&self) -> Result<String, String>;

    /// The live registry, one row per declared node.
    fn registry(&self) -> Vec<RegistryRow>;

    /// Rolling restart of one node: drain it through the data-plane
    /// failover paths, stop it, respawn it, restore routes. Returns a
    /// summary line, or an error message.
    fn drain(&self, node: &str) -> Result<String, String>;

    /// Controller status for the `mon` aggregation (`ctl_status`
    /// section): registry rows, event counts, convergence state.
    fn status_json(&self) -> serde_json::Value;
}
