//! Declarative cluster inventories.
//!
//! The paper's system-management requirement (§2, third dimension):
//! *"A successful scheme has to allow configuring all cluster
//! components, whether the hardware, the framework or the
//! applications, according to one common scheme."* An inventory is
//! that scheme as data: nodes, the modules to load on them, and the
//! routes between module instances. [`ClusterInventory::apply`] walks
//! it and issues the corresponding I2O control messages.

use crate::control::{ControlError, ControlHost};
use serde_json::{json, Value};
use std::collections::HashMap;
use xdaq_i2o::Tid;

/// A module instance to load on a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleSpec {
    /// Factory name registered on the target executive.
    pub factory: String,
    /// Instance name, unique per node.
    pub instance: String,
    /// Construction parameters. Optional in the JSON form.
    pub params: HashMap<String, String>,
}

/// A node (one executive) in the cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSpec {
    /// Cluster-unique node name.
    pub name: String,
    /// How the *host* reaches it, e.g. `loop://ru0` or
    /// `tcp://10.0.0.7:4000`.
    pub url: String,
    /// Modules to load, in order. Optional in the JSON form.
    pub modules: Vec<ModuleSpec>,
}

/// A route: `on` gets a proxy for `target_instance` living on
/// `target_node`; optionally the proxy TiD is written into a parameter
/// of a local instance so applications can find their peers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteSpec {
    /// Node that receives the proxy TiD.
    pub on: String,
    /// Node hosting the target device.
    pub target_node: String,
    /// Instance name of the target device.
    pub target_instance: String,
    /// When set: `(local_instance, param_key)` — the proxy TiD (as a
    /// decimal string) is stored into that instance's parameter.
    /// Optional in the JSON form.
    pub set_param: Option<(String, String)>,
}

/// The whole cluster description.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClusterInventory {
    /// Nodes to configure.
    pub nodes: Vec<NodeSpec>,
    /// Routes to establish after all modules are loaded. Optional in
    /// the JSON form.
    pub routes: Vec<RouteSpec>,
}

fn de_err(msg: impl Into<String>) -> serde_json::Error {
    serde_json::Error {
        message: msg.into(),
        offset: 0,
    }
}

fn field_str(v: &Value, key: &str, ctx: &str) -> Result<String, serde_json::Error> {
    v[key]
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| de_err(format!("{ctx}: missing or non-string field '{key}'")))
}

fn opt_array<'a>(v: &'a Value, key: &str, ctx: &str) -> Result<Vec<&'a Value>, serde_json::Error> {
    match &v[key] {
        Value::Null => Ok(Vec::new()),
        Value::Array(items) => Ok(items.iter().collect()),
        _ => Err(de_err(format!("{ctx}: field '{key}' must be an array"))),
    }
}

impl ModuleSpec {
    fn from_value(v: &Value) -> Result<ModuleSpec, serde_json::Error> {
        let mut params = HashMap::new();
        match &v["params"] {
            Value::Null => {}
            Value::Object(map) => {
                for (k, val) in map {
                    let s = val
                        .as_str()
                        .ok_or_else(|| de_err(format!("module param '{k}' must be a string")))?;
                    params.insert(k.clone(), s.to_string());
                }
            }
            _ => return Err(de_err("module field 'params' must be an object")),
        }
        Ok(ModuleSpec {
            factory: field_str(v, "factory", "module")?,
            instance: field_str(v, "instance", "module")?,
            params,
        })
    }

    fn to_value(&self) -> Value {
        let mut params = serde_json::Map::new();
        for (k, v) in &self.params {
            params.insert(k.clone(), Value::from(v.as_str()));
        }
        json!({
            "factory": self.factory.as_str(),
            "instance": self.instance.as_str(),
            "params": params,
        })
    }
}

impl NodeSpec {
    fn from_value(v: &Value) -> Result<NodeSpec, serde_json::Error> {
        Ok(NodeSpec {
            name: field_str(v, "name", "node")?,
            url: field_str(v, "url", "node")?,
            modules: opt_array(v, "modules", "node")?
                .into_iter()
                .map(ModuleSpec::from_value)
                .collect::<Result<_, _>>()?,
        })
    }

    fn to_value(&self) -> Value {
        json!({
            "name": self.name.as_str(),
            "url": self.url.as_str(),
            "modules": self.modules.iter().map(ModuleSpec::to_value).collect::<Vec<_>>(),
        })
    }
}

impl RouteSpec {
    fn from_value(v: &Value) -> Result<RouteSpec, serde_json::Error> {
        let set_param = match &v["set_param"] {
            Value::Null => None,
            Value::Array(pair) if pair.len() == 2 => match (pair[0].as_str(), pair[1].as_str()) {
                (Some(inst), Some(key)) => Some((inst.to_string(), key.to_string())),
                _ => return Err(de_err("route 'set_param' entries must be strings")),
            },
            _ => return Err(de_err("route 'set_param' must be a two-element array")),
        };
        Ok(RouteSpec {
            on: field_str(v, "on", "route")?,
            target_node: field_str(v, "target_node", "route")?,
            target_instance: field_str(v, "target_instance", "route")?,
            set_param,
        })
    }

    fn to_value(&self) -> Value {
        let set_param = match &self.set_param {
            Some((inst, key)) => json!([inst.as_str(), key.as_str()]),
            None => Value::Null,
        };
        json!({
            "on": self.on.as_str(),
            "target_node": self.target_node.as_str(),
            "target_instance": self.target_instance.as_str(),
            "set_param": set_param,
        })
    }
}

/// What [`ClusterInventory::apply`] built.
#[derive(Debug, Default)]
pub struct AppliedCluster {
    /// Host-side proxy TiD of each node's executive.
    pub node_tids: HashMap<String, Tid>,
    /// Remote TiD of each loaded instance, keyed by (node, instance).
    pub module_tids: HashMap<(String, String), Tid>,
}

/// Inventory application failures, annotated with the failing step.
#[derive(Debug)]
pub struct ApplyError {
    /// Which step failed, e.g. `load ru0/readout0`.
    pub step: String,
    /// Underlying control error.
    pub source: ControlError,
}

impl std::fmt::Display for ApplyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "inventory step '{}' failed: {}", self.step, self.source)
    }
}

impl std::error::Error for ApplyError {}

impl ClusterInventory {
    /// Parses an inventory from JSON.
    pub fn from_json(json: &str) -> Result<ClusterInventory, serde_json::Error> {
        let v = serde_json::from_str(json)?;
        Ok(ClusterInventory {
            nodes: opt_array(&v, "nodes", "inventory")?
                .into_iter()
                .map(NodeSpec::from_value)
                .collect::<Result<_, _>>()?,
            routes: opt_array(&v, "routes", "inventory")?
                .into_iter()
                .map(RouteSpec::from_value)
                .collect::<Result<_, _>>()?,
        })
    }

    /// Serializes to pretty JSON (for generated configuration files).
    pub fn to_json(&self) -> String {
        let v = json!({
            "nodes": self.nodes.iter().map(NodeSpec::to_value).collect::<Vec<_>>(),
            "routes": self.routes.iter().map(RouteSpec::to_value).collect::<Vec<_>>(),
        });
        serde_json::to_string_pretty(&v).expect("inventory serializes")
    }

    /// Node URL lookup.
    fn url_of(&self, node: &str) -> Option<&str> {
        self.nodes
            .iter()
            .find(|n| n.name == node)
            .map(|n| n.url.as_str())
    }

    /// Applies the inventory: connect every node, load every module,
    /// then wire every route. Returns the TiD maps.
    pub fn apply(&self, host: &ControlHost) -> Result<AppliedCluster, ApplyError> {
        let step = |s: String, e: ControlError| ApplyError { step: s, source: e };
        let mut out = AppliedCluster::default();

        for node in &self.nodes {
            let tid = host
                .connect_node(&node.url, Some(&format!("node.{}", node.name)))
                .map_err(|e| step(format!("connect {}", node.name), e))?;
            out.node_tids.insert(node.name.clone(), tid);
        }

        for node in &self.nodes {
            let node_tid = out.node_tids[&node.name];
            for m in &node.modules {
                let params: Vec<(&str, &str)> = m
                    .params
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.as_str()))
                    .collect();
                let tid = host
                    .load(node_tid, &m.factory, &m.instance, &params)
                    .map_err(|e| step(format!("load {}/{}", node.name, m.instance), e))?;
                out.module_tids
                    .insert((node.name.clone(), m.instance.clone()), tid);
            }
        }

        for route in &self.routes {
            let on_tid = *out.node_tids.get(&route.on).ok_or_else(|| {
                step(
                    format!("route on {}", route.on),
                    ControlError::BadReply(format!("unknown node '{}'", route.on)),
                )
            })?;
            let target_tid = *out
                .module_tids
                .get(&(route.target_node.clone(), route.target_instance.clone()))
                .ok_or_else(|| {
                    step(
                        format!("route to {}/{}", route.target_node, route.target_instance),
                        ControlError::BadReply("unknown target instance".into()),
                    )
                })?;
            let target_url = self.url_of(&route.target_node).ok_or_else(|| {
                step(
                    format!("route to {}", route.target_node),
                    ControlError::BadReply("unknown target node".into()),
                )
            })?;
            let alias = format!("{}.{}", route.target_node, route.target_instance);
            let proxy = host
                .connect(on_tid, target_url, target_tid, Some(&alias))
                .map_err(|e| step(format!("connect {} -> {}", route.on, alias), e))?;

            if let Some((local_instance, key)) = &route.set_param {
                // Set the parameter on the local instance through a
                // host-side device proxy.
                let local_tid = *out
                    .module_tids
                    .get(&(route.on.clone(), local_instance.clone()))
                    .ok_or_else(|| {
                        step(
                            format!("set_param on {}/{}", route.on, local_instance),
                            ControlError::BadReply("unknown local instance".into()),
                        )
                    })?;
                let on_url = self.url_of(&route.on).expect("node resolved above");
                let dev = host
                    .device_proxy(on_url, local_tid)
                    .map_err(|e| step(format!("proxy {}/{}", route.on, local_instance), e))?;
                host.params_set(dev, &[(key, &proxy.raw().to_string())])
                    .map_err(|e| step(format!("params_set {}/{}", route.on, local_instance), e))?;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ClusterInventory {
        ClusterInventory {
            nodes: vec![
                NodeSpec {
                    name: "ru0".into(),
                    url: "loop://ru0".into(),
                    modules: vec![ModuleSpec {
                        factory: "readout".into(),
                        instance: "r0".into(),
                        params: [("size".to_string(), "4096".to_string())].into(),
                    }],
                },
                NodeSpec {
                    name: "bu0".into(),
                    url: "loop://bu0".into(),
                    modules: vec![],
                },
            ],
            routes: vec![RouteSpec {
                on: "bu0".into(),
                target_node: "ru0".into(),
                target_instance: "r0".into(),
                set_param: None,
            }],
        }
    }

    #[test]
    fn json_roundtrip() {
        let inv = sample();
        let json = inv.to_json();
        let back = ClusterInventory::from_json(&json).unwrap();
        assert_eq!(back, inv);
    }

    #[test]
    fn json_defaults_are_optional() {
        let inv =
            ClusterInventory::from_json(r#"{"nodes":[{"name":"a","url":"loop://a"}]}"#).unwrap();
        assert_eq!(inv.nodes.len(), 1);
        assert!(inv.nodes[0].modules.is_empty());
        assert!(inv.routes.is_empty());
    }

    #[test]
    fn url_lookup() {
        let inv = sample();
        assert_eq!(inv.url_of("ru0"), Some("loop://ru0"));
        assert_eq!(inv.url_of("nope"), None);
    }
}
