//! The control host: a node that drives executives with I2O frames.
//!
//! A `ControlHost` is itself an XDAQ node — it runs its own executive
//! with a *host agent* device that sends executive-class requests and
//! correlates the replies by initiator context. Remote executives are
//! addressed through proxy TiDs exactly like any other device, so the
//! same host code controls an in-process test cluster over the
//! loopback PT and a LAN cluster over TCP.

use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xdaq_core::config::{kv, parse_kv};
use xdaq_core::{
    Delivery, Dispatcher, ExecError, Executive, ExecutiveConfig, ExecutiveHandle, I2oListener,
};
use xdaq_i2o::{DeviceClass, ExecFn, Message, Priority, ReplyStatus, Tid, UtilFn};

/// Errors from host operations.
#[derive(Debug)]
pub enum ControlError {
    /// The executive rejected or could not route the request.
    Exec(ExecError),
    /// No reply arrived within the timeout.
    Timeout { context: u32 },
    /// The node replied with a non-success status.
    Failed { status: ReplyStatus, body: String },
    /// Reply payload was not parseable as key=value.
    BadReply(String),
}

impl std::fmt::Display for ControlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControlError::Exec(e) => write!(f, "control send failed: {e}"),
            ControlError::Timeout { context } => {
                write!(f, "no reply for request context {context}")
            }
            ControlError::Failed { status, body } => {
                write!(f, "node replied {status:?}: {body}")
            }
            ControlError::BadReply(s) => write!(f, "malformed reply: {s}"),
        }
    }
}

impl std::error::Error for ControlError {}

impl From<ExecError> for ControlError {
    fn from(e: ExecError) -> ControlError {
        ControlError::Exec(e)
    }
}

/// A collected reply.
#[derive(Debug, Clone)]
pub struct ControlReply {
    /// Status byte.
    pub status: ReplyStatus,
    /// Body after the status byte.
    pub body: Vec<u8>,
}

impl ControlReply {
    /// Parses the body as key=value lines.
    pub fn kv(&self) -> Result<HashMap<String, String>, ControlError> {
        parse_kv(&self.body).map_err(ControlError::BadReply)
    }

    /// Body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Converts non-success statuses into errors.
    pub fn ok(self) -> Result<ControlReply, ControlError> {
        if self.status.is_ok() {
            Ok(self)
        } else {
            let body = self.text();
            Err(ControlError::Failed {
                status: self.status,
                body,
            })
        }
    }
}

#[derive(Default)]
struct ReplyHub {
    replies: Mutex<HashMap<u32, ControlReply>>,
    events: Mutex<Vec<(u16, Vec<u8>)>>,
    cv: Condvar,
}

/// The host agent device: collects replies and asynchronous events.
struct HostAgent {
    hub: Arc<ReplyHub>,
}

impl I2oListener for HostAgent {
    fn class(&self) -> DeviceClass {
        DeviceClass::HostAgent
    }

    fn on_private(&mut self, _ctx: &mut Dispatcher<'_>, msg: Delivery) {
        // Asynchronous notifications (watchdog, faults) and private
        // replies land here.
        if let Some((status, body)) = msg.reply_status() {
            let mut replies = self.hub.replies.lock();
            replies.insert(
                msg.header.initiator_context,
                ControlReply {
                    status,
                    body: body.to_vec(),
                },
            );
            self.hub.cv.notify_all();
        } else if let Some(p) = msg.private {
            self.hub
                .events
                .lock()
                .push((p.x_function, msg.payload().to_vec()));
        }
    }

    fn on_reply(&mut self, _ctx: &mut Dispatcher<'_>, msg: Delivery) {
        let payload = msg.payload();
        let (status, body) = if payload.is_empty() {
            (ReplyStatus::Success, &payload[..0])
        } else {
            (ReplyStatus::from_u8(payload[0]), &payload[1..])
        };
        let mut replies = self.hub.replies.lock();
        replies.insert(
            msg.header.initiator_context,
            ControlReply {
                status,
                body: body.to_vec(),
            },
        );
        self.hub.cv.notify_all();
    }
}

/// A cluster control point (primary or secondary host).
pub struct ControlHost {
    exec: Executive,
    agent_tid: Tid,
    hub: Arc<ReplyHub>,
    seq: AtomicU32,
    timeout: Duration,
    handle: Mutex<Option<ExecutiveHandle>>,
}

impl ControlHost {
    /// Builds a host node named `name` (its own executive, not yet
    /// running — register PTs first, then call [`ControlHost::start`]).
    pub fn new(name: &str) -> ControlHost {
        ControlHost::with_config(ExecutiveConfig::named(name))
    }

    /// Builds a host node from a full [`ExecutiveConfig`] — a control
    /// plane wants supervision (and possibly flow control) on the
    /// host's own links so managed-node deaths surface as faults here.
    pub fn with_config(config: ExecutiveConfig) -> ControlHost {
        let exec = Executive::new(config);
        let hub = Arc::new(ReplyHub::default());
        let agent_tid = exec
            .register("host-agent", Box::new(HostAgent { hub: hub.clone() }), &[])
            .expect("fresh executive accepts the agent");
        exec.enable_all();
        ControlHost {
            exec,
            agent_tid,
            hub,
            seq: AtomicU32::new(1),
            timeout: Duration::from_secs(5),
            handle: Mutex::new(None),
        }
    }

    /// Routes this host's own `XFN_PEER_DOWN` faults (from supervised
    /// links) to the host agent, where [`ControlHost::take_events`]
    /// surfaces them. Requires supervision in the host's config.
    pub fn watch_local_faults(&self) {
        self.exec.watch_faults(self.agent_tid);
    }

    /// The host's own executive (to register PTs / local modules).
    pub fn executive(&self) -> &Executive {
        &self.exec
    }

    /// The agent device's TiD (initiator of all control frames).
    pub fn agent_tid(&self) -> Tid {
        self.agent_tid
    }

    /// Sets the per-request reply timeout.
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// Starts the host's dispatch loop.
    pub fn start(&self) {
        let mut h = self.handle.lock();
        if h.is_none() {
            *h = Some(self.exec.spawn());
        }
    }

    /// Stops the host's dispatch loop.
    pub fn stop(&self) {
        if let Some(h) = self.handle.lock().take() {
            h.shutdown();
        }
    }

    /// Creates a proxy TiD addressing the **executive** (TiD 1) of the
    /// node at `peer_url`.
    pub fn connect_node(&self, peer_url: &str, alias: Option<&str>) -> Result<Tid, ControlError> {
        Ok(self.exec.proxy(peer_url, Tid::EXECUTIVE, alias)?)
    }

    /// Creates a proxy TiD for an arbitrary remote device.
    pub fn device_proxy(&self, peer_url: &str, remote_tid: Tid) -> Result<Tid, ControlError> {
        Ok(self.exec.proxy(peer_url, remote_tid, None)?)
    }

    fn wait_reply(&self, context: u32) -> Result<ControlReply, ControlError> {
        let deadline = Instant::now() + self.timeout;
        let mut replies = self.hub.replies.lock();
        loop {
            if let Some(r) = replies.remove(&context) {
                return Ok(r);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(ControlError::Timeout { context });
            }
            self.hub.cv.wait_for(&mut replies, deadline - now);
        }
    }

    /// Sends an executive-class request and waits for the reply.
    pub fn request_exec(
        &self,
        dest: Tid,
        f: ExecFn,
        payload: Vec<u8>,
    ) -> Result<ControlReply, ControlError> {
        let context = self.seq.fetch_add(1, Ordering::Relaxed);
        let msg = Message::exec(dest, self.agent_tid, f)
            .priority(Priority::MAX)
            .control()
            .expect_reply()
            .context(context)
            .payload(payload)
            .finish();
        self.exec.post(msg)?;
        self.wait_reply(context)
    }

    /// Sends a utility-class request and waits for the reply.
    pub fn request_util(
        &self,
        dest: Tid,
        f: UtilFn,
        payload: Vec<u8>,
    ) -> Result<ControlReply, ControlError> {
        let context = self.seq.fetch_add(1, Ordering::Relaxed);
        let msg = Message::util(dest, self.agent_tid, f)
            .priority(Priority::MAX)
            .control()
            .expect_reply()
            .context(context)
            .payload(payload)
            .finish();
        self.exec.post(msg)?;
        self.wait_reply(context)
    }

    // ------------------------------------------------------------------
    // Convenience verbs (the xcl command set maps onto these)
    // ------------------------------------------------------------------

    /// `ExecStatusGet` as a parsed map.
    pub fn status(&self, node: Tid) -> Result<HashMap<String, String>, ControlError> {
        self.request_exec(node, ExecFn::StatusGet, Vec::new())?
            .ok()?
            .kv()
    }

    /// Enables every device on the node.
    pub fn enable(&self, node: Tid) -> Result<(), ControlError> {
        self.request_exec(node, ExecFn::SysEnable, Vec::new())?
            .ok()
            .map(|_| ())
    }

    /// Quiesces every device on the node.
    pub fn quiesce(&self, node: Tid) -> Result<(), ControlError> {
        self.request_exec(node, ExecFn::SysQuiesce, Vec::new())?
            .ok()
            .map(|_| ())
    }

    /// Resets the node (all devices back to Initialized).
    pub fn reset(&self, node: Tid) -> Result<(), ControlError> {
        self.request_exec(node, ExecFn::IopReset, Vec::new())?
            .ok()
            .map(|_| ())
    }

    /// Purges queued messages on the node.
    pub fn clear(&self, node: Tid) -> Result<(), ControlError> {
        self.request_exec(node, ExecFn::IopClear, Vec::new())?
            .ok()
            .map(|_| ())
    }

    /// Loads a module instance on the node; returns its remote TiD.
    pub fn load(
        &self,
        node: Tid,
        factory: &str,
        instance: &str,
        params: &[(&str, &str)],
    ) -> Result<Tid, ControlError> {
        let mut pairs = vec![("factory", factory), ("name", instance)];
        let prefixed: Vec<(String, &str)> = params
            .iter()
            .map(|(k, v)| (format!("param.{k}"), *v))
            .collect();
        for (k, v) in &prefixed {
            pairs.push((k.as_str(), *v));
        }
        let reply = self
            .request_exec(node, ExecFn::SwDownload, kv(&pairs))?
            .ok()?;
        let map = reply.kv()?;
        let raw: u16 = map
            .get("tid")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ControlError::BadReply(reply.text()))?;
        Tid::new(raw).map_err(|e| ControlError::BadReply(e.to_string()))
    }

    /// Destroys a device on the node.
    pub fn destroy(&self, node: Tid, device: Tid) -> Result<(), ControlError> {
        self.request_exec(
            node,
            ExecFn::DdmDestroy,
            kv(&[("tid", &device.raw().to_string())]),
        )?
        .ok()
        .map(|_| ())
    }

    /// Instructs `node` to create a proxy for a device on another node;
    /// returns the proxy TiD valid **on that node**.
    pub fn connect(
        &self,
        node: Tid,
        peer_url: &str,
        remote_tid: Tid,
        alias: Option<&str>,
    ) -> Result<Tid, ControlError> {
        let mut pairs = vec![
            ("peer".to_string(), peer_url.to_string()),
            ("remote_tid".to_string(), remote_tid.raw().to_string()),
        ];
        if let Some(a) = alias {
            pairs.push(("alias".to_string(), a.to_string()));
        }
        let pairs_ref: Vec<(&str, &str)> = pairs
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        let reply = self
            .request_exec(node, ExecFn::IopConnect, kv(&pairs_ref))?
            .ok()?;
        let map = reply.kv()?;
        let raw: u16 = map
            .get("tid")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ControlError::BadReply(reply.text()))?;
        Tid::new(raw).map_err(|e| ControlError::BadReply(e.to_string()))
    }

    /// The node's Logical Configuration Table, as reply text lines.
    pub fn lct(&self, node: Tid) -> Result<String, ControlError> {
        Ok(self
            .request_exec(node, ExecFn::LctNotify, Vec::new())?
            .ok()?
            .text())
    }

    /// Claims control rights on the node (primary/secondary host
    /// arbitration).
    pub fn claim(&self, node: Tid) -> Result<(), ControlError> {
        self.request_util(node, UtilFn::Claim, Vec::new())?
            .ok()
            .map(|_| ())
    }

    /// Releases a claim.
    pub fn release(&self, node: Tid) -> Result<(), ControlError> {
        self.request_util(node, UtilFn::ClaimRelease, Vec::new())?
            .ok()
            .map(|_| ())
    }

    /// Sets parameters on a (possibly remote, via proxy) device.
    pub fn params_set(&self, device: Tid, params: &[(&str, &str)]) -> Result<(), ControlError> {
        self.request_util(device, UtilFn::ParamsSet, kv(params))?
            .ok()
            .map(|_| ())
    }

    /// Reads parameters from a device.
    pub fn params_get(&self, device: Tid) -> Result<HashMap<String, String>, ControlError> {
        self.request_util(device, UtilFn::ParamsGet, Vec::new())?
            .ok()?
            .kv()
    }

    /// Registers this host for asynchronous fault events from a node.
    pub fn watch_events(&self, node: Tid) -> Result<(), ControlError> {
        self.request_util(node, UtilFn::EventRegister, Vec::new())?
            .ok()
            .map(|_| ())
    }

    /// Scrapes the node's monitoring snapshot (`UtilMonSnapshot`): one
    /// JSON document with registry metrics, per-priority queue gauges,
    /// pool accounting, per-transport counters and tracer state.
    pub fn scrape(&self, node: Tid) -> Result<serde_json::Value, ControlError> {
        let reply = self
            .request_util(node, UtilFn::MonSnapshot, Vec::new())?
            .ok()?;
        serde_json::from_str(&reply.text())
            .map_err(|e| ControlError::BadReply(format!("bad snapshot JSON: {}", e.message)))
    }

    /// Zeroes the node's monitoring state (`UtilMonReset`): registry
    /// metrics, trace ring and PT counters.
    pub fn mon_reset(&self, node: Tid) -> Result<(), ControlError> {
        self.request_util(node, UtilFn::MonReset, Vec::new())?
            .ok()
            .map(|_| ())
    }

    /// Enables or disables the node's frame-lifecycle tracer and
    /// returns the current trace ring (`UtilMonTraceDump`).
    pub fn trace_set(&self, node: Tid, enable: bool) -> Result<serde_json::Value, ControlError> {
        let reply = self
            .request_util(node, UtilFn::MonTraceDump, vec![u8::from(enable)])?
            .ok()?;
        serde_json::from_str(&reply.text())
            .map_err(|e| ControlError::BadReply(format!("bad trace JSON: {}", e.message)))
    }

    /// Dumps the node's trace ring without toggling the tracer.
    pub fn trace_dump(&self, node: Tid) -> Result<serde_json::Value, ControlError> {
        let reply = self
            .request_util(node, UtilFn::MonTraceDump, Vec::new())?
            .ok()?;
        serde_json::from_str(&reply.text())
            .map_err(|e| ControlError::BadReply(format!("bad trace JSON: {}", e.message)))
    }

    /// Drains collected asynchronous events `(x_function, payload)`.
    pub fn take_events(&self) -> Vec<(u16, Vec<u8>)> {
        std::mem::take(&mut self.hub.events.lock())
    }
}

impl Drop for ControlHost {
    fn drop(&mut self) {
        self.stop();
    }
}
