//! # xdaq-host — cluster control points
//!
//! Paper §3.5: *"In a distributed I2O environment in which IOPs do not
//! reside on the same bus segment, a primary host controls all
//! processing nodes. Secondary hosts may register and subsequently
//! apply for control rights."* and §4: *"Configuration and control of
//! the executive is done through I2O executive messages. They are sent
//! from a Tcl script that resides on the primary host to all executives
//! in the distributed system. In principle, however, we can choose any
//! configuration language, as long as we follow I2O message format."*
//!
//! This crate provides:
//!
//! * [`ControlHost`] — a host attachment that addresses any executive
//!   in the cluster through executive-class frames and synchronously
//!   collects replies (primary/secondary control rights via claims).
//! * [`xcl`] — the *xcl* configuration language, our stand-in for the
//!   paper's Tcl: a small line-oriented script interpreter whose
//!   commands translate one-to-one into I2O executive messages.
//! * [`inventory`] — declarative cluster descriptions (nodes, modules,
//!   routes) that compile into configuration scripts.

pub mod control;
pub mod inventory;
pub mod plane;
pub mod xcl;

pub use control::{ControlError, ControlHost, ControlReply};
pub use inventory::{ClusterInventory, ModuleSpec, NodeSpec, RouteSpec};
pub use plane::{ControlPlane, RegistryRow};
pub use xcl::{XclError, XclInterpreter, XclOutcome};
