//! xcl — the configuration and control script language.
//!
//! The paper drives its clusters from Tcl scripts on the primary host;
//! §4 notes *"in principle, however, we can choose any configuration
//! language, as long as we follow I2O message format."* xcl is that
//! principle made concrete: a deliberately small line-oriented language
//! whose every command is one I2O executive/utility message.
//!
//! ```text
//! # comments and blank lines are skipped
//! node   ru0 loop://ru0          # proxy the executive of a node
//! claim  ru0                     # take control rights
//! load   ru0 readout r0 size=4096
//! proxy  r0far loop://ru0 16     # proxy an arbitrary remote device
//! connect ru0 loop://bu0 16 peer # ru0-side proxy for bu0's device 16
//! set    r0far rate=100
//! get    r0far
//! status ru0
//! lct    ru0
//! enable ru0
//! quiesce ru0
//! reset  ru0
//! destroy ru0 16
//! release ru0
//! faults pt0 fail=300 kill=0    # reprogram a ChaosPt fault plan
//! rec    r0 sync=1               # drive a Recorder (rec.* knobs)
//! replay rp0 pace_us=250         # tune a replay transport (replay.*)
//! evb    evm 200                 # event-builder status: EVM credit and
//!                                # event-id state + per-BU build rates
//! mon    results/mon.json        # scrape every node into one JSON doc
//! monreset ru0                   # zero a node's monitoring state
//! trace  ru0 on                  # frame-lifecycle tracer on|off
//! plan                           # control plane: pending actions
//! apply                          # control plane: converge the fleet
//! registry                       # control plane: live node registry
//! drain  bu0                     # control plane: rolling restart
//! sleep  10                      # milliseconds
//! echo   text...
//! ```
//!
//! The four control-plane verbs need a [`ControlPlane`] attached via
//! [`XclInterpreter::with_plane`] (the `xdaq-ctl` controller
//! implements it); without one they fail with a pointed message.

use crate::control::{ControlError, ControlHost};
use crate::plane::ControlPlane;
use std::collections::HashMap;
use xdaq_i2o::Tid;

/// Every verb the interpreter knows, for the unknown-command error.
const VERBS: &[&str] = &[
    "node", "proxy", "claim", "release", "status", "lct", "enable", "quiesce", "reset", "clear",
    "load", "destroy", "connect", "set", "get", "faults", "rec", "replay", "qos", "evb", "watch",
    "mon", "monreset", "trace", "plan", "apply", "registry", "drain", "sleep", "echo",
];

/// A script failure, located by line.
#[derive(Debug)]
pub struct XclError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for XclError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "xcl line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for XclError {}

/// Result of a script run: one log line per executed command.
#[derive(Debug, Default)]
pub struct XclOutcome {
    /// Human-readable results, in execution order.
    pub log: Vec<String>,
    /// Handles defined by `node`/`proxy`/`load`/`connect` commands.
    pub handles: HashMap<String, Tid>,
}

/// The interpreter. Holds name → TiD handles across commands.
pub struct XclInterpreter<'a> {
    host: &'a ControlHost,
    handles: HashMap<String, Tid>,
    /// Handle names created by the `node` command, in definition order —
    /// the executives the `mon` command scrapes.
    nodes: Vec<String>,
    /// Declarative controller behind `plan`/`apply`/`registry`/`drain`.
    plane: Option<&'a dyn ControlPlane>,
}

impl<'a> XclInterpreter<'a> {
    /// New interpreter bound to a host.
    pub fn new(host: &'a ControlHost) -> XclInterpreter<'a> {
        XclInterpreter {
            host,
            handles: HashMap::new(),
            nodes: Vec::new(),
            plane: None,
        }
    }

    /// Attaches a control plane, enabling the `plan` / `apply` /
    /// `registry` / `drain` verbs and the `ctl_status` mon section.
    pub fn with_plane(mut self, plane: &'a dyn ControlPlane) -> XclInterpreter<'a> {
        self.plane = Some(plane);
        self
    }

    /// Pre-defines a handle (e.g. a TiD obtained programmatically).
    pub fn define(&mut self, name: &str, tid: Tid) {
        self.handles.insert(name.to_string(), tid);
    }

    /// Pre-defines a **node** handle: like [`XclInterpreter::define`],
    /// and also included in `mon` aggregation.
    pub fn define_node(&mut self, name: &str, tid: Tid) {
        self.define(name, tid);
        self.nodes.push(name.to_string());
    }

    fn resolve(&self, name: &str, line: usize) -> Result<Tid, XclError> {
        self.handles.get(name).copied().ok_or_else(|| XclError {
            line,
            message: format!("unknown handle '{name}'"),
        })
    }

    fn plane(&self, line: usize) -> Result<&'a dyn ControlPlane, XclError> {
        self.plane.ok_or_else(|| XclError {
            line,
            message: "no control plane attached (XclInterpreter::with_plane)".to_string(),
        })
    }

    fn fail(line: usize, e: ControlError) -> XclError {
        XclError {
            line,
            message: e.to_string(),
        }
    }

    /// Runs a whole script, stopping at the first error.
    pub fn run(&mut self, script: &str) -> Result<XclOutcome, XclError> {
        let mut out = XclOutcome::default();
        for (i, raw) in script.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let words: Vec<&str> = line.split_whitespace().collect();
            let log = self.exec_command(&words, line_no)?;
            out.log.push(log);
        }
        out.handles = self.handles.clone();
        Ok(out)
    }

    fn parse_params<'w>(words: &[&'w str]) -> Result<Vec<(&'w str, &'w str)>, String> {
        words
            .iter()
            .map(|w| {
                w.split_once('=')
                    .ok_or_else(|| format!("expected k=v, got '{w}'"))
            })
            .collect()
    }

    /// Shared body of the `faults`/`rec`/`replay` commands: sets k=v
    /// parameters on a device, prefixing plain keys with `{prefix}.`
    /// while dotted keys pass unchanged.
    fn prefixed_set(
        &mut self,
        cmd: &str,
        prefix: &str,
        handle: &str,
        rest: &[&str],
        line: usize,
    ) -> Result<String, XclError> {
        let t = self.resolve(handle, line)?;
        let params = Self::parse_params(rest).map_err(|m| XclError { line, message: m })?;
        let prefixed: Vec<(String, &str)> = params
            .iter()
            .map(|(k, v)| {
                let key = if k.contains('.') {
                    k.to_string()
                } else {
                    format!("{prefix}.{k}")
                };
                (key, *v)
            })
            .collect();
        let borrowed: Vec<(&str, &str)> = prefixed.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        self.host
            .params_set(t, &borrowed)
            .map_err(|e| Self::fail(line, e))?;
        Ok(format!("{cmd} {handle}: {} knobs", borrowed.len()))
    }

    fn exec_command(&mut self, words: &[&str], line: usize) -> Result<String, XclError> {
        let err = |m: String| XclError { line, message: m };
        match words {
            ["node", name, url] => {
                let tid = self
                    .host
                    .connect_node(url, None)
                    .map_err(|e| Self::fail(line, e))?;
                self.handles.insert(name.to_string(), tid);
                self.nodes.push(name.to_string());
                Ok(format!("node {name} -> {tid}"))
            }
            ["proxy", name, url, raw] => {
                let remote: u16 = raw.parse().map_err(|_| err(format!("bad tid '{raw}'")))?;
                let remote = Tid::new(remote).map_err(|e| err(e.to_string()))?;
                let tid = self
                    .host
                    .device_proxy(url, remote)
                    .map_err(|e| Self::fail(line, e))?;
                self.handles.insert(name.to_string(), tid);
                Ok(format!("proxy {name} -> {tid}"))
            }
            ["claim", node] => {
                let t = self.resolve(node, line)?;
                self.host.claim(t).map_err(|e| Self::fail(line, e))?;
                Ok(format!("claimed {node}"))
            }
            ["release", node] => {
                let t = self.resolve(node, line)?;
                self.host.release(t).map_err(|e| Self::fail(line, e))?;
                Ok(format!("released {node}"))
            }
            ["status", node] => {
                let t = self.resolve(node, line)?;
                let map = self.host.status(t).map_err(|e| Self::fail(line, e))?;
                let mut kv: Vec<String> = map.iter().map(|(k, v)| format!("{k}={v}")).collect();
                kv.sort();
                Ok(format!("status {node}: {}", kv.join(" ")))
            }
            ["lct", node] => {
                let t = self.resolve(node, line)?;
                let text = self.host.lct(t).map_err(|e| Self::fail(line, e))?;
                Ok(format!("lct {node}:\n{text}"))
            }
            ["enable", node] => {
                let t = self.resolve(node, line)?;
                self.host.enable(t).map_err(|e| Self::fail(line, e))?;
                Ok(format!("enabled {node}"))
            }
            ["quiesce", node] => {
                let t = self.resolve(node, line)?;
                self.host.quiesce(t).map_err(|e| Self::fail(line, e))?;
                Ok(format!("quiesced {node}"))
            }
            ["reset", node] => {
                let t = self.resolve(node, line)?;
                self.host.reset(t).map_err(|e| Self::fail(line, e))?;
                Ok(format!("reset {node}"))
            }
            ["clear", node] => {
                let t = self.resolve(node, line)?;
                self.host.clear(t).map_err(|e| Self::fail(line, e))?;
                Ok(format!("cleared {node}"))
            }
            ["load", node, factory, instance, rest @ ..] => {
                let t = self.resolve(node, line)?;
                let params = Self::parse_params(rest).map_err(err)?;
                let tid = self
                    .host
                    .load(t, factory, instance, &params)
                    .map_err(|e| Self::fail(line, e))?;
                self.handles.insert(instance.to_string(), tid);
                Ok(format!("loaded {instance} on {node} -> remote {tid}"))
            }
            ["destroy", node, raw] => {
                let t = self.resolve(node, line)?;
                let dev: u16 = raw.parse().map_err(|_| err(format!("bad tid '{raw}'")))?;
                let dev = Tid::new(dev).map_err(|e| err(e.to_string()))?;
                self.host.destroy(t, dev).map_err(|e| Self::fail(line, e))?;
                Ok(format!("destroyed {dev} on {node}"))
            }
            ["connect", node, url, raw, rest @ ..] => {
                let t = self.resolve(node, line)?;
                let remote: u16 = raw.parse().map_err(|_| err(format!("bad tid '{raw}'")))?;
                let remote = Tid::new(remote).map_err(|e| err(e.to_string()))?;
                let alias = rest.first().copied();
                let tid = self
                    .host
                    .connect(t, url, remote, alias)
                    .map_err(|e| Self::fail(line, e))?;
                Ok(format!("connected {node} -> {url} tid {tid}"))
            }
            ["set", handle, rest @ ..] => {
                let t = self.resolve(handle, line)?;
                let params = Self::parse_params(rest).map_err(err)?;
                self.host
                    .params_set(t, &params)
                    .map_err(|e| Self::fail(line, e))?;
                Ok(format!("set {handle}: {} params", params.len()))
            }
            ["get", handle] => {
                let t = self.resolve(handle, line)?;
                let map = self.host.params_get(t).map_err(|e| Self::fail(line, e))?;
                let mut kv: Vec<String> = map.iter().map(|(k, v)| format!("{k}={v}")).collect();
                kv.sort();
                Ok(format!("get {handle}: {}", kv.join(" ")))
            }
            ["faults", handle, rest @ ..] => {
                // Reprogram a fault-injecting transport through its PT
                // device: plain keys get the `chaos.` prefix (`fail=300`
                // -> `chaos.fail=300`); dotted keys pass unchanged.
                self.prefixed_set("faults", "chaos", handle, rest, line)
            }
            ["rec", handle, rest @ ..] => {
                // Drive a Recorder device at runtime: plain keys get the
                // `rec.` prefix, so `rec r0 sync=1 fsync_bytes=1048576`
                // forces a durability point and retunes batching.
                self.prefixed_set("rec", "rec", handle, rest, line)
            }
            ["replay", handle, rest @ ..] => {
                // Tune a replay transport through its PT device: plain
                // keys get the `replay.` prefix (`pace_us=250` ->
                // `replay.pace_us=250`).
                self.prefixed_set("replay", "replay", handle, rest, line)
            }
            ["qos", handle] => {
                // Flow-control / QoS status: one mon scrape, showing
                // the credit counters and per-tenant admission tallies
                // (the `shed` column is the thing operators watch).
                let t = self.resolve(handle, line)?;
                let doc = self.host.scrape(t).map_err(|e| Self::fail(line, e))?;
                let mut log = format!("qos {handle}:");
                if doc["flow"].as_object().is_some() {
                    let c = &doc["metrics"]["counters"];
                    let n = |k: &str| c[k].as_u64().unwrap_or(0);
                    log.push_str(&format!(
                        " flow window={} policy={} grants_tx={} grants_rx={} \
                         syncs_tx={} waits={} failures={} withheld={}",
                        doc["flow"]["window"],
                        doc["flow"]["policy"],
                        n("flow.grants_sent"),
                        n("flow.grants_recv"),
                        n("flow.syncs_sent"),
                        n("flow.credit_waits"),
                        n("flow.credit_failures"),
                        n("flow.grants_withheld"),
                    ));
                } else {
                    log.push_str(" flow=off");
                }
                match doc["qos"]["classes"].as_object() {
                    Some(classes) if !classes.is_empty() => {
                        for (name, c) in classes {
                            log.push_str(&format!(
                                "\n  {name}: rate={} burst={} admitted={} shed={}",
                                c["rate"], c["burst"], c["admitted"], c["shed"],
                            ));
                        }
                    }
                    _ => log.push_str(" classes=none"),
                }
                Ok(log)
            }
            ["qos", handle, rest @ ..] => {
                // Retune admission/flow at runtime through the target
                // executive's ParamsSet path. Unlike `faults`/`rec`,
                // qos knobs are naturally dotted (`class.bulk=100:50`),
                // so everything not already under `qos.` or `flow.`
                // gets the `qos.` prefix.
                let t = self.resolve(handle, line)?;
                let params = Self::parse_params(rest).map_err(|m| XclError { line, message: m })?;
                let prefixed: Vec<(String, &str)> = params
                    .iter()
                    .map(|(k, v)| {
                        let key = if k.starts_with("qos.") || k.starts_with("flow.") {
                            k.to_string()
                        } else {
                            format!("qos.{k}")
                        };
                        (key, *v)
                    })
                    .collect();
                let borrowed: Vec<(&str, &str)> =
                    prefixed.iter().map(|(k, v)| (k.as_str(), *v)).collect();
                self.host
                    .params_set(t, &borrowed)
                    .map_err(|e| Self::fail(line, e))?;
                Ok(format!("qos {handle}: {} knobs", borrowed.len()))
            }
            ["evb", handle, rest @ ..] => {
                // Event-builder status. The EVM mirrors its live
                // credit/event-id state into its parameters on every
                // ParamsGet; per-BU build rates and latency percentiles
                // come from two mon scrapes `window_ms` apart across
                // the defined nodes.
                let t = self.resolve(handle, line)?;
                let window_ms: u64 = match rest.first() {
                    Some(w) => w.parse().map_err(|_| err(format!("bad window '{w}'")))?,
                    None => 200,
                };
                let params = self.host.params_get(t).map_err(|e| Self::fail(line, e))?;
                let g = |k: &str| params.get(k).map(String::as_str).unwrap_or("?");
                let mut log = format!(
                    "evb {handle}: run={} done={} target={} completed={} lost={} \
                     reassigned={} next_event={} credits={} inflight={} queued={} \
                     bus={} dead={}",
                    g("evb.run"),
                    g("evb.run_done"),
                    g("evb.target"),
                    g("evb.completed"),
                    g("evb.lost"),
                    g("evb.reassigned"),
                    g("evb.next_event"),
                    g("evb.credits"),
                    g("evb.inflight"),
                    g("evb.queued"),
                    g("evb.bus"),
                    g("evb.bus_dead"),
                );
                let mut latency: Option<xdaq_mon::HistogramSnapshot> = None;
                for name in self.nodes.clone() {
                    let nt = self.resolve(&name, line)?;
                    let before = self.host.scrape(nt).map_err(|e| Self::fail(line, e))?;
                    let Some(built0) = before["metrics"]["counters"]["evb.bu.built"].as_u64()
                    else {
                        continue; // not a builder node
                    };
                    std::thread::sleep(std::time::Duration::from_millis(window_ms));
                    let after = self.host.scrape(nt).map_err(|e| Self::fail(line, e))?;
                    let built1 = after["metrics"]["counters"]["evb.bu.built"]
                        .as_u64()
                        .unwrap_or(built0);
                    let rate = (built1 - built0) as f64 * 1000.0 / window_ms.max(1) as f64;
                    log.push_str(&format!("\n  {name}: built={built1} rate={rate:.1} ev/s"));
                    if let Some(h) = xdaq_mon::HistogramSnapshot::from_value(
                        &after["metrics"]["histograms"]["evb.build_latency_ns"],
                    ) {
                        match &mut latency {
                            Some(total) => total.merge(&h),
                            None => latency = Some(h),
                        }
                    }
                }
                if let Some(h) = latency {
                    let ms = |q: f64| h.quantile(q).map_or(-1.0, |ns| ns as f64 / 1e6);
                    log.push_str(&format!(
                        "\n  build latency: p50={:.3}ms p90={:.3}ms p99={:.3}ms ({} events)",
                        ms(0.5),
                        ms(0.9),
                        ms(0.99),
                        h.count
                    ));
                }
                Ok(log)
            }
            ["watch", node] => {
                let t = self.resolve(node, line)?;
                self.host.watch_events(t).map_err(|e| Self::fail(line, e))?;
                Ok(format!("watching {node}"))
            }
            ["mon", rest @ ..] => {
                if self.nodes.is_empty() && self.plane.is_none() {
                    return Err(err("no nodes defined before 'mon'".to_string()));
                }
                let mut cluster = serde_json::Map::new();
                for name in self.nodes.clone() {
                    let t = self.resolve(&name, line)?;
                    let snap = self.host.scrape(t).map_err(|e| Self::fail(line, e))?;
                    cluster.insert(name, snap);
                }
                if let Some(plane) = self.plane {
                    cluster.insert("ctl_status".to_string(), plane.status_json());
                }
                let doc = serde_json::Value::Object(cluster);
                let path = rest.first().copied().unwrap_or("results/mon.json");
                if let Some(dir) = std::path::Path::new(path).parent() {
                    if !dir.as_os_str().is_empty() {
                        std::fs::create_dir_all(dir)
                            .map_err(|e| err(format!("mkdir {}: {e}", dir.display())))?;
                    }
                }
                let text = serde_json::to_string_pretty(&doc)
                    .map_err(|e| err(format!("encode snapshot: {}", e.message)))?;
                std::fs::write(path, text).map_err(|e| err(format!("write {path}: {e}")))?;
                Ok(format!("mon: {} nodes -> {path}", self.nodes.len()))
            }
            ["monreset", node] => {
                let t = self.resolve(node, line)?;
                self.host.mon_reset(t).map_err(|e| Self::fail(line, e))?;
                Ok(format!("monitoring reset on {node}"))
            }
            ["trace", node, state] => {
                let t = self.resolve(node, line)?;
                let enable = match *state {
                    "on" => true,
                    "off" => false,
                    other => return Err(err(format!("expected on|off, got '{other}'"))),
                };
                self.host
                    .trace_set(t, enable)
                    .map_err(|e| Self::fail(line, e))?;
                Ok(format!("trace {state} on {node}"))
            }
            ["plan"] => {
                let plane = self.plane(line)?;
                let actions = plane.plan();
                if actions.is_empty() {
                    Ok("plan: converged, nothing to do".to_string())
                } else {
                    Ok(format!(
                        "plan: {} pending\n  {}",
                        actions.len(),
                        actions.join("\n  ")
                    ))
                }
            }
            ["apply"] => {
                let plane = self.plane(line)?;
                plane
                    .apply()
                    .map(|s| format!("apply: {s}"))
                    .map_err(|m| err(format!("apply failed: {m}")))
            }
            ["registry"] => {
                let plane = self.plane(line)?;
                let rows = plane.registry();
                let mut log = format!("registry: {} nodes", rows.len());
                for r in rows {
                    log.push_str(&format!(
                        "\n  {} desired={} actual={} gen={} url={}",
                        r.node,
                        r.desired,
                        r.actual,
                        r.generation,
                        if r.url.is_empty() { "-" } else { &r.url },
                    ));
                }
                Ok(log)
            }
            ["drain", node] => {
                let plane = self.plane(line)?;
                plane
                    .drain(node)
                    .map(|s| format!("drain {node}: {s}"))
                    .map_err(|m| err(format!("drain {node} failed: {m}")))
            }
            ["sleep", ms] => {
                let ms: u64 = ms
                    .parse()
                    .map_err(|_| err(format!("bad duration '{ms}'")))?;
                std::thread::sleep(std::time::Duration::from_millis(ms));
                Ok(format!("slept {ms}ms"))
            }
            ["echo", rest @ ..] => Ok(rest.join(" ")),
            [cmd, ..] => Err(err(format!(
                "unknown command '{cmd}' (available: {})",
                VERBS.join(" ")
            ))),
            [] => unreachable!("blank lines filtered"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Interpreter-level parse tests that need no cluster. End-to-end
    // script runs live in the crate's integration tests.

    #[test]
    fn parse_params_accepts_kv() {
        let p = XclInterpreter::parse_params(&["a=1", "b=two"]).unwrap();
        assert_eq!(p, vec![("a", "1"), ("b", "two")]);
        assert!(XclInterpreter::parse_params(&["oops"]).is_err());
    }

    #[test]
    fn unknown_handle_reported_with_line() {
        let host = ControlHost::new("h");
        let mut x = XclInterpreter::new(&host);
        let err = x.run("\n\nstatus nowhere\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("nowhere"));
    }

    #[test]
    fn unknown_command_reported() {
        let host = ControlHost::new("h");
        let mut x = XclInterpreter::new(&host);
        let err = x.run("frobnicate all").unwrap_err();
        assert!(err.message.contains("frobnicate"));
    }

    #[test]
    fn unknown_command_lists_available_verbs() {
        let host = ControlHost::new("h");
        let mut x = XclInterpreter::new(&host);
        let err = x.run("frobnicate all").unwrap_err();
        for verb in ["node", "apply", "drain", "evb", "echo"] {
            assert!(
                err.message.contains(verb),
                "error should list '{verb}': {}",
                err.message
            );
        }
    }

    #[test]
    fn plane_verbs_need_a_plane() {
        let host = ControlHost::new("h");
        let mut x = XclInterpreter::new(&host);
        for script in ["plan", "apply", "registry", "drain bu0"] {
            let err = x.run(script).unwrap_err();
            assert!(
                err.message.contains("control plane"),
                "{script}: {}",
                err.message
            );
        }
    }

    #[test]
    fn comments_and_echo() {
        let host = ControlHost::new("h");
        let mut x = XclInterpreter::new(&host);
        let out = x.run("# comment\necho hello world\n\nsleep 1\n").unwrap();
        assert_eq!(
            out.log,
            vec!["hello world".to_string(), "slept 1ms".to_string()]
        );
    }

    #[test]
    fn define_pre_seeds_handles() {
        let host = ControlHost::new("h");
        let mut x = XclInterpreter::new(&host);
        x.define("pre", Tid::new(0x42).unwrap());
        let out = x.run("echo ok").unwrap();
        assert_eq!(out.handles.get("pre"), Some(&Tid::new(0x42).unwrap()));
    }
}
