//! Node-local monitoring for XDAQ executives.
//!
//! The paper's third architectural dimension (§2, *system management*)
//! calls for uniform access to operational data of every cluster
//! component. This crate provides the node-local half of that story:
//!
//! * a [`Registry`] of named [`Counter`]s, [`Gauge`]s and
//!   [`Histogram`]s whose record paths are single relaxed atomic
//!   operations — safe to leave enabled in the dispatch hot path;
//! * a bounded [`FrameTracer`] ring recording per-frame lifecycle
//!   events (alloc → enqueue → dispatch → PT send/recv → recycle),
//!   gated by one branch when disabled;
//! * [`PtCounters`], a fixed per-transport counter block embedded in
//!   peer transports.
//!
//! Everything here is plain data; shipping snapshots over I2O frames
//! is done by the `MonitorAgent` device class in `xdaq-core`, and
//! cluster-wide aggregation by `xdaq-host`.

mod histogram;
mod registry;
mod tracer;

pub use histogram::{Histogram, HistogramSnapshot, NUM_BUCKETS};
pub use registry::{Counter, Gauge, Registry};
pub use tracer::{FrameTracer, TraceEvent, TraceRecord};

use std::sync::atomic::{AtomicU64, Ordering};

/// Per-peer-transport traffic counters. Embedded by value in each PT
/// so recording is a relaxed add with no indirection.
#[derive(Debug, Default)]
pub struct PtCounters {
    /// Frames handed to the wire.
    pub sent_frames: AtomicU64,
    /// Payload bytes handed to the wire.
    pub sent_bytes: AtomicU64,
    /// Frames harvested from the wire.
    pub recv_frames: AtomicU64,
    /// Payload bytes harvested from the wire.
    pub recv_bytes: AtomicU64,
    /// Failed sends.
    pub send_errors: AtomicU64,
    /// Inbound frames discarded as truncated or corrupt.
    pub recv_errors: AtomicU64,
}

impl PtCounters {
    /// A zeroed counter block.
    pub fn new() -> PtCounters {
        PtCounters::default()
    }

    /// Records one outbound frame of `bytes` payload bytes.
    pub fn on_send(&self, bytes: usize) {
        self.sent_frames.fetch_add(1, Ordering::Relaxed);
        self.sent_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records one inbound frame of `bytes` payload bytes.
    pub fn on_recv(&self, bytes: usize) {
        self.recv_frames.fetch_add(1, Ordering::Relaxed);
        self.recv_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records one failed send.
    pub fn on_send_error(&self) {
        self.send_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one discarded inbound frame (truncated chain, corrupt
    /// descriptor, malformed encoding).
    pub fn on_recv_error(&self) {
        self.recv_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Current values as a JSON object.
    pub fn to_value(&self) -> serde_json::Value {
        serde_json::json!({
            "sent_frames": self.sent_frames.load(Ordering::Relaxed),
            "sent_bytes": self.sent_bytes.load(Ordering::Relaxed),
            "recv_frames": self.recv_frames.load(Ordering::Relaxed),
            "recv_bytes": self.recv_bytes.load(Ordering::Relaxed),
            "send_errors": self.send_errors.load(Ordering::Relaxed),
            "recv_errors": self.recv_errors.load(Ordering::Relaxed),
        })
    }

    /// Zeroes every counter.
    pub fn reset(&self) {
        self.sent_frames.store(0, Ordering::Relaxed);
        self.sent_bytes.store(0, Ordering::Relaxed);
        self.recv_frames.store(0, Ordering::Relaxed);
        self.recv_bytes.store(0, Ordering::Relaxed);
        self.send_errors.store(0, Ordering::Relaxed);
        self.recv_errors.store(0, Ordering::Relaxed);
    }
}

/// Shared-memory transport counters (`xdaq-shm`).
///
/// Unlike [`PtCounters`] (embedded plain atomics), these are
/// [`Counter`] handles so a `ShmPt` bound to a node's [`Registry`]
/// surfaces `shm.tx` / `shm.rx` / `shm.doorbells` / `shm.spin` /
/// `shm.copies` / `shm.peer_deaths` directly in MonSnapshot scrapes.
#[derive(Clone)]
pub struct ShmCounters {
    /// Descriptors pushed into send rings.
    pub tx: Counter,
    /// Descriptors popped from receive rings.
    pub rx: Counter,
    /// Doorbell rings issued to sleeping peers.
    pub doorbells: Counter,
    /// Busy-poll spin iterations burned before sleeping.
    pub spin: Counter,
    /// Send-path payload copies (zero-copy misses).
    pub copies: Counter,
    /// Peer processes detected dead via their region slot.
    pub peer_deaths: Counter,
}

impl ShmCounters {
    /// Standalone counters (not visible in any registry).
    pub fn new() -> ShmCounters {
        ShmCounters {
            tx: Counter::new(),
            rx: Counter::new(),
            doorbells: Counter::new(),
            spin: Counter::new(),
            copies: Counter::new(),
            peer_deaths: Counter::new(),
        }
    }

    /// Counters registered under the `shm.*` names.
    pub fn bound_to(registry: &Registry) -> ShmCounters {
        ShmCounters {
            tx: registry.counter("shm.tx"),
            rx: registry.counter("shm.rx"),
            doorbells: registry.counter("shm.doorbells"),
            spin: registry.counter("shm.spin"),
            copies: registry.counter("shm.copies"),
            peer_deaths: registry.counter("shm.peer_deaths"),
        }
    }
}

impl Default for ShmCounters {
    fn default() -> ShmCounters {
        ShmCounters::new()
    }
}

/// Event-recorder counters (`xdaq-rec`).
///
/// A `Recorder` device bound to its node's [`Registry`] surfaces
/// `rec.records` / `rec.bytes` / `rec.segments` / `rec.fsyncs` /
/// `rec.backpressure` plus the `rec.fsync_latency_ns` histogram in
/// MonSnapshot scrapes — the fsync latency distribution is what tells
/// an operator whether the durability interval or the disk is the
/// bottleneck.
#[derive(Clone)]
pub struct RecCounters {
    /// Complete event records appended to the store.
    pub records: Counter,
    /// Payload bytes persisted (framing excluded).
    pub bytes: Counter,
    /// Segment files opened (rotation count + 1).
    pub segments: Counter,
    /// `fdatasync` calls issued by the batching policy.
    pub fsyncs: Counter,
    /// Times the watermark tripped and producers were blocked.
    pub backpressure: Counter,
    /// Latency of each `fdatasync`, in nanoseconds.
    pub fsync_latency_ns: Histogram,
}

impl RecCounters {
    /// Standalone counters (not visible in any registry).
    pub fn new() -> RecCounters {
        RecCounters {
            records: Counter::new(),
            bytes: Counter::new(),
            segments: Counter::new(),
            fsyncs: Counter::new(),
            backpressure: Counter::new(),
            fsync_latency_ns: Histogram::new(),
        }
    }

    /// Counters registered under the `rec.*` names.
    pub fn bound_to(registry: &Registry) -> RecCounters {
        RecCounters {
            records: registry.counter("rec.records"),
            bytes: registry.counter("rec.bytes"),
            segments: registry.counter("rec.segments"),
            fsyncs: registry.counter("rec.fsyncs"),
            backpressure: registry.counter("rec.backpressure"),
            fsync_latency_ns: registry.histogram("rec.fsync_latency_ns"),
        }
    }
}

impl Default for RecCounters {
    fn default() -> RecCounters {
        RecCounters::new()
    }
}

/// Link-level flow-control counters (`xdaq-core::credit`).
///
/// A `CreditManager` bound to its node's [`Registry`] surfaces
/// `flow.grants_sent` / `flow.grants_recv` / `flow.syncs_sent` /
/// `flow.syncs_recv` / `flow.credit_waits` / `flow.credit_failures` /
/// `flow.grants_withheld` in MonSnapshot scrapes. `credit_failures`
/// climbing on a sender is the source-ward backpressure signal:
/// some receiver downstream has stopped granting.
#[derive(Clone)]
pub struct FlowCounters {
    /// Credit-grant frames emitted (receiver role).
    pub grants_sent: Counter,
    /// Credit-grant frames applied (sender role).
    pub grants_recv: Counter,
    /// Credit-sync frames emitted when a sender lane stalled.
    pub syncs_sent: Counter,
    /// Credit-sync frames applied (receiver role).
    pub syncs_recv: Counter,
    /// Sends that blocked waiting for credit before proceeding.
    pub credit_waits: Counter,
    /// Sends refused outright because the lane was dry.
    pub credit_failures: Counter,
    /// Replenish opportunities skipped because the local queue was
    /// above the high watermark (backpressure actively asserted).
    pub grants_withheld: Counter,
}

impl FlowCounters {
    /// Standalone counters (not visible in any registry).
    pub fn new() -> FlowCounters {
        FlowCounters {
            grants_sent: Counter::new(),
            grants_recv: Counter::new(),
            syncs_sent: Counter::new(),
            syncs_recv: Counter::new(),
            credit_waits: Counter::new(),
            credit_failures: Counter::new(),
            grants_withheld: Counter::new(),
        }
    }

    /// Counters registered under the `flow.*` names.
    pub fn bound_to(registry: &Registry) -> FlowCounters {
        FlowCounters {
            grants_sent: registry.counter("flow.grants_sent"),
            grants_recv: registry.counter("flow.grants_recv"),
            syncs_sent: registry.counter("flow.syncs_sent"),
            syncs_recv: registry.counter("flow.syncs_recv"),
            credit_waits: registry.counter("flow.credit_waits"),
            credit_failures: registry.counter("flow.credit_failures"),
            grants_withheld: registry.counter("flow.grants_withheld"),
        }
    }
}

impl Default for FlowCounters {
    fn default() -> FlowCounters {
        FlowCounters::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shm_counters_bind_to_registry() {
        let r = Registry::new();
        let c = ShmCounters::bound_to(&r);
        c.tx.add(3);
        c.doorbells.inc();
        assert_eq!(r.counter("shm.tx").get(), 3);
        assert_eq!(r.counter("shm.doorbells").get(), 1);
        assert_eq!(r.counter("shm.spin").get(), 0);
    }

    #[test]
    fn pt_counters_accumulate_and_reset() {
        let c = PtCounters::new();
        c.on_send(100);
        c.on_send(28);
        c.on_recv(64);
        c.on_send_error();
        let v = c.to_value();
        assert_eq!(v["sent_frames"].as_u64(), Some(2));
        assert_eq!(v["sent_bytes"].as_u64(), Some(128));
        assert_eq!(v["recv_frames"].as_u64(), Some(1));
        assert_eq!(v["send_errors"].as_u64(), Some(1));
        c.reset();
        assert_eq!(c.to_value()["sent_bytes"].as_u64(), Some(0));
    }
}
