//! The named-metric registry.
//!
//! Creation and lookup take a lock; the returned handles are `Arc`'d
//! atomics, so steady-state recording never touches the registry
//! again. Devices hoist their handles at plug time and record with
//! relaxed atomic ops from then on.

use crate::histogram::Histogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing event count.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh zeroed counter (registry-less use is fine for tests).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Back to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// An instantaneous level (queue depth, live blocks). Tracks its
/// high-water mark alongside the level.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    value: Arc<GaugeInner>,
}

#[derive(Debug, Default)]
struct GaugeInner {
    level: AtomicI64,
    high_water: AtomicI64,
}

impl Gauge {
    /// A fresh zeroed gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the level, updating the high-water mark.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.level.store(v, Ordering::Relaxed);
        self.value.high_water.fetch_max(v, Ordering::Relaxed);
    }

    /// Adjusts the level by `delta`, updating the high-water mark.
    #[inline]
    pub fn add(&self, delta: i64) {
        let now = self.value.level.fetch_add(delta, Ordering::Relaxed) + delta;
        self.value.high_water.fetch_max(now, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.level.load(Ordering::Relaxed)
    }

    /// Highest level seen since the last reset.
    pub fn high_water(&self) -> i64 {
        self.value.high_water.load(Ordering::Relaxed)
    }

    /// Zeroes level and high-water mark.
    pub fn reset(&self) {
        self.value.level.store(0, Ordering::Relaxed);
        self.value.high_water.store(0, Ordering::Relaxed);
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// A node's metric namespace. Cheap to clone (shared).
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: Arc<Mutex<RegistryInner>>,
}

fn locked<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Returns the counter named `name`, creating it if needed.
    pub fn counter(&self, name: &str) -> Counter {
        locked(&self.inner)
            .counters
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns the gauge named `name`, creating it if needed.
    pub fn gauge(&self, name: &str) -> Gauge {
        locked(&self.inner)
            .gauges
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns the histogram named `name`, creating it if needed.
    pub fn histogram(&self, name: &str) -> Histogram {
        locked(&self.inner)
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Zeroes every registered metric (counts, levels, buckets).
    pub fn reset(&self) {
        let inner = locked(&self.inner);
        for c in inner.counters.values() {
            c.reset();
        }
        for g in inner.gauges.values() {
            g.reset();
        }
        for h in inner.histograms.values() {
            h.reset();
        }
    }

    /// One JSON object with every metric's current state:
    /// `{"counters": {..}, "gauges": {..}, "histograms": {..}}`.
    /// Gauges serialize as `[level, high_water]`.
    pub fn snapshot(&self) -> serde_json::Value {
        let inner = locked(&self.inner);
        let mut counters = serde_json::Map::new();
        for (name, c) in &inner.counters {
            counters.insert(name.clone(), serde_json::Value::from(c.get()));
        }
        let mut gauges = serde_json::Map::new();
        for (name, g) in &inner.gauges {
            gauges.insert(name.clone(), serde_json::json!([g.get(), g.high_water()]));
        }
        let mut histograms = serde_json::Map::new();
        for (name, h) in &inner.histograms {
            histograms.insert(name.clone(), h.snapshot().to_value());
        }
        serde_json::json!({
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state() {
        let r = Registry::new();
        let a = r.counter("dispatched");
        let b = r.counter("dispatched");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("dispatched").get(), 3);
    }

    #[test]
    fn gauge_tracks_high_water() {
        let g = Gauge::new();
        g.add(5);
        g.add(-3);
        g.add(1);
        assert_eq!(g.get(), 3);
        assert_eq!(g.high_water(), 5);
        g.set(10);
        assert_eq!(g.high_water(), 10);
        g.reset();
        assert_eq!((g.get(), g.high_water()), (0, 0));
    }

    #[test]
    fn snapshot_and_reset() {
        let r = Registry::new();
        r.counter("x").add(7);
        r.gauge("q").set(4);
        r.histogram("lat").record(100);
        let v = r.snapshot();
        assert_eq!(v["counters"]["x"].as_u64(), Some(7));
        assert_eq!(v["gauges"]["q"][1].as_i64(), Some(4));
        assert_eq!(v["histograms"]["lat"]["count"].as_u64(), Some(1));
        r.reset();
        let v = r.snapshot();
        assert_eq!(v["counters"]["x"].as_u64(), Some(0));
        assert_eq!(v["histograms"]["lat"]["count"].as_u64(), Some(0));
    }

    #[test]
    fn concurrent_recording() {
        let r = Registry::new();
        let mut joins = Vec::new();
        for _ in 0..4 {
            let c = r.counter("n");
            let h = r.histogram("h");
            joins.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    c.inc();
                    h.record(i);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(r.counter("n").get(), 4000);
        assert_eq!(r.histogram("h").snapshot().count, 4000);
    }
}
