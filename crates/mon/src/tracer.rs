//! Bounded ring-buffer frame tracer.
//!
//! Records per-frame lifecycle events with a global sequence number
//! and a monotonic timestamp. The ring is lock-free: writers claim a
//! slot with one `fetch_add` and overwrite the oldest entry when the
//! ring wraps. When tracing is disabled the record path is a single
//! relaxed load and branch — cheap enough to leave compiled into every
//! hot path permanently.
//!
//! A slot is three atomics written without synchronization between
//! them; a reader racing a writer may observe a torn record. Dumps are
//! taken from quiesced or slow-path contexts (the `MonitorAgent`
//! answering a trace-dump request), where this is acceptable — the
//! sequence number lets readers discard records that changed under
//! them.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// What happened to a frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceEvent {
    /// Frame buffer allocated from a pool.
    Alloc = 0,
    /// Frame queued for dispatch.
    Enqueue = 1,
    /// Frame handed to a device listener.
    Dispatch = 2,
    /// Frame sent through a peer transport.
    PtSend = 3,
    /// Frame received from a peer transport.
    PtRecv = 4,
    /// Frame buffer returned to its pool.
    Recycle = 5,
    /// Frame dropped (no route, queue purge, PT failure).
    Drop = 6,
}

impl TraceEvent {
    /// Event from its wire byte.
    pub fn from_u8(v: u8) -> Option<TraceEvent> {
        Some(match v {
            0 => TraceEvent::Alloc,
            1 => TraceEvent::Enqueue,
            2 => TraceEvent::Dispatch,
            3 => TraceEvent::PtSend,
            4 => TraceEvent::PtRecv,
            5 => TraceEvent::Recycle,
            6 => TraceEvent::Drop,
            _ => return None,
        })
    }

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            TraceEvent::Alloc => "alloc",
            TraceEvent::Enqueue => "enqueue",
            TraceEvent::Dispatch => "dispatch",
            TraceEvent::PtSend => "pt_send",
            TraceEvent::PtRecv => "pt_recv",
            TraceEvent::Recycle => "recycle",
            TraceEvent::Drop => "drop",
        }
    }
}

/// One decoded trace entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Global record sequence number (monotonic per tracer).
    pub seq: u64,
    /// Nanoseconds since the tracer was created.
    pub ts_ns: u64,
    /// What happened.
    pub event: TraceEvent,
    /// Primary subject, typically the frame's target TiD.
    pub a: u32,
    /// Auxiliary datum, typically priority or payload length.
    pub b: u32,
}

#[derive(Debug)]
struct Slot {
    // seq + 1; 0 means never written.
    seq1: AtomicU64,
    ts_ns: AtomicU64,
    // event << 32 is packed with nothing else; a/b share the word.
    event: AtomicU64,
    ab: AtomicU64,
}

/// The ring. See the module docs for the concurrency contract.
#[derive(Debug)]
pub struct FrameTracer {
    enabled: AtomicBool,
    head: AtomicU64,
    slots: Box<[Slot]>,
    epoch: Instant,
}

impl FrameTracer {
    /// A tracer holding the last `capacity` records (rounded up to a
    /// power of two, minimum 8). Starts disabled.
    pub fn new(capacity: usize) -> FrameTracer {
        let cap = capacity.max(8).next_power_of_two();
        FrameTracer {
            enabled: AtomicBool::new(false),
            head: AtomicU64::new(0),
            slots: (0..cap)
                .map(|_| Slot {
                    seq1: AtomicU64::new(0),
                    ts_ns: AtomicU64::new(0),
                    event: AtomicU64::new(0),
                    ab: AtomicU64::new(0),
                })
                .collect(),
            epoch: Instant::now(),
        }
    }

    /// Number of slots in the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Turns recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether records are currently accepted.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Records one event. When disabled this is one load + branch.
    #[inline]
    pub fn record(&self, event: TraceEvent, a: u32, b: u32) {
        if !self.is_enabled() {
            return;
        }
        self.record_always(event, a, b);
    }

    /// The slow half of [`FrameTracer::record`], kept out of line so
    /// the disabled fast path stays a branch over a tiny function.
    #[cold]
    fn record_always(&self, event: TraceEvent, a: u32, b: u32) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq as usize) & (self.slots.len() - 1)];
        let ts = self.epoch.elapsed().as_nanos() as u64;
        slot.ts_ns.store(ts, Ordering::Relaxed);
        slot.event.store(event as u64, Ordering::Relaxed);
        slot.ab
            .store(((a as u64) << 32) | b as u64, Ordering::Relaxed);
        // seq last: a record is only considered present once complete
        // (best-effort; see module docs).
        slot.seq1.store(seq + 1, Ordering::Release);
    }

    /// Total records ever accepted (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Clears the ring (records remain possible while clearing).
    pub fn clear(&self) {
        for slot in self.slots.iter() {
            slot.seq1.store(0, Ordering::Relaxed);
        }
    }

    /// Copies out the surviving records, oldest first.
    pub fn dump(&self) -> Vec<TraceRecord> {
        let mut out: Vec<TraceRecord> = self
            .slots
            .iter()
            .filter_map(|slot| {
                let seq1 = slot.seq1.load(Ordering::Acquire);
                if seq1 == 0 {
                    return None;
                }
                let ab = slot.ab.load(Ordering::Relaxed);
                Some(TraceRecord {
                    seq: seq1 - 1,
                    ts_ns: slot.ts_ns.load(Ordering::Relaxed),
                    event: TraceEvent::from_u8(slot.event.load(Ordering::Relaxed) as u8)?,
                    a: (ab >> 32) as u32,
                    b: ab as u32,
                })
            })
            .collect();
        out.sort_by_key(|r| r.seq);
        out
    }

    /// JSON form of [`FrameTracer::dump`]: records as
    /// `[seq, ts_ns, event, a, b]` rows plus ring metadata.
    pub fn dump_value(&self) -> serde_json::Value {
        let records: Vec<serde_json::Value> = self
            .dump()
            .into_iter()
            .map(|r| serde_json::json!([r.seq, r.ts_ns, r.event.name(), r.a, r.b]))
            .collect();
        serde_json::json!({
            "capacity": self.capacity(),
            "recorded": self.recorded(),
            "enabled": self.is_enabled(),
            "records": records,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = FrameTracer::new(16);
        t.record(TraceEvent::Alloc, 1, 2);
        assert_eq!(t.recorded(), 0);
        assert!(t.dump().is_empty());
    }

    #[test]
    fn records_in_order_with_sequence() {
        let t = FrameTracer::new(16);
        t.set_enabled(true);
        t.record(TraceEvent::Alloc, 0x10, 0);
        t.record(TraceEvent::Enqueue, 0x10, 3);
        t.record(TraceEvent::Dispatch, 0x10, 3);
        let d = t.dump();
        assert_eq!(d.len(), 3);
        assert_eq!(d[0].seq, 0);
        assert_eq!(d[2].event, TraceEvent::Dispatch);
        assert_eq!(d[1].b, 3);
        assert!(d.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn ring_keeps_newest_on_wrap() {
        let t = FrameTracer::new(8);
        t.set_enabled(true);
        for i in 0..20u32 {
            t.record(TraceEvent::Dispatch, i, 0);
        }
        let d = t.dump();
        assert_eq!(d.len(), 8);
        assert_eq!(d.first().unwrap().a, 12);
        assert_eq!(d.last().unwrap().a, 19);
        assert_eq!(t.recorded(), 20);
    }

    #[test]
    fn clear_and_json() {
        let t = FrameTracer::new(8);
        t.set_enabled(true);
        t.record(TraceEvent::PtSend, 7, 128);
        let v = t.dump_value();
        assert_eq!(v["records"][0][2].as_str(), Some("pt_send"));
        assert_eq!(v["records"][0][4].as_u64(), Some(128));
        t.clear();
        assert!(t.dump().is_empty());
    }

    #[test]
    fn concurrent_writers_keep_unique_seqs() {
        let t = std::sync::Arc::new(FrameTracer::new(1024));
        t.set_enabled(true);
        let mut joins = Vec::new();
        for id in 0..4u32 {
            let t = t.clone();
            joins.push(std::thread::spawn(move || {
                for i in 0..200 {
                    t.record(TraceEvent::Dispatch, id, i);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let d = t.dump();
        assert_eq!(d.len(), 800);
        let mut seqs: Vec<u64> = d.iter().map(|r| r.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), 800);
    }
}
