//! Fixed-bucket power-of-two latency histograms.
//!
//! Bucket `0` holds the value `0`; bucket `i > 0` holds values in
//! `[2^(i-1), 2^i)`. With 64-bit samples that is 65 buckets total —
//! small enough to snapshot into one I2O frame, wide enough for
//! nanosecond latencies up to centuries. Recording is one relaxed
//! `fetch_add` on the bucket plus two on the sum/count aggregates;
//! there is no allocation anywhere on the record path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of buckets: one for zero plus one per power of two.
pub const NUM_BUCKETS: usize = 65;

#[derive(Debug)]
pub(crate) struct HistogramInner {
    counts: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

/// A concurrent histogram handle. Cloning shares the underlying
/// buckets, so a handle can be hoisted into a hot loop once and
/// recorded into without touching the registry again.
#[derive(Clone, Debug)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            inner: Arc::new(HistogramInner {
                counts: std::array::from_fn(|_| AtomicU64::new(0)),
                sum: AtomicU64::new(0),
                count: AtomicU64::new(0),
            }),
        }
    }

    /// Index of the bucket `value` falls into.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Half-open value range `[lo, hi)` covered by bucket `index`
    /// (`hi` is `u64::MAX` for the last bucket, which is closed).
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        assert!(index < NUM_BUCKETS, "bucket index out of range");
        match index {
            0 => (0, 1),
            64 => (1 << 63, u64::MAX),
            i => (1 << (i - 1), 1 << i),
        }
    }

    /// Records one sample. Allocation-free; three relaxed atomic adds.
    #[inline]
    pub fn record(&self, value: u64) {
        let inner = &*self.inner;
        inner.counts[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Copies the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: std::array::from_fn(|i| self.inner.counts[i].load(Ordering::Relaxed)),
            sum: self.inner.sum.load(Ordering::Relaxed),
            count: self.inner.count.load(Ordering::Relaxed),
        }
    }

    /// Zeroes all buckets and aggregates.
    pub fn reset(&self) {
        for c in &self.inner.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.inner.sum.store(0, Ordering::Relaxed);
        self.inner.count.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of a [`Histogram`], mergeable across nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`Histogram::bucket_bounds`]).
    pub counts: [u64; NUM_BUCKETS],
    /// Sum of all recorded values.
    pub sum: u64,
    /// Total number of samples.
    pub count: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            counts: [0; NUM_BUCKETS],
            sum: 0,
            count: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Adds `other`'s samples into `self` (cluster-wide aggregation).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.sum += other.sum;
        self.count += other.count;
    }

    /// Mean of the recorded values, when any exist.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Upper-bound estimate of the `q`-quantile (0.0..=1.0): the
    /// exclusive upper bound of the bucket holding that rank.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Histogram::bucket_bounds(i).1);
            }
        }
        Some(u64::MAX)
    }

    /// JSON form: aggregates plus only the non-empty buckets, each as
    /// `[lo, hi, count]`.
    pub fn to_value(&self) -> serde_json::Value {
        let buckets: Vec<serde_json::Value> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| {
                let (lo, hi) = Histogram::bucket_bounds(i);
                serde_json::json!([lo, hi, *c])
            })
            .collect();
        serde_json::json!({
            "count": self.count,
            "sum": self.sum,
            "buckets": buckets,
        })
    }

    /// Rebuilds a snapshot from [`HistogramSnapshot::to_value`] JSON.
    pub fn from_value(v: &serde_json::Value) -> Option<HistogramSnapshot> {
        let mut snap = HistogramSnapshot {
            counts: [0; NUM_BUCKETS],
            sum: v["sum"].as_u64()?,
            count: v["count"].as_u64()?,
        };
        for b in v["buckets"].as_array()? {
            let lo = b[0].as_u64()?;
            let c = b[2].as_u64()?;
            snap.counts[Histogram::bucket_index(lo)] = c;
        }
        Some(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_partition_u64() {
        // Every bucket's lo is the previous bucket's hi: no gaps, no
        // overlaps, full coverage of 0..=u64::MAX.
        let mut expect_lo = 0u64;
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert_eq!(lo, expect_lo, "bucket {i} lower bound");
            assert!(hi > lo);
            expect_lo = hi;
        }
        assert_eq!(expect_lo, u64::MAX);
    }

    #[test]
    fn values_land_in_their_bucket() {
        for v in [0u64, 1, 2, 3, 4, 255, 256, 1023, 1 << 40, u64::MAX] {
            let i = Histogram::bucket_index(v);
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert!(v >= lo, "{v} < lo {lo} (bucket {i})");
            assert!(
                v < hi || (i == 64 && v <= hi),
                "{v} >= hi {hi} (bucket {i})"
            );
        }
    }

    #[test]
    fn record_snapshot_reset() {
        let h = Histogram::new();
        h.record(0);
        h.record(5);
        h.record(5);
        h.record(1000);
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 1010);
        assert_eq!(s.counts[0], 1);
        assert_eq!(s.counts[Histogram::bucket_index(5)], 2);
        assert_eq!(s.mean(), Some(252.5));
        h.reset();
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn merge_adds() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(3);
        b.record(3);
        b.record(100);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 106);
        assert_eq!(s.counts[Histogram::bucket_index(3)], 2);
    }

    #[test]
    fn json_roundtrip() {
        let h = Histogram::new();
        for v in [0u64, 1, 7, 7, 4096, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        let back = HistogramSnapshot::from_value(&s.to_value()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn quantile_upper_bounds() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(100_000);
        let s = h.snapshot();
        let (_, hi10) = Histogram::bucket_bounds(Histogram::bucket_index(10));
        assert_eq!(s.quantile(0.5), Some(hi10));
        let (_, hi_big) = Histogram::bucket_bounds(Histogram::bucket_index(100_000));
        assert_eq!(s.quantile(1.0), Some(hi_big));
    }
}
