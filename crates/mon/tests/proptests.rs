//! Property-based tests of the monitoring primitives: recording,
//! merging and snapshotting may never lose samples or misplace them
//! across bucket bounds, and the JSON form must round-trip exactly.

use proptest::prelude::*;
use xdaq_mon::{Histogram, HistogramSnapshot, Registry, NUM_BUCKETS};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn record_preserves_counts_and_sum(
        values in proptest::collection::vec(any::<u64>(), 0..500)
    ) {
        let h = Histogram::new();
        let mut sum = 0u64;
        for &v in &values {
            h.record(v);
            sum = sum.wrapping_add(v);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.counts.iter().sum::<u64>(), values.len() as u64);
        prop_assert_eq!(s.sum, sum);
    }

    #[test]
    fn every_value_lands_within_its_bucket_bounds(v in any::<u64>()) {
        let i = Histogram::bucket_index(v);
        prop_assert!(i < NUM_BUCKETS);
        let (lo, hi) = Histogram::bucket_bounds(i);
        prop_assert!(v >= lo);
        // Last bucket is closed at u64::MAX; all others are half-open.
        if i == NUM_BUCKETS - 1 {
            prop_assert!(v <= hi);
        } else {
            prop_assert!(v < hi);
        }
    }

    #[test]
    fn merge_is_sample_preserving(
        a in proptest::collection::vec(0u64..(1 << 56), 0..200),
        b in proptest::collection::vec(0u64..(1 << 56), 0..200),
    ) {
        let ha = Histogram::new();
        let hb = Histogram::new();
        let hall = Histogram::new();
        for &v in &a {
            ha.record(v);
            hall.record(v);
        }
        for &v in &b {
            hb.record(v);
            hall.record(v);
        }
        let mut merged = ha.snapshot();
        merged.merge(&hb.snapshot());
        // Merging two nodes' snapshots equals one node having seen
        // every sample.
        prop_assert_eq!(merged, hall.snapshot());
    }

    #[test]
    fn merge_with_empty_is_identity(
        values in proptest::collection::vec(0u64..(1 << 60), 0..200)
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut s = h.snapshot();
        s.merge(&HistogramSnapshot::default());
        prop_assert_eq!(s, h.snapshot());
    }

    #[test]
    fn json_roundtrip_is_exact(
        values in proptest::collection::vec(any::<u64>(), 0..300)
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        let back = HistogramSnapshot::from_value(&s.to_value()).unwrap();
        prop_assert_eq!(back, s);
    }

    #[test]
    fn quantile_bounds_are_bucket_uppers(
        values in proptest::collection::vec(1u64..1_000_000, 1..300),
        q_pct in 0u32..=100,
    ) {
        let q = f64::from(q_pct) / 100.0;
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        let bound = s.quantile(q).unwrap();
        // The reported quantile never understates: at least
        // ceil(q * count) samples are <= bound.
        let rank = ((q * values.len() as f64).ceil() as usize).max(1);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert!(sorted[rank - 1] <= bound);
    }

    #[test]
    fn registry_counters_sum_like_integers(
        incs in proptest::collection::vec(1u64..1000, 0..100)
    ) {
        let reg = Registry::new();
        let c = reg.counter("test.adds");
        for &n in &incs {
            c.add(n);
        }
        prop_assert_eq!(c.get(), incs.iter().sum::<u64>());
        reg.reset();
        prop_assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_high_water_is_running_max(
        deltas in proptest::collection::vec(-50i64..50, 1..100)
    ) {
        let reg = Registry::new();
        let g = reg.gauge("test.depth");
        let mut level = 0i64;
        let mut peak = 0i64;
        for &d in &deltas {
            g.add(d);
            level += d;
            peak = peak.max(level);
        }
        prop_assert_eq!(g.get(), level);
        prop_assert_eq!(g.high_water(), peak);
    }
}
