//! # xdaq-gm — a Myrinet/GM-like user-level messaging substrate
//!
//! The paper's evaluation (§5) runs XDAQ over **Myrinet/GM 1.1.3** on a
//! Myricom M2M-PCI64 NIC with a LANai 7 processor. We have no such
//! hardware, so this crate implements the closest synthetic equivalent
//! that exercises the same code paths (see DESIGN.md, substitutions):
//!
//! * **user-level, OS-bypass messaging** — ports are plain objects in
//!   process memory; send/poll never enter the kernel (our packets
//!   travel through in-memory queues between threads);
//! * **GM's token discipline** — a port holds a finite number of *send
//!   tokens*; a send consumes one and the matching
//!   [`GmEvent::SendCompleted`] returns it. Receivers must *provide
//!   receive buffers* per size class; a packet is only delivered once
//!   a buffer of its class is available (flow control, no drops);
//! * **polling reception** — [`Port::poll`] is a non-blocking poll just
//!   like `gm_receive`; [`Port::blocking_poll`] spins then yields;
//! * **a calibrated wire-latency model** ([`LatencyModel`]) — the
//!   linear base + per-byte delay of the real interconnect, so that the
//!   reproduction of Figure 6 exhibits the paper's linear payload
//!   slopes. With [`LatencyModel::ZERO`] the fabric degenerates to pure
//!   queue hand-off, which is what the framework-overhead measurement
//!   uses.
//!
//! The crate is deliberately independent of the I2O layer: it plays the
//! role of the *vendor library* the paper's GM Peer Transport wraps.

pub mod error;
pub mod latency;
pub mod net;
pub mod port;
pub mod ring;
pub mod token;

pub use error::GmError;
pub use latency::LatencyModel;
pub use net::{Fabric, FabricStats, NodeId};
pub use port::{GmAddr, GmEvent, Port, PortConfig, PortId};
pub use ring::SpscRing;
pub use token::TokenCounter;

/// Largest message one GM packet can carry (GM 1.x allowed up to 2^31,
/// practically bounded by receive buffers; we bound at the I2O block
/// maximum so one frame always fits one packet).
pub const GM_MAX_MESSAGE: usize = 256 * 1024;
