//! A lock-free single-producer/single-consumer ring buffer.
//!
//! This is the "hardware FIFO" primitive: the paper's IOP-480 board
//! (§7) gives I2O support through hardware FIFOs, and GM's
//! LANai-to-host channel is an SPSC descriptor ring in pinned memory.
//! The implementation follows the classic Lamport queue with acquire/
//! release pairs on head and tail (cf. *Rust Atomics and Locks*,
//! ch. 5): the producer owns `tail`, the consumer owns `head`, and each
//! only ever *reads* the other's index.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

struct Shared<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next slot the consumer will read. Only the consumer writes it.
    head: AtomicUsize,
    /// Next slot the producer will write. Only the producer writes it.
    tail: AtomicUsize,
    /// Set when either side is dropped.
    closed: AtomicBool,
    capacity: usize,
}

// SAFETY: slots are only accessed by the single producer (between tail
// claim and publish) or the single consumer (between head read and
// advance); the acquire/release pairs on head/tail order those
// accesses.
unsafe impl<T: Send> Send for Shared<T> {}
unsafe impl<T: Send> Sync for Shared<T> {}

/// Creates a connected SPSC ring of `capacity` slots (rounded up to a
/// power of two, minimum 2).
pub fn spsc_ring<T: Send>(capacity: usize) -> (SpscProducer<T>, SpscConsumer<T>) {
    let capacity = capacity.max(2).next_power_of_two();
    let slots = (0..capacity)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let shared = Arc::new(Shared {
        slots,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        closed: AtomicBool::new(false),
        capacity,
    });
    (
        SpscProducer {
            shared: shared.clone(),
        },
        SpscConsumer { shared },
    )
}

/// Convenience namespace so callers can write `SpscRing::with_capacity`.
pub struct SpscRing;

impl SpscRing {
    /// Alias for [`spsc_ring`].
    pub fn with_capacity<T: Send>(capacity: usize) -> (SpscProducer<T>, SpscConsumer<T>) {
        spsc_ring(capacity)
    }
}

/// Producer half.
pub struct SpscProducer<T> {
    shared: Arc<Shared<T>>,
}

/// Consumer half.
pub struct SpscConsumer<T> {
    shared: Arc<Shared<T>>,
}

/// Push failure.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// Ring full; value returned.
    Full(T),
    /// Consumer dropped; value returned.
    Closed(T),
}

impl<T: Send> SpscProducer<T> {
    /// Attempts to push without blocking.
    pub fn push(&self, value: T) -> Result<(), PushError<T>> {
        let s = &*self.shared;
        if s.closed.load(Ordering::Relaxed) {
            return Err(PushError::Closed(value));
        }
        let tail = s.tail.load(Ordering::Relaxed);
        let head = s.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) == s.capacity {
            return Err(PushError::Full(value));
        }
        let idx = tail & (s.capacity - 1);
        // SAFETY: slot `idx` is not visible to the consumer until the
        // release store of `tail` below, and the producer is unique.
        unsafe { (*s.slots[idx].get()).write(value) };
        s.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        let s = &*self.shared;
        s.tail
            .load(Ordering::Relaxed)
            .wrapping_sub(s.head.load(Ordering::Acquire))
    }

    /// True if the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once the consumer is gone.
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(Ordering::Relaxed)
    }
}

impl<T: Send> SpscConsumer<T> {
    /// Attempts to pop without blocking.
    pub fn pop(&self) -> Option<T> {
        let s = &*self.shared;
        let head = s.head.load(Ordering::Relaxed);
        let tail = s.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let idx = head & (s.capacity - 1);
        // SAFETY: the acquire load of `tail` synchronizes with the
        // producer's release store, so the slot is initialized; the
        // consumer is unique.
        let value = unsafe { (*s.slots[idx].get()).assume_init_read() };
        s.head.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// Peeks at the front element without consuming it.
    pub fn peek<R>(&self, f: impl FnOnce(&T) -> R) -> Option<R> {
        let s = &*self.shared;
        let head = s.head.load(Ordering::Relaxed);
        let tail = s.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let idx = head & (s.capacity - 1);
        // SAFETY: as in `pop`, but the value is only borrowed.
        let r = unsafe { f((*s.slots[idx].get()).assume_init_ref()) };
        Some(r)
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        let s = &*self.shared;
        s.tail
            .load(Ordering::Acquire)
            .wrapping_sub(s.head.load(Ordering::Relaxed))
    }

    /// True if the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once the producer is gone.
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(Ordering::Relaxed)
    }
}

impl<T> Drop for SpscProducer<T> {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::Relaxed);
    }
}

impl<T> Drop for SpscConsumer<T> {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::Relaxed);
    }
}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Drain any remaining initialized slots.
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        let mut i = head;
        while i != tail {
            let idx = i & (self.capacity - 1);
            // SAFETY: exclusive access in Drop; slots in [head, tail)
            // are initialized.
            unsafe { (*self.slots[idx].get()).assume_init_drop() };
            i = i.wrapping_add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let (p, c) = spsc_ring::<u32>(4);
        p.push(1).unwrap();
        p.push(2).unwrap();
        assert_eq!(c.pop(), Some(1));
        assert_eq!(c.pop(), Some(2));
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let (p, _c) = spsc_ring::<u8>(3);
        p.push(1).unwrap();
        p.push(2).unwrap();
        p.push(3).unwrap();
        p.push(4).unwrap(); // capacity rounded to 4
        assert!(matches!(p.push(5), Err(PushError::Full(5))));
    }

    #[test]
    fn full_then_drain_then_reuse() {
        let (p, c) = spsc_ring::<usize>(2);
        p.push(10).unwrap();
        p.push(11).unwrap();
        assert!(matches!(p.push(12), Err(PushError::Full(12))));
        assert_eq!(c.pop(), Some(10));
        p.push(12).unwrap();
        assert_eq!(c.pop(), Some(11));
        assert_eq!(c.pop(), Some(12));
    }

    #[test]
    fn peek_does_not_consume() {
        let (p, c) = spsc_ring::<String>(2);
        p.push("a".into()).unwrap();
        assert_eq!(c.peek(|s| s.clone()), Some("a".to_string()));
        assert_eq!(c.len(), 1);
        assert_eq!(c.pop(), Some("a".to_string()));
    }

    #[test]
    fn close_detected_by_producer() {
        let (p, c) = spsc_ring::<u8>(2);
        drop(c);
        assert!(p.is_closed());
        assert!(matches!(p.push(1), Err(PushError::Closed(1))));
    }

    #[test]
    fn leftover_items_dropped_cleanly() {
        let drops = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        #[derive(Debug)]
        struct D(std::sync::Arc<std::sync::atomic::AtomicUsize>);
        impl Drop for D {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let (p, c) = spsc_ring::<D>(8);
        p.push(D(drops.clone())).unwrap();
        p.push(D(drops.clone())).unwrap();
        let popped = c.pop().unwrap();
        drop(popped);
        assert_eq!(drops.load(Ordering::Relaxed), 1);
        drop(p);
        drop(c);
        assert_eq!(
            drops.load(Ordering::Relaxed),
            2,
            "queued item dropped with ring"
        );
    }

    #[test]
    fn cross_thread_throughput() {
        let (p, c) = spsc_ring::<u64>(256);
        const N: u64 = 100_000;
        let producer = std::thread::spawn(move || {
            for v in 0..N {
                let mut v = v;
                loop {
                    match p.push(v) {
                        Ok(()) => break,
                        Err(PushError::Full(ret)) => {
                            v = ret;
                            std::hint::spin_loop();
                        }
                        Err(PushError::Closed(_)) => panic!("closed"),
                    }
                }
            }
        });
        let mut expected = 0u64;
        while expected < N {
            if let Some(v) = c.pop() {
                assert_eq!(v, expected, "strict FIFO across threads");
                expected += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
    }
}
