//! GM send-token accounting.
//!
//! GM flow control: a port owns a fixed number of send tokens. Each
//! `gm_send` consumes one; the token returns when the send-complete
//! callback fires. Running out of tokens is an application error in GM
//! (`GM_SEND_TOKEN_VIOLATION`); we surface it as a recoverable
//! [`crate::GmError::NoSendTokens`] so callers can poll completions and
//! retry.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A counting semaphore without blocking: acquire fails fast.
#[derive(Debug)]
pub struct TokenCounter {
    available: AtomicUsize,
    max: usize,
}

impl TokenCounter {
    /// Creates a counter with `max` tokens, all available.
    pub fn new(max: usize) -> TokenCounter {
        TokenCounter {
            available: AtomicUsize::new(max),
            max,
        }
    }

    /// Takes one token; `false` when none are available.
    pub fn try_acquire(&self) -> bool {
        self.available
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| v.checked_sub(1))
            .is_ok()
    }

    /// Returns one token.
    ///
    /// # Panics
    /// If more tokens are released than were acquired (accounting bug).
    pub fn release(&self) {
        let prev = self.available.fetch_add(1, Ordering::AcqRel);
        assert!(
            prev < self.max,
            "token over-release: {prev} >= {}",
            self.max
        );
    }

    /// Tokens currently available.
    pub fn available(&self) -> usize {
        self.available.load(Ordering::Acquire)
    }

    /// Configured maximum.
    pub fn max(&self) -> usize {
        self.max
    }

    /// Tokens currently outstanding (consumed, not yet released).
    pub fn outstanding(&self) -> usize {
        self.max - self.available()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_cycle() {
        let t = TokenCounter::new(2);
        assert!(t.try_acquire());
        assert!(t.try_acquire());
        assert!(!t.try_acquire());
        assert_eq!(t.outstanding(), 2);
        t.release();
        assert!(t.try_acquire());
    }

    #[test]
    #[should_panic(expected = "over-release")]
    fn over_release_panics() {
        let t = TokenCounter::new(1);
        t.release();
    }

    #[test]
    fn concurrent_acquire_never_exceeds_max() {
        let t = std::sync::Arc::new(TokenCounter::new(16));
        let acquired = std::sync::Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let t = t.clone();
                let acquired = acquired.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        if t.try_acquire() {
                            let now = acquired.fetch_add(1, Ordering::AcqRel) + 1;
                            assert!(now <= 16);
                            acquired.fetch_sub(1, Ordering::AcqRel);
                            t.release();
                        }
                    }
                });
            }
        });
        assert_eq!(t.available(), 16);
    }
}
