//! The fabric: node/port registry and global accounting.

use crate::error::GmError;
use crate::latency::LatencyModel;
use crate::port::{GmAddr, Port, PortConfig, PortId, PortInner};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identifier of one node (machine) on the fabric.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NodeId(pub u16);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gm{}", self.0)
    }
}

/// Fabric-wide counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Packets injected.
    pub packets: u64,
    /// Payload bytes injected.
    pub bytes: u64,
    /// Sends rejected because the destination queue was full.
    pub rejects: u64,
}

/// The simulated Myrinet switch fabric.
///
/// One `Fabric` stands in for the physical network: ports open on it,
/// packets travel through it, and the [`LatencyModel`] decides when
/// they become visible at the far side.
pub struct Fabric {
    latency: LatencyModel,
    ports: RwLock<HashMap<(u16, u8), Arc<PortInner>>>,
    packets: AtomicU64,
    bytes: AtomicU64,
    rejects: AtomicU64,
}

impl Fabric {
    /// A fabric with no injected wire latency.
    pub fn new() -> Arc<Fabric> {
        Fabric::with_latency(LatencyModel::ZERO)
    }

    /// A fabric with the given latency model.
    pub fn with_latency(latency: LatencyModel) -> Arc<Fabric> {
        Arc::new(Fabric {
            latency,
            ports: RwLock::new(HashMap::new()),
            packets: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            rejects: AtomicU64::new(0),
        })
    }

    /// The configured latency model.
    pub fn latency(&self) -> LatencyModel {
        self.latency
    }

    /// Opens a port with default configuration.
    pub fn open_port(self: &Arc<Fabric>, node: NodeId, port: PortId) -> Result<Port, GmError> {
        self.open_port_with(node, port, PortConfig::default())
    }

    /// Opens a port with explicit configuration.
    pub fn open_port_with(
        self: &Arc<Fabric>,
        node: NodeId,
        port: PortId,
        config: PortConfig,
    ) -> Result<Port, GmError> {
        let key = (node.0, port.0);
        let inner = Arc::new(PortInner::new(GmAddr { node, port }, config));
        let mut ports = self.ports.write();
        if ports.contains_key(&key) {
            return Err(GmError::PortInUse {
                node: node.0,
                port: port.0,
            });
        }
        ports.insert(key, inner.clone());
        drop(ports);
        Ok(Port::new(inner, self.clone()))
    }

    /// Looks up a destination port.
    pub(crate) fn lookup(&self, addr: GmAddr) -> Result<Arc<PortInner>, GmError> {
        let ports = self.ports.read();
        ports
            .get(&(addr.node.0, addr.port.0))
            .cloned()
            .ok_or(GmError::UnknownPort {
                node: addr.node.0,
                port: addr.port.0,
            })
    }

    /// Removes a port on close.
    pub(crate) fn unregister(&self, addr: GmAddr) {
        self.ports.write().remove(&(addr.node.0, addr.port.0));
    }

    pub(crate) fn account_send(&self, bytes: usize) {
        self.packets.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn account_reject(&self) {
        self.rejects.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> FabricStats {
        FabricStats {
            packets: self.packets.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            rejects: self.rejects.load(Ordering::Relaxed),
        }
    }

    /// Number of open ports.
    pub fn open_ports(&self) -> usize {
        self.ports.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_and_close_ports() {
        let fabric = Fabric::new();
        let p = fabric.open_port(NodeId(1), PortId(2)).unwrap();
        assert_eq!(fabric.open_ports(), 1);
        assert!(matches!(
            fabric.open_port(NodeId(1), PortId(2)),
            Err(GmError::PortInUse { .. })
        ));
        drop(p);
        assert_eq!(fabric.open_ports(), 0, "drop unregisters");
        // Reopen works after close.
        let _p = fabric.open_port(NodeId(1), PortId(2)).unwrap();
    }

    #[test]
    fn stats_accumulate() {
        let fabric = Fabric::new();
        fabric.account_send(100);
        fabric.account_send(50);
        fabric.account_reject();
        let s = fabric.stats();
        assert_eq!(s.packets, 2);
        assert_eq!(s.bytes, 150);
        assert_eq!(s.rejects, 1);
    }
}
