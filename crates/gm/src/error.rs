//! GM error codes.

use core::fmt;

/// Failures surfaced by the GM-like API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GmError {
    /// Destination node is not registered with the fabric.
    UnknownNode(u16),
    /// Destination (node, port) pair has no open port.
    UnknownPort { node: u16, port: u8 },
    /// A port with this id is already open on the node.
    PortInUse { node: u16, port: u8 },
    /// All send tokens are outstanding; poll for completions first.
    NoSendTokens,
    /// The destination inbound queue is full (bounded fabric).
    QueueFull { node: u16, port: u8 },
    /// Message exceeds [`crate::GM_MAX_MESSAGE`].
    MessageTooLarge(usize),
    /// The port has been closed.
    PortClosed,
}

impl fmt::Display for GmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GmError::UnknownNode(n) => write!(f, "unknown GM node {n}"),
            GmError::UnknownPort { node, port } => {
                write!(f, "no open port {port} on GM node {node}")
            }
            GmError::PortInUse { node, port } => {
                write!(f, "GM port {port} on node {node} already open")
            }
            GmError::NoSendTokens => write!(f, "no GM send tokens available"),
            GmError::QueueFull { node, port } => {
                write!(f, "inbound queue full at GM node {node} port {port}")
            }
            GmError::MessageTooLarge(n) => {
                write!(
                    f,
                    "message of {n} bytes exceeds GM maximum {}",
                    crate::GM_MAX_MESSAGE
                )
            }
            GmError::PortClosed => write!(f, "GM port is closed"),
        }
    }
}

impl std::error::Error for GmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_facts() {
        assert!(GmError::UnknownNode(3).to_string().contains('3'));
        assert!(GmError::NoSendTokens.to_string().contains("token"));
        assert!(GmError::MessageTooLarge(1).to_string().contains("exceeds"));
    }
}
