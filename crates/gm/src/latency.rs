//! The wire-latency model.
//!
//! The blackbox experiment (Figure 6) shows one-way latencies that grow
//! linearly with payload: a per-message base cost (NIC processing,
//! PCI transactions) plus a per-byte cost (wire bandwidth, DMA). The
//! model injects that delay into the simulated fabric so the
//! reproduction exhibits the paper's slopes; with [`LatencyModel::ZERO`]
//! the fabric is as fast as the queues allow, which is the right
//! setting for measuring pure software overhead (the *difference*
//! between the XDAQ and raw-GM series, which is hardware-independent).

use std::time::Duration;

/// Linear latency model: `delay = base + len * per_byte`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Fixed per-message delay in nanoseconds.
    pub base_ns: u64,
    /// Additional delay per payload byte, in nanoseconds.
    pub per_byte_ns: f64,
}

impl LatencyModel {
    /// No injected delay — pure software path.
    pub const ZERO: LatencyModel = LatencyModel {
        base_ns: 0,
        per_byte_ns: 0.0,
    };

    /// Calibrated to the paper's measured GM 1.1.3 curve on the LANai 7
    /// / 400 MHz Pentium II testbed: ~18 µs one-way base latency and
    /// ~21.5 ns/byte (≈ 2×Gbit effective wire+DMA path), which puts a
    /// 4096-byte message at ≈ 106 µs one way — matching the middle
    /// slope of Figure 6.
    pub const fn myrinet_lanai7() -> LatencyModel {
        LatencyModel {
            base_ns: 18_000,
            per_byte_ns: 21.5,
        }
    }

    /// A fast modern-interconnect setting (for the scaled-down variant
    /// of the Figure 6 run): 1 µs base, ~0.1 ns/byte.
    pub const fn fast_lan() -> LatencyModel {
        LatencyModel {
            base_ns: 1_000,
            per_byte_ns: 0.1,
        }
    }

    /// Delay for a message of `len` bytes.
    pub fn delay(&self, len: usize) -> Duration {
        Duration::from_nanos(self.base_ns + (len as f64 * self.per_byte_ns) as u64)
    }

    /// True when the model injects no delay.
    pub fn is_zero(&self) -> bool {
        self.base_ns == 0 && self.per_byte_ns == 0.0
    }
}

impl Default for LatencyModel {
    fn default() -> LatencyModel {
        LatencyModel::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model() {
        assert!(LatencyModel::ZERO.is_zero());
        assert_eq!(LatencyModel::ZERO.delay(4096), Duration::ZERO);
    }

    #[test]
    fn linear_growth() {
        let m = LatencyModel {
            base_ns: 100,
            per_byte_ns: 2.0,
        };
        assert_eq!(m.delay(0), Duration::from_nanos(100));
        assert_eq!(m.delay(50), Duration::from_nanos(200));
    }

    #[test]
    fn lanai7_matches_paper_shape() {
        let m = LatencyModel::myrinet_lanai7();
        let one_byte = m.delay(1).as_nanos() as f64 / 1000.0;
        let four_k = m.delay(4096).as_nanos() as f64 / 1000.0;
        // Paper Fig. 6: GM series runs from ~18-20 µs to ~105-110 µs.
        assert!(one_byte > 15.0 && one_byte < 25.0, "{one_byte}");
        assert!(four_k > 95.0 && four_k < 115.0, "{four_k}");
    }
}
