//! Ports: the GM endpoint object.

use crate::error::GmError;
use crate::net::{Fabric, NodeId};
use crate::token::TokenCounter;
use crate::GM_MAX_MESSAGE;
use crossbeam::queue::SegQueue;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Port number within a node (GM 1.x exposed 8 ports per NIC).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct PortId(pub u8);

/// Full address of a port on the fabric.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct GmAddr {
    /// Node (machine).
    pub node: NodeId,
    /// Port on that node.
    pub port: PortId,
}

impl std::fmt::Display for GmAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.node, self.port.0)
    }
}

/// Receive-buffer size classes: 64 B … 256 KB in powers of two, as in
/// GM's `gm_provide_receive_buffer(size)` discipline.
pub const NUM_SIZE_CLASSES: usize = 13;
const MIN_CLASS_SHIFT: u32 = 6; // 64 bytes

/// Maps a message length to its size class.
#[inline]
pub fn size_class(len: usize) -> usize {
    let rounded = len.max(64).next_power_of_two();
    (rounded.trailing_zeros() - MIN_CLASS_SHIFT) as usize
}

/// Port tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct PortConfig {
    /// Send tokens (outstanding sends).
    pub send_tokens: usize,
    /// Bound on the inbound packet queue.
    pub inbound_capacity: usize,
    /// When true, reception does not require provided buffers
    /// (convenience mode for tests/examples; real GM discipline is
    /// `false` + explicit [`Port::provide_receive_buffer`] calls).
    pub unlimited_credits: bool,
}

impl Default for PortConfig {
    fn default() -> PortConfig {
        PortConfig {
            send_tokens: 64,
            inbound_capacity: 4096,
            unlimited_credits: false,
        }
    }
}

impl PortConfig {
    /// Convenience configuration without buffer accounting.
    pub fn unlimited() -> PortConfig {
        PortConfig {
            unlimited_credits: true,
            ..PortConfig::default()
        }
    }
}

/// One packet in flight.
pub(crate) struct Packet {
    src: GmAddr,
    data: Box<[u8]>,
    /// `None` with the zero latency model.
    deliver_at: Option<Instant>,
}

/// Events produced by [`Port::poll`] — the analogue of `gm_receive`.
#[derive(Debug)]
pub enum GmEvent {
    /// A message arrived.
    Received {
        /// Sender address.
        src: GmAddr,
        /// Message bytes (the "DMA-ed" receive buffer).
        data: Box<[u8]>,
    },
    /// A send completed; its token has been returned.
    SendCompleted {
        /// Destination of the completed send.
        dest: GmAddr,
        /// Payload length.
        len: usize,
        /// Caller-supplied context (callback argument in GM).
        context: u64,
    },
}

pub(crate) struct PortInner {
    addr: GmAddr,
    inbound: Mutex<VecDeque<Packet>>,
    inbound_capacity: usize,
    completions: SegQueue<GmEvent>,
    send_tokens: TokenCounter,
    credits: [AtomicI64; NUM_SIZE_CLASSES],
    unlimited_credits: bool,
}

impl PortInner {
    pub(crate) fn new(addr: GmAddr, config: PortConfig) -> PortInner {
        PortInner {
            addr,
            inbound: Mutex::new(VecDeque::with_capacity(64)),
            inbound_capacity: config.inbound_capacity,
            completions: SegQueue::new(),
            send_tokens: TokenCounter::new(config.send_tokens),
            credits: std::array::from_fn(|_| AtomicI64::new(0)),
            unlimited_credits: config.unlimited_credits,
        }
    }

    /// Enqueues a packet; `false` when the queue is full.
    fn enqueue(&self, packet: Packet) -> bool {
        let mut q = self.inbound.lock();
        if q.len() >= self.inbound_capacity {
            return false;
        }
        q.push_back(packet);
        true
    }
}

/// An open GM port. Dropping it closes the port.
pub struct Port {
    inner: Arc<PortInner>,
    fabric: Arc<Fabric>,
}

impl Port {
    pub(crate) fn new(inner: Arc<PortInner>, fabric: Arc<Fabric>) -> Port {
        Port { inner, fabric }
    }

    /// This port's fabric address.
    pub fn addr(&self) -> GmAddr {
        self.inner.addr
    }

    /// Available send tokens.
    pub fn send_tokens(&self) -> usize {
        self.inner.send_tokens.available()
    }

    /// Provides `count` receive buffers of class `size` (rounded up to
    /// the class capacity), enabling delivery of that class.
    pub fn provide_receive_buffer(&self, size: usize, count: usize) {
        let class = size_class(size);
        self.inner.credits[class].fetch_add(count as i64, Ordering::AcqRel);
    }

    /// Sends `data` to `dest`, consuming one send token.
    ///
    /// On success a [`GmEvent::SendCompleted`] with `context` becomes
    /// available on **this** port, returning the token.
    pub fn send(&self, dest: GmAddr, data: &[u8], context: u64) -> Result<(), GmError> {
        self.send_boxed(dest, data.to_vec().into_boxed_slice(), context)
    }

    /// Zero-copy variant of [`Port::send`] taking ownership of the
    /// buffer.
    pub fn send_boxed(&self, dest: GmAddr, data: Box<[u8]>, context: u64) -> Result<(), GmError> {
        let len = data.len();
        if len > GM_MAX_MESSAGE {
            return Err(GmError::MessageTooLarge(len));
        }
        let target = self.fabric.lookup(dest)?;
        if !self.inner.send_tokens.try_acquire() {
            return Err(GmError::NoSendTokens);
        }
        let latency = self.fabric.latency();
        let deliver_at = if latency.is_zero() {
            None
        } else {
            Some(Instant::now() + latency.delay(len))
        };
        let packet = Packet {
            src: self.inner.addr,
            data,
            deliver_at,
        };
        if !target.enqueue(packet) {
            self.inner.send_tokens.release();
            self.fabric.account_reject();
            return Err(GmError::QueueFull {
                node: dest.node.0,
                port: dest.port.0,
            });
        }
        self.fabric.account_send(len);
        // The "wire DMA" completed as soon as the packet is queued; the
        // completion event returns the token when polled.
        self.inner.send_tokens.release();
        self.inner
            .completions
            .push(GmEvent::SendCompleted { dest, len, context });
        Ok(())
    }

    /// Non-blocking poll for the next event (`gm_receive`).
    pub fn poll(&self) -> Option<GmEvent> {
        if let Some(ev) = self.inner.completions.pop() {
            return Some(ev);
        }
        let mut q = self.inner.inbound.lock();
        let front = q.front()?;
        if let Some(t) = front.deliver_at {
            if Instant::now() < t {
                return None;
            }
        }
        if !self.inner.unlimited_credits {
            let class = size_class(front.data.len());
            let c = &self.inner.credits[class];
            if c.load(Ordering::Acquire) <= 0 {
                return None; // no receive buffer provided for this class
            }
            c.fetch_sub(1, Ordering::AcqRel);
        }
        let packet = q.pop_front().expect("front checked");
        drop(q);
        Some(GmEvent::Received {
            src: packet.src,
            data: packet.data,
        })
    }

    /// Polls until an event arrives or `timeout` elapses. Spins
    /// briefly, then yields — the pattern of a GM polling loop that
    /// stays kind to co-scheduled threads.
    pub fn blocking_poll(&self, timeout: Duration) -> Option<GmEvent> {
        let deadline = Instant::now() + timeout;
        let mut spins = 0u32;
        loop {
            if let Some(ev) = self.poll() {
                return Some(ev);
            }
            if Instant::now() >= deadline {
                return None;
            }
            spins += 1;
            if spins < 1000 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Packets waiting in the inbound queue (diagnostics).
    pub fn pending(&self) -> usize {
        self.inner.inbound.lock().len()
    }
}

impl Drop for Port {
    fn drop(&mut self) {
        self.fabric.unregister(self.inner.addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyModel;

    fn pair(fabric: &Arc<Fabric>) -> (Port, Port) {
        let a = fabric
            .open_port_with(NodeId(1), PortId(0), PortConfig::unlimited())
            .unwrap();
        let b = fabric
            .open_port_with(NodeId(2), PortId(0), PortConfig::unlimited())
            .unwrap();
        (a, b)
    }

    #[test]
    fn send_and_receive() {
        let fabric = Fabric::new();
        let (a, b) = pair(&fabric);
        a.send(b.addr(), b"ping", 7).unwrap();
        // Sender sees the completion.
        match a.poll().unwrap() {
            GmEvent::SendCompleted { len, context, .. } => {
                assert_eq!(len, 4);
                assert_eq!(context, 7);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Receiver sees the data.
        match b.poll().unwrap() {
            GmEvent::Received { src, data } => {
                assert_eq!(src, a.addr());
                assert_eq!(&data[..], b"ping");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_destination() {
        let fabric = Fabric::new();
        let (a, _b) = pair(&fabric);
        let ghost = GmAddr {
            node: NodeId(99),
            port: PortId(0),
        };
        assert!(matches!(
            a.send(ghost, b"x", 0),
            Err(GmError::UnknownPort { node: 99, .. })
        ));
    }

    #[test]
    fn message_too_large() {
        let fabric = Fabric::new();
        let (a, b) = pair(&fabric);
        let big = vec![0u8; GM_MAX_MESSAGE + 1];
        assert!(matches!(
            a.send(b.addr(), &big, 0),
            Err(GmError::MessageTooLarge(_))
        ));
    }

    #[test]
    fn credit_discipline_blocks_until_buffer_provided() {
        let fabric = Fabric::new();
        let a = fabric.open_port(NodeId(1), PortId(0)).unwrap();
        let b = fabric.open_port(NodeId(2), PortId(0)).unwrap();
        a.send(b.addr(), &[1u8; 100], 0).unwrap();
        let _ = a.poll(); // drain completion
        assert!(b.poll().is_none(), "no buffer provided yet");
        b.provide_receive_buffer(128, 1);
        assert!(matches!(b.poll(), Some(GmEvent::Received { .. })));
        assert!(b.poll().is_none(), "credit consumed");
    }

    #[test]
    fn credits_are_per_class() {
        let fabric = Fabric::new();
        let a = fabric.open_port(NodeId(1), PortId(0)).unwrap();
        let b = fabric.open_port(NodeId(2), PortId(0)).unwrap();
        a.send(b.addr(), &[1u8; 100], 0).unwrap(); // class of 128
        b.provide_receive_buffer(4096, 1); // wrong class
        assert!(b.poll().is_none());
        b.provide_receive_buffer(100, 1);
        assert!(b.poll().is_some());
    }

    #[test]
    fn latency_model_delays_delivery() {
        let fabric = Fabric::with_latency(LatencyModel {
            base_ns: 3_000_000,
            per_byte_ns: 0.0,
        });
        let (a, b) = pair(&fabric);
        let t0 = Instant::now();
        a.send(b.addr(), b"slow", 0).unwrap();
        assert!(b.poll().is_none(), "not yet deliverable");
        let ev = b.blocking_poll(Duration::from_millis(100)).unwrap();
        assert!(matches!(ev, GmEvent::Received { .. }));
        assert!(t0.elapsed() >= Duration::from_millis(3));
    }

    #[test]
    fn queue_full_returns_token() {
        let fabric = Fabric::new();
        let a = fabric
            .open_port_with(NodeId(1), PortId(0), PortConfig::unlimited())
            .unwrap();
        let cfg = PortConfig {
            inbound_capacity: 2,
            ..PortConfig::unlimited()
        };
        let b = fabric.open_port_with(NodeId(2), PortId(0), cfg).unwrap();
        a.send(b.addr(), b"1", 0).unwrap();
        a.send(b.addr(), b"2", 0).unwrap();
        let tokens_before = a.send_tokens();
        assert!(matches!(
            a.send(b.addr(), b"3", 0),
            Err(GmError::QueueFull { .. })
        ));
        assert_eq!(a.send_tokens(), tokens_before, "token returned on reject");
        assert_eq!(fabric.stats().rejects, 1);
    }

    #[test]
    fn send_token_exhaustion() {
        let fabric = Fabric::new();
        let cfg = PortConfig {
            send_tokens: 1,
            ..PortConfig::unlimited()
        };
        let a = fabric.open_port_with(NodeId(1), PortId(0), cfg).unwrap();
        let b = fabric
            .open_port_with(NodeId(2), PortId(0), PortConfig::unlimited())
            .unwrap();
        // Tokens are returned synchronously on queue success in this
        // model, so exhaustion is only observable transiently; verify
        // the API path by sending many times without polling.
        for _ in 0..100 {
            a.send(b.addr(), b"x", 0).unwrap();
        }
        assert_eq!(a.send_tokens(), 1);
    }

    #[test]
    fn ping_pong_across_threads() {
        let fabric = Fabric::new();
        let a = fabric
            .open_port_with(NodeId(1), PortId(0), PortConfig::unlimited())
            .unwrap();
        let b = fabric
            .open_port_with(NodeId(2), PortId(0), PortConfig::unlimited())
            .unwrap();
        let a_addr = a.addr();
        let echo = std::thread::spawn(move || {
            for _ in 0..1000 {
                loop {
                    match b.blocking_poll(Duration::from_secs(5)) {
                        Some(GmEvent::Received { src, data }) => {
                            b.send(src, &data, 0).unwrap();
                            break;
                        }
                        Some(GmEvent::SendCompleted { .. }) => continue,
                        None => panic!("echo timeout"),
                    }
                }
            }
        });
        for i in 0..1000u32 {
            let msg = i.to_le_bytes();
            a.send(
                GmAddr {
                    node: NodeId(2),
                    port: PortId(0),
                },
                &msg,
                0,
            )
            .unwrap();
            loop {
                match a.blocking_poll(Duration::from_secs(5)) {
                    Some(GmEvent::Received { data, .. }) => {
                        assert_eq!(&data[..], &msg);
                        break;
                    }
                    Some(GmEvent::SendCompleted { .. }) => continue,
                    None => panic!("pinger timeout"),
                }
            }
        }
        echo.join().unwrap();
        let _ = a_addr;
    }
}
