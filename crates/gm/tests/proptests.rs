//! Property tests of the GM substrate: ring conservation, token
//! accounting, and fabric delivery.

use proptest::prelude::*;
use xdaq_gm::ring::{spsc_ring, PushError};
use xdaq_gm::{Fabric, GmEvent, NodeId, PortConfig, PortId, TokenCounter};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Everything pushed is popped, in order, across any interleaving
    /// of pushes and pops.
    #[test]
    fn ring_conserves_order(
        capacity in 2usize..64,
        ops in proptest::collection::vec(any::<bool>(), 1..400)
    ) {
        let (p, c) = spsc_ring::<u64>(capacity);
        let mut next_push = 0u64;
        let mut next_pop = 0u64;
        for push in ops {
            if push {
                match p.push(next_push) {
                    Ok(()) => next_push += 1,
                    Err(PushError::Full(_)) => {
                        prop_assert!(p.len() >= capacity);
                    }
                    Err(PushError::Closed(_)) => unreachable!(),
                }
            } else if let Some(v) = c.pop() {
                prop_assert_eq!(v, next_pop);
                next_pop += 1;
            }
        }
        while let Some(v) = c.pop() {
            prop_assert_eq!(v, next_pop);
            next_pop += 1;
        }
        prop_assert_eq!(next_pop, next_push, "conservation");
    }

    /// Tokens never go negative or exceed max under any usage pattern.
    #[test]
    fn tokens_stay_bounded(
        max in 1usize..32,
        ops in proptest::collection::vec(any::<bool>(), 1..200)
    ) {
        let t = TokenCounter::new(max);
        let mut held = 0usize;
        for acquire in ops {
            if acquire {
                if t.try_acquire() {
                    held += 1;
                }
            } else if held > 0 {
                t.release();
                held -= 1;
            }
            prop_assert_eq!(t.outstanding(), held);
            prop_assert!(t.available() <= max);
        }
    }

    /// Every message sent over the fabric arrives exactly once with
    /// intact bytes, per destination FIFO.
    #[test]
    fn fabric_delivers_exactly_once(
        msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..512), 1..64)
    ) {
        let fabric = Fabric::new();
        let a = fabric
            .open_port_with(NodeId(1), PortId(0), PortConfig::unlimited())
            .unwrap();
        let b = fabric
            .open_port_with(NodeId(2), PortId(0), PortConfig::unlimited())
            .unwrap();
        for m in &msgs {
            a.send(b.addr(), m, 0).unwrap();
        }
        let mut got = Vec::new();
        loop {
            match b.poll() {
                Some(GmEvent::Received { data, .. }) => got.push(data.to_vec()),
                Some(GmEvent::SendCompleted { .. }) => continue,
                None => break,
            }
        }
        let n = got.len() as u64;
        prop_assert_eq!(got, msgs);
        prop_assert_eq!(fabric.stats().packets, n);
    }
}
