//! Chained transfers through the executive: sending logical payloads
//! larger than one pooled block (paper §4: SGL / chaining blocks
//! "transmit arbitrary length information").
//!
//! The sender side is [`Dispatcher::send_chained`]; the receiver side
//! accumulates the chain with a [`ChainCollector`] until the final
//! frame (no `MORE` flag) arrives.

use crate::error::ExecError;
use crate::listener::{Delivery, Dispatcher};
use std::collections::HashMap;
use xdaq_i2o::{MsgFlags, MsgHeader, OrgId, PrivateHeader, Tid};
use xdaq_mempool::split_into_frames;

/// Default per-frame payload budget for chained sends: one 4 KB class.
pub const DEFAULT_CHAIN_SEGMENT: usize = 4096;

impl Dispatcher<'_> {
    /// Sends `payload` to `target` as a chain of private frames of at
    /// most `max_frame_payload` bytes each (the final frame clears
    /// `MORE`). Returns the number of frames sent.
    ///
    /// All frames share this device's TiD as initiator and `chain_id`
    /// as transaction context, which is what [`ChainCollector`] keys
    /// reassembly on — pick distinct ids for concurrent chains.
    pub fn send_chained(
        &mut self,
        target: Tid,
        org: OrgId,
        x_function: u16,
        chain_id: u32,
        payload: &[u8],
        max_frame_payload: usize,
    ) -> Result<usize, ExecError> {
        let mut header = MsgHeader::new(target, self.own_tid(), xdaq_i2o::FunctionCode::Private);
        header.transaction_context = chain_id;
        let private = Some(PrivateHeader::new(org, x_function));
        let frames = split_into_frames(
            self.core.allocator(),
            header,
            private,
            payload,
            max_frame_payload,
        )
        .map_err(|e| match e {
            xdaq_mempool::ChainError::Alloc(a) => ExecError::Alloc(a),
            other => ExecError::BadControl(other.to_string()),
        })?;
        let n = frames.len();
        for buf in frames {
            let d = Delivery::from_buf(buf).map_err(ExecError::Frame)?;
            self.core.route(d)?;
        }
        Ok(n)
    }
}

/// Reassembly key: one chain per (initiator, transaction context).
type ChainKey = (Tid, u32);

/// Receiver-side chain accumulator.
///
/// Feed every private frame of the chained x-function into
/// [`ChainCollector::push`]; when a chain completes, the concatenated
/// payload is returned. Out-of-order frames within one chain cannot
/// occur (transports deliver per-peer in order); interleaved chains
/// from *different* senders are kept apart by the key.
#[derive(Default)]
pub struct ChainCollector {
    partial: HashMap<ChainKey, Vec<u8>>,
    /// Chains discarded because a frame failed validation.
    pub aborted: u64,
}

impl ChainCollector {
    /// Empty collector.
    pub fn new() -> ChainCollector {
        ChainCollector::default()
    }

    /// Accepts one frame of a chain. Returns `Some((initiator,
    /// chain_id, payload))` when the chain completed.
    pub fn push(&mut self, msg: &Delivery) -> Option<(Tid, u32, Vec<u8>)> {
        let key = (msg.header.initiator, msg.header.transaction_context);
        let entry = self.partial.entry(key).or_default();
        entry.extend_from_slice(msg.payload());
        if msg.header.flags.contains(MsgFlags::MORE) {
            return None;
        }
        let payload = self.partial.remove(&key).expect("just inserted");
        Some((key.0, key.1, payload))
    }

    /// Number of chains currently in flight.
    pub fn in_flight(&self) -> usize {
        self.partial.len()
    }

    /// Drops a partially received chain (peer died).
    pub fn abort(&mut self, initiator: Tid, chain_id: u32) -> bool {
        let removed = self.partial.remove(&(initiator, chain_id)).is_some();
        if removed {
            self.aborted += 1;
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExecutiveConfig;
    use crate::executive::Executive;
    use crate::listener::I2oListener;
    use parking_lot::Mutex;
    use std::sync::Arc;
    use xdaq_i2o::{DeviceClass, Message};

    const XFN_BULK: u16 = 0x0042;
    const XFN_KICK: u16 = 0x0041;

    struct BulkSender {
        payload: Vec<u8>,
        dest: Option<Tid>,
    }

    impl I2oListener for BulkSender {
        fn class(&self) -> DeviceClass {
            DeviceClass::Application(1)
        }
        fn on_private(&mut self, ctx: &mut Dispatcher<'_>, msg: Delivery) {
            if msg.private.map(|p| p.x_function) == Some(XFN_KICK) {
                let dest = self.dest.or_else(|| {
                    ctx.param("dest")
                        .and_then(|s| s.parse::<u16>().ok())
                        .and_then(|v| Tid::new(v).ok())
                });
                if let Some(dest) = dest {
                    ctx.send_chained(dest, 1, XFN_BULK, 7, &self.payload, 256)
                        .unwrap();
                }
            }
        }
    }

    type DoneLog = Arc<Mutex<Vec<(Tid, u32, Vec<u8>)>>>;

    struct BulkReceiver {
        collector: ChainCollector,
        done: DoneLog,
    }

    impl I2oListener for BulkReceiver {
        fn class(&self) -> DeviceClass {
            DeviceClass::Application(1)
        }
        fn on_private(&mut self, _ctx: &mut Dispatcher<'_>, msg: Delivery) {
            if msg.private.map(|p| p.x_function) == Some(XFN_BULK) {
                if let Some(complete) = self.collector.push(&msg) {
                    self.done.lock().push(complete);
                }
            }
        }
    }

    #[test]
    fn chained_send_reassembles_locally() {
        let exec = Executive::new(ExecutiveConfig::named("n"));
        let done = Arc::new(Mutex::new(Vec::new()));
        let rx = exec
            .register(
                "rx",
                Box::new(BulkReceiver {
                    collector: ChainCollector::new(),
                    done: done.clone(),
                }),
                &[],
            )
            .unwrap();
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 256) as u8).collect();
        let tx = exec
            .register(
                "tx",
                Box::new(BulkSender {
                    payload: payload.clone(),
                    dest: Some(rx),
                }),
                &[],
            )
            .unwrap();
        exec.enable_all();
        exec.post(Message::build_private(tx, Tid::HOST, 1, XFN_KICK).finish())
            .unwrap();
        while exec.run_once() > 0 {}
        let done = done.lock();
        assert_eq!(done.len(), 1);
        let (initiator, chain_id, data) = &done[0];
        assert_eq!(*initiator, tx);
        assert_eq!(*chain_id, 7);
        assert_eq!(data, &payload);
    }

    #[test]
    fn collector_keeps_interleaved_chains_apart() {
        // Build two interleaved chains by hand.
        let pool = xdaq_mempool::TablePool::with_defaults();
        let mk = |init: u16, chain: u32, data: &[u8], more: bool| {
            let b = Message::build_private(
                Tid::new(0x50).unwrap(),
                Tid::new(init).unwrap(),
                1,
                XFN_BULK,
            )
            .transaction(chain)
            .payload(data.to_vec());
            if more {
                // MORE is a plain flag; set via header below.
            }
            let mut m = b.finish();
            if more {
                m.header.flags = m.header.flags.with(MsgFlags::MORE);
            }
            Delivery::from_message(&m, &*pool).unwrap()
        };
        let mut c = ChainCollector::new();
        assert!(c.push(&mk(0x10, 1, b"aa", true)).is_none());
        assert!(c.push(&mk(0x11, 1, b"xx", true)).is_none());
        assert_eq!(c.in_flight(), 2);
        let (i1, _, d1) = c.push(&mk(0x10, 1, b"bb", false)).unwrap();
        assert_eq!(i1, Tid::new(0x10).unwrap());
        assert_eq!(d1, b"aabb");
        let (_, _, d2) = c.push(&mk(0x11, 1, b"yy", false)).unwrap();
        assert_eq!(d2, b"xxyy");
        assert_eq!(c.in_flight(), 0);
    }

    #[test]
    fn abort_drops_partial_chain() {
        let pool = xdaq_mempool::TablePool::with_defaults();
        let mut m = Message::build_private(
            Tid::new(0x50).unwrap(),
            Tid::new(0x10).unwrap(),
            1,
            XFN_BULK,
        )
        .transaction(3)
        .payload(b"partial".to_vec())
        .finish();
        m.header.flags = m.header.flags.with(MsgFlags::MORE);
        let d = Delivery::from_message(&m, &*pool).unwrap();
        let mut c = ChainCollector::new();
        assert!(c.push(&d).is_none());
        assert!(c.abort(Tid::new(0x10).unwrap(), 3));
        assert!(!c.abort(Tid::new(0x10).unwrap(), 3));
        assert_eq!(c.in_flight(), 0);
        assert_eq!(c.aborted, 1);
    }
}
