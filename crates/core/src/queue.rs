//! The scheduling queue: seven priority FIFOs with round-robin device
//! dispatch.
//!
//! Paper §4: *"For scheduling the dispatching of messages we follow the
//! algorithm given in the I2O specification. There exist seven priority
//! levels and for each one the messages are scheduled to a FIFO. All
//! devices are then dispatched in round-robin manner."*
//!
//! Within one priority level, each destination device has its own FIFO
//! and a rotation cursor walks the devices that have pending messages —
//! so one chatty device cannot starve its neighbours at equal priority,
//! while higher priorities always preempt lower ones at dispatch
//! granularity.

use crate::listener::Delivery;
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use xdaq_i2o::{Priority, Tid, NUM_PRIORITIES};
use xdaq_mon::Gauge;

/// Per-TiD dispatch claims for the multi-worker executive.
///
/// TiDs are 12-bit, so one flag per possible TiD is collision-free.
/// A worker must hold the target's claim while dispatching any of its
/// frames; a thief stealing a device FIFO holds the claim across the
/// *whole* stolen batch, so frames that arrive at the home shard in the
/// meantime cannot be dispatched concurrently — this is what keeps
/// per-device FIFO order intact under work stealing. Claims are only
/// ever acquired under a shard's level lock (see
/// [`SchedQueue::pop_claimed`] / [`SchedQueue::steal_fifo`]), which
/// makes claim acquisition atomic with queue removal.
pub struct ClaimTable {
    claims: Box<[AtomicBool]>,
}

impl Default for ClaimTable {
    fn default() -> Self {
        Self::new()
    }
}

impl ClaimTable {
    /// One released claim per possible TiD (4096 entries).
    pub fn new() -> ClaimTable {
        ClaimTable {
            claims: (0..=0xFFFusize).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// Attempts to acquire the dispatch claim for `tid`.
    pub fn try_claim(&self, tid: Tid) -> bool {
        !self.claims[tid.raw() as usize].swap(true, Ordering::Acquire)
    }

    /// Releases a claim previously acquired with
    /// [`ClaimTable::try_claim`].
    pub fn release(&self, tid: Tid) {
        self.claims[tid.raw() as usize].store(false, Ordering::Release);
    }

    /// True while some worker holds the claim for `tid`.
    pub fn is_claimed(&self, tid: Tid) -> bool {
        self.claims[tid.raw() as usize].load(Ordering::Acquire)
    }
}

/// What to do when the scheduling queue hits its capacity limit
/// (paper §3.2's fault-tolerant behaviour applied to overload: the
/// reaction to pressure is *policy*, not an accident of the
/// implementation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Reject the incoming delivery (classic tail drop).
    DropNewest,
    /// Evict a queued delivery of strictly lower priority to make
    /// room; reject the incoming one when nothing cheaper is queued.
    DropLowestPriority,
    /// Producers wait for the dispatcher to drain the queue, up to
    /// `deadline`, then tail-drop. Only safe from threads other than
    /// the dispatch loop itself (a dispatcher blocking on its own
    /// queue cannot drain it).
    Block {
        /// Longest a producer may wait for space.
        deadline: Duration,
    },
}

/// Result of a bounded push.
#[derive(Debug)]
#[must_use = "a rejected or displaced delivery must be accounted (it recycles on drop)"]
pub enum PushOutcome {
    /// The delivery was queued.
    Accepted,
    /// The queue was full; the incoming delivery comes back.
    Rejected(Delivery),
    /// The incoming delivery was queued by evicting this cheaper one.
    Displaced(Delivery),
}

#[derive(Default)]
struct Level {
    /// Per-device FIFO.
    queues: HashMap<Tid, VecDeque<Delivery>>,
    /// Round-robin rotation of devices with pending messages.
    rotation: VecDeque<Tid>,
}

/// The executive's inbound scheduling queue.
pub struct SchedQueue {
    levels: [Mutex<Level>; NUM_PRIORITIES],
    pending: AtomicUsize,
    /// Per-priority depth gauges (level + high-water), when the owner
    /// wired the queue into a metric registry.
    depth: Option<[Gauge; NUM_PRIORITIES]>,
    /// Total queued-delivery limit; `usize::MAX` = unbounded
    /// (historical behaviour). The check is approximate under
    /// concurrency — a racing producer can overshoot by a few entries,
    /// which is fine for an overload valve. Atomic so overload control
    /// can be retuned at runtime (the recorder's backpressure hook
    /// tightens it while the store is behind on fsync).
    capacity: AtomicUsize,
    policy: RwLock<OverloadPolicy>,
}

impl Default for SchedQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl SchedQueue {
    /// An empty queue without depth gauges.
    pub fn new() -> SchedQueue {
        SchedQueue {
            levels: std::array::from_fn(|_| Mutex::new(Level::default())),
            pending: AtomicUsize::new(0),
            depth: None,
            capacity: AtomicUsize::new(usize::MAX),
            policy: RwLock::new(OverloadPolicy::DropNewest),
        }
    }

    /// An empty queue that reports per-priority depths (and their
    /// high-water marks) through the given gauges, index = priority
    /// level.
    pub fn with_gauges(depth: [Gauge; NUM_PRIORITIES]) -> SchedQueue {
        SchedQueue {
            depth: Some(depth),
            ..SchedQueue::new()
        }
    }

    /// Caps the queue at `capacity` deliveries, handled per `policy`.
    pub fn with_limits(self, capacity: Option<usize>, policy: OverloadPolicy) -> SchedQueue {
        self.set_limits(capacity, policy);
        self
    }

    /// Retunes the overload valve at runtime. Producers mid-`push`
    /// observe the new limits on their next capacity check.
    pub fn set_limits(&self, capacity: Option<usize>, policy: OverloadPolicy) {
        self.capacity
            .store(capacity.unwrap_or(usize::MAX), Ordering::Release);
        *self.policy.write() = policy;
    }

    /// Current capacity (`None` = unbounded) and overload policy.
    pub fn limits(&self) -> (Option<usize>, OverloadPolicy) {
        let cap = self.capacity.load(Ordering::Acquire);
        let cap = (cap != usize::MAX).then_some(cap);
        (cap, self.policy.read().clone())
    }

    /// Enqueues a delivery according to its frame priority and target,
    /// applying the overload policy when the queue is at capacity.
    pub fn push(&self, d: Delivery) -> PushOutcome {
        let cap = self.capacity.load(Ordering::Acquire);
        if self.pending.load(Ordering::Acquire) < cap {
            self.insert(d);
            return PushOutcome::Accepted;
        }
        match self.policy.read().clone() {
            OverloadPolicy::DropNewest => PushOutcome::Rejected(d),
            OverloadPolicy::DropLowestPriority => {
                match self.steal_lowest_below(d.priority().level()) {
                    Some(victim) => {
                        self.insert(d);
                        PushOutcome::Displaced(victim)
                    }
                    None => PushOutcome::Rejected(d),
                }
            }
            OverloadPolicy::Block { deadline } => {
                let until = Instant::now() + deadline;
                loop {
                    // Reload the limit: a runtime retune releases
                    // blocked producers immediately.
                    let cap = self.capacity.load(Ordering::Acquire);
                    if self.pending.load(Ordering::Acquire) < cap {
                        self.insert(d);
                        return PushOutcome::Accepted;
                    }
                    if Instant::now() >= until {
                        return PushOutcome::Rejected(d);
                    }
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        }
    }

    /// Unconditional enqueue.
    fn insert(&self, d: Delivery) {
        let level = d.priority().level() as usize;
        let tid = d.header.target;
        let mut lv = self.levels[level].lock();
        let was_empty = {
            let q = lv.queues.entry(tid).or_default();
            let was = q.is_empty();
            q.push_back(d);
            was
        };
        if was_empty {
            lv.rotation.push_back(tid);
        }
        self.pending.fetch_add(1, Ordering::Release);
        if let Some(g) = &self.depth {
            g[level].add(1);
        }
    }

    /// Evicts the newest queued delivery from the lowest occupied
    /// priority level strictly below `level`, if any.
    fn steal_lowest_below(&self, level: u8) -> Option<Delivery> {
        for l in 0..level as usize {
            let mut lv = self.levels[l].lock();
            let Some(tid) = lv.rotation.back().copied() else {
                continue;
            };
            let (victim, now_empty) = {
                let q = lv.queues.get_mut(&tid).expect("rotation implies queue");
                let v = q.pop_back().expect("rotation implies non-empty");
                (v, q.is_empty())
            };
            if now_empty {
                lv.queues.remove(&tid);
                lv.rotation.retain(|t| *t != tid);
            }
            self.pending.fetch_sub(1, Ordering::Release);
            if let Some(g) = &self.depth {
                g[l].add(-1);
            }
            return Some(victim);
        }
        None
    }

    /// Pops the next delivery: highest priority first, round-robin over
    /// devices within a priority.
    pub fn pop(&self) -> Option<Delivery> {
        if self.pending.load(Ordering::Acquire) == 0 {
            return None;
        }
        for p in Priority::descending() {
            let mut lv = self.levels[p.level() as usize].lock();
            if let Some(tid) = lv.rotation.pop_front() {
                let (d, more) = {
                    let q = lv.queues.get_mut(&tid).expect("rotation implies queue");
                    let d = q.pop_front().expect("rotation implies non-empty");
                    (d, !q.is_empty())
                };
                if more {
                    lv.rotation.push_back(tid);
                } else {
                    lv.queues.remove(&tid);
                }
                self.pending.fetch_sub(1, Ordering::Release);
                if let Some(g) = &self.depth {
                    g[p.level() as usize].add(-1);
                }
                return Some(d);
            }
        }
        None
    }

    /// Multi-worker pop: like [`SchedQueue::pop`], but only returns a
    /// delivery whose target's claim could be acquired — the claim is
    /// returned *held* and the caller must [`ClaimTable::release`] it
    /// after dispatching. Devices whose claim is currently held by a
    /// thief are rotated past (their frames stay queued, in order,
    /// until the claim frees up), so a steal in progress never blocks
    /// the level and never reorders the victim device.
    pub fn pop_claimed(&self, claims: &ClaimTable) -> Option<Delivery> {
        if self.pending.load(Ordering::Acquire) == 0 {
            return None;
        }
        for p in Priority::descending() {
            let level = p.level() as usize;
            let mut lv = self.levels[level].lock();
            for _ in 0..lv.rotation.len() {
                let tid = *lv.rotation.front().expect("iterating rotation");
                if !claims.try_claim(tid) {
                    // Claim held elsewhere: skip this device this round.
                    lv.rotation.rotate_left(1);
                    continue;
                }
                lv.rotation.pop_front();
                let (d, more) = {
                    let q = lv.queues.get_mut(&tid).expect("rotation implies queue");
                    let d = q.pop_front().expect("rotation implies non-empty");
                    (d, !q.is_empty())
                };
                if more {
                    lv.rotation.push_back(tid);
                } else {
                    lv.queues.remove(&tid);
                }
                self.pending.fetch_sub(1, Ordering::Release);
                if let Some(g) = &self.depth {
                    g[level].add(-1);
                }
                return Some(d);
            }
        }
        None
    }

    /// Steals one device's *entire* FIFO from the highest-priority
    /// occupied level whose claim can be acquired (whole-FIFO transfer
    /// is what preserves per-device order — individual frames are
    /// never stolen). The claim is returned held; the thief must
    /// dispatch every returned delivery in order and only then
    /// [`ClaimTable::release`] the TiD. Frames for the stolen device
    /// that arrive while the claim is held queue up behind it and wait.
    pub fn steal_fifo(&self, claims: &ClaimTable) -> Option<(Tid, VecDeque<Delivery>)> {
        if self.pending.load(Ordering::Acquire) == 0 {
            return None;
        }
        for p in Priority::descending() {
            let level = p.level() as usize;
            let mut lv = self.levels[level].lock();
            let candidates = lv.rotation.len();
            for i in 0..candidates {
                let tid = lv.rotation[i];
                if !claims.try_claim(tid) {
                    continue;
                }
                lv.rotation.remove(i);
                let fifo = lv.queues.remove(&tid).expect("rotation implies queue");
                debug_assert!(!fifo.is_empty(), "rotation implies non-empty");
                self.pending.fetch_sub(fifo.len(), Ordering::Release);
                if let Some(g) = &self.depth {
                    g[level].add(-(fifo.len() as i64));
                }
                return Some((tid, fifo));
            }
        }
        None
    }

    /// Number of queued deliveries across all levels.
    pub fn len(&self) -> usize {
        self.pending.load(Ordering::Acquire)
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all messages queued for `tid` (device destroyed); returns
    /// how many were discarded.
    pub fn purge(&self, tid: Tid) -> usize {
        let mut dropped = 0;
        for (i, level) in self.levels.iter().enumerate() {
            let mut lv = level.lock();
            if let Some(q) = lv.queues.remove(&tid) {
                let n = q.len();
                dropped += n;
                lv.rotation.retain(|t| *t != tid);
                if let Some(g) = &self.depth {
                    g[i].add(-(n as i64));
                }
            }
        }
        self.pending.fetch_sub(dropped, Ordering::Release);
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdaq_i2o::Message;
    use xdaq_mempool::TablePool;

    fn t(v: u16) -> Tid {
        Tid::new(v).unwrap()
    }

    fn mk(target: u16, pri: u8, tag: u8) -> Delivery {
        let pool = TablePool::with_defaults();
        let m = Message::build_private(t(target), t(0x800), 1, tag as u16)
            .priority(Priority::new(pri).unwrap())
            .payload(vec![tag])
            .finish();
        Delivery::from_message(&m, &*pool).unwrap()
    }

    fn push_ok(q: &SchedQueue, d: Delivery) {
        assert!(matches!(q.push(d), PushOutcome::Accepted));
    }

    #[test]
    fn fifo_within_device() {
        let q = SchedQueue::new();
        push_ok(&q, mk(0x10, 3, 1));
        push_ok(&q, mk(0x10, 3, 2));
        push_ok(&q, mk(0x10, 3, 3));
        let tags: Vec<u8> = (0..3).map(|_| q.pop().unwrap().payload()[0]).collect();
        assert_eq!(tags, vec![1, 2, 3]);
        assert!(q.pop().is_none());
    }

    #[test]
    fn higher_priority_preempts() {
        let q = SchedQueue::new();
        push_ok(&q, mk(0x10, 1, 1));
        push_ok(&q, mk(0x10, 6, 2));
        push_ok(&q, mk(0x10, 3, 3));
        let tags: Vec<u8> = (0..3).map(|_| q.pop().unwrap().payload()[0]).collect();
        assert_eq!(tags, vec![2, 3, 1]);
    }

    #[test]
    fn round_robin_across_devices() {
        let q = SchedQueue::new();
        // Device A floods; device B sends one message at equal priority.
        for i in 0..3 {
            push_ok(&q, mk(0xA0, 3, 10 + i));
        }
        push_ok(&q, mk(0xB0, 3, 99));
        let order: Vec<(u16, u8)> = (0..4)
            .map(|_| {
                let d = q.pop().unwrap();
                (d.header.target.raw(), d.payload()[0])
            })
            .collect();
        // B's message is served after A's *first* message, not after
        // the whole flood.
        assert_eq!(order[0].0, 0xA0);
        assert_eq!(order[1].0, 0xB0);
        assert_eq!(order[2].0, 0xA0);
        assert_eq!(order[3].0, 0xA0);
        assert_eq!(order[1].1, 99);
    }

    #[test]
    fn len_tracks() {
        let q = SchedQueue::new();
        assert!(q.is_empty());
        push_ok(&q, mk(1, 0, 0));
        push_ok(&q, mk(2, 6, 0));
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn purge_removes_device_messages() {
        let q = SchedQueue::new();
        push_ok(&q, mk(0x10, 3, 1));
        push_ok(&q, mk(0x10, 5, 2));
        push_ok(&q, mk(0x20, 3, 3));
        assert_eq!(q.purge(t(0x10)), 2);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().header.target, t(0x20));
        assert!(q.pop().is_none());
    }

    #[test]
    fn empty_priority_levels_skipped() {
        let q = SchedQueue::new();
        push_ok(&q, mk(0x10, 0, 7));
        assert_eq!(q.pop().unwrap().payload()[0], 7);
    }

    #[test]
    fn depth_gauges_track_per_priority() {
        let reg = xdaq_mon::Registry::new();
        let gauges: [Gauge; NUM_PRIORITIES] =
            std::array::from_fn(|i| reg.gauge(&format!("queue.depth.p{i}")));
        let q = SchedQueue::with_gauges(gauges);
        push_ok(&q, mk(0x10, 3, 1));
        push_ok(&q, mk(0x10, 3, 2));
        push_ok(&q, mk(0x20, 5, 3));
        assert_eq!(reg.gauge("queue.depth.p3").get(), 2);
        assert_eq!(reg.gauge("queue.depth.p5").get(), 1);
        q.pop(); // priority 5 first
        assert_eq!(reg.gauge("queue.depth.p5").get(), 0);
        assert_eq!(reg.gauge("queue.depth.p5").high_water(), 1);
        assert_eq!(q.purge(t(0x10)), 2);
        assert_eq!(reg.gauge("queue.depth.p3").get(), 0);
        assert_eq!(reg.gauge("queue.depth.p3").high_water(), 2);
    }

    #[test]
    fn concurrent_producers_single_consumer() {
        let q = std::sync::Arc::new(SchedQueue::new());
        std::thread::scope(|s| {
            for th in 0..4u16 {
                let q = q.clone();
                s.spawn(move || {
                    for i in 0..250u8 {
                        push_ok(&q, mk(0x100 + th, i % 7, i));
                    }
                });
            }
        });
        let mut n = 0;
        while q.pop().is_some() {
            n += 1;
        }
        assert_eq!(n, 1000);
    }

    #[test]
    fn drop_newest_rejects_at_capacity() {
        let q = SchedQueue::new().with_limits(Some(2), OverloadPolicy::DropNewest);
        push_ok(&q, mk(0x10, 3, 1));
        push_ok(&q, mk(0x10, 3, 2));
        match q.push(mk(0x10, 3, 3)) {
            PushOutcome::Rejected(d) => assert_eq!(d.payload()[0], 3),
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(q.len(), 2);
        q.pop();
        push_ok(&q, mk(0x10, 3, 4));
    }

    #[test]
    fn drop_lowest_priority_evicts_cheaper_work() {
        let q = SchedQueue::new().with_limits(Some(2), OverloadPolicy::DropLowestPriority);
        push_ok(&q, mk(0x10, 1, 1));
        push_ok(&q, mk(0x10, 3, 2));
        // Higher-priority arrival displaces the priority-1 delivery.
        match q.push(mk(0x20, 6, 3)) {
            PushOutcome::Displaced(victim) => assert_eq!(victim.payload()[0], 1),
            other => panic!("expected displacement, got {other:?}"),
        }
        assert_eq!(q.len(), 2);
        // Equal/lower-priority arrival finds nothing cheaper: rejected.
        match q.push(mk(0x20, 3, 4)) {
            PushOutcome::Rejected(d) => assert_eq!(d.payload()[0], 4),
            other => panic!("expected rejection, got {other:?}"),
        }
        let tags: Vec<u8> = (0..2).map(|_| q.pop().unwrap().payload()[0]).collect();
        assert_eq!(tags, vec![3, 2]);
    }

    #[test]
    fn block_policy_waits_for_drain() {
        let q = std::sync::Arc::new(SchedQueue::new().with_limits(
            Some(1),
            OverloadPolicy::Block {
                deadline: Duration::from_secs(5),
            },
        ));
        push_ok(&q, mk(0x10, 3, 1));
        let q2 = q.clone();
        let consumer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            q2.pop()
        });
        // Blocks until the consumer makes room, then succeeds.
        push_ok(&q, mk(0x10, 3, 2));
        assert_eq!(consumer.join().unwrap().unwrap().payload()[0], 1);
    }

    #[test]
    fn claim_table_is_exclusive() {
        let c = ClaimTable::new();
        assert!(c.try_claim(t(0x10)));
        assert!(!c.try_claim(t(0x10)), "second claim refused");
        assert!(c.is_claimed(t(0x10)));
        assert!(c.try_claim(t(0x11)), "other TiDs unaffected");
        c.release(t(0x10));
        assert!(!c.is_claimed(t(0x10)));
        assert!(c.try_claim(t(0x10)), "released claim reacquirable");
    }

    #[test]
    fn pop_claimed_matches_pop_when_uncontended() {
        let q = SchedQueue::new();
        let c = ClaimTable::new();
        push_ok(&q, mk(0x10, 1, 1));
        push_ok(&q, mk(0x10, 6, 2));
        push_ok(&q, mk(0x20, 3, 3));
        let mut tags = Vec::new();
        while let Some(d) = q.pop_claimed(&c) {
            let tid = d.header.target;
            tags.push(d.payload()[0]);
            c.release(tid);
        }
        assert_eq!(tags, vec![2, 3, 1], "priority order preserved");
        assert!(q.is_empty());
    }

    #[test]
    fn pop_claimed_skips_claimed_device() {
        let q = SchedQueue::new();
        let c = ClaimTable::new();
        push_ok(&q, mk(0x10, 3, 1));
        push_ok(&q, mk(0x20, 3, 2));
        // A thief holds 0x10: pop must serve 0x20 instead, leaving
        // 0x10's frame queued in place.
        assert!(c.try_claim(t(0x10)));
        let d = q.pop_claimed(&c).unwrap();
        assert_eq!(d.header.target, t(0x20));
        c.release(t(0x20));
        assert!(q.pop_claimed(&c).is_none(), "0x10 still claimed");
        assert_eq!(q.len(), 1);
        c.release(t(0x10));
        assert_eq!(q.pop_claimed(&c).unwrap().payload()[0], 1);
    }

    #[test]
    fn steal_fifo_takes_whole_device_queue() {
        let q = SchedQueue::new();
        let c = ClaimTable::new();
        for tag in 1..=3 {
            push_ok(&q, mk(0x10, 3, tag));
        }
        push_ok(&q, mk(0x20, 5, 9));
        // Highest-priority occupied level wins: 0x20 at priority 5.
        let (tid, fifo) = q.steal_fifo(&c).unwrap();
        assert_eq!(tid, t(0x20));
        assert_eq!(fifo.len(), 1);
        c.release(tid);
        // Next steal drains 0x10's whole FIFO, in order.
        let (tid, fifo) = q.steal_fifo(&c).unwrap();
        assert_eq!(tid, t(0x10));
        let tags: Vec<u8> = fifo.iter().map(|d| d.payload()[0]).collect();
        assert_eq!(tags, vec![1, 2, 3]);
        assert!(c.is_claimed(t(0x10)), "claim returned held");
        assert!(q.is_empty());
        assert!(q.steal_fifo(&c).is_none());
    }

    #[test]
    fn steal_fifo_accounts_depth_gauges() {
        let reg = xdaq_mon::Registry::new();
        let gauges: [Gauge; NUM_PRIORITIES] =
            std::array::from_fn(|i| reg.gauge(&format!("queue.depth.p{i}")));
        let q = SchedQueue::with_gauges(gauges);
        let c = ClaimTable::new();
        for tag in 0..4 {
            push_ok(&q, mk(0x10, 2, tag));
        }
        assert_eq!(reg.gauge("queue.depth.p2").get(), 4);
        let (tid, fifo) = q.steal_fifo(&c).unwrap();
        assert_eq!(fifo.len(), 4);
        assert_eq!(reg.gauge("queue.depth.p2").get(), 0);
        assert_eq!(q.len(), 0);
        c.release(tid);
    }

    #[test]
    fn limits_retunable_at_runtime() {
        let q = SchedQueue::new();
        assert_eq!(q.limits(), (None, OverloadPolicy::DropNewest));
        push_ok(&q, mk(0x10, 3, 1));
        push_ok(&q, mk(0x10, 3, 2));
        // Tighten below the current depth: the next push is rejected.
        q.set_limits(Some(1), OverloadPolicy::DropNewest);
        assert_eq!(q.limits(), (Some(1), OverloadPolicy::DropNewest));
        match q.push(mk(0x10, 3, 3)) {
            PushOutcome::Rejected(d) => assert_eq!(d.payload()[0], 3),
            other => panic!("expected rejection, got {other:?}"),
        }
        // Relax again: pushes flow.
        q.set_limits(None, OverloadPolicy::DropNewest);
        push_ok(&q, mk(0x10, 3, 4));
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn block_policy_times_out_to_tail_drop() {
        let q = SchedQueue::new().with_limits(
            Some(1),
            OverloadPolicy::Block {
                deadline: Duration::from_millis(5),
            },
        );
        push_ok(&q, mk(0x10, 3, 1));
        match q.push(mk(0x10, 3, 2)) {
            PushOutcome::Rejected(d) => assert_eq!(d.payload()[0], 2),
            other => panic!("expected timeout rejection, got {other:?}"),
        }
        assert_eq!(q.len(), 1);
    }
}
