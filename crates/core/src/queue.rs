//! The scheduling queue: seven priority FIFOs with round-robin device
//! dispatch.
//!
//! Paper §4: *"For scheduling the dispatching of messages we follow the
//! algorithm given in the I2O specification. There exist seven priority
//! levels and for each one the messages are scheduled to a FIFO. All
//! devices are then dispatched in round-robin manner."*
//!
//! Within one priority level, each destination device has its own FIFO
//! and a rotation cursor walks the devices that have pending messages —
//! so one chatty device cannot starve its neighbours at equal priority,
//! while higher priorities always preempt lower ones at dispatch
//! granularity.

use crate::listener::Delivery;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use xdaq_i2o::{Priority, Tid, NUM_PRIORITIES};
use xdaq_mon::Gauge;

#[derive(Default)]
struct Level {
    /// Per-device FIFO.
    queues: HashMap<Tid, VecDeque<Delivery>>,
    /// Round-robin rotation of devices with pending messages.
    rotation: VecDeque<Tid>,
}

/// The executive's inbound scheduling queue.
pub struct SchedQueue {
    levels: [Mutex<Level>; NUM_PRIORITIES],
    pending: AtomicUsize,
    /// Per-priority depth gauges (level + high-water), when the owner
    /// wired the queue into a metric registry.
    depth: Option<[Gauge; NUM_PRIORITIES]>,
}

impl Default for SchedQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl SchedQueue {
    /// An empty queue without depth gauges.
    pub fn new() -> SchedQueue {
        SchedQueue {
            levels: std::array::from_fn(|_| Mutex::new(Level::default())),
            pending: AtomicUsize::new(0),
            depth: None,
        }
    }

    /// An empty queue that reports per-priority depths (and their
    /// high-water marks) through the given gauges, index = priority
    /// level.
    pub fn with_gauges(depth: [Gauge; NUM_PRIORITIES]) -> SchedQueue {
        SchedQueue {
            depth: Some(depth),
            ..SchedQueue::new()
        }
    }

    /// Enqueues a delivery according to its frame priority and target.
    pub fn push(&self, d: Delivery) {
        let level = d.priority().level() as usize;
        let tid = d.header.target;
        let mut lv = self.levels[level].lock();
        let was_empty = {
            let q = lv.queues.entry(tid).or_default();
            let was = q.is_empty();
            q.push_back(d);
            was
        };
        if was_empty {
            lv.rotation.push_back(tid);
        }
        self.pending.fetch_add(1, Ordering::Release);
        if let Some(g) = &self.depth {
            g[level].add(1);
        }
    }

    /// Pops the next delivery: highest priority first, round-robin over
    /// devices within a priority.
    pub fn pop(&self) -> Option<Delivery> {
        if self.pending.load(Ordering::Acquire) == 0 {
            return None;
        }
        for p in Priority::descending() {
            let mut lv = self.levels[p.level() as usize].lock();
            if let Some(tid) = lv.rotation.pop_front() {
                let (d, more) = {
                    let q = lv.queues.get_mut(&tid).expect("rotation implies queue");
                    let d = q.pop_front().expect("rotation implies non-empty");
                    (d, !q.is_empty())
                };
                if more {
                    lv.rotation.push_back(tid);
                } else {
                    lv.queues.remove(&tid);
                }
                self.pending.fetch_sub(1, Ordering::Release);
                if let Some(g) = &self.depth {
                    g[p.level() as usize].add(-1);
                }
                return Some(d);
            }
        }
        None
    }

    /// Number of queued deliveries across all levels.
    pub fn len(&self) -> usize {
        self.pending.load(Ordering::Acquire)
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all messages queued for `tid` (device destroyed); returns
    /// how many were discarded.
    pub fn purge(&self, tid: Tid) -> usize {
        let mut dropped = 0;
        for (i, level) in self.levels.iter().enumerate() {
            let mut lv = level.lock();
            if let Some(q) = lv.queues.remove(&tid) {
                let n = q.len();
                dropped += n;
                lv.rotation.retain(|t| *t != tid);
                if let Some(g) = &self.depth {
                    g[i].add(-(n as i64));
                }
            }
        }
        self.pending.fetch_sub(dropped, Ordering::Release);
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdaq_i2o::Message;
    use xdaq_mempool::TablePool;

    fn t(v: u16) -> Tid {
        Tid::new(v).unwrap()
    }

    fn mk(target: u16, pri: u8, tag: u8) -> Delivery {
        let pool = TablePool::with_defaults();
        let m = Message::build_private(t(target), t(0x800), 1, tag as u16)
            .priority(Priority::new(pri).unwrap())
            .payload(vec![tag])
            .finish();
        Delivery::from_message(&m, &*pool).unwrap()
    }

    #[test]
    fn fifo_within_device() {
        let q = SchedQueue::new();
        q.push(mk(0x10, 3, 1));
        q.push(mk(0x10, 3, 2));
        q.push(mk(0x10, 3, 3));
        let tags: Vec<u8> = (0..3).map(|_| q.pop().unwrap().payload()[0]).collect();
        assert_eq!(tags, vec![1, 2, 3]);
        assert!(q.pop().is_none());
    }

    #[test]
    fn higher_priority_preempts() {
        let q = SchedQueue::new();
        q.push(mk(0x10, 1, 1));
        q.push(mk(0x10, 6, 2));
        q.push(mk(0x10, 3, 3));
        let tags: Vec<u8> = (0..3).map(|_| q.pop().unwrap().payload()[0]).collect();
        assert_eq!(tags, vec![2, 3, 1]);
    }

    #[test]
    fn round_robin_across_devices() {
        let q = SchedQueue::new();
        // Device A floods; device B sends one message at equal priority.
        for i in 0..3 {
            q.push(mk(0xA0, 3, 10 + i));
        }
        q.push(mk(0xB0, 3, 99));
        let order: Vec<(u16, u8)> = (0..4)
            .map(|_| {
                let d = q.pop().unwrap();
                (d.header.target.raw(), d.payload()[0])
            })
            .collect();
        // B's message is served after A's *first* message, not after
        // the whole flood.
        assert_eq!(order[0].0, 0xA0);
        assert_eq!(order[1].0, 0xB0);
        assert_eq!(order[2].0, 0xA0);
        assert_eq!(order[3].0, 0xA0);
        assert_eq!(order[1].1, 99);
    }

    #[test]
    fn len_tracks() {
        let q = SchedQueue::new();
        assert!(q.is_empty());
        q.push(mk(1, 0, 0));
        q.push(mk(2, 6, 0));
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn purge_removes_device_messages() {
        let q = SchedQueue::new();
        q.push(mk(0x10, 3, 1));
        q.push(mk(0x10, 5, 2));
        q.push(mk(0x20, 3, 3));
        assert_eq!(q.purge(t(0x10)), 2);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().header.target, t(0x20));
        assert!(q.pop().is_none());
    }

    #[test]
    fn empty_priority_levels_skipped() {
        let q = SchedQueue::new();
        q.push(mk(0x10, 0, 7));
        assert_eq!(q.pop().unwrap().payload()[0], 7);
    }

    #[test]
    fn depth_gauges_track_per_priority() {
        let reg = xdaq_mon::Registry::new();
        let gauges: [Gauge; NUM_PRIORITIES] =
            std::array::from_fn(|i| reg.gauge(&format!("queue.depth.p{i}")));
        let q = SchedQueue::with_gauges(gauges);
        q.push(mk(0x10, 3, 1));
        q.push(mk(0x10, 3, 2));
        q.push(mk(0x20, 5, 3));
        assert_eq!(reg.gauge("queue.depth.p3").get(), 2);
        assert_eq!(reg.gauge("queue.depth.p5").get(), 1);
        q.pop(); // priority 5 first
        assert_eq!(reg.gauge("queue.depth.p5").get(), 0);
        assert_eq!(reg.gauge("queue.depth.p5").high_water(), 1);
        assert_eq!(q.purge(t(0x10)), 2);
        assert_eq!(reg.gauge("queue.depth.p3").get(), 0);
        assert_eq!(reg.gauge("queue.depth.p3").high_water(), 2);
    }

    #[test]
    fn concurrent_producers_single_consumer() {
        let q = std::sync::Arc::new(SchedQueue::new());
        std::thread::scope(|s| {
            for th in 0..4u16 {
                let q = q.clone();
                s.spawn(move || {
                    for i in 0..250u8 {
                        q.push(mk(0x100 + th, i % 7, i));
                    }
                });
            }
        });
        let mut n = 0;
        while q.pop().is_some() {
            n += 1;
        }
        assert_eq!(n, 1000);
    }
}
