//! The executive: the per-node I2O kernel.
//!
//! One executive runs per node (IOP). It owns the memory pool, the
//! scheduling queue, the routing table, the Peer Transport Agent, the
//! timer wheel and the device registry, and it performs all message
//! dispatching on a single loop of control (paper §4). Applications,
//! peer transports and the executive itself are all I2O devices with
//! TiDs; control flows through executive-class messages, so a primary
//! host can drive a whole cluster of executives with frames alone.

use crate::admission::AdmissionControl;
use crate::clock::Clock;
use crate::config::{encode_kv, kv, parse_kv, AllocatorKind, ExecutiveConfig};
use crate::credit::{self, CreditManager, FlowCmd};
use crate::dispatch::{DispatchProbes, ProbedAllocator};
use crate::error::{ExecError, PtError};
use crate::listener::{Delivery, Dispatcher, I2oListener, TimerId, UtilOutcome};
use crate::pta::{PeerAddr, PeerTransport, Pta, RetryPolicy};
use crate::queue::{ClaimTable, OverloadPolicy, PushOutcome, SchedQueue};
use crate::registry::{DeviceMeta, DeviceUnit, LctEntry, Registry};
use crate::route::{Route, RouteTable};
use crate::supervisor::{LinkState, LinkSupervisor, SupervisionConfig};
use crate::timer::TimerWheel;
use crate::xfn;
use parking_lot::Mutex;
use serde_json::json;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xdaq_i2o::{
    DeviceClass, DeviceState, ExecFn, FunctionCode, Message, MsgFlags, MsgHeader, Priority,
    ReplyStatus, Tid, TidAllocator, UtilFn, HEADER_LEN, NUM_PRIORITIES, ORG_XDAQ,
};
use xdaq_mempool::{FrameAllocator, FrameBuf, SimplePool, TablePool};
use xdaq_mon::{Counter, FrameTracer, Gauge, Histogram, TraceEvent};

/// Factory for runtime module loading (`ExecSwDownload`): given the
/// configured parameters, produce a listener instance.
pub type ModuleFactory =
    Box<dyn Fn(&HashMap<String, String>) -> Box<dyn I2oListener> + Send + Sync>;

/// The executive's monitoring surface: every hot-path counter is a
/// handle into one [`xdaq_mon::Registry`], so a `UtilMonSnapshot`
/// serializes the complete node state without extra plumbing, and the
/// frame tracer rides alongside behind its single-branch gate.
pub struct ExecMonitors {
    registry: xdaq_mon::Registry,
    /// Frame lifecycle tracer (starts disabled).
    pub(crate) tracer: FrameTracer,
    dispatch_latency: Histogram,
    /// FIFO-steal counter — created only when `workers > 1`, so the
    /// single-worker scrape surface is unchanged.
    steals: Option<Counter>,
    /// Per-worker dispatch-latency histograms
    /// (`exec.w{w}.dispatch_latency_ns`); empty when `workers == 1`.
    worker_latency: Vec<Histogram>,
    dispatched: Counter,
    sent_local: Counter,
    sent_peer: Counter,
    forwarded: Counter,
    broadcasts: Counter,
    dropped: Counter,
    exec_msgs: Counter,
    util_msgs: Counter,
    timers_fired: Counter,
    watchdog_trips: Counter,
    faults: Counter,
    polled_frames: Counter,
    overload_drops: Counter,
    peer_down: Counter,
    peer_suspect: Counter,
    hb_pings: Counter,
    hb_pongs: Counter,
}

impl ExecMonitors {
    fn new(trace_capacity: usize, workers: usize) -> (ExecMonitors, Vec<[Gauge; NUM_PRIORITIES]>) {
        let registry = xdaq_mon::Registry::new();
        // Shard 0 keeps the historical `queue.depth.p{i}` names so a
        // single-worker scrape is byte-identical to pre-shard builds
        // (and multi-worker scrapes still satisfy every old assertion);
        // further shards get `queue.w{w}.depth.p{i}`.
        let mut depth_gauges: Vec<[Gauge; NUM_PRIORITIES]> = Vec::with_capacity(workers);
        depth_gauges.push(std::array::from_fn(|i| {
            registry.gauge(&format!("queue.depth.p{i}"))
        }));
        for w in 1..workers {
            depth_gauges.push(std::array::from_fn(|i| {
                registry.gauge(&format!("queue.w{w}.depth.p{i}"))
            }));
        }
        let steals = (workers > 1).then(|| registry.counter("exec.steals"));
        let worker_latency = if workers > 1 {
            (0..workers)
                .map(|w| registry.histogram(&format!("exec.w{w}.dispatch_latency_ns")))
                .collect()
        } else {
            Vec::new()
        };
        let mon = ExecMonitors {
            tracer: FrameTracer::new(trace_capacity),
            dispatch_latency: registry.histogram("exec.dispatch_latency_ns"),
            steals,
            worker_latency,
            dispatched: registry.counter("exec.dispatched"),
            sent_local: registry.counter("exec.sent_local"),
            sent_peer: registry.counter("exec.sent_peer"),
            forwarded: registry.counter("exec.forwarded"),
            broadcasts: registry.counter("exec.broadcasts"),
            dropped: registry.counter("exec.dropped"),
            exec_msgs: registry.counter("exec.exec_msgs"),
            util_msgs: registry.counter("exec.util_msgs"),
            timers_fired: registry.counter("exec.timers_fired"),
            watchdog_trips: registry.counter("exec.watchdog_trips"),
            faults: registry.counter("exec.faults"),
            polled_frames: registry.counter("pta.polled_frames"),
            overload_drops: registry.counter("exec.overload_drops"),
            peer_down: registry.counter("link.peer_down"),
            peer_suspect: registry.counter("link.peer_suspect"),
            hb_pings: registry.counter("link.hb_pings"),
            hb_pongs: registry.counter("link.hb_pongs"),
            registry,
        };
        (mon, depth_gauges)
    }

    /// The node-local metric registry (counters, gauges, histograms).
    /// Device classes may hang their own metrics off it.
    pub fn registry(&self) -> &xdaq_mon::Registry {
        &self.registry
    }

    /// The frame lifecycle tracer.
    pub fn tracer(&self) -> &FrameTracer {
        &self.tracer
    }

    /// Queue→dispatch latency histogram (populated while tracing is
    /// enabled).
    pub fn dispatch_latency(&self) -> &Histogram {
        &self.dispatch_latency
    }

    /// FIFO-steal counter; `None` on a single-worker executive.
    pub fn steals(&self) -> Option<&Counter> {
        self.steals.as_ref()
    }
}

/// Snapshot of executive counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Frames dispatched to devices.
    pub dispatched: u64,
    /// Frames routed to local devices.
    pub sent_local: u64,
    /// Frames routed to peers via the PTA.
    pub sent_peer: u64,
    /// Frames that arrived from a peer and were forwarded onward
    /// (multi-hop peer operation).
    pub forwarded: u64,
    /// Broadcast fan-outs performed.
    pub broadcasts: u64,
    /// Frames dropped (unknown target / not accepting).
    pub dropped: u64,
    /// Executive-class messages handled.
    pub exec_msgs: u64,
    /// Utility-class messages handled.
    pub util_msgs: u64,
    /// Timer events fired.
    pub timers_fired: u64,
    /// Watchdog budget violations.
    pub watchdog_trips: u64,
    /// Devices transitioned to Faulted.
    pub faults: u64,
}

/// Shared executive internals (everything the dispatch context and the
/// public wrapper need).
pub struct ExecCore {
    node: String,
    alloc: Arc<dyn FrameAllocator>,
    /// One seven-priority queue per dispatch worker; a TiD always maps
    /// to the same shard (`shard_of`), so per-device FIFO order is a
    /// property of the shard alone. Single-worker: exactly one shard.
    shards: Vec<SchedQueue>,
    /// Per-TiD dispatch claims coordinating shard owners and stealers.
    claims: ClaimTable,
    /// Dispatch worker count (resolved, ≥ 1).
    workers: usize,
    routes: RouteTable,
    pta: Pta,
    timers: TimerWheel,
    registry: Registry,
    tids: Mutex<TidAllocator>,
    proxy_index: Mutex<HashMap<(PeerAddr, Tid), Tid>>,
    factories: Mutex<HashMap<String, ModuleFactory>>,
    mon: ExecMonitors,
    probes: Option<Arc<DispatchProbes>>,
    watchdog: Option<Duration>,
    supervisor: Option<LinkSupervisor>,
    /// Link-level credit flow control, when configured (DESIGN.md §13).
    flow: Option<Arc<CreditManager>>,
    /// Per-initiator tenant admission (token buckets); empty = admit
    /// everything with zero data-path cost beyond one branch.
    admission: AdmissionControl,
    fault_listener: Mutex<Option<Tid>>,
    running: AtomicBool,
    /// The executive's time source (DESIGN.md §16). Wall by default;
    /// simulations share one virtual clock across a whole cluster.
    clock: Clock,
    started_at: Instant,
    dispatch_batch: usize,
    idle_spins: u32,
    exec_meta: Mutex<DeviceMeta>,
}

impl ExecCore {
    /// Node name.
    pub fn node_name(&self) -> &str {
        &self.node
    }

    /// The frame allocator (probed when probes are enabled).
    pub fn allocator(&self) -> &dyn FrameAllocator {
        &*self.alloc
    }

    /// Allocates a pooled buffer.
    pub fn alloc(&self, len: usize) -> Result<FrameBuf, xdaq_mempool::AllocError> {
        self.mon.tracer.record(TraceEvent::Alloc, len as u32, 0);
        self.alloc.alloc(len)
    }

    /// The monitoring surface: metric registry, frame tracer, latency
    /// histogram.
    pub fn monitors(&self) -> &ExecMonitors {
        &self.mon
    }

    /// The timer wheel.
    pub fn timers(&self) -> &TimerWheel {
        &self.timers
    }

    /// The executive's time source.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The Peer Transport Agent (retry/failover machinery, transport
    /// registry).
    pub fn pta(&self) -> &Pta {
        &self.pta
    }

    /// The link supervisor, when supervision is configured.
    pub fn supervisor(&self) -> Option<&LinkSupervisor> {
        self.supervisor.as_ref()
    }

    /// The credit flow-control manager, when flow control is
    /// configured (DESIGN.md §13).
    pub fn flow(&self) -> Option<&Arc<CreditManager>> {
        self.flow.as_ref()
    }

    /// The tenant admission table (`qos.*` runtime parameters).
    pub fn admission(&self) -> &AdmissionControl {
        &self.admission
    }

    /// Name → TiD lookup (local devices and named proxies).
    pub fn lookup_name(&self, name: &str) -> Option<Tid> {
        self.registry.lookup_name(name)
    }

    /// Registers `tid` as the executive's fault listener — the device
    /// that receives `XFN_PEER_DOWN` / `XFN_WATCHDOG` / `XFN_FAULT`
    /// notifications. Same effect as a `UtilFn::EventRegister` frame,
    /// without the frame round trip (usable from `plugged`, before the
    /// dispatch loop runs).
    pub(crate) fn set_fault_listener(&self, tid: Tid) {
        *self.fault_listener.lock() = Some(tid);
    }

    /// Dispatch worker count (≥ 1).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The shard a TiD's frames are enqueued on. Fibonacci-hash of the
    /// raw TiD so consecutive TiDs (the allocator hands them out
    /// sequentially) spread across shards instead of clustering.
    pub fn shard_of(&self, tid: Tid) -> usize {
        if self.workers <= 1 {
            return 0;
        }
        (((tid.raw() as u32).wrapping_mul(0x9E37_79B9) >> 16) as usize) % self.shards.len()
    }

    /// Total pending messages across all shards.
    pub fn queued(&self) -> usize {
        self.shards.iter().map(|q| q.len()).sum()
    }

    /// Retunes every shard's overload valve at runtime. Used by
    /// devices that apply backpressure — the event recorder tightens
    /// the queue to `Block` while its store is behind on durability,
    /// then restores the previous limits.
    pub fn set_overload(&self, capacity: Option<usize>, policy: crate::queue::OverloadPolicy) {
        for shard in &self.shards {
            shard.set_limits(capacity, policy.clone());
        }
    }

    /// Current overload limits (all shards share them; shard 0 is
    /// authoritative).
    pub fn overload(&self) -> (Option<usize>, crate::queue::OverloadPolicy) {
        self.shards[0].limits()
    }

    /// Purges a TiD's pending frames from its home shard.
    pub(crate) fn purge_tid(&self, tid: Tid) -> usize {
        self.shards[self.shard_of(tid)].purge(tid)
    }

    /// Enqueues locally, stamping the frame for latency measurement
    /// when tracing is on (one branch on the disabled path). A
    /// delivery refused by the overload policy is counted and
    /// recycled here.
    fn enqueue(&self, mut d: Delivery) {
        if self.mon.tracer.is_enabled() {
            d.enqueued_at = Some(Instant::now());
            self.mon.tracer.record(
                TraceEvent::Enqueue,
                d.header.target.raw() as u32,
                d.priority().level() as u32,
            );
        }
        let shard = self.shard_of(d.header.target);
        match self.shards[shard].push(d) {
            PushOutcome::Accepted => {}
            PushOutcome::Rejected(victim) | PushOutcome::Displaced(victim) => {
                self.mon.overload_drops.inc();
                self.mon
                    .tracer
                    .record(TraceEvent::Drop, victim.header.target.raw() as u32, 2);
                // The victim's FrameBuf must go back to its pool, not
                // leak: recycle it explicitly (this is the eviction
                // path's counterpart of dispatch's Recycle point).
                drop(victim.into_buf());
            }
        }
    }

    /// Routes a delivery to its target: local queue, peer transport, or
    /// broadcast fan-out.
    pub fn route(&self, d: Delivery) -> Result<(), ExecError> {
        // Tenant admission: private data frames from an over-rate
        // class are shed here, before they cost a scheduler slot or a
        // peer-link credit. Control frames and replies are exempt —
        // shedding a reply would break request/reply for a tenant
        // whose request was already admitted.
        if !self.admission.is_empty()
            && d.header.function_code() == FunctionCode::Private
            && !d.header.flags.contains(MsgFlags::CONTROL)
            && !d.header.flags.contains(MsgFlags::IS_REPLY)
            && !self.admission.admit(d.header.initiator)
        {
            self.mon.dropped.inc();
            self.mon
                .tracer
                .record(TraceEvent::Drop, d.header.initiator.raw() as u32, 3);
            return Err(ExecError::Shed(d.header.initiator));
        }
        let target = d.header.target;
        if target.is_broadcast() {
            return self.broadcast(d);
        }
        if target == Tid::EXECUTIVE {
            self.enqueue(d);
            self.mon.sent_local.inc();
            return Ok(());
        }
        match self.routes.lookup(target) {
            Some(Route::Local) => {
                self.enqueue(d);
                self.mon.sent_local.inc();
                Ok(())
            }
            Some(Route::Peer {
                peer,
                remote_tid,
                alternates,
            }) => {
                let mut buf = d.into_buf();
                MsgHeader::patch_target(&mut buf, remote_tid);
                self.mon.tracer.record(
                    TraceEvent::PtSend,
                    remote_tid.raw() as u32,
                    buf.len() as u32,
                );
                if alternates.is_empty() {
                    self.pta.send(&peer, buf)?;
                } else {
                    let mut chain = Route::Peer {
                        peer,
                        remote_tid,
                        alternates,
                    }
                    .failover_chain();
                    // Same-host fast path: when a shm transport is
                    // registered, try the zero-copy address first and
                    // keep the network addresses as failover.
                    self.pta.reorder_for_locality(&mut chain);
                    self.pta.send_failover(&chain, buf)?;
                }
                self.mon.sent_peer.inc();
                Ok(())
            }
            None => {
                self.mon.dropped.inc();
                self.mon
                    .tracer
                    .record(TraceEvent::Drop, target.raw() as u32, 0);
                Err(ExecError::UnknownTid(target))
            }
        }
    }

    fn broadcast(&self, d: Delivery) -> Result<(), ExecError> {
        self.mon.broadcasts.inc();
        let bytes = d.frame_bytes();
        for tid in self.registry.tids() {
            if tid == d.header.initiator {
                continue; // do not echo to the sender
            }
            let mut buf = self.alloc(bytes.len())?;
            buf.copy_from_slice(bytes);
            MsgHeader::patch_target(&mut buf, tid);
            if let Ok(copy) = Delivery::from_buf(buf) {
                self.enqueue(copy);
                self.mon.sent_local.inc();
            }
        }
        Ok(())
    }

    /// Finds or creates the proxy TiD for a remote device reached via
    /// `peer` (paper §3.4: the executive "creates a local TiD for the
    /// target device along with information how to reach this device").
    pub fn proxy_for(&self, peer: PeerAddr, remote_tid: Tid) -> Result<Tid, ExecError> {
        let key = (peer.clone(), remote_tid);
        let mut index = self.proxy_index.lock();
        if let Some(tid) = index.get(&key) {
            return Ok(*tid);
        }
        let tid = self.tids.lock().allocate()?;
        self.routes.add_peer(tid, peer, remote_tid);
        index.insert(key, tid);
        Ok(tid)
    }

    /// Ingest path for frames arriving from a peer transport.
    ///
    /// The remote initiator TiD is rewritten to a locally created proxy
    /// so replies route back transparently; frames whose target is
    /// itself a proxy are forwarded onward (multi-hop Peer Operation).
    pub fn ingest_from_peer(&self, mut buf: FrameBuf, src: PeerAddr) {
        self.mon
            .tracer
            .record(TraceEvent::PtRecv, 0, buf.len() as u32);
        if let Some(sup) = &self.supervisor {
            // Any inbound frame is proof of life (recovers Suspect,
            // never Down — see supervisor.rs).
            let _ = sup.touch(&src);
        }
        let header = match MsgHeader::decode(&buf) {
            Ok(h) => h,
            Err(_) => {
                self.mon.dropped.inc();
                return;
            }
        };
        // Credit protocol: grants and syncs are consumed right here at
        // ingest, never queued — the reserved control lane. A blocked
        // dispatch worker or a saturated scheduler queue can therefore
        // never delay, shed or deadlock credit replenishment. Inbound
        // private data frames account against the receiver lane and
        // may trigger a replenishing grant back to the sender.
        if let Some(mgr) = &self.flow {
            match header.function_code() {
                FunctionCode::Util(UtilFn::CreditGrant) => {
                    if let Some((epoch, total)) = credit::decode_credit_payload(&buf[HEADER_LEN..])
                    {
                        mgr.on_grant(&src, epoch, total);
                    }
                    return;
                }
                FunctionCode::Util(UtilFn::CreditSync) => {
                    if let Some((epoch, total)) = credit::decode_credit_payload(&buf[HEADER_LEN..])
                    {
                        if let Some(cmd) = mgr.on_sync(&src, epoch, total, self.queued()) {
                            self.send_flow_cmd(cmd);
                        }
                    }
                    return;
                }
                FunctionCode::Private if !header.flags.contains(MsgFlags::CONTROL) => {
                    if let Some(cmd) = mgr.on_data(&src, self.queued()) {
                        self.send_flow_cmd(cmd);
                    }
                }
                _ => {}
            }
        }
        if header.initiator.is_addressable() {
            match self.proxy_for(src, header.initiator) {
                Ok(proxy) => MsgHeader::patch_initiator(&mut buf, proxy),
                Err(_) => {
                    self.mon.dropped.inc();
                    return;
                }
            }
        }
        let d = match Delivery::from_buf(buf) {
            Ok(d) => d,
            Err(_) => {
                self.mon.dropped.inc();
                return;
            }
        };
        let is_forward = matches!(
            self.routes.lookup(d.header.target),
            Some(Route::Peer { .. })
        );
        if is_forward {
            self.mon.forwarded.inc();
        }
        let _ = self.route(d);
    }

    /// Emits one credit-protocol frame (grant or sync) straight to the
    /// peer transport. Utility function codes are never metered by the
    /// credit gate, so grants flow even when the data lane is
    /// exhausted.
    fn send_flow_cmd(&self, cmd: FlowCmd) {
        let (peer, func, epoch, total) = match cmd {
            FlowCmd::Grant { peer, epoch, total } => (peer, UtilFn::CreditGrant, epoch, total),
            FlowCmd::Sync { peer, epoch, total } => (peer, UtilFn::CreditSync, epoch, total),
        };
        let msg = Message::util(Tid::EXECUTIVE, Tid::EXECUTIVE, func)
            .priority(Priority::MAX)
            .payload(credit::encode_credit_payload(epoch, total).to_vec())
            .finish();
        if let Ok(d) = Delivery::from_message(&msg, self.allocator()) {
            let _ = self.pta.send(&peer, d.into_buf());
        }
    }

    /// Periodic flow maintenance, driven from the supervision/PTA
    /// timer slot: re-advertise receiver windows (heals lost grants)
    /// and nudge stalled metered senders with a sync.
    pub(crate) fn flow_tick(&self) {
        let Some(mgr) = &self.flow else { return };
        for cmd in mgr.tick(self.queued()) {
            self.send_flow_cmd(cmd);
        }
    }

    /// Applies runtime `flow.*` / `qos.*` parameters (from a
    /// `ParamsSet` frame addressed to the executive, or `xcl qos`).
    pub(crate) fn apply_runtime_params(&self, map: &HashMap<String, String>) -> Result<(), String> {
        for (k, v) in map {
            if k.starts_with("flow.") {
                match &self.flow {
                    Some(mgr) => mgr.apply_param(k, v)?,
                    None => return Err("flow control is not enabled on this node".to_string()),
                }
            } else if k.starts_with("qos.") {
                self.admission.apply_param(k, v, &self.mon.registry)?;
            }
        }
        Ok(())
    }

    fn snapshot(&self) -> ExecStats {
        let m = &self.mon;
        ExecStats {
            dispatched: m.dispatched.get(),
            sent_local: m.sent_local.get(),
            sent_peer: m.sent_peer.get(),
            forwarded: m.forwarded.get(),
            broadcasts: m.broadcasts.get(),
            dropped: m.dropped.get(),
            exec_msgs: m.exec_msgs.get(),
            util_msgs: m.util_msgs.get(),
            timers_fired: m.timers_fired.get(),
            watchdog_trips: m.watchdog_trips.get(),
            faults: m.faults.get(),
        }
    }

    /// One JSON document describing everything this node knows about
    /// itself: registry metrics (counters, per-priority queue gauges,
    /// histograms), pool accounting, per-transport counters and tracer
    /// state. This is the `UtilMonSnapshot` reply body.
    pub fn mon_snapshot(&self) -> serde_json::Value {
        let ps = self.alloc.stats();
        let mut doc = json!({
            "node": self.node.as_str(),
            "uptime_ns": self.started_at.elapsed().as_nanos() as u64,
            "devices": self.registry.len() as u64,
            "queued": self.queued() as u64,
            "metrics": self.mon.registry.snapshot(),
            "pool": {
                "scheme": self.alloc.scheme(),
                "allocs": ps.allocs,
                "hits": ps.hits,
                "misses": ps.misses,
                "frees": ps.frees,
                "failures": ps.failures,
                "live_blocks": ps.live_blocks,
                "high_water_blocks": ps.high_water_blocks,
                "bytes_created": ps.bytes_created,
            },
            "pt": self.pta.counters_value(),
            "links": self
                .supervisor
                .as_ref()
                .map(|s| {
                    s.states()
                        .into_iter()
                        .map(|(p, st)| json!({"peer": p.to_string(), "state": st.as_str()}))
                        .collect::<Vec<_>>()
                })
                .unwrap_or_default(),
            "trace": {
                "enabled": self.mon.tracer.is_enabled(),
                "recorded": self.mon.tracer.recorded(),
            },
        });
        // Only surfaced on multi-worker nodes so single-worker
        // snapshots stay byte-identical to historical output.
        if self.workers > 1 {
            if let serde_json::Value::Object(m) = &mut doc {
                m.insert("workers".to_string(), json!(self.workers as u64));
            }
        }
        // Likewise: flow/qos sections only appear once configured, so
        // nodes without them scrape identically to historical output.
        if let serde_json::Value::Object(m) = &mut doc {
            if let Some(mgr) = &self.flow {
                m.insert("flow".to_string(), mgr.snapshot());
            }
            if !self.admission.is_empty() {
                m.insert("qos".to_string(), self.admission.snapshot());
            }
        }
        doc
    }

    /// Zeroes the whole monitoring state: registry (counters, gauges,
    /// histograms — including the counters behind [`ExecStats`]), the
    /// trace ring, and per-transport counters. Pool accounting is
    /// lifetime state and is left untouched.
    pub fn mon_reset(&self) {
        self.mon.registry.reset();
        self.mon.tracer.clear();
        self.pta.reset_counters();
    }
}

/// The public executive handle. Cloning is cheap (shared core).
#[derive(Clone)]
pub struct Executive {
    core: Arc<ExecCore>,
}

impl Executive {
    /// Builds an executive from configuration.
    pub fn new(config: ExecutiveConfig) -> Executive {
        let probes = config.probe_capacity.map(DispatchProbes::new);
        let alloc: Arc<dyn FrameAllocator> = match (config.allocator, &probes) {
            (AllocatorKind::Simple, None) => SimplePool::with_defaults(),
            (AllocatorKind::Table, None) => TablePool::with_defaults(),
            (AllocatorKind::Simple, Some(p)) => {
                let pool = SimplePool::with_defaults();
                ProbedAllocator::new(pool.clone(), pool, p.clone())
            }
            (AllocatorKind::Table, Some(p)) => {
                let pool = TablePool::with_defaults();
                ProbedAllocator::new(pool.clone(), pool, p.clone())
            }
        };
        let exec_meta = DeviceMeta {
            tid: Tid::EXECUTIVE,
            name: format!("{}.executive", config.node),
            class: DeviceClass::Executive,
            state: DeviceState::Enabled,
            params: HashMap::new(),
        };
        // `workers(1)` left at its default can be overridden from the
        // environment; an explicit `workers(n > 1)` always wins. This
        // lets CI re-run unmodified tests under a multi-worker
        // executive (`XDAQ_WORKERS=4 cargo test`).
        let workers = if config.workers == 1 {
            std::env::var("XDAQ_WORKERS")
                .ok()
                .and_then(|s| s.parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or(1)
        } else {
            config.workers.max(1)
        };
        let (mon, depth_gauges) = ExecMonitors::new(config.trace_capacity, workers);
        // `queue_capacity` bounds each shard independently: the policy
        // protects a worker's dispatch lag, which is per-shard state.
        let shards: Vec<SchedQueue> = depth_gauges
            .into_iter()
            .map(|g| {
                SchedQueue::with_gauges(g)
                    .with_limits(config.queue_capacity, config.overload.clone())
            })
            .collect();
        let supervisor = config.supervision.clone().map(LinkSupervisor::new);
        let flow = config
            .flow
            .clone()
            .map(|fc| Arc::new(CreditManager::bound_to(fc, mon.registry())));
        let core = Arc::new(ExecCore {
            node: config.node,
            alloc,
            shards,
            claims: ClaimTable::new(),
            workers,
            routes: RouteTable::new(),
            pta: Pta::with_clock(config.clock.clone()),
            timers: TimerWheel::with_clock(config.clock.clone()),
            registry: Registry::new(),
            tids: Mutex::new(TidAllocator::new()),
            proxy_index: Mutex::new(HashMap::new()),
            factories: Mutex::new(HashMap::new()),
            mon,
            probes,
            watchdog: config.watchdog,
            supervisor,
            flow,
            admission: AdmissionControl::new(),
            fault_listener: Mutex::new(None),
            running: AtomicBool::new(true),
            clock: config.clock,
            started_at: Instant::now(),
            dispatch_batch: config.dispatch_batch.max(1),
            idle_spins: config.idle_spins,
            exec_meta: Mutex::new(exec_meta),
        });
        core.routes.add_local(Tid::EXECUTIVE);
        core.routes.add_local(Tid::PTA);
        core.pta.bind_registry(core.mon.registry());
        core.pta.set_retry_policy(None, config.retry);
        if let Some(mgr) = &core.flow {
            core.pta.bind_flow(mgr.clone());
        }
        if let Some(sup) = &core.supervisor {
            // The heartbeat timer is owned by the PTA pseudo-device;
            // run_once intercepts it instead of synthesizing a frame.
            // With flow control on, the same slot drives flow_tick.
            core.timers.register(Tid::PTA, sup.interval(), true);
        } else if let Some(mgr) = &core.flow {
            // No supervision: flow maintenance still needs the PTA
            // timer slot (grant re-advertisement, stalled-sender sync).
            core.timers.register(Tid::PTA, mgr.config().tick, true);
        }
        Executive { core }
    }

    /// Fluent construction: `Executive::builder("node").workers(4).build()`.
    pub fn builder(node: &str) -> ExecutiveBuilder {
        ExecutiveBuilder::new(node)
    }

    /// Shared internals (dispatch context, tests, benches).
    pub fn core(&self) -> &Arc<ExecCore> {
        &self.core
    }

    /// Node name.
    pub fn node(&self) -> &str {
        self.core.node_name()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ExecStats {
        self.core.snapshot()
    }

    /// Whitebox probes, when enabled in the config.
    pub fn probes(&self) -> Option<&Arc<DispatchProbes>> {
        self.core.probes.as_ref()
    }

    /// Pool statistics.
    pub fn pool_stats(&self) -> xdaq_mempool::PoolStats {
        self.core.alloc.stats()
    }

    /// Registers a device instance under a unique name, assigning a
    /// TiD and delivering the `plugged` upcall.
    pub fn register(
        &self,
        name: &str,
        listener: Box<dyn I2oListener>,
        params: &[(&str, &str)],
    ) -> Result<Tid, ExecError> {
        let params: HashMap<String, String> = params
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        self.register_with(name, listener, params)
    }

    fn register_with(
        &self,
        name: &str,
        listener: Box<dyn I2oListener>,
        params: HashMap<String, String>,
    ) -> Result<Tid, ExecError> {
        let tid = self.core.tids.lock().allocate()?;
        let meta = DeviceMeta {
            tid,
            name: name.to_string(),
            class: listener.class(),
            state: DeviceState::Initialized,
            params,
        };
        if let Err(e) = self.core.registry.insert(DeviceUnit { listener, meta }) {
            let _ = self.core.tids.lock().free(tid);
            return Err(e);
        }
        self.core.routes.add_local(tid);
        // The paper's plugin upcall: the instance learns its TiD and
        // reads its parameters.
        if let Some(mut unit) = self.core.registry.checkout(tid) {
            let mut ctx = Dispatcher {
                core: &self.core,
                meta: &mut unit.meta,
            };
            unit.listener.plugged(&mut ctx);
            self.core.registry.checkin(unit);
        }
        Ok(tid)
    }

    /// Registers a module factory for runtime loading via
    /// `ExecSwDownload` (the paper's dynamic download of device
    /// classes into running executives).
    pub fn register_factory(&self, name: &str, factory: ModuleFactory) {
        self.core.factories.lock().insert(name.to_string(), factory);
    }

    /// Instantiates a previously registered factory.
    pub fn load_module(
        &self,
        factory: &str,
        instance: &str,
        params: HashMap<String, String>,
    ) -> Result<Tid, ExecError> {
        let listener = {
            let factories = self.core.factories.lock();
            let f = factories
                .get(factory)
                .ok_or_else(|| ExecError::UnknownModule(factory.to_string()))?;
            f(&params)
        };
        self.register_with(instance, listener, params)
    }

    /// Registers a peer transport: it becomes a device (TiD, utility
    /// messages) *and* the PTA routes frames through it by scheme.
    pub fn register_pt(&self, name: &str, pt: Arc<dyn PeerTransport>) -> Result<Tid, ExecError> {
        struct PtDdm {
            scheme: &'static str,
            pt: Arc<dyn PeerTransport>,
        }
        impl I2oListener for PtDdm {
            fn class(&self) -> DeviceClass {
                DeviceClass::PeerTransport
            }
            fn on_private(&mut self, _ctx: &mut Dispatcher<'_>, _msg: Delivery) {
                // Peer transports consume no private frames; data-plane
                // traffic flows through the PTA send/poll hooks.
            }
            fn plugged(&mut self, ctx: &mut Dispatcher<'_>) {
                let scheme = self.scheme.to_string();
                ctx.set_param("scheme", &scheme);
            }
            fn on_util(
                &mut self,
                ctx: &mut Dispatcher<'_>,
                f: UtilFn,
                msg: &Delivery,
            ) -> UtilOutcome {
                // ParamsSet is forwarded to the transport so runtime
                // knobs (fault plans, tunables) reach it over I2O.
                if f != UtilFn::ParamsSet {
                    return UtilOutcome::Default;
                }
                match parse_kv(msg.payload()) {
                    Ok(map) => {
                        for (k, v) in &map {
                            if let Err(e) = self.pt.configure(k, v) {
                                let body = format!("{k}: {e}");
                                let _ = ctx.reply(msg, ReplyStatus::BadFrame, body.as_bytes());
                                return UtilOutcome::Handled;
                            }
                        }
                        for (k, v) in map {
                            ctx.set_param(&k, &v);
                        }
                        let _ = ctx.reply(msg, ReplyStatus::Success, &[]);
                    }
                    Err(e) => {
                        let _ = ctx.reply(msg, ReplyStatus::BadFrame, e.as_bytes());
                    }
                }
                UtilOutcome::Handled
            }
        }
        let tid = self.register(
            name,
            Box::new(PtDdm {
                scheme: pt.scheme(),
                pt: pt.clone(),
            }),
            &[],
        )?;
        self.core.pta.register(tid, pt);
        Ok(tid)
    }

    /// Creates (or finds) a proxy TiD for a remote device, optionally
    /// giving it a local alias name.
    pub fn proxy(
        &self,
        peer: &str,
        remote_tid: Tid,
        alias: Option<&str>,
    ) -> Result<Tid, ExecError> {
        let addr: PeerAddr = peer.parse().map_err(ExecError::Transport)?;
        let tid = self.core.proxy_for(addr, remote_tid)?;
        if let Some(name) = alias {
            self.core.registry.alias(name, tid)?;
        }
        Ok(tid)
    }

    /// Adds a fallback address to an existing proxy route; the PTA
    /// fails over to it when the primary address cannot deliver.
    /// Returns false when the route is absent or the address is
    /// already part of the chain.
    pub fn add_alternate(&self, proxy: Tid, alt: &str) -> Result<bool, ExecError> {
        let addr: PeerAddr = alt.parse().map_err(ExecError::Transport)?;
        Ok(self.core.routes.add_alternate(proxy, addr))
    }

    /// Starts heartbeat supervision of a peer link. Requires
    /// [`ExecutiveConfig::supervision`] to be set.
    pub fn supervise(&self, peer: &str) -> Result<(), ExecError> {
        let addr: PeerAddr = peer.parse().map_err(ExecError::Transport)?;
        match &self.core.supervisor {
            Some(sup) => {
                sup.supervise(addr);
                Ok(())
            }
            None => Err(ExecError::BadControl(
                "supervision is not configured on this executive".to_string(),
            )),
        }
    }

    /// Stops heartbeat supervision of a peer link (no-op when the link
    /// is not supervised or supervision is off). Used when a managed
    /// peer is retired on purpose — its old address must not keep
    /// generating Suspect/Down churn after the replacement comes up.
    pub fn unsupervise(&self, peer: &str) -> Result<(), ExecError> {
        let addr: PeerAddr = peer.parse().map_err(ExecError::Transport)?;
        if let Some(sup) = &self.core.supervisor {
            sup.unsupervise(&addr);
        }
        Ok(())
    }

    /// Registers `tid` as this executive's fault listener: peer-down
    /// events arrive as `XFN_PEER_DOWN` private frames. Equivalent to
    /// `Dispatcher::watch_faults` but callable from outside a dispatch
    /// (host agents, control planes). Last caller wins.
    pub fn watch_faults(&self, tid: Tid) {
        self.core.set_fault_listener(tid);
    }

    /// Current supervised-link states (empty when supervision is off).
    pub fn link_states(&self) -> Vec<(String, LinkState)> {
        self.core
            .supervisor
            .as_ref()
            .map(|s| {
                s.states()
                    .into_iter()
                    .map(|(p, st)| (p.to_string(), st))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Overrides the PTA retry policy for one scheme (`Some("tcp")`)
    /// or the default for all schemes (`None`).
    pub fn set_retry_policy(&self, scheme: Option<&str>, policy: crate::pta::RetryPolicy) {
        self.core.pta.set_retry_policy(scheme, policy);
    }

    /// Injects a message from outside the dispatch loop (host control,
    /// application threads, tests). The message is encoded into a
    /// pooled buffer and routed like any frameSend.
    pub fn post(&self, msg: Message) -> Result<(), ExecError> {
        let d = Delivery::from_message(&msg, self.core.allocator())?;
        self.core.route(d)
    }

    /// Hands a raw encoded frame to the executive as if it arrived from
    /// the wire of `src`.
    pub fn ingest_from_peer(&self, buf: FrameBuf, src: PeerAddr) {
        self.core.ingest_from_peer(buf, src);
    }

    /// Starts all task-mode PTs, delivering into this executive.
    pub fn start_transports(&self) -> Result<(), PtError> {
        let core = self.core.clone();
        self.core.pta.start_tasks(Arc::new(move |buf, src| {
            core.ingest_from_peer(buf, src);
        }))
    }

    /// Destroys a device: unregisters, purges queues/timers/routes and
    /// frees its TiD.
    pub fn destroy(&self, tid: Tid) -> Result<(), ExecError> {
        let unit = self.core.registry.remove(tid);
        self.core.routes.remove(tid);
        self.core.purge_tid(tid);
        self.core.timers.cancel_owned(tid);
        self.core.pta.unregister(tid);
        match unit {
            Some(mut u) => {
                u.listener.unplugged();
                u.meta.state = DeviceState::Destroyed;
                let _ = self.core.tids.lock().free(tid);
                Ok(())
            }
            None => Err(ExecError::UnknownTid(tid)),
        }
    }

    /// Run-control: enable all devices that can be enabled.
    pub fn enable_all(&self) {
        self.core.registry.for_each_meta(|m| {
            if m.state.can_transition(DeviceState::Enabled) {
                m.state = DeviceState::Enabled;
            }
        });
    }

    /// Run-control: quiesce all enabled devices.
    pub fn quiesce_all(&self) {
        self.core.registry.for_each_meta(|m| {
            if m.state.can_transition(DeviceState::Quiesced) {
                m.state = DeviceState::Quiesced;
            }
        });
    }

    /// The Logical Configuration Table.
    pub fn lct(&self) -> Vec<LctEntry> {
        self.core.registry.lct()
    }

    /// Pending message count (summed across all shards).
    pub fn queue_len(&self) -> usize {
        self.core.queued()
    }

    /// Services the control plane owned by worker 0: timer wheel
    /// (including the `LinkSupervisor` heartbeat tick) and polling-mode
    /// PTs. Returns the number of work items performed.
    fn service_control(&self) -> usize {
        let core = &self.core;
        let mut work = 0usize;

        // Timers → XFN_TIMER frames through the normal queue. The
        // heartbeat timer is owned by the PTA pseudo-device and is
        // serviced directly instead of synthesizing a frame (no device
        // can own Tid::PTA).
        work += core.timers.fire_due(core.clock.now(), |owner, id| {
            core.mon.timers_fired.inc();
            if owner == Tid::PTA {
                self.heartbeat_tick();
                core.flow_tick();
                return;
            }
            let msg = Message::build_private(owner, Tid::EXECUTIVE, ORG_XDAQ, xfn::XFN_TIMER)
                .priority(Priority::MAX)
                .payload(id.0.to_le_bytes().to_vec())
                .finish();
            if let Ok(d) = Delivery::from_message(&msg, core.allocator()) {
                core.enqueue(d);
            }
        });

        // Polling-mode PTs (paper: executive periodically scans PTs).
        let polled = core
            .pta
            .poll_all(|buf, src| core.ingest_from_peer(buf, src));
        if polled > 0 {
            core.mon.polled_frames.add(polled as u64);
        }
        work + polled
    }

    /// Dispatches up to `dispatch_batch` messages from shard `w`,
    /// attributing latency to `worker`. Single-worker executives take
    /// the historical claim-free pop; multi-worker executives claim
    /// each target TiD under the shard lock so a concurrent stealer
    /// can never interleave frames of the same device.
    fn pump_shard(&self, w: usize, worker: usize) -> usize {
        let core = &self.core;
        let shard = &core.shards[w];
        let mut n = 0usize;
        if core.workers <= 1 {
            for _ in 0..core.dispatch_batch {
                match shard.pop() {
                    Some(d) => {
                        self.dispatch_on(d, worker);
                        n += 1;
                    }
                    None => break,
                }
            }
        } else {
            for _ in 0..core.dispatch_batch {
                match shard.pop_claimed(&core.claims) {
                    Some(d) => {
                        let tid = d.header.target;
                        self.dispatch_on(d, worker);
                        core.claims.release(tid);
                        n += 1;
                    }
                    None => break,
                }
            }
        }
        n
    }

    /// Work stealing for an idle worker: take one whole device FIFO
    /// (never individual frames — ordering) from the highest-priority
    /// non-empty level of another shard and dispatch it to completion.
    /// Returns the number of frames dispatched.
    fn steal_into(&self, thief: usize) -> usize {
        let core = &self.core;
        let n_shards = core.shards.len();
        for off in 1..n_shards {
            let victim = (thief + off) % n_shards;
            if let Some((tid, fifo)) = core.shards[victim].steal_fifo(&core.claims) {
                if let Some(c) = &core.mon.steals {
                    c.inc();
                }
                let n = fifo.len();
                for d in fifo {
                    self.dispatch_on(d, thief);
                }
                core.claims.release(tid);
                return n;
            }
        }
        0
    }

    /// One scheduler iteration: fire timers, poll polling-mode PTs,
    /// dispatch up to `dispatch_batch` messages per shard. Returns the
    /// number of work items performed (0 ⇒ idle). Manual pumping
    /// drains every shard regardless of the worker count, so
    /// single-threaded tests behave identically at any `workers(n)`.
    pub fn run_once(&self) -> usize {
        let mut work = self.service_control();
        for w in 0..self.core.shards.len() {
            work += self.pump_shard(w, 0);
        }
        work
    }

    /// Runs the dispatch loop until [`Executive::stop`] is called.
    ///
    /// With `workers(n > 1)` this spawns `n - 1` auxiliary dispatch
    /// threads, each pumping its own shard and stealing device FIFOs
    /// when idle, while the calling thread acts as worker 0 (control
    /// plane + shard 0). All auxiliary workers are joined before the
    /// PTs are stopped.
    pub fn run(&self) {
        if self.core.workers <= 1 {
            let mut idle = 0u32;
            while self.core.running.load(Ordering::Acquire) {
                if self.run_once() > 0 {
                    idle = 0;
                } else {
                    idle += 1;
                    if idle < self.core.idle_spins {
                        std::hint::spin_loop();
                    } else {
                        std::thread::yield_now();
                    }
                }
            }
            self.core.pta.stop_all();
            return;
        }
        let aux: Vec<_> = (1..self.core.workers)
            .map(|w| {
                let me = self.clone();
                std::thread::Builder::new()
                    .name(format!("xdaq-{}-w{w}", self.node()))
                    .spawn(move || me.run_worker(w))
                    .expect("spawn dispatch worker")
            })
            .collect();
        let mut idle = 0u32;
        while self.core.running.load(Ordering::Acquire) {
            let mut work = self.service_control();
            work += self.pump_shard(0, 0);
            if work == 0 {
                work = self.steal_into(0);
            }
            if work > 0 {
                idle = 0;
            } else {
                idle += 1;
                if idle < self.core.idle_spins {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
        for t in aux {
            let _ = t.join();
        }
        self.core.pta.stop_all();
    }

    /// Auxiliary dispatch worker `w ≥ 1`: pump own shard, steal when
    /// idle. Timers, heartbeats and PT polling stay on worker 0.
    fn run_worker(&self, w: usize) {
        let mut idle = 0u32;
        while self.core.running.load(Ordering::Acquire) {
            let mut work = self.pump_shard(w, w);
            if work == 0 {
                work = self.steal_into(w);
            }
            if work > 0 {
                idle = 0;
            } else {
                idle += 1;
                if idle < self.core.idle_spins {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Requests loop termination.
    pub fn stop(&self) {
        self.core.running.store(false, Ordering::Release);
    }

    /// True until [`Executive::stop`].
    pub fn is_running(&self) -> bool {
        self.core.running.load(Ordering::Acquire)
    }

    /// Spawns the dispatch loop on its own thread (starting task-mode
    /// transports first) and returns a handle.
    pub fn spawn(&self) -> ExecutiveHandle {
        let _ = self.start_transports();
        let me = self.clone();
        let thread = std::thread::Builder::new()
            .name(format!("xdaq-{}", self.node()))
            .spawn(move || me.run())
            .expect("spawn executive thread");
        ExecutiveHandle {
            exec: self.clone(),
            thread: Some(thread),
        }
    }

    // ------------------------------------------------------------------
    // Dispatch internals
    // ------------------------------------------------------------------

    fn dispatch_on(&self, d: Delivery, worker: usize) {
        let core = &self.core;
        core.mon.dispatched.inc();
        let target = d.header.target;
        // Queue→dispatch latency; the stamp exists only while tracing
        // is on, so the disabled path pays one `Option` check.
        if let Some(t0) = d.enqueued_at {
            let ns = t0.elapsed().as_nanos() as u64;
            core.mon.dispatch_latency.record(ns);
            if let Some(h) = core.mon.worker_latency.get(worker) {
                h.record(ns);
            }
            core.mon.tracer.record(
                TraceEvent::Dispatch,
                target.raw() as u32,
                d.header.function_code().to_u8() as u32,
            );
        }
        if target == Tid::EXECUTIVE {
            self.handle_executive(d);
            return;
        }

        let t_demux = core.probes.as_ref().map(|_| Instant::now());
        let unit = core.registry.checkout(target);
        let function = d.header.function_code();
        if let (Some(p), Some(t0)) = (&core.probes, t_demux) {
            p.demux.record(t0.elapsed().as_nanos() as u64);
        }
        let Some(mut unit) = unit else {
            core.mon.dropped.inc();
            core.mon
                .tracer
                .record(TraceEvent::Drop, target.raw() as u32, 0);
            self.error_reply(&d, ReplyStatus::UnknownTarget);
            return;
        };

        match function {
            FunctionCode::Private => {
                self.dispatch_private(&mut unit, d);
            }
            // Replies to standard-function requests this device sent.
            _ if d.header.flags.contains(MsgFlags::IS_REPLY) => {
                let mut ctx = Dispatcher {
                    core,
                    meta: &mut unit.meta,
                };
                unit.listener.on_reply(&mut ctx, d);
            }
            FunctionCode::Util(f) => {
                core.mon.util_msgs.inc();
                self.dispatch_util(&mut unit, f, d);
            }
            FunctionCode::Exec(_) | FunctionCode::Unknown(_) => {
                // Fault-tolerant default (paper §3.2): unknown standard
                // messages get a well-formed error reply instead of
                // crashing or stalling the node.
                let mut ctx = Dispatcher {
                    core,
                    meta: &mut unit.meta,
                };
                let _ = ctx.reply(&d, ReplyStatus::UnsupportedFunction, &[]);
            }
        }
        core.registry.checkin(unit);
        // The delivery has been consumed above; its buffer returns to
        // the pool here, which is the frame's recycle point.
        core.mon
            .tracer
            .record(TraceEvent::Recycle, target.raw() as u32, 0);
    }

    fn dispatch_private(&self, unit: &mut DeviceUnit, d: Delivery) {
        let core = &self.core;
        // Framework-internal events ride private XDAQ frames.
        if let Some(p) = d.private {
            if p.org_id == ORG_XDAQ
                && xfn::is_reserved(p.x_function)
                && p.x_function == xfn::XFN_TIMER
            {
                let mut id = [0u8; 8];
                let payload = d.payload();
                if payload.len() >= 8 {
                    id.copy_from_slice(&payload[..8]);
                    let mut ctx = Dispatcher {
                        core,
                        meta: &mut unit.meta,
                    };
                    unit.listener
                        .on_timer(&mut ctx, TimerId(u64::from_le_bytes(id)));
                }
                return;
            }
            // Other reserved events (watchdog/fault/LCT) are delivered
            // as ordinary private frames below so monitoring listeners
            // can observe them.
        }
        if !unit.meta.state.accepts_private() {
            core.mon.dropped.inc();
            core.mon
                .tracer
                .record(TraceEvent::Drop, unit.meta.tid.raw() as u32, 1);
            self.error_reply(&d, ReplyStatus::Busy);
            return;
        }
        let probes = core.probes.clone();
        let t_upcall = probes.as_ref().map(|_| Instant::now());
        let mut ctx = Dispatcher {
            core,
            meta: &mut unit.meta,
        };
        let t_app = Instant::now();
        if let (Some(p), Some(t0)) = (&probes, t_upcall) {
            p.upcall.record(t0.elapsed().as_nanos() as u64);
        }
        unit.listener.on_private(&mut ctx, d);
        let app_elapsed = t_app.elapsed();
        let t_release = Instant::now();
        if let Some(p) = &probes {
            p.app.record(app_elapsed.as_nanos() as u64);
        }
        // Watchdog (paper §4: detect handlers that monopolize the CPU).
        if let Some(budget) = core.watchdog {
            if app_elapsed > budget {
                core.mon.watchdog_trips.inc();
                if unit.meta.state.can_transition(DeviceState::Faulted) {
                    unit.meta.state = DeviceState::Faulted;
                    core.mon.faults.inc();
                }
                self.notify_fault(unit.meta.tid, app_elapsed);
            }
        }
        if let Some(p) = &probes {
            p.release.record(t_release.elapsed().as_nanos() as u64);
        }
    }

    fn dispatch_util(&self, unit: &mut DeviceUnit, f: UtilFn, d: Delivery) {
        let core = &self.core;
        if !unit.meta.state.accepts_utility() {
            self.error_reply(&d, ReplyStatus::Busy);
            return;
        }
        let outcome = {
            let mut ctx = Dispatcher {
                core,
                meta: &mut unit.meta,
            };
            unit.listener.on_util(&mut ctx, f, &d)
        };
        if outcome == UtilOutcome::Handled {
            return;
        }
        self.default_util(&mut unit.meta, f, &d);
    }

    /// The executive's default utility procedures (paper §3.2: "The
    /// system can provide default procedures if for a given event no
    /// code is supplied").
    fn default_util(&self, meta: &mut DeviceMeta, f: UtilFn, d: &Delivery) {
        let core = &self.core;
        let mut ctx = Dispatcher { core, meta };
        match f {
            UtilFn::Nop => {
                let _ = ctx.reply(d, ReplyStatus::Success, &[]);
            }
            UtilFn::ParamsGet => {
                let body = encode_kv(&ctx.meta.params);
                let _ = ctx.reply(d, ReplyStatus::Success, &body);
            }
            UtilFn::ParamsSet => match parse_kv(d.payload()) {
                Ok(map) => {
                    // `flow.*` / `qos.*` keys addressed to the
                    // executive retune flow control and tenant
                    // admission live; a bad key rejects the whole
                    // frame before any param is stored.
                    if ctx.meta.tid == Tid::EXECUTIVE {
                        if let Err(e) = core.apply_runtime_params(&map) {
                            let _ = ctx.reply(d, ReplyStatus::BadFrame, e.as_bytes());
                            return;
                        }
                    }
                    // `exec.stop=1` addressed to the executive is the
                    // orderly retirement path: the reply goes out
                    // first (the controller is waiting on it), then
                    // the dispatch loop winds down.
                    let stop = ctx.meta.tid == Tid::EXECUTIVE
                        && map.get("exec.stop").map(String::as_str) == Some("1");
                    for (k, v) in map {
                        ctx.meta.params.insert(k, v);
                    }
                    let _ = ctx.reply(d, ReplyStatus::Success, &[]);
                    if stop {
                        self.stop();
                    }
                }
                Err(e) => {
                    let _ = ctx.reply(d, ReplyStatus::BadFrame, e.as_bytes());
                }
            },
            UtilFn::Claim => {
                let owner = format!("{}", d.header.initiator.raw());
                if ctx.meta.params.contains_key("claimed_by") {
                    let _ = ctx.reply(d, ReplyStatus::Busy, b"already claimed");
                } else {
                    ctx.meta.params.insert("claimed_by".into(), owner);
                    let _ = ctx.reply(d, ReplyStatus::Success, &[]);
                }
            }
            UtilFn::ClaimRelease => {
                ctx.meta.params.remove("claimed_by");
                let _ = ctx.reply(d, ReplyStatus::Success, &[]);
            }
            UtilFn::Abort => {
                let purged = core.purge_tid(ctx.meta.tid);
                let body = format!("purged={purged}");
                let _ = ctx.reply(d, ReplyStatus::Aborted, body.as_bytes());
            }
            UtilFn::EventRegister => {
                *core.fault_listener.lock() = Some(d.header.initiator);
                let _ = ctx.reply(d, ReplyStatus::Success, &[]);
            }
            UtilFn::EventAck | UtilFn::ReplyFaultNotify => {
                // Pure notifications: nothing to do.
            }
            UtilFn::MonSnapshot => {
                let body = serde_json::to_string(&core.mon_snapshot());
                let _ = ctx.reply(d, ReplyStatus::Success, body.as_bytes());
            }
            UtilFn::MonReset => {
                core.mon_reset();
                let _ = ctx.reply(d, ReplyStatus::Success, &[]);
            }
            UtilFn::MonTraceDump => {
                // Optional one-byte argument toggles the tracer; an
                // empty payload dumps without changing the gate.
                if let Some(&arg) = d.payload().first() {
                    core.mon.tracer.set_enabled(arg != 0);
                }
                let body = serde_json::to_string(&core.mon.tracer.dump_value());
                let _ = ctx.reply(d, ReplyStatus::Success, body.as_bytes());
            }
            UtilFn::HbPing => {
                // Answer with a *fresh* HbPong frame (not an IS_REPLY:
                // the remote executive swallows replies) echoing the
                // sequence payload back to the proxied initiator.
                let pong = Message::util(d.header.initiator, ctx.meta.tid, UtilFn::HbPong)
                    .priority(Priority::MAX)
                    .payload(d.payload().to_vec())
                    .finish();
                let _ = ctx.send(pong);
            }
            UtilFn::HbPong => {
                core.mon.hb_pongs.inc();
                let seq = d
                    .payload()
                    .get(..8)
                    .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                    .unwrap_or(0);
                // The pong arrives with a proxied initiator; the route
                // for that proxy names the peer the pong came from.
                if let Some(Route::Peer { peer, .. }) = core.routes.lookup(d.header.initiator) {
                    if let Some(sup) = &core.supervisor {
                        let _ = sup.on_pong(&peer, seq);
                    }
                }
            }
            UtilFn::CreditGrant | UtilFn::CreditSync => {
                // Normally consumed at peer ingest (the reserved
                // control lane); one reaching dispatch means flow
                // control is disabled on this node — ignore it.
            }
        }
    }

    /// Executive-class messages addressed to TiD 1 — the management
    /// surface a primary host drives.
    fn handle_executive(&self, d: Delivery) {
        let core = &self.core;
        core.mon.exec_msgs.inc();
        // Replies to executive-originated requests terminate here —
        // never interpret a reply as a command (loop protection).
        if d.header.flags.contains(MsgFlags::IS_REPLY) {
            return;
        }
        let function = d.header.function_code();
        let mut meta = core.exec_meta.lock();
        match function {
            FunctionCode::Util(f) => {
                core.mon.util_msgs.inc();
                let mut m = meta.clone();
                drop(meta);
                self.default_util(&mut m, f, &d);
                *core.exec_meta.lock() = m;
            }
            FunctionCode::Exec(e) => {
                drop(meta);
                self.handle_exec_fn(e, &d);
            }
            _ => {
                let mut ctx = Dispatcher {
                    core,
                    meta: &mut meta,
                };
                let _ = ctx.reply(&d, ReplyStatus::UnsupportedFunction, &[]);
            }
        }
    }

    fn exec_reply(&self, d: &Delivery, status: ReplyStatus, body: &[u8]) {
        let core = &self.core;
        let mut meta = core.exec_meta.lock().clone();
        let mut ctx = Dispatcher {
            core,
            meta: &mut meta,
        };
        let _ = ctx.reply(d, status, body);
    }

    /// True when `e` mutates cluster state and is therefore gated by a
    /// host claim (paper §3.5: secondary hosts must apply for control
    /// rights before driving a node).
    fn is_mutating(e: ExecFn) -> bool {
        !matches!(
            e,
            ExecFn::StatusGet | ExecFn::OutboundInit | ExecFn::HrtGet | ExecFn::LctNotify
        )
    }

    fn handle_exec_fn(&self, e: ExecFn, d: &Delivery) {
        let core = &self.core;
        // Control-rights check: once a host has claimed this executive
        // (UtilClaim on TiD 1), mutating commands from other initiators
        // are refused with Busy.
        if Self::is_mutating(e) {
            let claimed = core.exec_meta.lock().params.get("claimed_by").cloned();
            if let Some(owner) = claimed {
                if owner != d.header.initiator.raw().to_string() {
                    self.exec_reply(d, ReplyStatus::Busy, b"claimed by another host");
                    return;
                }
            }
        }
        match e {
            ExecFn::StatusGet => {
                let s = core.snapshot();
                let body = kv(&[
                    ("node", core.node_name()),
                    ("devices", &core.registry.len().to_string()),
                    ("queued", &core.queued().to_string()),
                    ("dispatched", &s.dispatched.to_string()),
                    ("sent_local", &s.sent_local.to_string()),
                    ("sent_peer", &s.sent_peer.to_string()),
                    ("forwarded", &s.forwarded.to_string()),
                    ("broadcasts", &s.broadcasts.to_string()),
                    ("dropped", &s.dropped.to_string()),
                    ("exec_msgs", &s.exec_msgs.to_string()),
                    ("util_msgs", &s.util_msgs.to_string()),
                    ("timers_fired", &s.timers_fired.to_string()),
                    ("watchdog_trips", &s.watchdog_trips.to_string()),
                    ("faults", &s.faults.to_string()),
                    (
                        "uptime_ns",
                        &core.started_at.elapsed().as_nanos().to_string(),
                    ),
                    ("allocator", core.alloc.scheme()),
                ]);
                self.exec_reply(d, ReplyStatus::Success, &body);
            }
            ExecFn::OutboundInit => {
                self.exec_reply(d, ReplyStatus::Success, b"ack=1\n");
            }
            ExecFn::SysEnable => {
                self.enable_all();
                self.exec_reply(d, ReplyStatus::Success, &[]);
            }
            ExecFn::SysQuiesce => {
                self.quiesce_all();
                self.exec_reply(d, ReplyStatus::Success, &[]);
            }
            ExecFn::IopClear => {
                let mut purged = 0;
                for tid in core.registry.tids() {
                    purged += core.purge_tid(tid);
                }
                let body = format!("purged={purged}\n");
                self.exec_reply(d, ReplyStatus::Success, body.as_bytes());
            }
            ExecFn::IopReset => {
                core.registry
                    .for_each_meta(|m| m.state = DeviceState::Initialized);
                for tid in core.registry.tids() {
                    core.purge_tid(tid);
                    core.timers.cancel_owned(tid);
                }
                self.exec_reply(d, ReplyStatus::Success, &[]);
            }
            ExecFn::DdmDestroy => match self.control_tid(d) {
                Ok(tid) => match self.destroy(tid) {
                    Ok(()) => self.exec_reply(d, ReplyStatus::Success, &[]),
                    Err(_) => self.exec_reply(d, ReplyStatus::UnknownTarget, &[]),
                },
                Err(e) => self.exec_reply(d, ReplyStatus::BadFrame, e.to_string().as_bytes()),
            },
            ExecFn::SwDownload => match parse_kv(d.payload()) {
                Ok(map) => {
                    let factory = map.get("factory").cloned().unwrap_or_default();
                    let name = map.get("name").cloned().unwrap_or_default();
                    let params: HashMap<String, String> = map
                        .iter()
                        .filter_map(|(k, v)| {
                            k.strip_prefix("param.").map(|p| (p.to_string(), v.clone()))
                        })
                        .collect();
                    match self.load_module(&factory, &name, params) {
                        Ok(tid) => {
                            let body = format!("tid={}\n", tid.raw());
                            self.exec_reply(d, ReplyStatus::Success, body.as_bytes());
                        }
                        Err(err) => {
                            self.exec_reply(d, ReplyStatus::DeviceError, err.to_string().as_bytes())
                        }
                    }
                }
                Err(e) => self.exec_reply(d, ReplyStatus::BadFrame, e.as_bytes()),
            },
            ExecFn::IopConnect => match parse_kv(d.payload()) {
                Ok(map) => {
                    let peer = map.get("peer").cloned().unwrap_or_default();
                    let remote: u16 = map
                        .get("remote_tid")
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(0);
                    match Tid::new(remote) {
                        Ok(rt) if rt.is_addressable() => {
                            let alias = map.get("alias").map(|s| s.as_str());
                            match self.proxy(&peer, rt, alias) {
                                Ok(tid) => {
                                    // `supervise=1` puts the new link
                                    // under heartbeat supervision in
                                    // the same round trip — the way a
                                    // control plane wires managed
                                    // peers.
                                    if map.get("supervise").map(String::as_str) == Some("1") {
                                        if let Err(err) = self.supervise(&peer) {
                                            self.exec_reply(
                                                d,
                                                ReplyStatus::DeviceError,
                                                err.to_string().as_bytes(),
                                            );
                                            return;
                                        }
                                    }
                                    let body = format!("tid={}\n", tid.raw());
                                    self.exec_reply(d, ReplyStatus::Success, body.as_bytes());
                                }
                                Err(err) => self.exec_reply(
                                    d,
                                    ReplyStatus::DeviceError,
                                    err.to_string().as_bytes(),
                                ),
                            }
                        }
                        _ => self.exec_reply(d, ReplyStatus::BadFrame, b"bad remote_tid"),
                    }
                }
                Err(e) => self.exec_reply(d, ReplyStatus::BadFrame, e.as_bytes()),
            },
            ExecFn::SysTabSet => match parse_kv(d.payload()) {
                Ok(map) => {
                    let mut body = String::new();
                    let mut ok = true;
                    for (k, v) in &map {
                        let Some(n) = k.strip_prefix("route.") else {
                            continue;
                        };
                        let Some((peer, tid_s)) = v.split_once('|') else {
                            ok = false;
                            continue;
                        };
                        let rt = tid_s.parse::<u16>().ok().and_then(|t| Tid::new(t).ok());
                        match rt {
                            Some(rt) => match self.proxy(peer, rt, None) {
                                Ok(tid) => {
                                    body.push_str(&format!("tid.{n}={}\n", tid.raw()));
                                }
                                Err(_) => ok = false,
                            },
                            None => ok = false,
                        }
                    }
                    let status = if ok {
                        ReplyStatus::Success
                    } else {
                        ReplyStatus::DeviceError
                    };
                    self.exec_reply(d, status, body.as_bytes());
                }
                Err(e) => self.exec_reply(d, ReplyStatus::BadFrame, e.as_bytes()),
            },
            ExecFn::HrtGet => {
                let ps = core.alloc.stats();
                let body = kv(&[
                    ("allocator", core.alloc.scheme()),
                    ("allocs", &ps.allocs.to_string()),
                    ("hits", &ps.hits.to_string()),
                    ("misses", &ps.misses.to_string()),
                    ("live_blocks", &ps.live_blocks.to_string()),
                    ("bytes_created", &ps.bytes_created.to_string()),
                ]);
                self.exec_reply(d, ReplyStatus::Success, &body);
            }
            ExecFn::LctNotify => {
                let mut body = String::new();
                for (i, row) in core.registry.lct().iter().enumerate() {
                    body.push_str(&format!(
                        "dev.{i}={}|{}|{}|{:?}\n",
                        row.tid.raw(),
                        row.name,
                        row.class,
                        row.state
                    ));
                }
                self.exec_reply(d, ReplyStatus::Success, body.as_bytes());
            }
            ExecFn::PathQuiesce | ExecFn::PathEnable => match self.control_tid(d) {
                Ok(tid) => {
                    let want = if e == ExecFn::PathEnable {
                        DeviceState::Enabled
                    } else {
                        DeviceState::Quiesced
                    };
                    let mut done = false;
                    core.registry.for_each_meta(|m| {
                        if m.tid == tid && m.state.can_transition(want) {
                            m.state = want;
                            done = true;
                        }
                    });
                    let status = if done {
                        ReplyStatus::Success
                    } else {
                        ReplyStatus::DeviceError
                    };
                    self.exec_reply(d, status, &[]);
                }
                Err(err) => self.exec_reply(d, ReplyStatus::BadFrame, err.to_string().as_bytes()),
            },
        }
    }

    /// Parses the `tid=<raw>` control payload.
    fn control_tid(&self, d: &Delivery) -> Result<Tid, ExecError> {
        let map = parse_kv(d.payload()).map_err(ExecError::BadControl)?;
        let raw: u16 = map
            .get("tid")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ExecError::BadControl("missing tid".into()))?;
        Tid::new(raw).map_err(ExecError::Tid)
    }

    /// Sends an error reply when the request asked for one.
    fn error_reply(&self, d: &Delivery, status: ReplyStatus) {
        if !d.header.flags.contains(MsgFlags::REPLY_EXPECTED)
            || d.header.flags.contains(MsgFlags::IS_REPLY)
        {
            return;
        }
        self.exec_reply(d, status, &[]);
    }

    /// One supervision period: probe every supervised peer with an
    /// `HbPing` utility frame and react to state transitions. Pings
    /// bypass the route table — a Down peer keeps being probed so its
    /// eventual pong can revive the link.
    fn heartbeat_tick(&self) {
        let core = &self.core;
        let Some(sup) = &core.supervisor else { return };
        // Transports can detect peer death out-of-band (a shm region's
        // epoch bumps when the peer process dies); fold those into the
        // supervisor ahead of the miss-accounting ramp.
        for peer in core.pta.take_down_peers() {
            if sup.force_down(&peer).is_some() {
                self.on_peer_down(&peer);
            }
        }
        let outcome = sup.tick();
        for (peer, seq) in outcome.pings {
            core.mon.hb_pings.inc();
            let msg = Message::util(Tid::EXECUTIVE, Tid::EXECUTIVE, UtilFn::HbPing)
                .priority(Priority::MAX)
                .payload(seq.to_le_bytes().to_vec())
                .finish();
            if let Ok(d) = Delivery::from_message(&msg, core.allocator()) {
                let _ = core.pta.send(&peer, d.into_buf());
            }
        }
        for (peer, state) in outcome.transitions {
            match state {
                LinkState::Suspect => core.mon.peer_suspect.inc(),
                LinkState::Down => self.on_peer_down(&peer),
                LinkState::Up => {}
            }
        }
    }

    /// A supervised link went Down: evict its routes (promoting
    /// alternates where they exist), drop the dead proxy index entries
    /// and notify the fault listener.
    fn on_peer_down(&self, peer: &PeerAddr) {
        let core = &self.core;
        core.mon.peer_down.inc();
        // Credit lanes die with the link: sender credit is forgotten
        // (the lane re-opens unmetered on the next grant) and the
        // receiver epoch bumps so stale in-flight grants from the old
        // incarnation can never be adopted.
        if let Some(mgr) = &core.flow {
            mgr.on_link_down(peer);
        }
        let ev = core.routes.evict_peer(peer);
        core.proxy_index.lock().retain(|(p, _), _| p != peer);
        for tid in &ev.evicted {
            core.purge_tid(*tid);
            core.registry.remove(*tid);
            let _ = core.tids.lock().free(*tid);
        }
        let listener = *core.fault_listener.lock();
        if let Some(dest) = listener {
            let body = kv(&[
                ("peer", &peer.to_string()),
                ("evicted", &ev.evicted.len().to_string()),
                ("promoted", &ev.promoted.len().to_string()),
            ]);
            let msg = Message::build_private(dest, Tid::EXECUTIVE, ORG_XDAQ, xfn::XFN_PEER_DOWN)
                .priority(Priority::MAX)
                .payload(body)
                .finish();
            let _ = self.post(msg);
        }
    }

    /// Notifies the registered fault listener about a watchdog trip.
    fn notify_fault(&self, tid: Tid, elapsed: Duration) {
        let listener = *self.core.fault_listener.lock();
        let Some(dest) = listener else { return };
        let body = kv(&[
            ("tid", &tid.raw().to_string()),
            ("elapsed_ns", &elapsed.as_nanos().to_string()),
        ]);
        let msg = Message::build_private(dest, Tid::EXECUTIVE, ORG_XDAQ, xfn::XFN_WATCHDOG)
            .priority(Priority::MAX)
            .payload(body)
            .finish();
        let _ = self.post(msg);
    }
}

/// Fluent [`Executive`] constructor over [`ExecutiveConfig`].
///
/// ```
/// use xdaq_core::Executive;
/// let exec = Executive::builder("ru0").workers(4).build();
/// assert_eq!(exec.core().workers(), 4);
/// ```
pub struct ExecutiveBuilder {
    config: ExecutiveConfig,
}

impl ExecutiveBuilder {
    /// Starts from the defaults of [`ExecutiveConfig::named`].
    pub fn new(node: &str) -> ExecutiveBuilder {
        ExecutiveBuilder {
            config: ExecutiveConfig::named(node),
        }
    }

    /// Starts from an existing configuration.
    pub fn from_config(config: ExecutiveConfig) -> ExecutiveBuilder {
        ExecutiveBuilder { config }
    }

    /// Dispatch worker count. `1` (default) is the paper's single
    /// scheduler thread; `n > 1` shards TiDs across `n` workers with
    /// whole-FIFO work stealing. Clamped to at least 1.
    pub fn workers(mut self, n: usize) -> ExecutiveBuilder {
        self.config.workers = n.max(1);
        self
    }

    /// Buffer-pool scheme.
    pub fn allocator(mut self, kind: AllocatorKind) -> ExecutiveBuilder {
        self.config.allocator = kind;
        self
    }

    /// Per-handler CPU budget (watchdog).
    pub fn watchdog(mut self, budget: Duration) -> ExecutiveBuilder {
        self.config.watchdog = Some(budget);
        self
    }

    /// Enables heartbeat link supervision.
    pub fn supervision(mut self, cfg: SupervisionConfig) -> ExecutiveBuilder {
        self.config.supervision = Some(cfg);
        self
    }

    /// Enables link-level credit-based flow control (DESIGN.md §13).
    pub fn flow(mut self, cfg: crate::credit::FlowConfig) -> ExecutiveBuilder {
        self.config.flow = Some(cfg);
        self
    }

    /// Default PTA retry policy.
    pub fn retry(mut self, policy: RetryPolicy) -> ExecutiveBuilder {
        self.config.retry = policy;
        self
    }

    /// Time source for timers, heartbeats, retry backoff and flow
    /// ticks. Defaults to [`Clock::Wall`]; simulations pass a shared
    /// virtual clock (DESIGN.md §16).
    pub fn clock(mut self, clock: Clock) -> ExecutiveBuilder {
        self.config.clock = clock;
        self
    }

    /// Bounds each scheduling shard at `cap` pending frames with the
    /// given overload reaction.
    pub fn queue_capacity(mut self, cap: usize, overload: OverloadPolicy) -> ExecutiveBuilder {
        self.config.queue_capacity = Some(cap);
        self.config.overload = overload;
        self
    }

    /// Attaches whitebox dispatch probes with `n`-sample rings.
    pub fn probes(mut self, n: usize) -> ExecutiveBuilder {
        self.config.probe_capacity = Some(n);
        self
    }

    /// Slots in the frame-lifecycle trace ring.
    pub fn trace_capacity(mut self, n: usize) -> ExecutiveBuilder {
        self.config.trace_capacity = n;
        self
    }

    /// Builds the executive.
    pub fn build(self) -> Executive {
        Executive::new(self.config)
    }
}

/// Handle to a spawned executive thread. Stops and joins on drop.
pub struct ExecutiveHandle {
    exec: Executive,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ExecutiveHandle {
    /// The executive being driven.
    pub fn executive(&self) -> &Executive {
        &self.exec
    }

    /// Stops the loop and joins the thread.
    pub fn shutdown(mut self) {
        self.stop_join();
    }

    fn stop_join(&mut self) {
        self.exec.stop();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ExecutiveHandle {
    fn drop(&mut self) {
        self.stop_join();
    }
}
