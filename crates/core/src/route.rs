//! TiD routing: local devices and proxy TiDs for remote ones.
//!
//! Paper §3.4: *"To communicate with a remote device, the executive
//! creates a local TiD for the target device along with information how
//! to reach this device. The principle is not new. It can be compared
//! to the Proxy pattern. That is how we can obtain total transparency
//! of location. The caller never needs to know, if a device is really
//! local or if the call is redirected."*
//!
//! A peer route may additionally carry **alternate** addresses for the
//! same remote device (e.g. a `gm://` primary with a `tcp://` backup).
//! The PTA's failover chain walks them in order on a hard send
//! failure, and [`RouteTable::evict_peer`] promotes an alternate to
//! primary when the link supervisor declares a peer down.

use crate::pta::PeerAddr;
use parking_lot::RwLock;
use std::collections::HashMap;
use xdaq_i2o::Tid;

/// Where a TiD leads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// A device registered on this executive.
    Local,
    /// A proxy: forward over `via` to `peer`, readdressed to
    /// `remote_tid` on the remote IOP.
    Peer {
        /// Peer transport address (scheme selects the PT).
        peer: PeerAddr,
        /// The device's TiD on the remote node.
        remote_tid: Tid,
        /// Backup addresses for the same remote device, tried in
        /// order when sending via `peer` fails hard.
        alternates: Vec<PeerAddr>,
    },
}

impl Route {
    /// The send-failover chain for a peer route — primary first, then
    /// alternates in registration order. Empty for a local route. The
    /// executive hands this to [`Pta::reorder_for_locality`] so a
    /// co-located `shm://` address is tried before any network one,
    /// then to `send_failover`.
    ///
    /// [`Pta::reorder_for_locality`]: crate::pta::Pta::reorder_for_locality
    pub fn failover_chain(&self) -> Vec<PeerAddr> {
        match self {
            Route::Local => Vec::new(),
            Route::Peer {
                peer, alternates, ..
            } => {
                let mut chain = Vec::with_capacity(1 + alternates.len());
                chain.push(peer.clone());
                chain.extend(alternates.iter().cloned());
                chain
            }
        }
    }
}

/// Outcome of evicting a peer address from the table.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Eviction {
    /// Proxy TiDs removed outright (no alternate to fall back to).
    pub evicted: Vec<Tid>,
    /// Proxy TiDs kept alive by promoting their first alternate; the
    /// dead address is demoted to last-resort alternate.
    pub promoted: Vec<Tid>,
}

/// The per-executive routing table.
#[derive(Default)]
pub struct RouteTable {
    routes: RwLock<HashMap<Tid, Route>>,
}

impl RouteTable {
    /// Empty table.
    pub fn new() -> RouteTable {
        RouteTable::default()
    }

    /// Registers a local device TiD.
    pub fn add_local(&self, tid: Tid) {
        self.routes.write().insert(tid, Route::Local);
    }

    /// Registers a proxy TiD with a single address.
    pub fn add_peer(&self, local_proxy: Tid, peer: PeerAddr, remote_tid: Tid) {
        self.add_peer_with_alternates(local_proxy, peer, remote_tid, Vec::new());
    }

    /// Registers a proxy TiD with a primary address plus failover
    /// alternates.
    pub fn add_peer_with_alternates(
        &self,
        local_proxy: Tid,
        peer: PeerAddr,
        remote_tid: Tid,
        alternates: Vec<PeerAddr>,
    ) {
        self.routes.write().insert(
            local_proxy,
            Route::Peer {
                peer,
                remote_tid,
                alternates,
            },
        );
    }

    /// Appends an alternate address to an existing peer route; returns
    /// false when the TiD is absent or local.
    pub fn add_alternate(&self, local_proxy: Tid, alt: PeerAddr) -> bool {
        let mut routes = self.routes.write();
        match routes.get_mut(&local_proxy) {
            Some(Route::Peer {
                peer, alternates, ..
            }) => {
                if *peer != alt && !alternates.contains(&alt) {
                    alternates.push(alt);
                }
                true
            }
            _ => false,
        }
    }

    /// Looks up a TiD.
    pub fn lookup(&self, tid: Tid) -> Option<Route> {
        self.routes.read().get(&tid).cloned()
    }

    /// True when the TiD routes locally.
    pub fn is_local(&self, tid: Tid) -> bool {
        matches!(self.routes.read().get(&tid), Some(Route::Local))
    }

    /// Removes a TiD (device destroyed / peer disconnected).
    pub fn remove(&self, tid: Tid) -> Option<Route> {
        self.routes.write().remove(&tid)
    }

    /// All proxy TiDs whose **primary** address is the given peer
    /// (used when a peer goes away).
    pub fn proxies_via(&self, peer: &PeerAddr) -> Vec<Tid> {
        self.routes
            .read()
            .iter()
            .filter_map(|(tid, r)| match r {
                Route::Peer { peer: p, .. } if p == peer => Some(*tid),
                _ => None,
            })
            .collect()
    }

    /// Declares `peer` dead: every route whose primary is `peer`
    /// either promotes its first alternate (the dead address becomes
    /// the last-resort alternate, so the route can fail back if the
    /// peer returns) or, with no alternates, is removed from the
    /// table.
    pub fn evict_peer(&self, peer: &PeerAddr) -> Eviction {
        let mut routes = self.routes.write();
        let mut out = Eviction::default();
        let affected: Vec<Tid> = routes
            .iter()
            .filter_map(|(tid, r)| match r {
                Route::Peer { peer: p, .. } if p == peer => Some(*tid),
                _ => None,
            })
            .collect();
        for tid in affected {
            let Some(Route::Peer {
                peer: p,
                alternates,
                ..
            }) = routes.get_mut(&tid)
            else {
                continue;
            };
            if alternates.is_empty() {
                routes.remove(&tid);
                out.evicted.push(tid);
            } else {
                let promoted = alternates.remove(0);
                let demoted = std::mem::replace(p, promoted);
                alternates.push(demoted);
                out.promoted.push(tid);
            }
        }
        out
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.routes.read().len()
    }

    /// True when no routes exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: u16) -> Tid {
        Tid::new(v).unwrap()
    }

    fn addr(s: &str) -> PeerAddr {
        s.parse().unwrap()
    }

    #[test]
    fn local_and_peer_routes() {
        let rt = RouteTable::new();
        rt.add_local(t(0x10));
        rt.add_peer(t(0x11), addr("gm://2:0"), t(0x20));
        assert!(rt.is_local(t(0x10)));
        assert!(!rt.is_local(t(0x11)));
        match rt.lookup(t(0x11)).unwrap() {
            Route::Peer {
                peer,
                remote_tid,
                alternates,
            } => {
                assert_eq!(peer.scheme(), "gm");
                assert_eq!(remote_tid, t(0x20));
                assert!(alternates.is_empty());
            }
            _ => panic!("expected peer route"),
        }
        assert_eq!(rt.lookup(t(0x99)), None);
    }

    #[test]
    fn remove_routes() {
        let rt = RouteTable::new();
        rt.add_local(t(0x10));
        assert!(rt.remove(t(0x10)).is_some());
        assert!(rt.lookup(t(0x10)).is_none());
        assert!(rt.remove(t(0x10)).is_none());
    }

    #[test]
    fn proxies_via_filters_by_peer() {
        let rt = RouteTable::new();
        rt.add_peer(t(0x11), addr("tcp://a:1"), t(0x20));
        rt.add_peer(t(0x12), addr("tcp://a:1"), t(0x21));
        rt.add_peer(t(0x13), addr("tcp://b:1"), t(0x22));
        rt.add_local(t(0x14));
        let mut via_a = rt.proxies_via(&addr("tcp://a:1"));
        via_a.sort();
        assert_eq!(via_a, vec![t(0x11), t(0x12)]);
    }

    #[test]
    fn alternates_dedupe_and_require_peer_route() {
        let rt = RouteTable::new();
        rt.add_local(t(0x10));
        assert!(!rt.add_alternate(t(0x10), addr("tcp://b:1")));
        assert!(!rt.add_alternate(t(0x99), addr("tcp://b:1")));
        rt.add_peer(t(0x11), addr("gm://2:0"), t(0x20));
        assert!(rt.add_alternate(t(0x11), addr("tcp://b:1")));
        assert!(rt.add_alternate(t(0x11), addr("tcp://b:1")));
        assert!(
            rt.add_alternate(t(0x11), addr("gm://2:0")),
            "primary dup ignored"
        );
        match rt.lookup(t(0x11)).unwrap() {
            Route::Peer { alternates, .. } => {
                assert_eq!(alternates, vec![addr("tcp://b:1")]);
            }
            _ => panic!("expected peer route"),
        }
    }

    #[test]
    fn failover_chain_is_primary_then_alternates() {
        assert!(Route::Local.failover_chain().is_empty());
        let r = Route::Peer {
            peer: addr("tcp://a:1"),
            remote_tid: t(0x20),
            alternates: vec![addr("shm:///dev/shm/x@b"), addr("gm://a:0")],
        };
        assert_eq!(
            r.failover_chain(),
            vec![
                addr("tcp://a:1"),
                addr("shm:///dev/shm/x@b"),
                addr("gm://a:0"),
            ]
        );
    }

    #[test]
    fn evict_promotes_alternate_or_removes() {
        let rt = RouteTable::new();
        rt.add_peer_with_alternates(t(0x11), addr("gm://a:0"), t(0x20), vec![addr("tcp://a:1")]);
        rt.add_peer(t(0x12), addr("gm://a:0"), t(0x21));
        rt.add_peer(t(0x13), addr("gm://b:0"), t(0x22));
        let ev = rt.evict_peer(&addr("gm://a:0"));
        assert_eq!(ev.promoted, vec![t(0x11)]);
        assert_eq!(ev.evicted, vec![t(0x12)]);
        match rt.lookup(t(0x11)).unwrap() {
            Route::Peer {
                peer, alternates, ..
            } => {
                assert_eq!(peer, addr("tcp://a:1"), "alternate promoted");
                assert_eq!(alternates, vec![addr("gm://a:0")], "dead addr demoted");
            }
            _ => panic!("expected peer route"),
        }
        assert!(rt.lookup(t(0x12)).is_none());
        assert!(rt.lookup(t(0x13)).is_some(), "other peers untouched");
    }
}
