//! TiD routing: local devices and proxy TiDs for remote ones.
//!
//! Paper §3.4: *"To communicate with a remote device, the executive
//! creates a local TiD for the target device along with information how
//! to reach this device. The principle is not new. It can be compared
//! to the Proxy pattern. That is how we can obtain total transparency
//! of location. The caller never needs to know, if a device is really
//! local or if the call is redirected."*

use crate::pta::PeerAddr;
use parking_lot::RwLock;
use std::collections::HashMap;
use xdaq_i2o::Tid;

/// Where a TiD leads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// A device registered on this executive.
    Local,
    /// A proxy: forward over `via` to `peer`, readdressed to
    /// `remote_tid` on the remote IOP.
    Peer {
        /// Peer transport address (scheme selects the PT).
        peer: PeerAddr,
        /// The device's TiD on the remote node.
        remote_tid: Tid,
    },
}

/// The per-executive routing table.
#[derive(Default)]
pub struct RouteTable {
    routes: RwLock<HashMap<Tid, Route>>,
}

impl RouteTable {
    /// Empty table.
    pub fn new() -> RouteTable {
        RouteTable::default()
    }

    /// Registers a local device TiD.
    pub fn add_local(&self, tid: Tid) {
        self.routes.write().insert(tid, Route::Local);
    }

    /// Registers a proxy TiD.
    pub fn add_peer(&self, local_proxy: Tid, peer: PeerAddr, remote_tid: Tid) {
        self.routes
            .write()
            .insert(local_proxy, Route::Peer { peer, remote_tid });
    }

    /// Looks up a TiD.
    pub fn lookup(&self, tid: Tid) -> Option<Route> {
        self.routes.read().get(&tid).cloned()
    }

    /// True when the TiD routes locally.
    pub fn is_local(&self, tid: Tid) -> bool {
        matches!(self.routes.read().get(&tid), Some(Route::Local))
    }

    /// Removes a TiD (device destroyed / peer disconnected).
    pub fn remove(&self, tid: Tid) -> Option<Route> {
        self.routes.write().remove(&tid)
    }

    /// All proxy TiDs pointing at a given peer (used when a peer goes
    /// away).
    pub fn proxies_via(&self, peer: &PeerAddr) -> Vec<Tid> {
        self.routes
            .read()
            .iter()
            .filter_map(|(tid, r)| match r {
                Route::Peer { peer: p, .. } if p == peer => Some(*tid),
                _ => None,
            })
            .collect()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.routes.read().len()
    }

    /// True when no routes exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: u16) -> Tid {
        Tid::new(v).unwrap()
    }

    fn addr(s: &str) -> PeerAddr {
        s.parse().unwrap()
    }

    #[test]
    fn local_and_peer_routes() {
        let rt = RouteTable::new();
        rt.add_local(t(0x10));
        rt.add_peer(t(0x11), addr("gm://2:0"), t(0x20));
        assert!(rt.is_local(t(0x10)));
        assert!(!rt.is_local(t(0x11)));
        match rt.lookup(t(0x11)).unwrap() {
            Route::Peer { peer, remote_tid } => {
                assert_eq!(peer.scheme(), "gm");
                assert_eq!(remote_tid, t(0x20));
            }
            _ => panic!("expected peer route"),
        }
        assert_eq!(rt.lookup(t(0x99)), None);
    }

    #[test]
    fn remove_routes() {
        let rt = RouteTable::new();
        rt.add_local(t(0x10));
        assert!(rt.remove(t(0x10)).is_some());
        assert!(rt.lookup(t(0x10)).is_none());
        assert!(rt.remove(t(0x10)).is_none());
    }

    #[test]
    fn proxies_via_filters_by_peer() {
        let rt = RouteTable::new();
        rt.add_peer(t(0x11), addr("tcp://a:1"), t(0x20));
        rt.add_peer(t(0x12), addr("tcp://a:1"), t(0x21));
        rt.add_peer(t(0x13), addr("tcp://b:1"), t(0x22));
        rt.add_local(t(0x14));
        let mut via_a = rt.proxies_via(&addr("tcp://a:1"));
        via_a.sort();
        assert_eq!(via_a, vec![t(0x11), t(0x12)]);
    }
}
