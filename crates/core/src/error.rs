//! Executive and transport error types.

use core::fmt;
use xdaq_i2o::{FrameError, Tid, TidError};
use xdaq_mempool::AllocError;

/// Failures surfaced by the executive API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The target TiD is neither a registered device nor a proxy.
    UnknownTid(Tid),
    /// The addressed device exists but is not accepting this traffic
    /// (quiesced/faulted for private frames, destroyed for all).
    NotAccepting(Tid),
    /// Frame encode/decode failure.
    Frame(FrameError),
    /// Memory pool failure.
    Alloc(AllocError),
    /// TiD allocation failure.
    Tid(TidError),
    /// Transport-level failure.
    Transport(PtError),
    /// No peer transport registered for the route's scheme.
    NoTransport(String),
    /// A module factory name was not found (ExecSwDownload).
    UnknownModule(String),
    /// A device with this instance name already exists.
    DuplicateName(String),
    /// The executive has been shut down.
    Stopped,
    /// Malformed control-message payload.
    BadControl(String),
    /// Admission control shed the frame: the initiator's tenant class
    /// is over its token-bucket rate.
    Shed(Tid),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownTid(t) => write!(f, "unknown target {t}"),
            ExecError::NotAccepting(t) => write!(f, "device {t} is not accepting this traffic"),
            ExecError::Frame(e) => write!(f, "frame error: {e}"),
            ExecError::Alloc(e) => write!(f, "allocation error: {e}"),
            ExecError::Tid(e) => write!(f, "tid error: {e}"),
            ExecError::Transport(e) => write!(f, "transport error: {e}"),
            ExecError::NoTransport(s) => write!(f, "no peer transport for scheme '{s}'"),
            ExecError::UnknownModule(s) => write!(f, "no module factory named '{s}'"),
            ExecError::DuplicateName(s) => write!(f, "device instance '{s}' already exists"),
            ExecError::Stopped => write!(f, "executive stopped"),
            ExecError::BadControl(s) => write!(f, "malformed control payload: {s}"),
            ExecError::Shed(t) => write!(f, "admission control shed frame from {t}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<FrameError> for ExecError {
    fn from(e: FrameError) -> ExecError {
        ExecError::Frame(e)
    }
}

impl From<AllocError> for ExecError {
    fn from(e: AllocError) -> ExecError {
        ExecError::Alloc(e)
    }
}

impl From<TidError> for ExecError {
    fn from(e: TidError) -> ExecError {
        ExecError::Tid(e)
    }
}

impl From<PtError> for ExecError {
    fn from(e: PtError) -> ExecError {
        ExecError::Transport(e)
    }
}

/// Failures inside a peer transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PtError {
    /// The peer address string does not parse for this transport.
    BadAddress(String),
    /// The peer is not reachable (connect/lookup failure).
    Unreachable(String),
    /// Backpressure: the transport cannot accept the frame now.
    WouldBlock,
    /// I/O failure, stringified (std::io::Error is not Clone/PartialEq).
    Io(String),
    /// The transport has been stopped.
    Closed,
    /// Link-level flow control: the credit lane to this peer is dry
    /// and the configured policy gave up (fail-fast, or the blocking
    /// deadline expired). The frame rides back via [`SendFailure`]
    /// so the caller keeps the pool block zero-copy.
    CreditExhausted(String),
}

impl fmt::Display for PtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PtError::BadAddress(a) => write!(f, "bad peer address '{a}'"),
            PtError::Unreachable(a) => write!(f, "peer '{a}' unreachable"),
            PtError::WouldBlock => write!(f, "transport backpressure"),
            PtError::Io(e) => write!(f, "transport I/O error: {e}"),
            PtError::Closed => write!(f, "transport closed"),
            PtError::CreditExhausted(p) => {
                write!(f, "credit lane to peer '{p}' exhausted")
            }
        }
    }
}

impl std::error::Error for PtError {}

impl From<std::io::Error> for PtError {
    fn from(e: std::io::Error) -> PtError {
        PtError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let e: ExecError = FrameError::BadVersion(9).into();
        assert!(matches!(e, ExecError::Frame(_)));
        let e: ExecError = AllocError::TooLarge(1).into();
        assert!(matches!(e, ExecError::Alloc(_)));
        let e: ExecError = PtError::WouldBlock.into();
        assert!(matches!(e, ExecError::Transport(_)));
        let e: PtError = std::io::Error::other("boom").into();
        assert!(matches!(e, PtError::Io(_)));
    }

    #[test]
    fn display_strings() {
        assert!(ExecError::UnknownTid(Tid::HOST)
            .to_string()
            .contains("tid:host"));
        assert!(ExecError::NoTransport("gm".into())
            .to_string()
            .contains("gm"));
        assert!(PtError::Unreachable("tcp://x".into())
            .to_string()
            .contains("tcp://x"));
    }
}
