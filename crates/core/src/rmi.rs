//! RMI-style adapters: typed calls over I2O frames.
//!
//! Paper §4: *"To further shield users from these details, adapters can
//! be provided that allow a remote method invocation style
//! communication scheme. The stub part will take the call parameters
//! and marshal them into a standard message, whereas the skeleton part
//! scans the message and provides typed pointers to its contents."*
//!
//! The marshalling format is a flat TLV sequence — deliberately simple
//! and allocation-light (the paper's whole point is that the marshal
//! engine must be exchangeable and cheap, unlike a CORBA ORB's):
//!
//! ```text
//! value := tag:u8 payload
//! tag 0x01 = u32 (4 bytes LE)      tag 0x02 = u64 (8 bytes LE)
//! tag 0x03 = i64 (8 bytes LE)      tag 0x04 = bytes (u32 len + data)
//! tag 0x05 = str  (u32 len + utf8) tag 0x06 = bool (1 byte)
//! ```
//!
//! A [`Stub`] marshals arguments into a private frame and correlates
//! the reply; a [`Skeleton`] unmarshals on the server side and
//! marshals the result. Both sides stay ordinary [`crate::I2oListener`]
//! code — the adapters do not bypass the executive.

use crate::listener::{Delivery, Dispatcher};
use core::fmt;
use xdaq_i2o::{Message, OrgId, Priority, ReplyStatus, Tid};

/// Marshalling/unmarshalling failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MarshalError {
    /// Buffer ended inside a value.
    Truncated,
    /// Unknown tag byte.
    BadTag(u8),
    /// Expected a different type at this position.
    TypeMismatch { expected: &'static str, got: u8 },
    /// String payload was not UTF-8.
    BadUtf8,
}

impl fmt::Display for MarshalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarshalError::Truncated => write!(f, "marshalled buffer truncated"),
            MarshalError::BadTag(t) => write!(f, "unknown marshal tag {t:#04x}"),
            MarshalError::TypeMismatch { expected, got } => {
                write!(f, "expected {expected}, found tag {got:#04x}")
            }
            MarshalError::BadUtf8 => write!(f, "string value is not valid UTF-8"),
        }
    }
}

impl std::error::Error for MarshalError {}

/// Argument writer (the stub's marshalling half).
#[derive(Default, Debug, Clone)]
pub struct ArgWriter {
    buf: Vec<u8>,
}

impl ArgWriter {
    /// Empty writer.
    pub fn new() -> ArgWriter {
        ArgWriter::default()
    }

    /// Appends a u32.
    pub fn u32(mut self, v: u32) -> ArgWriter {
        self.buf.push(0x01);
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a u64.
    pub fn u64(mut self, v: u64) -> ArgWriter {
        self.buf.push(0x02);
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends an i64.
    pub fn i64(mut self, v: i64) -> ArgWriter {
        self.buf.push(0x03);
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends raw bytes.
    pub fn bytes(mut self, v: &[u8]) -> ArgWriter {
        self.buf.push(0x04);
        self.buf.extend_from_slice(&(v.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(v);
        self
    }

    /// Appends a string.
    pub fn str(mut self, v: &str) -> ArgWriter {
        self.buf.push(0x05);
        self.buf.extend_from_slice(&(v.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(v.as_bytes());
        self
    }

    /// Appends a bool.
    pub fn bool(mut self, v: bool) -> ArgWriter {
        self.buf.push(0x06);
        self.buf.push(v as u8);
        self
    }

    /// Finishes, returning the marshalled bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Argument reader (the skeleton's "typed pointers into the message").
///
/// Reads values in order directly from the frame payload — zero-copy
/// for `bytes`/`str` (they borrow the delivery buffer).
pub struct ArgReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ArgReader<'a> {
    /// Reader over marshalled bytes.
    pub fn new(buf: &'a [u8]) -> ArgReader<'a> {
        ArgReader { buf, pos: 0 }
    }

    fn tag(&mut self, expected_tag: u8, expected: &'static str) -> Result<(), MarshalError> {
        let t = *self.buf.get(self.pos).ok_or(MarshalError::Truncated)?;
        if t != expected_tag {
            return Err(MarshalError::TypeMismatch { expected, got: t });
        }
        self.pos += 1;
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], MarshalError> {
        let end = self.pos.checked_add(n).ok_or(MarshalError::Truncated)?;
        let s = self.buf.get(self.pos..end).ok_or(MarshalError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    /// Reads a u32.
    pub fn u32(&mut self) -> Result<u32, MarshalError> {
        self.tag(0x01, "u32")?;
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a u64.
    pub fn u64(&mut self) -> Result<u64, MarshalError> {
        self.tag(0x02, "u64")?;
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an i64.
    pub fn i64(&mut self) -> Result<i64, MarshalError> {
        self.tag(0x03, "i64")?;
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a byte slice (borrowed).
    pub fn bytes(&mut self) -> Result<&'a [u8], MarshalError> {
        self.tag(0x04, "bytes")?;
        let len = u32::from_le_bytes(self.take(4)?.try_into().unwrap()) as usize;
        self.take(len)
    }

    /// Reads a string slice (borrowed).
    pub fn str(&mut self) -> Result<&'a str, MarshalError> {
        self.tag(0x05, "str")?;
        let len = u32::from_le_bytes(self.take(4)?.try_into().unwrap()) as usize;
        std::str::from_utf8(self.take(len)?).map_err(|_| MarshalError::BadUtf8)
    }

    /// Reads a bool.
    pub fn bool(&mut self) -> Result<bool, MarshalError> {
        self.tag(0x06, "bool")?;
        Ok(self.take(1)?[0] != 0)
    }

    /// True when all values were consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// The client-side adapter: marshals calls to one remote method of one
/// target device and matches replies by context.
pub struct Stub {
    target: Tid,
    org: OrgId,
    x_function: u16,
    next_ctx: u32,
}

impl Stub {
    /// Stub for `(org, x_function)` on `target` (usually a proxy TiD).
    pub fn new(target: Tid, org: OrgId, x_function: u16) -> Stub {
        Stub {
            target,
            org,
            x_function,
            next_ctx: 1,
        }
    }

    /// The method's x-function code.
    pub fn x_function(&self) -> u16 {
        self.x_function
    }

    /// Issues a call (a private frame with `REPLY_EXPECTED`); returns
    /// the context to correlate the reply with.
    pub fn call(
        &mut self,
        ctx: &mut Dispatcher<'_>,
        args: ArgWriter,
    ) -> Result<u32, crate::error::ExecError> {
        let call_ctx = self.next_ctx;
        self.next_ctx = self.next_ctx.wrapping_add(1).max(1);
        let msg = Message::build_private(self.target, ctx.own_tid(), self.org, self.x_function)
            .priority(Priority::NORMAL)
            .context(call_ctx)
            .expect_reply()
            .payload(args.finish())
            .finish();
        ctx.send(msg)?;
        Ok(call_ctx)
    }

    /// Checks whether `msg` is the reply to one of this stub's calls;
    /// returns `(context, status, result-reader)`.
    pub fn match_reply<'m>(&self, msg: &'m Delivery) -> Option<(u32, ReplyStatus, ArgReader<'m>)> {
        let p = msg.private?;
        if p.org_id != self.org || p.x_function != self.x_function {
            return None;
        }
        let (status, body) = msg.reply_status()?;
        Some((msg.header.initiator_context, status, ArgReader::new(body)))
    }
}

/// The server-side adapter: recognizes calls to one method and replies
/// with a marshalled result.
pub struct Skeleton {
    org: OrgId,
    x_function: u16,
}

impl Skeleton {
    /// Skeleton for `(org, x_function)`.
    pub fn new(org: OrgId, x_function: u16) -> Skeleton {
        Skeleton { org, x_function }
    }

    /// If `msg` is a call to this method, runs `f(args)` and replies
    /// with its marshalled result. Returns `true` when handled.
    pub fn serve(
        &self,
        ctx: &mut Dispatcher<'_>,
        msg: &Delivery,
        f: impl FnOnce(&mut ArgReader<'_>) -> Result<ArgWriter, MarshalError>,
    ) -> bool {
        let Some(p) = msg.private else { return false };
        if p.org_id != self.org
            || p.x_function != self.x_function
            || msg.header.flags.contains(xdaq_i2o::MsgFlags::IS_REPLY)
        {
            return false;
        }
        let mut reader = ArgReader::new(msg.payload());
        match f(&mut reader) {
            Ok(result) => {
                let _ = ctx.reply(msg, ReplyStatus::Success, &result.finish());
            }
            Err(e) => {
                let _ = ctx.reply(msg, ReplyStatus::BadFrame, e.to_string().as_bytes());
            }
        }
        true
    }

    /// Like [`Skeleton::serve`], but the handler picks the error reply
    /// status itself — a device that validates arguments *semantically*
    /// (a block address off the end of the disk, say) should answer
    /// `DeviceError`, not the marshalling-level `BadFrame`.
    pub fn serve_with(
        &self,
        ctx: &mut Dispatcher<'_>,
        msg: &Delivery,
        f: impl FnOnce(&mut ArgReader<'_>) -> Result<ArgWriter, (ReplyStatus, String)>,
    ) -> bool {
        let Some(p) = msg.private else { return false };
        if p.org_id != self.org
            || p.x_function != self.x_function
            || msg.header.flags.contains(xdaq_i2o::MsgFlags::IS_REPLY)
        {
            return false;
        }
        let mut reader = ArgReader::new(msg.payload());
        match f(&mut reader) {
            Ok(result) => {
                let _ = ctx.reply(msg, ReplyStatus::Success, &result.finish());
            }
            Err((status, detail)) => {
                let _ = ctx.reply(msg, status, detail.as_bytes());
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_roundtrip_all_types() {
        let buf = ArgWriter::new()
            .u32(42)
            .u64(1 << 40)
            .i64(-7)
            .bytes(b"raw")
            .str("hello")
            .bool(true)
            .finish();
        let mut r = ArgReader::new(&buf);
        assert_eq!(r.u32().unwrap(), 42);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.i64().unwrap(), -7);
        assert_eq!(r.bytes().unwrap(), b"raw");
        assert_eq!(r.str().unwrap(), "hello");
        assert!(r.bool().unwrap());
        assert!(r.is_exhausted());
    }

    #[test]
    fn type_mismatch_detected() {
        let buf = ArgWriter::new().u32(1).finish();
        let mut r = ArgReader::new(&buf);
        let e = r.u64().unwrap_err();
        assert_eq!(
            e,
            MarshalError::TypeMismatch {
                expected: "u64",
                got: 0x01
            }
        );
    }

    #[test]
    fn truncation_detected() {
        let mut buf = ArgWriter::new().str("long string here").finish();
        buf.truncate(8);
        let mut r = ArgReader::new(&buf);
        assert_eq!(r.str().unwrap_err(), MarshalError::Truncated);
    }

    #[test]
    fn bad_utf8_detected() {
        let mut buf = ArgWriter::new().str("ab").finish();
        let n = buf.len();
        buf[n - 1] = 0xFF;
        let mut r = ArgReader::new(&buf);
        assert_eq!(r.str().unwrap_err(), MarshalError::BadUtf8);
    }

    #[test]
    fn empty_reader_is_exhausted() {
        let r = ArgReader::new(&[]);
        assert!(r.is_exhausted());
    }
}
